/**
 * @file
 * Capacity planning with Lotus: measure a pipeline on the machine you
 * have, then simulate it on the machine you are buying.
 *
 * 1. Run a short instrumented epoch of the real IC pipeline here.
 * 2. Calibrate a per-op service model from its [T3] records.
 * 3. Replay the DataLoader protocol in virtual time on a modelled
 *    32-core, 4-GPU node across worker counts.
 * 4. Recommend the smallest worker count within 5% of the best epoch
 *    time (the paper's Takeaway 5: more workers have diminishing
 *    returns while CPU time keeps growing).
 */

#include <cstdio>

#include "analysis/table.h"
#include "common/strings.h"
#include "core/lotustrace/analysis.h"
#include "dataflow/data_loader.h"
#include "sim/loader_sim.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

int
main()
{
    using namespace lotus;

    // --- 1. short real measurement run.
    workloads::ImageNetConfig data;
    data.num_images = 48;
    data.median_width = 128;
    auto workload = workloads::makeImageClassification(
        workloads::buildImageNetStore(data), 64);
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 2;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    while (loader.next().has_value()) {
    }
    std::printf("calibration run: %llu records captured\n",
                static_cast<unsigned long long>(logger.recordCount()));

    // --- 2. fit the service model from what LotusTrace measured.
    auto model = sim::ServiceModel::calibrate(logger.records(),
                                              options.batch_size);
    model.batch_factor_cv = 0.08; // input clustering (DESIGN.md §5)
    std::printf("calibrated per-sample ops:\n");
    for (const auto &op : model.per_sample_ops) {
        std::printf("  %-22s mean %7.2f ms  cv %.2f\n", op.name.c_str(),
                    toMs(op.mean), op.cv);
    }

    // --- 3. simulate the target machine across worker counts.
    std::printf("\nsimulated target: 32 cores, 4 GPUs, batch 256, 64 "
                "batches per epoch\n");
    analysis::TextTable table(
        {"workers", "epoch s", "CPU s", "occupancy", "waits > 100ms"});
    struct Point
    {
        int workers;
        double epoch_s;
    };
    std::vector<Point> points;
    for (const int workers : {2, 4, 8, 12, 16, 20, 24, 28}) {
        sim::LoaderSimConfig config;
        config.model = model;
        config.batch_size = 256;
        config.num_workers = workers;
        config.num_gpus = 4;
        config.num_batches = 64;
        config.cores = 32;
        config.gpu_time_per_sample = 300 * kMicrosecond;
        config.seed = static_cast<std::uint64_t>(1000 + workers);
        config.log_ops = false;
        const auto result = sim::LoaderSim(config).run();
        core::lotustrace::TraceAnalysis analysis(result.records);
        table.addRow({strFormat("%d", workers),
                      strFormat("%.1f", toSec(result.e2e_time)),
                      strFormat("%.1f", result.total_cpu_seconds),
                      strFormat("%.2f", result.avg_occupancy),
                      strFormat("%.0f%%",
                                100.0 * analysis.fractionWaitsOver(
                                            100 * kMillisecond))});
        points.push_back({workers, toSec(result.e2e_time)});
    }
    std::printf("%s", table.render().c_str());

    // --- 4. recommendation.
    double best = points.front().epoch_s;
    for (const auto &point : points)
        best = std::min(best, point.epoch_s);
    int recommended = points.back().workers;
    for (const auto &point : points) {
        if (point.epoch_s <= best * 1.05) {
            recommended = point.workers;
            break;
        }
    }
    std::printf("\nrecommendation: %d workers reaches within 5%% of the "
                "best epoch time (%.1f s); beyond that you pay CPU "
                "seconds for nothing (Takeaway 5).\n",
                recommended, best);
    return 0;
}
