/**
 * @file
 * The full LotusMap workflow (paper §IV): map each preprocessing
 * operation to the native functions it invokes via isolation runs
 * under the sampling driver, collect an end-to-end hardware profile,
 * and split the per-function counters back onto operations using
 * LotusTrace time weights — ending with the per-op hardware view of
 * Fig. 6(e)-(h).
 *
 * Uses the real perf_event PMU when the kernel allows it and falls
 * back to the deterministic simulated PMU otherwise (the common case
 * in containers).
 */

#include <cstdio>

#include "common/files.h"
#include "core/lotusmap/isolation.h"
#include "core/lotusmap/mapper.h"
#include "core/lotusmap/splitter.h"
#include "core/lotustrace/analysis.h"
#include "dataflow/data_loader.h"
#include "hwcount/perf_backend.h"
#include "hwcount/thread_counters.h"
#include "image/codec/codec.h"
#include "image/geometry.h"
#include "image/resample.h"
#include "image/synth.h"
#include "tensor/ops.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

int
main()
{
    using namespace lotus;

    // Which PMU feeds attribution? The registry resolves LOTUS_PMU
    // and probes perf_event_open; workers attach themselves once the
    // DataLoader below spins up.
    auto &counters = hwcount::ThreadCounterRegistry::instance();
    counters.setEnabled(true);
    if (counters.resolvedBackend() == hwcount::PmuBackend::kPerf) {
        std::printf("real per-thread PMU counters via perf_event "
                    "(LOTUS_PMU=sim forces the model).\n");
    } else {
        std::printf("perf_event unavailable here (%s); using the "
                    "simulated PMU (DESIGN.md §12).\n",
                    counters.fallbackReason().c_str());
    }

    // --- Phase 1: build the mapping once (the paper's "preparatory
    // step"), one isolation profile per operation.
    Rng rng(2025);
    const image::Image sample_img =
        image::synthesize(rng, 320, 320, image::SynthOptions{0.6, 4});
    const std::string sample_blob = image::codec::encode(sample_img);

    core::lotusmap::IsolationConfig iso;
    iso.runs = 15;
    iso.warmup_runs = 2;
    iso.sleep_gap = kMillisecond;
    iso.sampling.interval = kMillisecond; // uProf-like
    iso.sampling.seed = 7;
    core::lotusmap::IsolationRunner runner(iso);

    core::lotusmap::LotusMapper mapper;
    mapper.addProfile(runner.profileOp(
        "Loader", [&] { image::codec::decode(sample_blob); }));
    mapper.addProfile(runner.profileOp("RandomResizedCrop", [&] {
        image::resize(image::crop(sample_img,
                                  image::Rect{16, 16, 280, 280}),
                      64, 64);
    }));
    mapper.addProfile(runner.profileOp("RandomHorizontalFlip", [&] {
        image::flipHorizontal(sample_img);
    }));
    mapper.addProfile(runner.profileOp("ToTensor", [&] {
        tensor::castU8ToF32(
            tensor::hwcToChw(sample_img.toTensorHwc()));
    }));

    std::printf("\n== operation -> native-function mapping (Table I "
                "style) ==\n%s", mapper.renderTable().c_str());
    writeFile("mapping_funcs.json", mapper.toJson());
    std::printf("wrote mapping_funcs.json\n");

    // --- Phase 2: an instrumented end-to-end run: LotusTrace gives
    // the per-op time weights, the registry accumulates per-kernel
    // work (what VTune would report per C/C++ function).
    hwcount::KernelRegistry::instance().reset();
    workloads::ImageNetConfig data;
    data.num_images = 32;
    data.median_width = 128;
    auto workload = workloads::makeImageClassification(
        workloads::buildImageNetStore(data), 64);
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 2;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    while (loader.next().has_value()) {
    }

    core::lotustrace::TraceAnalysis analysis(logger.records());
    const auto op_seconds = analysis.cpuSecondsByOp();
    const auto snapshot = hwcount::KernelRegistry::instance().snapshot();
    // Measured per-kernel counters when any worker kept a live perf
    // group; the identically shaped cost-model fallback otherwise.
    const auto pmu_snap = counters.snapshot(0.1);
    const auto &per_kernel = pmu_snap.per_kernel;
    std::printf("counter source: %s\n", pmu_snap.source.c_str());

    std::printf("\n== end-to-end profile: %zu native functions with "
                "samples (the \"300+ candidates\" problem) ==\n",
                snapshot.hotKernels().size());

    // --- Phase 3: attribute counters per operation.
    const auto attribution =
        core::lotusmap::splitCounters(mapper, per_kernel, op_seconds);
    std::printf("\n== per-operation hardware view (Fig. 6(e-h) style) "
                "==\n");
    std::printf("%-22s %12s %14s %10s %10s\n", "op", "cycles (M)",
                "instr (M)", "fe-bound", "dram-bound");
    for (const auto &[op, counters] : attribution.per_op) {
        std::printf("%-22s %12.1f %14.1f %9.1f%% %9.1f%%\n", op.c_str(),
                    static_cast<double>(counters.cycles) / 1e6,
                    static_cast<double>(counters.instructions) / 1e6,
                    100.0 * counters.frontendBoundFraction(),
                    100.0 * counters.dramBoundFraction());
    }
    std::printf("\nunattributed (filtered as unrelated to preprocessing): "
                "%.1f M cycles\n",
                static_cast<double>(attribution.unattributed.cycles) /
                    1e6);
    return 0;
}
