/**
 * @file
 * Quickstart: declare a preprocessing pipeline, load it through the
 * asynchronous DataLoader with LotusTrace enabled, and look at what
 * the trace tells you — the C++ equivalent of the paper's Listing 1.
 *
 *   ./quickstart            # prints per-op stats and batch metrics
 *
 * Outputs quickstart.lotustrace (the raw log) and
 * quickstart.trace.json (open in chrome://tracing).
 */

#include <cstdio>

#include "analysis/stats.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "dataflow/data_loader.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"
#include "workloads/synthetic.h"

int
main()
{
    using namespace lotus;

    // 1. A dataset of encoded images (stand-in for an ImageFolder of
    //    JPEGs; here: synthetic LJPG blobs).
    workloads::ImageNetConfig data;
    data.num_images = 32;
    data.median_width = 96;
    auto store = workloads::buildImageNetStore(data);

    // 2. Declare the transform chain, exactly like
    //    torchvision.transforms.Compose in the paper's Listing 1.
    std::vector<pipeline::TransformPtr> transforms;
    pipeline::RandomResizedCrop::Params rrc;
    rrc.size = 48;
    transforms.push_back(
        std::make_unique<pipeline::RandomResizedCrop>(rrc));
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    transforms.push_back(std::make_unique<pipeline::Normalize>(
        std::vector<float>{0.485f, 0.456f, 0.406f},
        std::vector<float>{0.229f, 0.224f, 0.225f}));

    auto dataset = std::make_shared<pipeline::ImageFolderDataset>(
        store, std::make_shared<pipeline::Compose>(std::move(transforms)));

    // 3. Attach LotusTrace by passing a logger — the only change an
    //    instrumented run needs (paper §III-B: "users enable profiling
    //    by specifying a log file").
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 2;
    options.shuffle = true;
    options.seed = 42;
    options.logger = &logger;
    dataflow::DataLoader loader(
        dataset, std::make_shared<pipeline::StackCollate>(), options);

    // 4. Consume the epoch as a training loop would.
    std::int64_t batches = 0;
    while (auto batch = loader.next()) {
        ++batches;
        std::printf("batch %lld: %s, first label %lld\n",
                    static_cast<long long>(batch->batch_id),
                    batch->data.description().c_str(),
                    static_cast<long long>(batch->labels.front()));
    }

    // 5. What LotusTrace saw.
    core::lotustrace::TraceAnalysis analysis(logger.records());
    std::printf("\n%lld batches; per-op elapsed time per image:\n",
                static_cast<long long>(batches));
    for (const auto &op : analysis.opStats()) {
        std::printf("  %-22s avg %6.2f ms   P90 %6.2f ms   (%llu calls)\n",
                    op.name.c_str(), op.summary_ms.mean, op.summary_ms.p90,
                    static_cast<unsigned long long>(op.summary_ms.count));
    }
    std::printf("\nbatch metrics only LotusTrace can report (Table IV):\n");
    std::printf("  mean preprocess/batch: %.1f ms\n",
                analysis::summarize(analysis.perBatchPreprocessMs()).mean);
    std::printf("  mean main-process wait: %.1f ms\n",
                analysis::summarize(analysis.waitTimesMs()).mean);
    std::printf("  mean batch delay: %.1f ms\n",
                analysis::summarize(analysis.delayTimesMs()).mean);
    std::printf("  out-of-order arrivals: %.0f%%\n",
                100.0 * analysis.outOfOrderFraction());

    logger.writeTo("quickstart.lotustrace");
    trace::ChromeTraceBuilder builder;
    core::lotustrace::augmentTrace(builder, logger.records(), {});
    builder.writeTo("quickstart.trace.json");
    std::printf("\nwrote quickstart.lotustrace and quickstart.trace.json "
                "(open in chrome://tracing)\n");
    return 0;
}
