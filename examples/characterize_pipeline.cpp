/**
 * @file
 * Characterize a full training job the way §V does: run an
 * instrumented epoch with a modelled accelerator, diagnose whether it
 * is preprocessing-bound or GPU-bound from the wait/delay metrics,
 * and emit both coarse and fine (per-op) Chrome traces.
 *
 *   ./characterize_pipeline [ic|is|od]   (default: ic)
 */

#include <cstdio>
#include <cstring>

#include "analysis/stats.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "dataflow/data_loader.h"
#include "sim/training_loop.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace {

struct Scenario
{
    std::string name;
    lotus::workloads::Workload workload;
    int batch_size;
    int workers;
    lotus::TimeNs gpu_per_sample;
};

Scenario
makeScenario(const std::string &which)
{
    using namespace lotus;
    if (which == "is") {
        workloads::Kits19Config config;
        config.num_volumes = 10;
        config.median_extent = 48;
        return {"image segmentation (GPU-bound, Fig. 2b)",
                workloads::makeImageSegmentation(
                    workloads::buildKits19Store(config), 32),
                2, 4, 50 * kMillisecond};
    }
    if (which == "od") {
        workloads::CocoConfig config;
        config.num_images = 16;
        config.median_width = 160;
        return {"object detection (GPU-bound, Fig. 2c)",
                workloads::makeObjectDetection(
                    workloads::buildCocoStore(config), 96, 192, 32),
                2, 4, 25 * kMillisecond};
    }
    workloads::ImageNetConfig config;
    config.num_images = 64;
    config.median_width = 128;
    return {"image classification (preprocessing-bound, Fig. 2a)",
            workloads::makeImageClassification(
                workloads::buildImageNetStore(config), 64),
            8, 2, 100 * kMicrosecond};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lotus;
    const std::string which = argc > 1 ? argv[1] : "ic";
    Scenario scenario = makeScenario(which);
    std::printf("scenario: %s\n", scenario.name.c_str());

    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = scenario.batch_size;
    options.num_workers = scenario.workers;
    options.logger = &logger;
    dataflow::DataLoader loader(scenario.workload.dataset,
                                scenario.workload.collate, options);
    sim::GpuConfig gpu_config;
    gpu_config.time_per_sample = scenario.gpu_per_sample;
    gpu_config.logger = &logger;
    sim::GpuModel gpu(gpu_config);
    sim::TrainingLoop trainer(loader, gpu);
    const auto stats = trainer.runEpoch();

    core::lotustrace::TraceAnalysis analysis(logger.records());
    std::printf("\nepoch: %lld batches, %lld samples, %.0f ms wall\n",
                static_cast<long long>(stats.batches),
                static_cast<long long>(stats.samples),
                toMs(stats.wall_time));

    double wait_sum = 0.0, delay_sum = 0.0;
    for (const double w : analysis.waitTimesMs())
        wait_sum += w;
    for (const double d : analysis.delayTimesMs())
        delay_sum += d;
    std::printf("main-process wait total: %.1f ms | batch delay total: "
                "%.1f ms | gpu max: %.1f ms\n",
                wait_sum, delay_sum, toMs(analysis.maxGpuTime()));
    std::printf("diagnosis: %s\n",
                wait_sum > delay_sum
                    ? "PREPROCESSING-BOUND — add loader workers or move "
                      "work offline (Takeaway 2)"
                    : "GPU-BOUND — preprocessing is ahead; batches queue "
                      "on the shared data queue");

    std::printf("\nper-batch preprocessing time: mean %.1f ms, stddev "
                "%.1f%%, IQR %.1f ms (Takeaway 3's variance view)\n",
                analysis::summarize(analysis.perBatchPreprocessMs()).mean,
                100.0 *
                    analysis::summarize(analysis.perBatchPreprocessMs())
                        .cv(),
                analysis::summarize(analysis.perBatchPreprocessMs()).iqr());
    std::printf("out-of-order arrivals: %.0f%% of batches (Takeaway 4)\n",
                100.0 * analysis.outOfOrderFraction());

    const std::string coarse = "characterize_" + which + "_coarse.json";
    const std::string fine = "characterize_" + which + "_fine.json";
    {
        trace::ChromeTraceBuilder builder;
        core::lotustrace::augmentTrace(builder, logger.records(), {});
        builder.writeTo(coarse);
    }
    {
        core::lotustrace::VisualizeOptions viz;
        viz.per_op = true;
        trace::ChromeTraceBuilder builder;
        core::lotustrace::augmentTrace(builder, logger.records(), viz);
        builder.writeTo(fine);
    }
    std::printf("\nwrote %s (batch level) and %s (batch + per-op) for "
                "chrome://tracing\n",
                coarse.c_str(), fine.c_str());
    return 0;
}
