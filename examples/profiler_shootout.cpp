/**
 * @file
 * Side-by-side profiler comparison on one pipeline (a compact §VI):
 * run the same instrumented epoch under each profiler model, print
 * what each reports — and what it cannot.
 */

#include <cstdio>
#include <memory>

#include "analysis/stats.h"
#include "core/lotustrace/analysis.h"
#include "dataflow/data_loader.h"
#include "hwcount/registry.h"
#include "profilers/presets.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace {

lotus::TimeNs
runUnder(const lotus::workloads::Workload &workload,
         lotus::profilers::Profiler &profiler,
         lotus::trace::TraceLogger &logger)
{
    using namespace lotus;
    profiler.attach(logger);
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 2;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    const auto &clock = SteadyClock::instance();
    profiler.start();
    const TimeNs start = clock.now();
    while (loader.next().has_value()) {
    }
    const TimeNs elapsed = clock.now() - start;
    profiler.stop();
    return elapsed;
}

} // namespace

int
main()
{
    using namespace lotus;
    workloads::ImageNetConfig data;
    data.num_images = 48;
    data.median_width = 128;
    auto workload = workloads::makeImageClassification(
        workloads::buildImageNetStore(data), 64);

    std::vector<std::unique_ptr<profilers::Profiler>> all;
    all.push_back(profilers::makeLotus());
    all.push_back(profilers::makePySpyLike());
    all.push_back(profilers::makeAustinLike());
    all.push_back(profilers::makeScaleneLike());
    all.push_back(profilers::makeTorchProfilerLike());

    for (auto &profiler : all) {
        hwcount::KernelRegistry::instance().reset();
        trace::TraceLogger logger;
        const TimeNs elapsed = runUnder(workload, *profiler, logger);

        std::printf("\n=== %s ===\n", profiler->name().c_str());
        std::printf("epoch wall time %.0f ms; log storage %s\n",
                    toMs(elapsed),
                    formatBytes(profiler->logStorageBytes()).c_str());

        const auto caps = profiler->capabilities();
        const auto seconds = profiler->perOpEpochSeconds();
        if (caps.epoch_ops && !seconds.empty()) {
            std::printf("per-op epoch seconds as this profiler sees "
                        "them:\n");
            for (const auto &[op, s] : seconds)
                std::printf("  %-22s %.3f s\n", op.c_str(), s);
        } else {
            std::printf("per-op epoch times: NOT AVAILABLE (frames "
                        "unlabelled)\n");
        }
        if (caps.per_batch && caps.wait_time && caps.delay_time) {
            core::lotustrace::TraceAnalysis analysis(logger.records());
            std::printf(
                "batch-level view: %zu batches, mean preprocess %.1f ms, "
                "mean wait %.1f ms, mean delay %.1f ms, ooo %.0f%%\n",
                analysis.batches().size(),
                analysis::summarize(analysis.perBatchPreprocessMs()).mean,
                analysis::summarize(analysis.waitTimesMs()).mean,
                analysis::summarize(analysis.delayTimesMs()).mean,
                100.0 * analysis.outOfOrderFraction());
        } else {
            std::printf("batch-level view: NOT AVAILABLE (no batch "
                        "markers / no worker visibility)\n");
        }
    }
    std::printf("\nOnly Lotus sees the asynchronous main<->worker data "
                "flow; samplers miss sub-interval ops entirely; the "
                "framework tracer records unlabelled native events for "
                "the main process only (Table IV).\n");
    return 0;
}
