/**
 * @file
 * Figure 4: distribution of per-batch preprocessing time across
 * batch sizes {128, 256, 512, 1024} x GPUs {1..4} (workers = GPUs),
 * on the modelled 32-core machine. Shape targets: per-config stddev
 * in the ~5-11% of mean band, and IQR growing several-fold from
 * b=128 to b=1024 (paper: up to 6.9x).
 */

#include <cstdio>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "sim/loader_sim.h"

int
main()
{
    using namespace lotus;
    bench::printHeader(
        "Per-batch preprocessing time distribution",
        "Figure 4 (b in {128..1024} x g in {1..4}) + Takeaway 3");

    analysis::TextTable table({"batch", "gpus/workers", "mean ms",
                               "stddev %", "IQR ms", "P90 ms", "batches"});
    double iqr_b128_sum = 0.0, iqr_b1024_sum = 0.0;
    double min_cv = 1e9, max_cv = 0.0;

    for (const int batch_size : {128, 256, 512, 1024}) {
        for (int gpus = 1; gpus <= 4; ++gpus) {
            sim::LoaderSimConfig config;
            config.model = sim::ServiceModel::imageClassification();
            config.batch_size = batch_size;
            config.num_workers = gpus;
            config.num_gpus = gpus;
            config.num_batches = 40;
            config.cores = 32;
            config.gpu_time_per_sample = 550 * kMicrosecond;
            config.seed =
                static_cast<std::uint64_t>(batch_size * 10 + gpus);
            config.log_ops = false;
            const auto result = sim::LoaderSim(config).run();

            core::lotustrace::TraceAnalysis analysis(result.records);
            const auto summary =
                analysis::summarize(analysis.perBatchPreprocessMs());
            table.addRow({strFormat("%d", batch_size),
                          strFormat("%d", gpus),
                          bench::ms(summary.mean),
                          strFormat("%.2f", 100.0 * summary.cv()),
                          bench::ms(summary.iqr()),
                          bench::ms(summary.p90),
                          strFormat("%llu",
                                    static_cast<unsigned long long>(
                                        summary.count))});
            if (batch_size == 128)
                iqr_b128_sum += summary.iqr();
            if (batch_size == 1024)
                iqr_b1024_sum += summary.iqr();
            min_cv = std::min(min_cv, 100.0 * summary.cv());
            max_cv = std::max(max_cv, 100.0 * summary.cv());
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nShape checks:\n");
    std::printf(" - per-config stddev spans %.2f%% .. %.2f%% of the mean "
                "(paper: 5.48%% .. 10.73%%)\n",
                min_cv, max_cv);
    std::printf(" - IQR grows %.1fx from b=128 to b=1024 (paper: up to "
                "6.9x)\n",
                iqr_b1024_sum / iqr_b128_sum);
    std::printf(" - variance driver: heavy-tailed per-image Loader times "
                "(ImageNet file-size spread) + randomized transforms\n");
    return 0;
}
