/**
 * @file
 * Table II: per-image elapsed time per preprocessing operation for
 * the IC / IS / OD pipelines — Avg, P90, %<10 ms, %<100 µs.
 *
 * Runs the real instrumented pipelines on sandbox-scaled synthetic
 * datasets; the distributional shape (which ops dominate, which are
 * sub-10 ms / sub-100 µs, the P90/avg spreads of RBC and Loader) is
 * the reproduction target, not the absolute CloudLab milliseconds.
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "dataflow/data_loader.h"
#include "trace/logger.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

void
runPipeline(const std::string &name, const workloads::Workload &workload,
            int batch_size, int workers, int epochs,
            const std::string &paper_note)
{
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = batch_size;
    options.num_workers = workers;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        loader.startEpoch();
        while (loader.next().has_value()) {
        }
    }

    core::lotustrace::TraceAnalysis analysis(logger.records());
    bench::printSection(
        strFormat("%s  (batch %d, %d loader worker%s)", name.c_str(),
                  batch_size, workers, workers == 1 ? "" : "s"));
    std::printf("paper reference (ms): %s\n", paper_note.c_str());

    analysis::TextTable table(
        {"op", "avg ms", "P90 ms", "<10ms", "<100us", "count"});
    for (const auto &op : analysis.opStats()) {
        table.addRow({op.name, bench::ms(op.summary_ms.mean),
                      bench::ms(op.summary_ms.p90),
                      bench::pct(op.frac_below_10ms),
                      bench::pct(op.frac_below_100us),
                      strFormat("%llu", static_cast<unsigned long long>(
                                            op.summary_ms.count))});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader("Per-op elapsed time per image",
                       "Table II (IC / IS / OD, avg + P90 + <10ms + <100us)");

    {
        workloads::ImageNetConfig config;
        config.num_images = 48;
        config.median_width = 160;
        auto workload = workloads::makeImageClassification(
            workloads::buildImageNetStore(config), 64);
        runPipeline("Image Classification (IC)", workload, 16, 1, 2,
                    "Loader 4.76 | RRC 1.11 | RHF 0.06 | TT 0.34 | "
                    "Norm 0.21 | C(128) 49.76");
    }
    {
        workloads::Kits19Config config;
        config.num_volumes = 10;
        config.median_extent = 72;
        auto workload = workloads::makeImageSegmentation(
            workloads::buildKits19Store(config), 48);
        runPipeline("Image Segmentation (IS)", workload, 2, 2, 3,
                    "Loader 72.03 | RBC 91.10 (P90 298!) | RF 4.39 | "
                    "Cast 2.16 | RBA 0.78 | GN 6.46 | C(2) 14.24");
    }
    {
        workloads::CocoConfig config;
        config.num_images = 16;
        config.median_width = 240;
        auto workload = workloads::makeObjectDetection(
            workloads::buildCocoStore(config), 160, 320, 32);
        runPipeline("Object Detection (OD)", workload, 2, 2, 2,
                    "Loader 9.59 | Resize 9.43 | RHF 0.52 | TT 6.75 | "
                    "Norm 7.80 | C(2) 7.39");
    }

    std::printf("\nShape checks (paper's Takeaway 1):\n"
                " - every pipeline has ops under 10 ms, some under 100 us\n"
                " - no single op dominates; Loader & crop/resize lead\n"
                " - IS RandBalancedCrop has a P90 far above its mean\n");
    return 0;
}
