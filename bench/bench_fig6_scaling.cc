/**
 * @file
 * Figure 6: varying the number of DataLoader workers (8..28, step 4)
 * at batch size 1024 on 4 GPUs, on the modelled 32-core machine:
 *
 *  (a) end-to-end epoch time (drops ~50%, diminishing beyond ~20)
 *  (b) per-op CPU seconds (rise with workers; paper: +53% total)
 *  (c) native-function hardware events (the VTune view LotusMap
 *      filters: relevant vs unrelated functions)
 *  (e) per-op CPU time, (f) uops delivered, (g) uop supply per cycle,
 *  (h) DRAM-bound stalls — all attributed per operation by combining
 *      the LotusMap mapping with LotusTrace time weights.
 *
 * Methodology mirrors the paper: one real calibration pass measures
 * the per-kernel work of the pipeline; the DES provides per-config
 * elapsed times and occupancy; the simulated PMU converts work +
 * occupancy into counters observable only per native function; and
 * only the LotusMap split makes them per-operation.
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotusmap/isolation.h"
#include "core/lotusmap/mapper.h"
#include "core/lotusmap/splitter.h"
#include "common/files.h"
#include "core/lotustrace/analysis.h"
#include "hwcount/cost_model.h"
#include "hwcount/csv_export.h"
#include "image/codec/codec.h"
#include "image/geometry.h"
#include "image/resample.h"
#include "image/synth.h"
#include "pipeline/sample.h"
#include "sim/loader_sim.h"
#include "tensor/ops.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

constexpr int kBatchSize = 1024;
constexpr std::int64_t kNumBatches = 48;
constexpr int kWorkerCounts[] = {8, 12, 16, 20, 24, 28};

struct ConfigResult
{
    int workers;
    double e2e_s;
    double total_cpu_s;
    double occupancy;
    std::map<std::string, double> op_seconds;
};

ConfigResult
runDes(int workers)
{
    sim::LoaderSimConfig config;
    config.model = sim::ServiceModel::imageClassification();
    config.batch_size = kBatchSize;
    config.num_workers = workers;
    config.num_gpus = 4;
    config.num_batches = kNumBatches;
    config.cores = 32;
    config.gpu_time_per_sample = 150 * kMicrosecond;
    config.seed = static_cast<std::uint64_t>(600 + workers);
    const auto result = sim::LoaderSim(config).run();

    core::lotustrace::TraceAnalysis analysis(result.records);
    ConfigResult out;
    out.workers = workers;
    out.e2e_s = toSec(result.e2e_time);
    out.total_cpu_s = result.total_cpu_seconds;
    out.occupancy = result.avg_occupancy;
    out.op_seconds = analysis.cpuSecondsByOp();
    return out;
}

/** Real calibration pass: per-kernel work for kSamples IC images. */
hwcount::RegistrySnapshot
calibrateKernels(int samples)
{
    workloads::ImageNetConfig data;
    data.num_images = samples;
    data.median_width = 128;
    auto store = workloads::buildImageNetStore(data);
    auto workload = workloads::makeImageClassification(store, 64);

    auto &registry = hwcount::KernelRegistry::instance();
    registry.reset();
    Rng rng(4);
    pipeline::PipelineContext ctx;
    ctx.rng = &rng;
    std::vector<pipeline::Sample> batch;
    for (std::int64_t i = 0; i < store->size(); ++i)
        batch.push_back(workload.dataset->get(i, ctx));
    workload.collate->collate(std::move(batch));
    return registry.snapshot();
}

core::lotusmap::LotusMapper
buildMapping()
{
    Rng rng(8);
    static const image::Image img =
        image::synthesize(rng, 384, 384, image::SynthOptions{0.6, 3});
    static const std::string blob = image::codec::encode(img);

    core::lotusmap::IsolationConfig iso;
    iso.runs = 12;
    iso.warmup_runs = 1;
    iso.sleep_gap = 500 * kMicrosecond;
    iso.sampling.interval = 50 * kMicrosecond;
    iso.sampling.seed = 31;
    core::lotusmap::IsolationRunner runner(iso);

    core::lotusmap::LotusMapper mapper;
    mapper.addProfile(
        runner.profileOp("Loader", [] { image::codec::decode(blob); }));
    mapper.addProfile(runner.profileOp("RandomResizedCrop", [] {
        const auto cropped = image::crop(img, image::Rect{8, 8, 320, 320});
        image::resize(cropped, 64, 64);
    }));
    mapper.addProfile(runner.profileOp("RandomHorizontalFlip", [] {
        image::flipHorizontal(img);
    }));
    static const tensor::Tensor hwc = img.toTensorHwc();
    mapper.addProfile(runner.profileOp("ToTensor", [] {
        tensor::castU8ToF32(tensor::hwcToChw(hwc));
    }));
    static const tensor::Tensor chw_f =
        tensor::castU8ToF32(tensor::hwcToChw(hwc));
    mapper.addProfile(runner.profileOp("Normalize", [] {
        tensor::Tensor copy = chw_f.clone();
        tensor::normalizeChannels(copy, {0.5f, 0.5f, 0.5f},
                                  {0.2f, 0.2f, 0.2f});
    }));
    mapper.addProfile(runner.profileOp("Collate", [] {
        std::vector<const tensor::Tensor *> items(8, &chw_f);
        tensor::stack(items);
    }));
    return mapper;
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader("DataLoader-worker scaling and per-op hardware view",
                       "Figure 6 (a,b,c,e,f,g,h) + Takeaway 5");

    // --- DES sweep (a), (b).
    std::vector<ConfigResult> sweep;
    for (const int workers : kWorkerCounts)
        sweep.push_back(runDes(workers));

    bench::printSection("(a) end-to-end epoch time & (b) CPU seconds");
    {
        analysis::TextTable table({"workers", "e2e s", "total CPU s",
                                   "occupancy", "Loader s", "RRC s",
                                   "ToTensor s"});
        for (const auto &r : sweep) {
            table.addRow(
                {strFormat("%d", r.workers), strFormat("%.1f", r.e2e_s),
                 strFormat("%.1f", r.total_cpu_s),
                 strFormat("%.2f", r.occupancy),
                 strFormat("%.1f", r.op_seconds.at("Loader")),
                 strFormat("%.1f", r.op_seconds.at("RandomResizedCrop")),
                 strFormat("%.1f", r.op_seconds.at("ToTensor"))});
        }
        std::printf("%s", table.render().c_str());
        std::printf(
            "shape: e2e drops %.0f%% from 8 to 28 workers (paper ~50%%); "
            "total CPU rises %.0f%% (paper +53%%); gains diminish beyond "
            "~20 workers\n",
            100.0 * (1.0 - sweep.back().e2e_s / sweep.front().e2e_s),
            100.0 * (sweep.back().total_cpu_s / sweep.front().total_cpu_s -
                     1.0));
    }

    // --- Calibration + mapping.
    const int calib_samples = 24;
    const auto snapshot = calibrateKernels(calib_samples);
    const auto mapper = buildMapping();
    const double scale =
        static_cast<double>(kNumBatches) * kBatchSize / calib_samples;

    bench::printSection("(c) native-function view at 20 workers "
                        "(what VTune reports; LotusMap filters)");
    {
        hwcount::SimulatedPmu pmu;
        const double occupancy = sweep[3].occupancy; // 20 workers
        analysis::TextTable table({"function", "library", "cycles (G)",
                                   "fe-bound", "mapped to"});
        int shown = 0;
        for (const auto kernel : snapshot.hotKernels()) {
            if (shown >= 12)
                break;
            const auto &info = hwcount::kernelInfo(kernel);
            const auto accum =
                snapshot.aggregate[static_cast<std::size_t>(kernel)];
            const auto counters = pmu.countersFor(
                kernel, accum.stats.scaled(scale), occupancy);
            const auto ops = mapper.opsForKernel(kernel);
            table.addRow(
                {info.name, info.library,
                 strFormat("%.2f",
                           static_cast<double>(counters.cycles) / 1e9),
                 bench::pct(counters.frontendBoundFraction()),
                 ops.empty() ? "<filtered: unrelated>"
                             : strJoin(ops, ", ")});
            ++shown;
        }
        std::printf("%s", table.render().c_str());

        // The appendix workflow's CSV artifact
        // (b1024_gpu4_dataloader20.csv analogue).
        std::vector<hwcount::CounterSet> per_kernel(hwcount::kNumKernels);
        for (std::size_t k = 1; k < hwcount::kNumKernels; ++k) {
            const auto &accum = snapshot.aggregate[k];
            if (accum.calls == 0)
                continue;
            per_kernel[k] =
                pmu.countersFor(static_cast<hwcount::KernelId>(k),
                                accum.stats.scaled(scale), occupancy);
        }
        writeFile("b1024_gpu4_dataloader20.csv",
                  hwcount::countersToCsv(per_kernel));
        std::printf("wrote b1024_gpu4_dataloader20.csv (per-function "
                    "counters, the appendix's VTune export)\n");
    }

    // --- (e)-(h): per-op attributed hardware metrics per config.
    bench::printSection("(e,f,g,h) per-op hardware metrics vs workers");
    {
        hwcount::SimulatedPmu pmu;
        analysis::TextTable table(
            {"workers", "op", "CPU s (e)", "uop supply G/s (f)",
             "uops/cycle (g)", "DRAM-bound (h)"});
        for (const auto &r : sweep) {
            std::vector<hwcount::CounterSet> per_kernel(
                hwcount::kNumKernels);
            for (std::size_t k = 1; k < hwcount::kNumKernels; ++k) {
                const auto &accum = snapshot.aggregate[k];
                if (accum.calls == 0)
                    continue;
                per_kernel[k] = pmu.countersFor(
                    static_cast<hwcount::KernelId>(k),
                    accum.stats.scaled(scale), r.occupancy);
            }
            const auto attribution = core::lotusmap::splitCounters(
                mapper, per_kernel, r.op_seconds);
            for (const auto *op :
                 {"Loader", "RandomResizedCrop", "ToTensor"}) {
                const auto &c = attribution.per_op.at(op);
                table.addRow(
                    {strFormat("%d", r.workers), op,
                     strFormat("%.1f", r.op_seconds.at(op)),
                     strFormat("%.2f",
                               static_cast<double>(c.uops_delivered) /
                                   1e9 / r.op_seconds.at(op)),
                     strFormat("%.2f", c.uopSupplyPerCycle()),
                     bench::pct(c.dramBoundFraction())});
            }
        }
        std::printf("%s", table.render().c_str());
        std::printf(
            "shape: per-op CPU time rises with workers (e); the uop "
            "supply to the backend thins (f,g) as front-end boundness "
            "grows; DRAM-serviced-load stall share falls (h) — the "
            "paper's Fig. 6 contention story.\n");
    }
    return 0;
}
