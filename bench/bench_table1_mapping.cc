/**
 * @file
 * Table I: mapping of Python-level preprocessing operations to the
 * native functions they invoke, obtained via LotusMap's isolation
 * methodology under an Intel-VTune-like (10 ms) and an AMD-uProf-like
 * (1 ms) sampling driver — plus the bucketing-quality ablation §V-D
 * discusses (what misattributing decode_mcu to RandomResizedCrop
 * would do to its CPU time).
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/lotusmap/evaluate.h"
#include "core/lotusmap/isolation.h"
#include "core/lotusmap/mapper.h"
#include "hwcount/registry.h"
#include "image/codec/codec.h"
#include "image/geometry.h"
#include "image/resample.h"
#include "image/synth.h"
#include "tensor/ops.h"

namespace lotus {
namespace {

using core::lotusmap::IsolationConfig;
using core::lotusmap::IsolationRunner;
using core::lotusmap::LotusMapper;

struct OpDef
{
    std::string name;
    std::function<void()> body;
};

std::vector<OpDef>
makeOps(const image::Image &img, const std::string &blob)
{
    return {
        {"Loader (Image.convert)",
         [&blob] { image::codec::decode(blob); }},
        {"RandomResizedCrop",
         [&img] {
             const auto cropped =
                 image::crop(img, image::Rect{32, 32, 384, 384});
             // The SIMD-tier resample kernels finish in a fraction of
             // the modelled 1 ms sampling interval; repeat the resize
             // so the op stays above the driver's capture floor and
             // the 100 us ground-truth cutoff on every dispatch tier.
             for (int i = 0; i < 4; ++i)
                 image::resize(cropped, 224, 224);
         }},
        {"ToTensor",
         [&img] {
             const auto hwc = img.toTensorHwc();
             const auto chw = tensor::hwcToChw(hwc);
             tensor::castU8ToF32(chw);
         }},
    };
}

LotusMapper
buildMapping(const std::vector<OpDef> &ops, TimeNs interval,
             std::uint64_t seed, int runs = 20)
{
    IsolationConfig iso;
    iso.runs = runs; // 20 = the paper's worked example
    iso.warmup_runs = 2;
    iso.sleep_gap = kMillisecond;
    iso.sampling.interval = interval;
    iso.sampling.seed = seed;
    IsolationRunner runner(iso);
    LotusMapper mapper;
    for (const auto &op : ops)
        mapper.addProfile(runner.profileOp(op.name, op.body));
    return mapper;
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader("Python-op -> native-function mapping (LotusMap)",
                       "Table I + the §V-D bucketing-quality example");

    Rng rng(2024);
    const image::Image img = image::synthesize(rng, 512, 512,
                                               image::SynthOptions{0.6, 4});
    const std::string blob = image::codec::encode(img);
    const auto ops = makeOps(img, blob);

    bench::printSection("Intel-like driver (10 ms user-mode sampling)");
    const auto intel = buildMapping(ops, 10 * kMillisecond, 21);
    std::printf("%s", intel.renderTable().c_str());

    bench::printSection("AMD-like driver (1 ms user-mode sampling)");
    const auto amd = buildMapping(ops, kMillisecond, 22);
    std::printf("%s", amd.renderTable().c_str());

    // Quality vs ground truth (a capability the paper's real setup
    // does not have; our reproduction can score the reconstruction).
    // Scored on a longer AMD-like campaign: the capture bound
    // C >= 1-(1-f/s)^n says n = 20 is no longer enough once the SIMD
    // tiers shrink every kernel's in-flight fraction f.
    bench::printSection("mapping quality vs ground truth (AMD-like)");
    const auto amd_long = buildMapping(ops, kMillisecond, 23, 60);
    auto &registry = hwcount::KernelRegistry::instance();
    registry.reset();
    registry.setGroundTruthEnabled(true);
    for (const auto &op : ops) {
        hwcount::OpTagScope scope(registry.registerOp(op.name));
        op.body();
    }
    const auto snapshot = registry.snapshot();
    registry.setGroundTruthEnabled(false);
    if (std::getenv("LOTUS_DEBUG_TRUTH")) {
        for (const auto &[key, accum] : snapshot.by_op)
            std::printf("  truth %-24s %-36s %8.1f us\n",
                        registry.opName(key.first).c_str(),
                        hwcount::kernelInfo(key.second).name,
                        accum.self_time / 1000.0);
    }
    for (const auto &quality : core::lotusmap::evaluateMapping(
             amd_long, snapshot, 100 * kMicrosecond)) {
        std::printf(
            "  %-28s precision %.2f  recall %.2f  time-weighted "
            "recall %.2f\n",
            quality.op.c_str(), quality.precision, quality.recall,
            quality.time_weighted_recall);
    }

    // Bucketing ablation: misassign decode_mcu to RandomResizedCrop
    // and report the CPU-time inflation (§V-D reports 30.21%).
    bench::printSection("bucketing ablation (decode_mcu misassigned)");
    TimeNs rrc_time = 0, decode_time = 0;
    for (const auto &[key, accum] : snapshot.by_op) {
        const auto op_name = registry.opName(key.first);
        if (op_name == "RandomResizedCrop")
            rrc_time += accum.self_time;
        if (key.second == hwcount::KernelId::DecodeMcu)
            decode_time += accum.self_time;
    }
    if (rrc_time > 0) {
        std::printf("  RandomResizedCrop CPU time would inflate by %.1f%% "
                    "(paper: 30.21%% on their trace)\n",
                    100.0 * static_cast<double>(decode_time) /
                        static_cast<double>(rrc_time));
    }
    return 0;
}
