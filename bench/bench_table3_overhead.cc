/**
 * @file
 * Table III: profiler overhead comparison — wall-time overhead versus
 * an unprofiled baseline, and log storage — for Lotus and the four
 * baseline profiler models, on the real instrumented IC pipeline.
 *
 * Shape targets: Lotus lowest wall overhead with modest logs; the
 * austin-like fine sampler's storage explodes (paper: 1000x Lotus);
 * the Scalene-like in-process tracer's wall overhead is large; the
 * framework tracer buffers its trace in memory (the paper's OOM
 * pressure point). In-pipeline interference costs of the baselines
 * are modelled constants (DESIGN.md §4); storage and Lotus's own
 * overhead are measured.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/table.h"
#include "bench_util.h"
#include "dataflow/data_loader.h"
#include "hwcount/registry.h"
#include "profilers/presets.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

/**
 * One epoch; @p logger may be null (the truly uninstrumented
 * baseline). When a profiler is given, the logger must outlive any
 * later queries on it.
 */
TimeNs
runEpoch(const workloads::Workload &workload,
         profilers::Profiler *profiler, trace::TraceLogger *logger)
{
    if (profiler) {
        LOTUS_ASSERT(logger != nullptr);
        profiler->attach(*logger);
    }
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 1;
    options.logger = logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    const auto &clock = SteadyClock::instance();
    if (profiler)
        profiler->start();
    const TimeNs start = clock.now();
    while (loader.next().has_value()) {
    }
    const TimeNs elapsed = clock.now() - start;
    if (profiler)
        profiler->stop();
    return elapsed;
}

TimeNs
medianOfThree(const std::function<TimeNs()> &run)
{
    std::vector<TimeNs> times;
    for (int i = 0; i < 3; ++i)
        times.push_back(run());
    std::sort(times.begin(), times.end());
    return times[1];
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader("Profiler overhead comparison",
                       "Table III (wall-time overhead + log storage)");

    workloads::ImageNetConfig config;
    config.num_images = 96;
    config.median_width = 128;
    auto store = workloads::buildImageNetStore(config);
    auto workload = workloads::makeImageClassification(store, 64);

    // Warm, then a truly uninstrumented baseline (no logger at all).
    runEpoch(workload, nullptr, nullptr);
    const TimeNs baseline = medianOfThree(
        [&] { return runEpoch(workload, nullptr, nullptr); });
    std::printf("\nbaseline (no profiler, no instrumentation): %.0f ms "
                "for one epoch of %lld images\n",
                toMs(baseline), static_cast<long long>(store->size()));

    struct Entry
    {
        std::function<std::unique_ptr<profilers::Profiler>()> make;
        const char *paper_overhead;
        const char *paper_storage;
    };
    const std::vector<Entry> entries = {
        {[] { return std::unique_ptr<profilers::Profiler>(
                  profilers::makeLotus()); },
         "~0% / ~2%", "299MB / 6.1MB"},
        {[] { return std::unique_ptr<profilers::Profiler>(
                  profilers::makeScaleneLike()); },
         "96.1%", "2.5MB"},
        {[] { return std::unique_ptr<profilers::Profiler>(
                  profilers::makePySpyLike()); },
         "8%", "97.8MB"},
        {[] { return std::unique_ptr<profilers::Profiler>(
                  profilers::makeAustinLike()); },
         "3.2%", "6.8GB"},
        {[] { return std::unique_ptr<profilers::Profiler>(
                  profilers::makeTorchProfilerLike()); },
         "86.4%", "30.3MB"},
    };

    analysis::TextTable table({"profiler", "wall time", "overhead",
                               "log storage", "paper overhead",
                               "paper storage"});
    for (const auto &entry : entries) {
        // Median of three fresh profiler instances; keep the last for
        // the storage column.
        std::unique_ptr<profilers::Profiler> last;
        std::unique_ptr<trace::TraceLogger> last_logger;
        const TimeNs elapsed = medianOfThree([&] {
            hwcount::KernelRegistry::instance().reset();
            last = entry.make();
            last_logger = std::make_unique<trace::TraceLogger>();
            return runEpoch(workload, last.get(), last_logger.get());
        });
        const double overhead =
            100.0 * (static_cast<double>(elapsed) / baseline - 1.0);
        table.addRow({last->name(), strFormat("%.0f ms", toMs(elapsed)),
                      strFormat("%+.1f%%", overhead),
                      formatBytes(last->logStorageBytes()),
                      entry.paper_overhead, entry.paper_storage});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(wall-time deltas under ~10%% are scheduler noise on "
                "this 2-core sandbox; the out-of-process samplers' true "
                "interference is within that band, as the paper's 3-8%% "
                "also suggests)\n");
    std::printf("\nShape checks: Lotus has the smallest wall overhead of "
                "the full-capability profilers; austin's raw-sample log "
                "dwarfs every other store; the Scalene-like in-process "
                "tracer pays per-op costs on the critical path; the "
                "framework tracer buffers its native-event trace in "
                "memory.\n");
    return 0;
}
