/**
 * @file
 * Figure 3: out-of-order arrival causing the main process to wait (or
 * a batch to sit ready) despite the desired batch being preprocessed.
 * A crafted two-worker scenario where worker 1's batch overtakes
 * worker 0's on the shared data queue; LotusTrace's batch-id tracking
 * is what makes the event identifiable (Takeaway 4).
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "sim/loader_sim.h"

int
main()
{
    using namespace lotus;
    bench::printHeader("Out-of-order arrival anatomy",
                       "Figure 3 + Takeaway 4");

    // Two workers, alternating slow/fast batches: every odd batch is
    // ready long before the main process can consume it.
    sim::LoaderSimConfig config;
    sim::ServiceModel model;
    model.per_sample_ops = {
        {"Work", 10 * kMillisecond, 0.0},
    };
    model.collate = {"Collate", 500 * kMicrosecond, 0.0};
    model.pin_per_sample = 2 * kMillisecond;
    config.model = model;
    config.batch_size = 4;
    config.num_workers = 2;
    config.num_batches = 8;
    config.cores = 32;
    config.gpu_time_per_sample = 12 * kMillisecond; // slowish consumer
    config.gpu_jitter = 0.0;
    config.seed = 5;
    // Make worker 0's batches slower via per-worker randomness: the
    // lognormal draw is deterministic at cv=0, so instead stagger by
    // giving batch 0 a head start through prefetch order — overtaking
    // then comes from the pin-and-poll serialization in the main
    // process, exactly the Fig. 3 mechanism.
    model.per_sample_ops[0].cv = 0.8;
    config.model = model;

    const auto result = sim::LoaderSim(config).run();
    core::lotustrace::TraceAnalysis analysis(result.records);

    analysis::TextTable table({"batch", "worker", "ready at (ms)",
                               "consumed at (ms)", "delay ms", "wait ms",
                               "out-of-order?"});
    int ooo_events = 0;
    for (const auto &batch : analysis.batches()) {
        if (batch.outOfOrder())
            ++ooo_events;
        table.addRow(
            {strFormat("%lld", static_cast<long long>(batch.batch_id)),
             strFormat("%u", batch.worker_pid),
             bench::ms(toMs(batch.preprocess_end)),
             bench::ms(toMs(batch.consumed_start)),
             bench::ms(toMs(batch.delayTime())),
             bench::ms(toMs(batch.wait_duration)),
             batch.outOfOrder() ? "YES (1us sentinel)" : "no"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%d of %zu batches arrived out of order; each sat "
                "pinned in the reorder cache while the main process "
                "polled for the in-order batch (the Fig. 3 wait-despite-"
                "ready anatomy).\n",
                ooo_events, analysis.batches().size());

    const std::string out = "fig3_ooo.trace.json";
    trace::ChromeTraceBuilder builder;
    core::lotustrace::augmentTrace(builder, result.records, {});
    builder.writeTo(out);
    std::printf("chrome trace: %s\n", out.c_str());
    return ooo_events > 0 ? 0 : 1;
}
