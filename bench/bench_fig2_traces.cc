/**
 * @file
 * Figure 2: coarse LotusTrace visualizations of the three pipelines,
 * showing the preprocessing-bound regime (IC: short delays, busy
 * parallel workers) versus the GPU-bound regimes (IS/OD: long delays,
 * preprocessed spans that look sequential). Writes Chrome-trace JSON
 * files and prints the wait/delay evidence behind each diagnosis.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "dataflow/data_loader.h"
#include "sim/training_loop.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

void
runScenario(const std::string &label, const workloads::Workload &workload,
            int batch_size, int workers, TimeNs gpu_per_sample,
            const std::string &out_file)
{
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = batch_size;
    options.num_workers = workers;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);

    sim::GpuConfig gpu_config;
    gpu_config.time_per_sample = gpu_per_sample;
    gpu_config.logger = &logger;
    sim::GpuModel gpu(gpu_config);
    sim::TrainingLoop trainer(loader, gpu);
    const auto stats = trainer.runEpoch();

    core::lotustrace::TraceAnalysis analysis(logger.records());
    double wait_sum = 0.0, delay_sum = 0.0;
    for (const double w : analysis.waitTimesMs())
        wait_sum += w;
    for (const double d : analysis.delayTimesMs())
        delay_sum += d;
    const double gpu_ms = toMs(analysis.maxGpuTime());

    bench::printSection(label);
    std::printf("  batches %lld  epoch %.0f ms  gpu max %.1f ms\n",
                static_cast<long long>(stats.batches),
                toMs(stats.wall_time), gpu_ms);
    std::printf("  total main-process wait %.1f ms | total batch delay "
                "%.1f ms\n",
                wait_sum, delay_sum);
    std::printf("  delays > gpu service: %s of batches  (out-of-order: "
                "%s)\n",
                bench::pct(analysis.fractionDelaysOver(
                               analysis.maxGpuTime()))
                    .c_str(),
                bench::pct(analysis.outOfOrderFraction()).c_str());
    const char *verdict =
        wait_sum > delay_sum ? "PREPROCESSING-BOUND (Fig. 2a regime)"
                             : "GPU-BOUND (Fig. 2b/c regime)";
    std::printf("  verdict: %s\n", verdict);

    core::lotustrace::VisualizeOptions viz;
    viz.per_op = false;
    trace::ChromeTraceBuilder builder;
    core::lotustrace::augmentTrace(builder, logger.records(), viz);
    const auto bytes = builder.writeTo(out_file);
    std::printf("  chrome trace: %s (%llu bytes) -> chrome://tracing\n",
                out_file.c_str(), static_cast<unsigned long long>(bytes));
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader(
        "Coarse data-flow traces and bottleneck diagnosis",
        "Figure 2 (IC preprocessing-bound; IS/OD GPU-bound) + Takeaway 2");

    {
        // IC: online decode + transform, fast GPU -> preprocessing is
        // the bottleneck (Fig. 2a). One worker keeps the regime
        // unambiguous: batches arrive serially, so the main process
        // always waits and batches never queue.
        workloads::ImageNetConfig config;
        config.num_images = 96;
        config.median_width = 128;
        auto workload = workloads::makeImageClassification(
            workloads::buildImageNetStore(config), 64);
        runScenario("IC: batch 8, 1 worker, fast GPU", workload, 8, 1,
                    100 * kMicrosecond, "fig2a_ic.trace.json");
    }
    {
        // IS: cheap preprocessing of pre-cropped volumes, slow model
        // (U-Net3D) -> GPU-bound (Fig. 2b).
        workloads::Kits19Config config;
        config.num_volumes = 12;
        config.median_extent = 48;
        auto workload = workloads::makeImageSegmentation(
            workloads::buildKits19Store(config), 32);
        runScenario("IS: batch 2, 4 workers, slow GPU", workload, 2, 4,
                    60 * kMillisecond, "fig2b_is.trace.json");
    }
    {
        // OD: moderate preprocessing, heavy Mask-R-CNN-like step ->
        // GPU-bound (Fig. 2c).
        workloads::CocoConfig config;
        config.num_images = 16;
        config.median_width = 160;
        auto workload = workloads::makeObjectDetection(
            workloads::buildCocoStore(config), 96, 192, 32);
        runScenario("OD: batch 2, 4 workers, slow GPU", workload, 2, 4,
                    25 * kMillisecond, "fig2c_od.trace.json");
    }

    std::printf("\nShape checks: IC verdict preprocessing-bound; IS/OD "
                "verdict GPU-bound with batch delays >> wait times "
                "(paper: 10.9 s / 1.64 s delays vs 750 ms / 250 ms GPU "
                "times).\n");
    return 0;
}
