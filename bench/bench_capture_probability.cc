/**
 * @file
 * §IV-B's capture-probability formula C >= 1 - (1 - f/s)^n: the
 * run-count table for representative function spans under VTune-like
 * (10 ms) and uProf-like (1 ms) sampling, the paper's worked example
 * (660 µs @ 10 ms, C=75%), and a Monte Carlo validation against the
 * actual sampling driver.
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "common/rng.h"
#include "hwcount/sampling_driver.h"

int
main()
{
    using namespace lotus;
    using hwcount::SamplingDriver;
    bench::printHeader("Short-function capture probability",
                       "SIV-B formula C >= 1-(1-f/s)^n + worked example");

    bench::printSection("runs needed for C = 75% / 95%");
    analysis::TextTable table({"function span", "driver interval",
                               "n for 75%", "n for 95%", "C at n=20"});
    const TimeNs spans[] = {100 * kMicrosecond, 660 * kMicrosecond,
                            2 * kMillisecond, 5 * kMillisecond};
    const TimeNs intervals[] = {10 * kMillisecond, kMillisecond};
    for (const TimeNs s : intervals) {
        for (const TimeNs f : spans) {
            if (f > s)
                continue;
            table.addRow(
                {strFormat("%.0f us", toUs(f)),
                 strFormat("%.0f ms", toMs(s)),
                 strFormat("%d", SamplingDriver::runsForCapture(f, s, 0.75)),
                 strFormat("%d", SamplingDriver::runsForCapture(f, s, 0.95)),
                 strFormat("%.3f",
                           SamplingDriver::captureProbability(f, s, 20))});
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\npaper's worked example: f=660us, s=10ms, C=75%% -> \"20 runs\".\n"
        "exact: C(20) = %.4f (just under 0.75; n=21 is the first n meeting "
        "it — the paper rounds).\n",
        SamplingDriver::captureProbability(660 * kMicrosecond,
                                           10 * kMillisecond, 20));

    bench::printSection("Monte Carlo validation against the driver");
    analysis::TextTable mc({"f", "n", "formula C", "observed C"});
    Rng seed_rng(99);
    for (const TimeNs f : {660 * kMicrosecond, 2 * kMillisecond}) {
        for (const int n : {5, 20}) {
            const TimeNs s = 10 * kMillisecond;
            int captured = 0;
            const int trials = 500;
            for (int trial = 0; trial < trials; ++trial) {
                bool caught = false;
                for (int run = 0; run < n && !caught; ++run) {
                    std::vector<hwcount::KernelInterval> timeline(1);
                    timeline[0].kernel = hwcount::KernelId::DecodeMcu;
                    timeline[0].tid = 1;
                    timeline[0].start = 3 * kMillisecond;
                    timeline[0].end = 3 * kMillisecond + f;
                    SamplingDriver driver({s, 0, seed_rng.nextU64() | 1});
                    for (const auto &sample : driver.sampleWindow(
                             timeline, 0, 20 * kMillisecond)) {
                        if (sample.kernel != hwcount::KernelId::Invalid)
                            caught = true;
                    }
                }
                if (caught)
                    ++captured;
            }
            mc.addRow({strFormat("%.0f us", toUs(f)), strFormat("%d", n),
                       strFormat("%.3f",
                                 SamplingDriver::captureProbability(f, s, n)),
                       strFormat("%.3f",
                                 static_cast<double>(captured) / trials)});
        }
    }
    std::printf("%s", mc.render().c_str());
    return 0;
}
