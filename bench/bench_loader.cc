/**
 * @file
 * DataLoader scheduling bench: round-robin vs work-stealing on a
 * heavy-tailed per-sample cost distribution (the straggler shape of
 * paper §IV: one slow sample stalls its whole statically-assigned
 * batch while peers idle).
 *
 * The per-sample cost is a seeded lognormal draw with a straggler
 * population (workloads::HeavyTailCostDataset), modelled as mostly a
 * blocking stall (I/O-like) plus a small CPU spin, so worker overlap
 * — and therefore the scheduling effect — is visible regardless of
 * host core count. Batch contents mix per-sample RNG draws, so the
 * cross-schedule bit-identity check exercises the FetchSeeding
 * contract end to end.
 *
 * Reports, per (schedule, workers in 1/2/4/8): epoch wall time, [T2]
 * wait p50/p99 (lotus_loader_wait_ns), and steal_efficiency
 * (steals / tasks). `--json` additionally writes BENCH_loader.json
 * (schema_version 3) so the perf trajectory is tracked across PRs.
 *
 * The second half benches the decoded-sample cache on an
 * ImageNet-like IC pipeline (modelled remote-store latency + real
 * LJPG decode + RandomResizedCrop suffix): cold vs warm epochs at an
 * oversized, a tight and a thrashing memory budget, plus the disk
 * materialization mode. Gates: warm epochs at the oversized budget
 * >= 5x over uncached, the thrashing budget within 5% of uncached,
 * and cold-vs-warm bit-identity.
 *
 * The third section is io-bound: the same IC chain behind a
 * RemoteStore modelling an 8 ms object-store round trip, with the
 * async read-ahead stage on vs off. The I/O threads coalesce the
 * sequential plan into multi-blob range GETs and overlap them with
 * decode, so read-ahead must win >= 2x epoch wall at 4 workers (the
 * acceptance gate), while batches stay bit-identical across
 * round-robin / work-stealing / sync, cold and cache-warm.
 *
 * The fourth section runs the self-driving tuner (src/tuner/) live:
 * starting from the worst config (1 worker, prefetch 1, round-robin,
 * no read-ahead), the controller reconfigures the loader at each
 * epoch boundary from the metrics diff alone. Gates: on both the
 * heavy-tailed and the io-bound scenario the converged epoch wall
 * must land within 10% of the best swept config, and the tuned run's
 * per-epoch batches must be bit-identical to a fixed loader running
 * the final config from the start (`--json` schema_version 4 adds
 * the tuner_convergence section).
 *
 * The fifth section benches the multi-tenant preprocessing service
 * (src/service/): one shared fleet, N LoaderClients. Gates: aggregate
 * samples/s must scale >= 2x from 1 to 4 clients (each client's
 * submission window underfills the fleet, so tenancy is what buys the
 * utilization back), a heavy-tailed noisy neighbor may not inflate a
 * light client's [T2] p99 by more than 2x (weighted-fair stealing),
 * and every client's epoch must stay bit-identical to a solo
 * DataLoader with the same config (`--json` schema_version 5 adds the
 * multi_tenant section).
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/stats.h"
#include "common/clock.h"
#include "common/files.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/read_ahead.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/remote_store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "service/loader_client.h"
#include "service/preproc_server.h"
#include "tuner/tuner.h"
#include "workloads/synthetic.h"

namespace {

using namespace lotus;
using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::Schedule;

constexpr std::int64_t kNumSamples = 512;
constexpr int kBatchSize = 16;
constexpr std::uint64_t kSeed = 42;

workloads::HeavyTailCostConfig
scenario()
{
    workloads::HeavyTailCostConfig config;
    config.median_cost = 100 * kMicrosecond;
    config.sigma = 0.8;
    config.straggler_fraction = 0.05;
    config.straggler_multiplier = 500.0; // 50 ms stalls
    config.busy_fraction = 0.05;
    config.seed = 17;
    return config;
}

DataLoaderOptions
loaderOptions(Schedule schedule, int workers)
{
    DataLoaderOptions options;
    options.batch_size = kBatchSize;
    options.num_workers = workers;
    options.shuffle = true;
    options.seed = kSeed;
    options.schedule = schedule;
    return options;
}

struct ConfigResult
{
    const char *schedule = "";
    int workers = 0;
    double wall_ms = 0.0;
    double wait_p50_ns = 0.0;
    double wait_p99_ns = 0.0;
    std::uint64_t steals = 0;
    std::uint64_t tasks = 0;
    double steal_efficiency = 0.0;
};

ConfigResult
runConfig(const std::shared_ptr<workloads::HeavyTailCostDataset> &dataset,
          Schedule schedule, int workers)
{
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();
    metrics::ScopedEnable enable;

    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      loaderOptions(schedule, workers));
    // Best-of-3 epochs: one epoch of a sleep-heavy workload is noisy
    // under OS scheduling, and the minimum is the standard estimator
    // for "what the schedule can do". The [T2] histogram and steal
    // counters accumulate across all three epochs.
    TimeNs wall = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        loader.startEpoch();
        const TimeNs start = SteadyClock::instance().now();
        while (loader.next().has_value()) {
        }
        const TimeNs elapsed = SteadyClock::instance().now() - start;
        if (wall == 0 || elapsed < wall)
            wall = elapsed;
    }

    ConfigResult result;
    result.schedule = schedule == Schedule::kWorkStealing ? "work_stealing"
                                                          : "round_robin";
    result.workers = workers;
    result.wall_ms = static_cast<double>(wall) / 1e6;
    auto *wait = registry.histogram("lotus_loader_wait_ns");
    result.wait_p50_ns = static_cast<double>(wait->quantile(0.50));
    result.wait_p99_ns = static_cast<double>(wait->quantile(0.99));
    for (int w = 0; w < workers; ++w) {
        result.steals += registry
                             .counter(metrics::labeled(
                                 dataflow::kStealsMetric, "worker",
                                 strFormat("%d", w)))
                             ->value();
    }
    result.tasks = registry.counter(dataflow::kTasksMetric)->value();
    result.steal_efficiency =
        result.tasks > 0 ? static_cast<double>(result.steals) /
                               static_cast<double>(result.tasks)
                         : 0.0;
    return result;
}

/** Every batch's payload + labels, concatenated in epoch order. */
std::vector<std::uint8_t>
epochContent(const std::shared_ptr<workloads::HeavyTailCostDataset> &dataset,
             Schedule schedule, int workers)
{
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      loaderOptions(schedule, workers));
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const std::uint8_t *raw = batch->data.raw();
        bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
        for (const std::int64_t label : batch->labels) {
            const auto *p = reinterpret_cast<const std::uint8_t *>(&label);
            bytes.insert(bytes.end(), p, p + sizeof(label));
        }
    }
    return bytes;
}

// --- Decoded-sample cache: cold vs warm epochs ------------------------

constexpr std::int64_t kCacheSamples = 96;
constexpr int kCacheBatch = 8;
constexpr int kCacheWorkers = 4;

workloads::ImageNetConfig
cacheScenario()
{
    workloads::ImageNetConfig config;
    config.num_images = kCacheSamples;
    config.median_width = 320.0;
    config.seed = 7;
    // Remote-dataset stand-in: a fixed per-request cost (object-store
    // GET latency) plus per-byte streaming latency on every blob
    // read. This is the epoch-repeated Loader work the cache elides.
    config.io_base = kMillisecond;
    config.io_ns_per_byte = 1.0;
    return config;
}

std::shared_ptr<pipeline::ImageFolderDataset>
cacheDataset()
{
    // The paper's IC chain: the stochastic crop leads, so the cached
    // prefix is exactly the Loader stage (store read + decode).
    pipeline::RandomResizedCrop::Params crop;
    crop.size = 96;
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::RandomResizedCrop>(crop));
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        workloads::buildImageNetStore(cacheScenario()),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1000);
}

DataLoaderOptions
cacheOptions(dataflow::CachePolicy policy, std::int64_t budget,
             const std::string &materialize_dir = {})
{
    DataLoaderOptions options;
    options.batch_size = kCacheBatch;
    options.num_workers = kCacheWorkers;
    options.shuffle = true;
    options.seed = kSeed;
    options.cache_policy = policy;
    options.cache_budget_bytes = budget;
    options.materialize_dir = materialize_dir;
    return options;
}

struct CacheResult
{
    std::string name;
    std::int64_t budget_bytes = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    /** Warm epoch vs the uncached per-epoch baseline. */
    double warm_speedup = 0.0;
    double warm_hit_rate = 0.0;
    std::uint64_t evictions = 0;
    std::uint64_t rejects = 0;
    std::uint64_t disk_spills = 0;
    std::uint64_t disk_hits = 0;
};

/** Per-epoch wall ms for @p epochs epochs of one loader. */
std::vector<double>
epochTimes(DataLoader &loader, int epochs)
{
    std::vector<double> times;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        loader.startEpoch();
        const TimeNs start = SteadyClock::instance().now();
        while (loader.next().has_value()) {
        }
        times.push_back(
            static_cast<double>(SteadyClock::instance().now() - start) /
            1e6);
    }
    return times;
}

CacheResult
runCacheConfig(const std::shared_ptr<pipeline::ImageFolderDataset> &dataset,
               const char *name, const DataLoaderOptions &options,
               double uncached_ms)
{
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    const auto times = epochTimes(loader, 3);

    CacheResult result;
    result.name = name;
    result.budget_bytes = options.cache_budget_bytes;
    result.cold_ms = times[0];
    result.warm_ms = std::min(times[1], times[2]);
    result.warm_speedup =
        result.warm_ms > 0 ? uncached_ms / result.warm_ms : 0.0;
    if (loader.cache() != nullptr) {
        const auto stats = loader.cache()->stats();
        // Every lookup resolves as exactly one of memory hit, disk
        // hit or miss; epoch 0's kCacheSamples lookups are all misses.
        const std::uint64_t served = stats.hits + stats.disk_hits;
        const std::uint64_t warm_lookups =
            served + stats.misses - kCacheSamples;
        result.warm_hit_rate =
            warm_lookups > 0 ? static_cast<double>(served) /
                                   static_cast<double>(warm_lookups)
                             : 0.0;
        result.evictions = stats.evictions;
        result.rejects = stats.rejects;
        result.disk_spills = stats.disk_spills;
        result.disk_hits = stats.disk_hits;
    }
    return result;
}

/** Batch payloads + labels for @p epochs epochs of one loader. */
std::vector<std::vector<std::uint8_t>>
cacheEpochContent(const std::shared_ptr<pipeline::ImageFolderDataset> &dataset,
                  const DataLoaderOptions &options, int epochs)
{
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    std::vector<std::vector<std::uint8_t>> out;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        loader.startEpoch();
        std::vector<std::uint8_t> bytes;
        while (auto batch = loader.next()) {
            const std::uint8_t *raw = batch->data.raw();
            bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
            for (const std::int64_t label : batch->labels) {
                const auto *p =
                    reinterpret_cast<const std::uint8_t *>(&label);
                bytes.insert(bytes.end(), p, p + sizeof(label));
            }
        }
        out.push_back(std::move(bytes));
    }
    return out;
}

// --- Io-bound: async read-ahead over a modeled remote store -----------

constexpr std::int64_t kIoSamples = 96;
constexpr int kIoBatch = 8;
constexpr int kIoWorkers = 4;
constexpr int kIoDepth = 32;
constexpr int kIoIoThreads = 2;
// 8 ms keeps the sync-read penalty comfortably above the single-core
// decode floor of the read-ahead run, so the >=2x gate is not judging
// scheduler noise.
constexpr TimeNs kIoRtt = 8 * kMillisecond;

workloads::ImageNetConfig
ioScenario()
{
    workloads::ImageNetConfig config;
    config.num_images = kIoSamples;
    config.median_width = 160.0;
    config.seed = 11;
    // The inner store is instant: every millisecond of I/O lives in
    // the RemoteStore round-trip model, which *sleeps* (a blocking
    // socket wait), so read-ahead can overlap it with decode even on
    // a single core.
    return config;
}

std::shared_ptr<pipeline::RemoteStore>
ioStore()
{
    pipeline::RemoteStoreOptions options;
    options.rtt = kIoRtt;
    return std::make_shared<pipeline::RemoteStore>(
        workloads::buildImageNetStore(ioScenario()), options);
}

std::shared_ptr<pipeline::ImageFolderDataset>
ioDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    pipeline::RandomResizedCrop::Params crop;
    crop.size = 64;
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::RandomResizedCrop>(crop));
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1000);
}

DataLoaderOptions
ioOptions(Schedule schedule, int workers, bool read_ahead,
          dataflow::CachePolicy policy = dataflow::CachePolicy::kNone)
{
    DataLoaderOptions options;
    options.batch_size = kIoBatch;
    options.num_workers = workers;
    options.shuffle = false; // sequential plan: ranges coalesce
    options.seed = kSeed;
    options.schedule = schedule;
    if (read_ahead) {
        options.read_ahead_depth = kIoDepth;
        options.io_threads = kIoIoThreads;
    }
    if (policy != dataflow::CachePolicy::kNone) {
        options.cache_policy = policy;
        options.cache_budget_bytes = std::int64_t{1} << 30;
    }
    return options;
}

struct IoResult
{
    bool read_ahead = false;
    double wall_ms = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t issued = 0;
    std::uint64_t round_trips = 0;
    std::uint64_t coalesced_reads = 0;
};

IoResult
runIoConfig(const std::shared_ptr<pipeline::RemoteStore> &store,
            const std::shared_ptr<pipeline::ImageFolderDataset> &dataset,
            bool read_ahead)
{
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();
    metrics::ScopedEnable enable;
    const std::uint64_t trips_before = store->roundTrips();
    const std::uint64_t coalesced_before = store->coalescedReads();

    DataLoader loader(
        dataset, std::make_shared<pipeline::StackCollate>(),
        ioOptions(Schedule::kRoundRobin, kIoWorkers, read_ahead));
    // Min-of-3: single-core hosts schedule the decode workers and I/O
    // threads noisily enough that min-of-2 wobbles around the gate.
    const auto times = epochTimes(loader, 3);

    IoResult result;
    result.read_ahead = read_ahead;
    result.wall_ms = *std::min_element(times.begin(), times.end());
    result.hits =
        registry.counter(dataflow::kReadAheadHitsMetric)->value();
    result.misses =
        registry.counter(dataflow::kReadAheadMissesMetric)->value();
    result.issued =
        registry.counter(dataflow::kReadAheadIssuedMetric)->value();
    result.round_trips = store->roundTrips() - trips_before;
    result.coalesced_reads = store->coalescedReads() - coalesced_before;
    return result;
}

struct IoReport
{
    IoResult off;
    IoResult on;
    double speedup = 0.0;
    bool speedup_gate = false; ///< read-ahead >= 2x epoch wall
    bool bit_identical = false;
};

// --- Self-driving tuner: live convergence from a bad start ------------

std::string
formatReconfig(const dataflow::LoaderReconfig &config)
{
    return strFormat(
        "%dw pf%d %s ra%d:%d", config.num_workers,
        config.prefetch_factor,
        config.schedule == Schedule::kWorkStealing ? "ws" : "rr",
        config.read_ahead_depth, config.io_threads);
}

struct TunerEpoch
{
    /** Config the epoch actually ran with. */
    std::string config;
    double wall_ms = 0.0;
    /** The controller's verdict at this epoch's end. */
    const char *bottleneck = "";
};

struct LiveTunerRun
{
    std::vector<TunerEpoch> epochs;
    dataflow::LoaderReconfig final_config;
    /** Per-epoch batch payloads+labels, for the bit-identity gate. */
    std::vector<std::vector<std::uint8_t>> contents;
};

/**
 * One epoch's batches, timed and captured. The capture memcpy is
 * noise next to the modelled stalls both scenarios are built from.
 */
std::vector<std::uint8_t>
timedEpoch(DataLoader &loader, double *wall_ms)
{
    loader.startEpoch();
    const TimeNs start = SteadyClock::instance().now();
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const std::uint8_t *raw = batch->data.raw();
        bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
        for (const std::int64_t label : batch->labels) {
            const auto *p = reinterpret_cast<const std::uint8_t *>(&label);
            bytes.insert(bytes.end(), p, p + sizeof(label));
        }
    }
    *wall_ms =
        static_cast<double>(SteadyClock::instance().now() - start) / 1e6;
    return bytes;
}

/**
 * Drive @p epochs epochs with the controller in the loop: each epoch
 * boundary diffs the registry snapshot and applies any reconfig.
 */
LiveTunerRun
runLiveTuner(const std::shared_ptr<const pipeline::Dataset> &dataset,
             const DataLoaderOptions &start,
             const tuner::TunerOptions &tuner_options, int epochs)
{
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();
    metrics::ScopedEnable enable;

    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      start);
    tuner::PipelineTuner controller(loader.currentConfig(),
                                    tuner_options);
    controller.onEpochEnd(registry.snapshot()); // baseline

    LiveTunerRun run;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        TunerEpoch record;
        record.config = formatReconfig(loader.currentConfig());
        run.contents.push_back(timedEpoch(loader, &record.wall_ms));
        const tuner::TunerDecision decision =
            controller.onEpochEnd(registry.snapshot());
        record.bottleneck = tuner::bottleneckName(decision.bottleneck);
        run.epochs.push_back(std::move(record));
        if (decision.changed)
            loader.reconfigure(decision.config);
    }
    run.final_config = loader.currentConfig();
    return run;
}

/** The same epochs from a loader fixed at @p config from the start. */
std::vector<std::vector<std::uint8_t>>
fixedRunContents(const std::shared_ptr<const pipeline::Dataset> &dataset,
                 DataLoaderOptions options,
                 const dataflow::LoaderReconfig &config, int epochs)
{
    options.num_workers = config.num_workers;
    options.prefetch_factor = config.prefetch_factor;
    options.schedule = config.schedule;
    options.read_ahead_depth = config.read_ahead_depth;
    options.io_threads = config.io_threads;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    std::vector<std::vector<std::uint8_t>> out;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        double wall_ms = 0.0;
        out.push_back(timedEpoch(loader, &wall_ms));
    }
    return out;
}

struct SweptConfig
{
    std::string config;
    double wall_ms = 0.0;
};

struct TunerScenarioReport
{
    std::vector<SweptConfig> swept;
    std::string best_config;
    double best_ms = 0.0;
    std::vector<TunerEpoch> epochs;
    std::string final_config;
    /** The final config measured with the sweep's own estimator (the
     *  swept wall when the config is in the grid), so the gate scores
     *  the controller's *selection* rather than one live epoch's OS
     *  scheduling noise. */
    double converged_ms = 0.0;
    bool gate = false; ///< converged <= 1.10x best swept
};

struct TunerReport
{
    TunerScenarioReport heavy;
    TunerScenarioReport io;
    bool bit_identical = false; ///< tuned run == fixed-final, both
};

double
sweptOrLiveWall(const TunerScenarioReport &report)
{
    for (const SweptConfig &swept : report.swept)
        if (swept.config == report.final_config)
            return swept.wall_ms;
    // Config off the swept grid: best post-convergence live epoch.
    return std::min(report.epochs[2].wall_ms, report.epochs[3].wall_ms);
}

// --- Multi-tenant service: one shared fleet, N clients ----------------

constexpr std::int64_t kMtSamples = 256;
constexpr int kMtBatch = 4;
// Deliberately larger than one client's submission window (batch 4 x
// prefetch 1 = 4 in-flight samples): a solo tenant underfills the
// fleet, so the 1 -> 4 client scaling gate measures what shared
// tenancy buys. The per-sample cost is mostly a blocking stall, so
// 16 fleet threads overlap fine on any host core count.
constexpr int kMtWorkers = 16;

workloads::HeavyTailCostConfig
mtUniformScenario()
{
    workloads::HeavyTailCostConfig config;
    config.median_cost = kMillisecond;
    config.sigma = 0.05;
    config.straggler_fraction = 0.0;
    config.busy_fraction = 0.02;
    config.seed = 23;
    return config;
}

workloads::HeavyTailCostConfig
mtLightScenario()
{
    auto config = mtUniformScenario();
    config.median_cost = 500 * kMicrosecond;
    config.seed = 29;
    return config;
}

workloads::HeavyTailCostConfig
mtHeavyScenario()
{
    // The noisy neighbor: 10% of samples are 100 ms stragglers.
    auto config = mtUniformScenario();
    config.median_cost = 5 * kMillisecond;
    config.sigma = 0.6;
    config.straggler_fraction = 0.10;
    config.straggler_multiplier = 20.0;
    config.seed = 37;
    return config;
}

service::ClientConfig
mtClientConfig(std::uint64_t seed)
{
    service::ClientConfig config;
    config.batch_size = kMtBatch;
    config.shuffle = true;
    config.seed = seed;
    config.prefetch_batches = 1;
    return config;
}

struct MtReport
{
    double solo_rate = 0.0;      ///< samples/s, 1 client
    double aggregate_rate = 0.0; ///< samples/s, 4 clients
    double scaling = 0.0;
    bool scaling_gate = false; ///< >= 2x aggregate at 4 clients
    double light_solo_p99_ns = 0.0;
    double light_noisy_p99_ns = 0.0;
    double p99_inflation = 0.0;
    bool isolation_gate = false; ///< noisy-neighbor p99 <= 2x solo
    bool bit_identical = false;  ///< every client == its solo loader
};

/** Best-of-3 concurrent epochs' aggregate samples/s for @p n clients
 *  sharing one fleet (every client drives its own epoch thread). */
double
mtAggregateRate(const std::shared_ptr<workloads::HeavyTailCostDataset>
                    &dataset,
                int n)
{
    service::PreprocServer server({.num_workers = kMtWorkers});
    std::vector<std::shared_ptr<service::LoaderClient>> clients;
    for (int i = 0; i < n; ++i)
        clients.push_back(
            server
                .connect(dataset,
                         std::make_shared<pipeline::StackCollate>(),
                         mtClientConfig(kSeed + static_cast<unsigned>(i)))
                .take());
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const TimeNs start = SteadyClock::instance().now();
        std::vector<std::thread> drivers;
        for (const auto &client : clients)
            drivers.emplace_back([&client] {
                client->startEpoch();
                while (client->next().has_value()) {
                }
            });
        for (auto &driver : drivers)
            driver.join();
        const double secs =
            static_cast<double>(SteadyClock::instance().now() - start) /
            1e9;
        const double rate =
            secs > 0 ? static_cast<double>(n * kMtSamples) / secs : 0.0;
        best = std::max(best, rate);
    }
    return best;
}

/** Every client of a 4-tenant run byte-compared against its own solo
 *  DataLoader (work-stealing, same seed). */
bool
mtBitIdentical(const std::shared_ptr<workloads::HeavyTailCostDataset>
                   &dataset)
{
    service::PreprocServer server({.num_workers = kMtWorkers});
    std::vector<std::shared_ptr<service::LoaderClient>> clients;
    for (int i = 0; i < 4; ++i)
        clients.push_back(
            server
                .connect(dataset,
                         std::make_shared<pipeline::StackCollate>(),
                         mtClientConfig(kSeed + static_cast<unsigned>(i)))
                .take());
    std::vector<std::vector<std::uint8_t>> got(clients.size());
    std::vector<std::thread> drivers;
    for (std::size_t i = 0; i < clients.size(); ++i)
        drivers.emplace_back([&, i] {
            std::vector<std::uint8_t> bytes;
            while (auto batch = clients[i]->next()) {
                const std::uint8_t *raw = batch->data.raw();
                bytes.insert(bytes.end(), raw,
                             raw + batch->data.byteSize());
                for (const std::int64_t label : batch->labels) {
                    const auto *p =
                        reinterpret_cast<const std::uint8_t *>(&label);
                    bytes.insert(bytes.end(), p, p + sizeof(label));
                }
            }
            got[i] = std::move(bytes);
        });
    for (auto &driver : drivers)
        driver.join();
    for (std::size_t i = 0; i < clients.size(); ++i) {
        DataLoaderOptions solo;
        solo.batch_size = kMtBatch;
        solo.num_workers = 2;
        solo.schedule = Schedule::kWorkStealing;
        solo.shuffle = true;
        solo.seed = kSeed + static_cast<unsigned>(i);
        DataLoader loader(dataset,
                          std::make_shared<pipeline::StackCollate>(),
                          solo);
        std::vector<std::uint8_t> expected;
        while (auto batch = loader.next()) {
            const std::uint8_t *raw = batch->data.raw();
            expected.insert(expected.end(), raw,
                            raw + batch->data.byteSize());
            for (const std::int64_t label : batch->labels) {
                const auto *p =
                    reinterpret_cast<const std::uint8_t *>(&label);
                expected.insert(expected.end(), p, p + sizeof(label));
            }
        }
        if (got[i] != expected)
            return false;
    }
    return true;
}

/** Light client's [T2] p99 over 3 epochs, optionally sharing the
 *  fleet with a continuously-replaying heavy-tailed neighbor. Waits
 *  are timed directly around next() (exact nearest-rank p99, not the
 *  metrics histogram's log-bucket upper bound — a one-bucket shift
 *  would swing the inflation ratio by ~2x) and the whole measurement
 *  is best-of-3, since the gate is a ratio of two tail estimates.
 *  The light tenant declares weight 4 — the weighted-fair share a
 *  latency-sensitive job would reserve (DESIGN.md §15). */
double
mtLightP99(const std::shared_ptr<workloads::HeavyTailCostDataset> &light,
           const std::shared_ptr<workloads::HeavyTailCostDataset> &heavy,
           bool with_neighbor)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        service::PreprocServer server({.num_workers = kMtWorkers});
        auto light_config = mtClientConfig(kSeed);
        light_config.weight = 4.0;
        auto light_client =
            server
                .connect(light,
                         std::make_shared<pipeline::StackCollate>(),
                         light_config)
                .take();

        std::atomic<bool> done{false};
        std::thread neighbor;
        std::shared_ptr<service::LoaderClient> heavy_client;
        if (with_neighbor) {
            heavy_client =
                server
                    .connect(heavy,
                             std::make_shared<pipeline::StackCollate>(),
                             mtClientConfig(kSeed + 101))
                    .take();
            neighbor = std::thread([&] {
                // Replay epochs until the light tenant finishes; the
                // abandoned tail drains server-side on disconnect.
                while (!done.load(std::memory_order_acquire)) {
                    heavy_client->startEpoch();
                    while (!done.load(std::memory_order_acquire) &&
                           heavy_client->next().has_value()) {
                    }
                }
            });
        }

        std::vector<double> waits;
        for (int epoch = 0; epoch < 3; ++epoch) {
            light_client->startEpoch();
            for (;;) {
                const TimeNs start = SteadyClock::instance().now();
                auto batch = light_client->next();
                if (!batch.has_value())
                    break;
                waits.push_back(static_cast<double>(
                    SteadyClock::instance().now() - start));
            }
        }
        done.store(true, std::memory_order_release);
        if (neighbor.joinable())
            neighbor.join();

        const double p99 = analysis::percentile(std::move(waits), 99.0);
        if (rep == 0 || p99 < best)
            best = p99;
    }
    return best;
}

MtReport
runMultiTenant()
{
    MtReport report;
    auto uniform = std::make_shared<workloads::HeavyTailCostDataset>(
        kMtSamples, mtUniformScenario());
    report.solo_rate = mtAggregateRate(uniform, 1);
    report.aggregate_rate = mtAggregateRate(uniform, 4);
    report.scaling = report.solo_rate > 0
                         ? report.aggregate_rate / report.solo_rate
                         : 0.0;
    report.scaling_gate = report.scaling >= 2.0;
    report.bit_identical = mtBitIdentical(uniform);

    auto light = std::make_shared<workloads::HeavyTailCostDataset>(
        kMtSamples, mtLightScenario());
    auto heavy = std::make_shared<workloads::HeavyTailCostDataset>(
        kMtSamples, mtHeavyScenario());
    report.light_solo_p99_ns = mtLightP99(light, heavy, false);
    report.light_noisy_p99_ns = mtLightP99(light, heavy, true);
    report.p99_inflation =
        report.light_solo_p99_ns > 0
            ? report.light_noisy_p99_ns / report.light_solo_p99_ns
            : 0.0;
    report.isolation_gate = report.p99_inflation <= 2.0;
    return report;
}

const ConfigResult *
find(const std::vector<ConfigResult> &results, const char *schedule,
     int workers)
{
    for (const auto &result : results) {
        if (std::strcmp(result.schedule, schedule) == 0 &&
            result.workers == workers)
            return &result;
    }
    return nullptr;
}

struct CacheReport
{
    std::vector<CacheResult> results;
    double uncached_ms = 0.0;
    bool bit_identical = false;
    bool oversized_gate = false; ///< warm >= 5x uncached
    bool thrashing_gate = false; ///< warm within 5% of uncached
};

void
writeTunerScenarioJson(std::FILE *out, const char *name,
                       const TunerScenarioReport &report, bool last)
{
    std::fprintf(out, "    \"%s\": {\n      \"swept\": [\n", name);
    for (std::size_t i = 0; i < report.swept.size(); ++i) {
        std::fprintf(out,
                     "        {\"config\": \"%s\", "
                     "\"epoch_wall_ms\": %.2f}%s\n",
                     report.swept[i].config.c_str(),
                     report.swept[i].wall_ms,
                     i + 1 < report.swept.size() ? "," : "");
    }
    std::fprintf(out,
                 "      ],\n"
                 "      \"best_swept_config\": \"%s\",\n"
                 "      \"best_swept_ms\": %.2f,\n"
                 "      \"epochs\": [\n",
                 report.best_config.c_str(), report.best_ms);
    for (std::size_t i = 0; i < report.epochs.size(); ++i) {
        std::fprintf(out,
                     "        {\"config\": \"%s\", "
                     "\"epoch_wall_ms\": %.2f, \"bottleneck\": "
                     "\"%s\"}%s\n",
                     report.epochs[i].config.c_str(),
                     report.epochs[i].wall_ms,
                     report.epochs[i].bottleneck,
                     i + 1 < report.epochs.size() ? "," : "");
    }
    std::fprintf(out,
                 "      ],\n"
                 "      \"final_config\": \"%s\",\n"
                 "      \"converged_epoch_ms\": %.2f,\n"
                 "      \"converged_within_10pct_gate\": %s\n"
                 "    }%s\n",
                 report.final_config.c_str(), report.converged_ms,
                 report.gate ? "true" : "false", last ? "" : ",");
}

int
writeJson(const char *path, const std::vector<ConfigResult> &results,
          bool deterministic, double wall_speedup, double p99_speedup,
          const CacheReport &cache, const IoReport &io,
          const TunerReport &tuner, const MtReport &mt)
{
    std::FILE *out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    const auto config = scenario();
    std::fprintf(out, "{\n  \"schema_version\": 5,\n");
    std::fprintf(out, "  \"bench\": \"bench_loader\",\n");
    std::fprintf(out,
                 "  \"scenario\": {\n"
                 "    \"num_samples\": %lld,\n"
                 "    \"batch_size\": %d,\n"
                 "    \"seed\": %llu,\n"
                 "    \"median_cost_us\": %.1f,\n"
                 "    \"sigma\": %.2f,\n"
                 "    \"straggler_fraction\": %.3f,\n"
                 "    \"straggler_multiplier\": %.1f,\n"
                 "    \"busy_fraction\": %.2f,\n"
                 "    \"cost_model\": \"lognormal + stragglers; "
                 "per-sample cost is %.0f%% CPU spin, rest blocking "
                 "stall\"\n"
                 "  },\n",
                 static_cast<long long>(kNumSamples), kBatchSize,
                 static_cast<unsigned long long>(kSeed),
                 static_cast<double>(config.median_cost) / 1e3,
                 config.sigma, config.straggler_fraction,
                 config.straggler_multiplier, config.busy_fraction,
                 config.busy_fraction * 100.0);
    std::fprintf(out, "  \"configs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(out,
                     "    {\"schedule\": \"%s\", \"num_workers\": %d, "
                     "\"epoch_wall_ms\": %.2f, \"t2_wait_p50_ns\": %.0f, "
                     "\"t2_wait_p99_ns\": %.0f, \"steals\": %llu, "
                     "\"tasks\": %llu, \"steal_efficiency\": %.4f}%s\n",
                     r.schedule, r.workers, r.wall_ms, r.wait_p50_ns,
                     r.wait_p99_ns,
                     static_cast<unsigned long long>(r.steals),
                     static_cast<unsigned long long>(r.tasks),
                     r.steal_efficiency,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"work_stealing_speedup_4_workers\": {\n"
                 "    \"epoch_wall\": %.2f,\n"
                 "    \"t2_wait_p99\": %.2f\n"
                 "  },\n",
                 wall_speedup, p99_speedup);
    std::fprintf(out, "  \"bit_identical_across_schedules\": %s,\n",
                 deterministic ? "true" : "false");

    const auto imagenet = cacheScenario();
    std::fprintf(out,
                 "  \"cache\": {\n"
                 "    \"scenario\": {\n"
                 "      \"num_samples\": %lld,\n"
                 "      \"batch_size\": %d,\n"
                 "      \"num_workers\": %d,\n"
                 "      \"median_width_px\": %.0f,\n"
                 "      \"io_base_us\": %.0f,\n"
                 "      \"io_ns_per_byte\": %.1f,\n"
                 "      \"pipeline\": \"LJPG decode -> "
                 "RandomResizedCrop(96) -> flip -> ToTensor; cached "
                 "prefix = Loader (read+decode)\"\n"
                 "    },\n"
                 "    \"uncached_epoch_ms\": %.2f,\n"
                 "    \"configs\": [\n",
                 static_cast<long long>(kCacheSamples), kCacheBatch,
                 kCacheWorkers, imagenet.median_width,
                 static_cast<double>(imagenet.io_base) / 1e3,
                 imagenet.io_ns_per_byte, cache.uncached_ms);
    for (std::size_t i = 0; i < cache.results.size(); ++i) {
        const auto &r = cache.results[i];
        std::fprintf(
            out,
            "      {\"budget\": \"%s\", \"budget_bytes\": %lld, "
            "\"cold_epoch_ms\": %.2f, \"warm_epoch_ms\": %.2f, "
            "\"warm_speedup_vs_uncached\": %.2f, "
            "\"warm_hit_rate\": %.3f, \"evictions\": %llu, "
            "\"rejects\": %llu, \"disk_spills\": %llu, "
            "\"disk_hits\": %llu}%s\n",
            r.name.c_str(), static_cast<long long>(r.budget_bytes),
            r.cold_ms, r.warm_ms, r.warm_speedup, r.warm_hit_rate,
            static_cast<unsigned long long>(r.evictions),
            static_cast<unsigned long long>(r.rejects),
            static_cast<unsigned long long>(r.disk_spills),
            static_cast<unsigned long long>(r.disk_hits),
            i + 1 < cache.results.size() ? "," : "");
    }
    std::fprintf(out,
                 "    ],\n"
                 "    \"bit_identical_cold_vs_warm\": %s,\n"
                 "    \"oversized_warm_speedup_gate_5x\": %s,\n"
                 "    \"thrashing_overhead_gate_5pct\": %s\n"
                 "  },\n",
                 cache.bit_identical ? "true" : "false",
                 cache.oversized_gate ? "true" : "false",
                 cache.thrashing_gate ? "true" : "false");

    const auto io_scenario = ioScenario();
    std::fprintf(out,
                 "  \"io_bound\": {\n"
                 "    \"scenario\": {\n"
                 "      \"num_samples\": %lld,\n"
                 "      \"batch_size\": %d,\n"
                 "      \"num_workers\": %d,\n"
                 "      \"median_width_px\": %.0f,\n"
                 "      \"remote_rtt_ms\": %.1f,\n"
                 "      \"read_ahead_depth\": %d,\n"
                 "      \"io_threads\": %d,\n"
                 "      \"pipeline\": \"RemoteStore(8 ms RTT) -> LJPG "
                 "decode -> RandomResizedCrop(64) -> flip -> ToTensor; "
                 "sequential plan so ranges coalesce\"\n"
                 "    },\n",
                 static_cast<long long>(kIoSamples), kIoBatch, kIoWorkers,
                 io_scenario.median_width,
                 static_cast<double>(kIoRtt) / 1e6, kIoDepth,
                 kIoIoThreads);
    std::fprintf(out, "    \"configs\": [\n");
    for (const IoResult *r : {&io.off, &io.on}) {
        std::fprintf(
            out,
            "      {\"read_ahead\": %s, \"epoch_wall_ms\": %.2f, "
            "\"hits\": %llu, \"misses\": %llu, \"issued\": %llu, "
            "\"remote_round_trips\": %llu, \"coalesced_reads\": "
            "%llu}%s\n",
            r->read_ahead ? "true" : "false", r->wall_ms,
            static_cast<unsigned long long>(r->hits),
            static_cast<unsigned long long>(r->misses),
            static_cast<unsigned long long>(r->issued),
            static_cast<unsigned long long>(r->round_trips),
            static_cast<unsigned long long>(r->coalesced_reads),
            r == &io.off ? "," : "");
    }
    std::fprintf(out,
                 "    ],\n"
                 "    \"readahead_epoch_wall_speedup\": %.2f,\n"
                 "    \"readahead_speedup_gate_2x\": %s,\n"
                 "    \"bit_identical_readahead\": %s\n"
                 "  },\n",
                 io.speedup, io.speedup_gate ? "true" : "false",
                 io.bit_identical ? "true" : "false");

    std::fprintf(out, "  \"tuner_convergence\": {\n");
    writeTunerScenarioJson(out, "heavy_tailed", tuner.heavy,
                           /*last=*/false);
    writeTunerScenarioJson(out, "io_bound", tuner.io, /*last=*/false);
    std::fprintf(out, "    \"bit_identical_tuned\": %s\n  },\n",
                 tuner.bit_identical ? "true" : "false");

    const auto mt_uniform = mtUniformScenario();
    const auto mt_heavy = mtHeavyScenario();
    std::fprintf(out,
                 "  \"multi_tenant\": {\n"
                 "    \"scenario\": {\n"
                 "      \"num_samples_per_client\": %lld,\n"
                 "      \"batch_size\": %d,\n"
                 "      \"fleet_workers\": %d,\n"
                 "      \"prefetch_batches\": 1,\n"
                 "      \"uniform_cost_us\": %.0f,\n"
                 "      \"neighbor_median_cost_us\": %.0f,\n"
                 "      \"neighbor_straggler_fraction\": %.2f,\n"
                 "      \"neighbor_straggler_multiplier\": %.0f,\n"
                 "      \"light_client_weight\": 4,\n"
                 "      \"pipeline\": \"one PreprocServer fleet; each "
                 "client's window (batch x prefetch) underfills it, so "
                 "scaling measures shared tenancy\"\n"
                 "    },\n"
                 "    \"solo_samples_per_s\": %.0f,\n"
                 "    \"aggregate_4client_samples_per_s\": %.0f,\n"
                 "    \"scaling_1_to_4_clients\": %.2f,\n"
                 "    \"scaling_gate_2x\": %s,\n"
                 "    \"light_t2_p99_solo_ns\": %.0f,\n"
                 "    \"light_t2_p99_noisy_ns\": %.0f,\n"
                 "    \"noisy_neighbor_p99_inflation\": %.2f,\n"
                 "    \"isolation_gate_2x\": %s,\n"
                 "    \"bit_identical_service\": %s\n"
                 "  }\n",
                 static_cast<long long>(kMtSamples), kMtBatch, kMtWorkers,
                 static_cast<double>(mt_uniform.median_cost) / 1e3,
                 static_cast<double>(mt_heavy.median_cost) / 1e3,
                 mt_heavy.straggler_fraction,
                 mt_heavy.straggler_multiplier, mt.solo_rate,
                 mt.aggregate_rate, mt.scaling,
                 mt.scaling_gate ? "true" : "false", mt.light_solo_p99_ns,
                 mt.light_noisy_p99_ns, mt.p99_inflation,
                 mt.isolation_gate ? "true" : "false",
                 mt.bit_identical ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    }

    auto dataset = std::make_shared<workloads::HeavyTailCostDataset>(
        kNumSamples, scenario());
    std::printf("heavy-tailed scenario: %lld samples, total cost %.0f ms, "
                "max sample %.1f ms\n",
                static_cast<long long>(kNumSamples),
                static_cast<double>(dataset->totalCost()) / 1e6,
                [&] {
                    TimeNs worst = 0;
                    for (std::int64_t i = 0; i < dataset->size(); ++i)
                        worst = std::max(worst, dataset->costOf(i));
                    return static_cast<double>(worst) / 1e6;
                }());

    // Bit-identity across schedules and worker counts (same seed):
    // the acceptance gate for the per-sample RNG reseeding contract.
    const auto reference = epochContent(dataset, Schedule::kRoundRobin, 4);
    const bool deterministic =
        reference == epochContent(dataset, Schedule::kWorkStealing, 4) &&
        reference == epochContent(dataset, Schedule::kRoundRobin, 0);
    std::printf("bit-identical across schedules + sync: %s\n",
                deterministic ? "yes" : "NO — DETERMINISM BROKEN");

    std::vector<ConfigResult> results;
    std::printf("%-14s %8s %12s %14s %14s %8s %8s %7s\n", "schedule",
                "workers", "wall_ms", "t2_p50", "t2_p99", "steals",
                "tasks", "eff");
    for (const int workers : {1, 2, 4, 8}) {
        for (const Schedule schedule :
             {Schedule::kRoundRobin, Schedule::kWorkStealing}) {
            const ConfigResult r = runConfig(dataset, schedule, workers);
            std::printf("%-14s %8d %12.2f %14.0f %14.0f %8llu %8llu "
                        "%7.3f\n",
                        r.schedule, r.workers, r.wall_ms, r.wait_p50_ns,
                        r.wait_p99_ns,
                        static_cast<unsigned long long>(r.steals),
                        static_cast<unsigned long long>(r.tasks),
                        r.steal_efficiency);
            results.push_back(r);
        }
    }

    const ConfigResult *rr4 = find(results, "round_robin", 4);
    const ConfigResult *ws4 = find(results, "work_stealing", 4);
    const double wall_speedup =
        ws4->wall_ms > 0 ? rr4->wall_ms / ws4->wall_ms : 0.0;
    const double p99_speedup = ws4->wait_p99_ns > 0
                                   ? rr4->wait_p99_ns / ws4->wait_p99_ns
                                   : 0.0;
    std::printf("4-worker work-stealing vs round-robin: wall %.2fx, "
                "[T2] p99 %.2fx\n",
                wall_speedup, p99_speedup);

    // --- Decoded-sample cache: cold vs warm -------------------------
    auto image_dataset = cacheDataset();
    CacheReport cache;

    // Uncached baseline: every epoch repeats the full Loader work, so
    // per-epoch cost is flat; take the min of 3 as the trimmed value.
    {
        DataLoader loader(image_dataset,
                          std::make_shared<pipeline::StackCollate>(),
                          cacheOptions(dataflow::CachePolicy::kNone, 0));
        const auto times = epochTimes(loader, 3);
        cache.uncached_ms =
            *std::min_element(times.begin(), times.end());
    }
    std::printf("\nimagenet-like IC scenario: %lld samples, uncached "
                "epoch %.2f ms\n",
                static_cast<long long>(kCacheSamples), cache.uncached_ms);

    // Working set = every decoded sample resident (measured with an
    // effectively unlimited budget); the tight and thrashing budgets
    // are fractions of it.
    std::int64_t working_set = 0;
    {
        DataLoader loader(
            image_dataset, std::make_shared<pipeline::StackCollate>(),
            cacheOptions(dataflow::CachePolicy::kMemory,
                         std::int64_t{4} << 30));
        epochTimes(loader, 1);
        working_set = loader.cache()->stats().bytes;
    }
    std::printf("decoded working set: %.1f MiB\n",
                static_cast<double>(working_set) / (1024.0 * 1024.0));

    const TempDir spill_dir("bench_loader_spills");
    struct BudgetCase
    {
        const char *name;
        dataflow::CachePolicy policy;
        std::int64_t budget;
        std::string dir;
    };
    // 4x: headroom over shard-hash imbalance, so the oversized case
    // really holds every sample resident (zero warm misses).
    const BudgetCase cases[] = {
        {"oversized", dataflow::CachePolicy::kMemory, 4 * working_set, {}},
        {"tight", dataflow::CachePolicy::kMemory, working_set / 2, {}},
        {"thrashing", dataflow::CachePolicy::kMemory, working_set / 16,
         {}},
        {"materialized", dataflow::CachePolicy::kMaterialize,
         working_set / 16, spill_dir.file("spills")},
    };
    std::printf("%-14s %12s %10s %10s %9s %8s %10s %10s\n", "budget",
                "budget_mb", "cold_ms", "warm_ms", "speedup", "hit%",
                "evictions", "disk_hits");
    for (const BudgetCase &c : cases) {
        const CacheResult r = runCacheConfig(
            image_dataset, c.name,
            cacheOptions(c.policy, c.budget, c.dir), cache.uncached_ms);
        std::printf("%-14s %12.1f %10.2f %10.2f %8.2fx %7.1f%% %10llu "
                    "%10llu\n",
                    r.name.c_str(),
                    static_cast<double>(r.budget_bytes) /
                        (1024.0 * 1024.0),
                    r.cold_ms, r.warm_ms, r.warm_speedup,
                    r.warm_hit_rate * 100.0,
                    static_cast<unsigned long long>(r.evictions),
                    static_cast<unsigned long long>(r.disk_hits));
        cache.results.push_back(r);
    }

    // Gates: warm epochs must repay the cache (oversized >= 5x) and a
    // useless budget must not tax the pipeline (thrashing <= +5%).
    cache.oversized_gate = cache.results[0].warm_speedup >= 5.0;
    cache.thrashing_gate =
        cache.results[2].warm_ms <= cache.uncached_ms * 1.05;

    // Cold-vs-warm bit-identity: cached epochs must replay the exact
    // uncached stream (prefix replay + suffix reseeding contract).
    cache.bit_identical =
        cacheEpochContent(image_dataset,
                          cacheOptions(dataflow::CachePolicy::kNone, 0),
                          2) ==
        cacheEpochContent(image_dataset,
                          cacheOptions(dataflow::CachePolicy::kMemory,
                                       4 * working_set),
                          2);
    std::printf("cache gates: oversized>=5x %s, thrashing<=+5%% %s, "
                "cold-vs-warm bit-identical %s\n",
                cache.oversized_gate ? "PASS" : "FAIL",
                cache.thrashing_gate ? "PASS" : "FAIL",
                cache.bit_identical ? "yes" : "NO — DETERMINISM BROKEN");

    // --- Io-bound: read-ahead over the modeled remote store ---------
    auto remote_store = ioStore();
    auto io_dataset = ioDataset(remote_store);
    IoReport io;
    std::printf("\nio-bound scenario: %lld samples behind a %.0f ms RTT "
                "remote store, %d workers\n",
                static_cast<long long>(kIoSamples),
                static_cast<double>(kIoRtt) / 1e6, kIoWorkers);
    io.off = runIoConfig(remote_store, io_dataset, false);
    io.on = runIoConfig(remote_store, io_dataset, true);
    io.speedup = io.on.wall_ms > 0 ? io.off.wall_ms / io.on.wall_ms : 0.0;
    io.speedup_gate = io.speedup >= 2.0;
    std::printf("%-12s %10s %8s %8s %8s %12s %10s\n", "read_ahead",
                "wall_ms", "hits", "misses", "issued", "round_trips",
                "coalesced");
    for (const IoResult *r : {&io.off, &io.on})
        std::printf("%-12s %10.2f %8llu %8llu %8llu %12llu %10llu\n",
                    r->read_ahead ? "on" : "off", r->wall_ms,
                    static_cast<unsigned long long>(r->hits),
                    static_cast<unsigned long long>(r->misses),
                    static_cast<unsigned long long>(r->issued),
                    static_cast<unsigned long long>(r->round_trips),
                    static_cast<unsigned long long>(r->coalesced_reads));

    // Bit-identity: read-ahead moves *when* bytes are read, never what
    // is decoded. Reference = round-robin without read-ahead; each
    // read-ahead path must replay it exactly, on both the cold epoch
    // (reads through the prefetch window) and the cache-warm epoch
    // (the window is bypassed entirely).
    const auto io_reference = cacheEpochContent(
        io_dataset,
        ioOptions(Schedule::kRoundRobin, kIoWorkers, false,
                  dataflow::CachePolicy::kMemory),
        2);
    io.bit_identical =
        io_reference == cacheEpochContent(
                            io_dataset,
                            ioOptions(Schedule::kRoundRobin, kIoWorkers,
                                      true,
                                      dataflow::CachePolicy::kMemory),
                            2) &&
        io_reference == cacheEpochContent(
                            io_dataset,
                            ioOptions(Schedule::kWorkStealing,
                                      kIoWorkers, true,
                                      dataflow::CachePolicy::kMemory),
                            2) &&
        io_reference == cacheEpochContent(
                            io_dataset,
                            ioOptions(Schedule::kRoundRobin, 0, true,
                                      dataflow::CachePolicy::kMemory),
                            2);
    std::printf("read-ahead gates: speedup>=2x %s (%.2fx), "
                "bit-identical rr/ws/sync cold+warm %s\n",
                io.speedup_gate ? "PASS" : "FAIL", io.speedup,
                io.bit_identical ? "yes" : "NO — DETERMINISM BROKEN");

    // --- Self-driving tuner: convergence from a bad start -----------
    TunerReport tuner_report;

    // Heavy-tailed: the measured optimum is the schedule sweep above.
    for (const ConfigResult &r : results) {
        SweptConfig swept;
        swept.config = strFormat(
            "%dw pf2 %s ra0:0", r.workers,
            std::strcmp(r.schedule, "work_stealing") == 0 ? "ws" : "rr");
        swept.wall_ms = r.wall_ms;
        if (tuner_report.heavy.best_ms == 0.0 ||
            r.wall_ms < tuner_report.heavy.best_ms) {
            tuner_report.heavy.best_ms = r.wall_ms;
            tuner_report.heavy.best_config = swept.config;
        }
        tuner_report.heavy.swept.push_back(std::move(swept));
    }

    DataLoaderOptions heavy_start =
        loaderOptions(Schedule::kRoundRobin, 1);
    heavy_start.prefetch_factor = 1;
    tuner::TunerOptions heavy_tuner;
    heavy_tuner.max_workers = 8;
    const LiveTunerRun heavy_run =
        runLiveTuner(dataset, heavy_start, heavy_tuner, 4);
    tuner_report.heavy.epochs = heavy_run.epochs;
    tuner_report.heavy.final_config =
        formatReconfig(heavy_run.final_config);
    // The controller needs one epoch to see traffic and one more to
    // see the straggler skew, so convergence must land by epoch 2.
    tuner_report.heavy.converged_ms =
        sweptOrLiveWall(tuner_report.heavy);
    tuner_report.heavy.gate = tuner_report.heavy.converged_ms <=
                              tuner_report.heavy.best_ms * 1.10;

    std::printf("\ntuner (heavy-tailed) from %s:\n",
                heavy_run.epochs[0].config.c_str());
    for (const TunerEpoch &epoch : heavy_run.epochs)
        std::printf("  %-20s %8.2fms  -> %s\n", epoch.config.c_str(),
                    epoch.wall_ms, epoch.bottleneck);
    std::printf("  converged %.2fms vs best swept %.2fms (%s) %s\n",
                tuner_report.heavy.converged_ms,
                tuner_report.heavy.best_ms,
                tuner_report.heavy.best_config.c_str(),
                tuner_report.heavy.gate ? "PASS" : "FAIL");

    // Io-bound: sweep workers x read-ahead on a TracedStore-wrapped
    // remote (the tuner's store signal is the lotus_store_read_ns
    // histogram TracedStore records), then converge live on it.
    auto traced_dataset = ioDataset(
        std::make_shared<pipeline::TracedStore>(ioStore()));
    {
        metrics::ScopedEnable enable;
        for (const bool read_ahead : {false, true}) {
            for (const int workers : {1, 2, 4}) {
                DataLoader loader(
                    traced_dataset,
                    std::make_shared<pipeline::StackCollate>(),
                    ioOptions(Schedule::kRoundRobin, workers,
                              read_ahead));
                const auto times = epochTimes(loader, 3);
                SweptConfig swept;
                swept.config = strFormat(
                    "%dw pf2 rr ra%d:%d", workers,
                    read_ahead ? kIoDepth : 0,
                    read_ahead ? kIoIoThreads : 0);
                swept.wall_ms =
                    *std::min_element(times.begin(), times.end());
                if (tuner_report.io.best_ms == 0.0 ||
                    swept.wall_ms < tuner_report.io.best_ms) {
                    tuner_report.io.best_ms = swept.wall_ms;
                    tuner_report.io.best_config = swept.config;
                }
                tuner_report.io.swept.push_back(std::move(swept));
            }
        }
    }

    DataLoaderOptions io_start =
        ioOptions(Schedule::kRoundRobin, 1, false);
    io_start.prefetch_factor = 1;
    tuner::TunerOptions io_tuner;
    // Decode here is a real CPU spin (unlike the heavy-tailed
    // scenario's blocking stalls), so the worker ceiling is the host's
    // core budget — the guidance tuner.h gives callers.
    io_tuner.max_workers = std::max(
        1, std::min(kIoWorkers,
                    static_cast<int>(
                        std::thread::hardware_concurrency())));
    io_tuner.max_read_ahead_depth = kIoDepth;
    io_tuner.read_ahead_io_threads = kIoIoThreads;
    io_tuner.allow_schedule_flip = false; // match the swept grid
    const LiveTunerRun io_run =
        runLiveTuner(traced_dataset, io_start, io_tuner, 4);
    tuner_report.io.epochs = io_run.epochs;
    tuner_report.io.final_config = formatReconfig(io_run.final_config);
    tuner_report.io.converged_ms = sweptOrLiveWall(tuner_report.io);
    tuner_report.io.gate = tuner_report.io.converged_ms <=
                           tuner_report.io.best_ms * 1.10;

    std::printf("tuner (io-bound) from %s:\n",
                io_run.epochs[0].config.c_str());
    for (const TunerEpoch &epoch : io_run.epochs)
        std::printf("  %-20s %8.2fms  -> %s\n", epoch.config.c_str(),
                    epoch.wall_ms, epoch.bottleneck);
    std::printf("  converged %.2fms vs best swept %.2fms (%s) %s\n",
                tuner_report.io.converged_ms, tuner_report.io.best_ms,
                tuner_report.io.best_config.c_str(),
                tuner_report.io.gate ? "PASS" : "FAIL");

    // Bit-identity: the tuned runs' epochs must byte-match a loader
    // fixed at the final config from epoch 0 (the reconfiguration
    // knobs are all content-neutral — DESIGN.md §14).
    tuner_report.bit_identical =
        heavy_run.contents == fixedRunContents(dataset, heavy_start,
                                               heavy_run.final_config,
                                               4) &&
        io_run.contents == fixedRunContents(traced_dataset, io_start,
                                            io_run.final_config, 4);
    std::printf("tuner gates: heavy %s, io %s, tuned-vs-fixed "
                "bit-identical %s\n",
                tuner_report.heavy.gate ? "PASS" : "FAIL",
                tuner_report.io.gate ? "PASS" : "FAIL",
                tuner_report.bit_identical ? "yes"
                                           : "NO — DETERMINISM BROKEN");

    // --- Multi-tenant service: shared fleet, 1 vs 4 clients ---------
    const MtReport mt = runMultiTenant();
    std::printf("\nmulti-tenant service: %d fleet workers, %lld samples "
                "per client\n",
                kMtWorkers, static_cast<long long>(kMtSamples));
    std::printf("  solo %.0f samples/s, 4 clients %.0f samples/s "
                "aggregate -> %.2fx scaling (gate >=2x %s)\n",
                mt.solo_rate, mt.aggregate_rate, mt.scaling,
                mt.scaling_gate ? "PASS" : "FAIL");
    std::printf("  light [T2] p99 %.2f ms solo, %.2f ms with noisy "
                "neighbor -> %.2fx inflation (gate <=2x %s)\n",
                mt.light_solo_p99_ns / 1e6, mt.light_noisy_p99_ns / 1e6,
                mt.p99_inflation, mt.isolation_gate ? "PASS" : "FAIL");
    std::printf("  per-client bit-identical to solo loaders: %s\n",
                mt.bit_identical ? "yes" : "NO — DETERMINISM BROKEN");

    if (json)
        return writeJson("BENCH_loader.json", results, deterministic,
                         wall_speedup, p99_speedup, cache, io,
                         tuner_report, mt);
    return 0;
}
