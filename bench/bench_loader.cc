/**
 * @file
 * DataLoader scheduling bench: round-robin vs work-stealing on a
 * heavy-tailed per-sample cost distribution (the straggler shape of
 * paper §IV: one slow sample stalls its whole statically-assigned
 * batch while peers idle).
 *
 * The per-sample cost is a seeded lognormal draw with a straggler
 * population (workloads::HeavyTailCostDataset), modelled as mostly a
 * blocking stall (I/O-like) plus a small CPU spin, so worker overlap
 * — and therefore the scheduling effect — is visible regardless of
 * host core count. Batch contents mix per-sample RNG draws, so the
 * cross-schedule bit-identity check exercises the FetchSeeding
 * contract end to end.
 *
 * Reports, per (schedule, workers in 1/2/4/8): epoch wall time, [T2]
 * wait p50/p99 (lotus_loader_wait_ns), and steal_efficiency
 * (steals / tasks). `--json` additionally writes BENCH_loader.json
 * (schema_version 1) so the perf trajectory is tracked across PRs.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "workloads/synthetic.h"

namespace {

using namespace lotus;
using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::Schedule;

constexpr std::int64_t kNumSamples = 512;
constexpr int kBatchSize = 16;
constexpr std::uint64_t kSeed = 42;

workloads::HeavyTailCostConfig
scenario()
{
    workloads::HeavyTailCostConfig config;
    config.median_cost = 100 * kMicrosecond;
    config.sigma = 0.8;
    config.straggler_fraction = 0.05;
    config.straggler_multiplier = 500.0; // 50 ms stalls
    config.busy_fraction = 0.05;
    config.seed = 17;
    return config;
}

DataLoaderOptions
loaderOptions(Schedule schedule, int workers)
{
    DataLoaderOptions options;
    options.batch_size = kBatchSize;
    options.num_workers = workers;
    options.shuffle = true;
    options.seed = kSeed;
    options.schedule = schedule;
    return options;
}

struct ConfigResult
{
    const char *schedule = "";
    int workers = 0;
    double wall_ms = 0.0;
    double wait_p50_ns = 0.0;
    double wait_p99_ns = 0.0;
    std::uint64_t steals = 0;
    std::uint64_t tasks = 0;
    double steal_efficiency = 0.0;
};

ConfigResult
runConfig(const std::shared_ptr<workloads::HeavyTailCostDataset> &dataset,
          Schedule schedule, int workers)
{
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();
    metrics::ScopedEnable enable;

    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      loaderOptions(schedule, workers));
    // Best-of-3 epochs: one epoch of a sleep-heavy workload is noisy
    // under OS scheduling, and the minimum is the standard estimator
    // for "what the schedule can do". The [T2] histogram and steal
    // counters accumulate across all three epochs.
    TimeNs wall = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        loader.startEpoch();
        const TimeNs start = SteadyClock::instance().now();
        while (loader.next().has_value()) {
        }
        const TimeNs elapsed = SteadyClock::instance().now() - start;
        if (wall == 0 || elapsed < wall)
            wall = elapsed;
    }

    ConfigResult result;
    result.schedule = schedule == Schedule::kWorkStealing ? "work_stealing"
                                                          : "round_robin";
    result.workers = workers;
    result.wall_ms = static_cast<double>(wall) / 1e6;
    auto *wait = registry.histogram("lotus_loader_wait_ns");
    result.wait_p50_ns = static_cast<double>(wait->quantile(0.50));
    result.wait_p99_ns = static_cast<double>(wait->quantile(0.99));
    for (int w = 0; w < workers; ++w) {
        result.steals += registry
                             .counter(metrics::labeled(
                                 dataflow::kStealsMetric, "worker",
                                 strFormat("%d", w)))
                             ->value();
    }
    result.tasks = registry.counter(dataflow::kTasksMetric)->value();
    result.steal_efficiency =
        result.tasks > 0 ? static_cast<double>(result.steals) /
                               static_cast<double>(result.tasks)
                         : 0.0;
    return result;
}

/** Every batch's payload + labels, concatenated in epoch order. */
std::vector<std::uint8_t>
epochContent(const std::shared_ptr<workloads::HeavyTailCostDataset> &dataset,
             Schedule schedule, int workers)
{
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      loaderOptions(schedule, workers));
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const std::uint8_t *raw = batch->data.raw();
        bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
        for (const std::int64_t label : batch->labels) {
            const auto *p = reinterpret_cast<const std::uint8_t *>(&label);
            bytes.insert(bytes.end(), p, p + sizeof(label));
        }
    }
    return bytes;
}

const ConfigResult *
find(const std::vector<ConfigResult> &results, const char *schedule,
     int workers)
{
    for (const auto &result : results) {
        if (std::strcmp(result.schedule, schedule) == 0 &&
            result.workers == workers)
            return &result;
    }
    return nullptr;
}

int
writeJson(const char *path, const std::vector<ConfigResult> &results,
          bool deterministic, double wall_speedup, double p99_speedup)
{
    std::FILE *out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    const auto config = scenario();
    std::fprintf(out, "{\n  \"schema_version\": 1,\n");
    std::fprintf(out, "  \"bench\": \"bench_loader\",\n");
    std::fprintf(out,
                 "  \"scenario\": {\n"
                 "    \"num_samples\": %lld,\n"
                 "    \"batch_size\": %d,\n"
                 "    \"seed\": %llu,\n"
                 "    \"median_cost_us\": %.1f,\n"
                 "    \"sigma\": %.2f,\n"
                 "    \"straggler_fraction\": %.3f,\n"
                 "    \"straggler_multiplier\": %.1f,\n"
                 "    \"busy_fraction\": %.2f,\n"
                 "    \"cost_model\": \"lognormal + stragglers; "
                 "per-sample cost is %.0f%% CPU spin, rest blocking "
                 "stall\"\n"
                 "  },\n",
                 static_cast<long long>(kNumSamples), kBatchSize,
                 static_cast<unsigned long long>(kSeed),
                 static_cast<double>(config.median_cost) / 1e3,
                 config.sigma, config.straggler_fraction,
                 config.straggler_multiplier, config.busy_fraction,
                 config.busy_fraction * 100.0);
    std::fprintf(out, "  \"configs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(out,
                     "    {\"schedule\": \"%s\", \"num_workers\": %d, "
                     "\"epoch_wall_ms\": %.2f, \"t2_wait_p50_ns\": %.0f, "
                     "\"t2_wait_p99_ns\": %.0f, \"steals\": %llu, "
                     "\"tasks\": %llu, \"steal_efficiency\": %.4f}%s\n",
                     r.schedule, r.workers, r.wall_ms, r.wait_p50_ns,
                     r.wait_p99_ns,
                     static_cast<unsigned long long>(r.steals),
                     static_cast<unsigned long long>(r.tasks),
                     r.steal_efficiency,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"work_stealing_speedup_4_workers\": {\n"
                 "    \"epoch_wall\": %.2f,\n"
                 "    \"t2_wait_p99\": %.2f\n"
                 "  },\n",
                 wall_speedup, p99_speedup);
    std::fprintf(out, "  \"bit_identical_across_schedules\": %s\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    }

    auto dataset = std::make_shared<workloads::HeavyTailCostDataset>(
        kNumSamples, scenario());
    std::printf("heavy-tailed scenario: %lld samples, total cost %.0f ms, "
                "max sample %.1f ms\n",
                static_cast<long long>(kNumSamples),
                static_cast<double>(dataset->totalCost()) / 1e6,
                [&] {
                    TimeNs worst = 0;
                    for (std::int64_t i = 0; i < dataset->size(); ++i)
                        worst = std::max(worst, dataset->costOf(i));
                    return static_cast<double>(worst) / 1e6;
                }());

    // Bit-identity across schedules and worker counts (same seed):
    // the acceptance gate for the per-sample RNG reseeding contract.
    const auto reference = epochContent(dataset, Schedule::kRoundRobin, 4);
    const bool deterministic =
        reference == epochContent(dataset, Schedule::kWorkStealing, 4) &&
        reference == epochContent(dataset, Schedule::kRoundRobin, 0);
    std::printf("bit-identical across schedules + sync: %s\n",
                deterministic ? "yes" : "NO — DETERMINISM BROKEN");

    std::vector<ConfigResult> results;
    std::printf("%-14s %8s %12s %14s %14s %8s %8s %7s\n", "schedule",
                "workers", "wall_ms", "t2_p50", "t2_p99", "steals",
                "tasks", "eff");
    for (const int workers : {1, 2, 4, 8}) {
        for (const Schedule schedule :
             {Schedule::kRoundRobin, Schedule::kWorkStealing}) {
            const ConfigResult r = runConfig(dataset, schedule, workers);
            std::printf("%-14s %8d %12.2f %14.0f %14.0f %8llu %8llu "
                        "%7.3f\n",
                        r.schedule, r.workers, r.wall_ms, r.wait_p50_ns,
                        r.wait_p99_ns,
                        static_cast<unsigned long long>(r.steals),
                        static_cast<unsigned long long>(r.tasks),
                        r.steal_efficiency);
            results.push_back(r);
        }
    }

    const ConfigResult *rr4 = find(results, "round_robin", 4);
    const ConfigResult *ws4 = find(results, "work_stealing", 4);
    const double wall_speedup =
        ws4->wall_ms > 0 ? rr4->wall_ms / ws4->wall_ms : 0.0;
    const double p99_speedup = ws4->wait_p99_ns > 0
                                   ? rr4->wait_p99_ns / ws4->wait_p99_ns
                                   : 0.0;
    std::printf("4-worker work-stealing vs round-robin: wall %.2fx, "
                "[T2] p99 %.2fx\n",
                wall_speedup, p99_speedup);

    if (json)
        return writeJson("BENCH_loader.json", results, deterministic,
                         wall_speedup, p99_speedup);
    return 0;
}
