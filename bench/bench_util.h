/**
 * @file
 * Shared helpers for the evaluation benches.
 *
 * Each bench regenerates one table or figure from the paper on
 * sandbox-scaled synthetic workloads. Absolute numbers differ from
 * the paper's dual-socket Xeon + V100 testbed; every bench prints the
 * paper's reference values next to the measured ones so the *shape*
 * comparison is immediate.
 */

#ifndef LOTUS_BENCH_BENCH_UTIL_H
#define LOTUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/strings.h"

namespace lotus::bench {

inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================================\n");
}

inline void
printSection(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

inline std::string
pct(double fraction)
{
    return strFormat("%.1f%%", 100.0 * fraction);
}

inline std::string
ms(double milliseconds)
{
    return strFormat("%.2f", milliseconds);
}

} // namespace lotus::bench

#endif // LOTUS_BENCH_BENCH_UTIL_H
