/**
 * @file
 * Figure 5: at batch size 512, across 1-4 GPUs (workers = GPUs), the
 * fraction of batches the main process waits >500 ms for (a), and the
 * fraction of batches that sit preprocessed >500 ms before
 * consumption (b). Shape targets: waits >500 ms for a third to all of
 * the batches; delays >500 ms for ~32-62% of batches whenever more
 * than one loader is used.
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "sim/loader_sim.h"

int
main()
{
    using namespace lotus;
    bench::printHeader("Main-process wait and batch delay times",
                       "Figure 5 (b=512, g in {1..4}) + Takeaway 4");

    const TimeNs threshold = 500 * kMillisecond;
    analysis::TextTable table({"gpus/workers", "waits > 500ms",
                               "delays > 500ms", "out-of-order",
                               "max gpu ms", "epoch s"});
    double min_wait_frac = 1.0;
    double multi_worker_delay_min = 1.0, multi_worker_delay_max = 0.0;

    for (int gpus = 1; gpus <= 4; ++gpus) {
        sim::LoaderSimConfig config;
        config.model = sim::ServiceModel::imageClassification();
        config.batch_size = 512;
        config.num_workers = gpus;
        config.num_gpus = gpus;
        config.num_batches = 40;
        config.cores = 32;
        config.gpu_time_per_sample = 550 * kMicrosecond;
        config.seed = static_cast<std::uint64_t>(90 + gpus);
        config.log_ops = false;
        const auto result = sim::LoaderSim(config).run();

        core::lotustrace::TraceAnalysis analysis(result.records);
        const double wait_frac = analysis.fractionWaitsOver(threshold);
        const double delay_frac = analysis.fractionDelaysOver(threshold);
        table.addRow({strFormat("%d", gpus), bench::pct(wait_frac),
                      bench::pct(delay_frac),
                      bench::pct(analysis.outOfOrderFraction()),
                      bench::ms(toMs(analysis.maxGpuTime())),
                      strFormat("%.1f", toSec(result.e2e_time))});
        min_wait_frac = std::min(min_wait_frac, wait_frac);
        if (gpus > 1) {
            multi_worker_delay_min =
                std::min(multi_worker_delay_min, delay_frac);
            multi_worker_delay_max =
                std::max(multi_worker_delay_max, delay_frac);
        }
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\nShape checks:\n"
        " - main process waits >500 ms for at least %s of batches in "
        "every config (paper: 30.84%%..100%%, exceeding the GPU's "
        "per-batch time -> GPU stalls on preprocessing)\n",
        bench::pct(min_wait_frac).c_str());
    std::printf(
        " - with >1 loader, %s..%s of batches sit preprocessed >500 ms "
        "(paper: 32.1%%..61.6%%), driven by out-of-order arrivals on "
        "the shared data queue\n",
        bench::pct(multi_worker_delay_min).c_str(),
        bench::pct(multi_worker_delay_max).c_str());
    return 0;
}
