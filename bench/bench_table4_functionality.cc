/**
 * @file
 * Table IV: profiler functionality matrix — Epoch / Batch / Async /
 * Wait / Delay — demonstrated, not just declared: each profiler runs
 * against the same instrumented pipeline and the bench prints what
 * each can actually reconstruct from its own data (e.g. the samplers'
 * per-epoch op times land within a few percent of Lotus for long ops,
 * while batch-level metrics simply do not exist for them).
 */

#include <cstdio>
#include <memory>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "dataflow/data_loader.h"
#include "hwcount/registry.h"
#include "profilers/presets.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

int
main()
{
    using namespace lotus;
    bench::printHeader("Profiler functionality matrix",
                       "Table IV (Epoch / Batch / Async / Wait / Delay)");

    const char *tick = "yes";
    const char *cross = "-";
    auto cell = [&](bool b) { return b ? tick : cross; };

    std::vector<std::unique_ptr<profilers::Profiler>> all;
    all.push_back(profilers::makeLotus());
    all.push_back(profilers::makeScaleneLike());
    all.push_back(profilers::makePySpyLike());
    all.push_back(profilers::makeAustinLike());
    all.push_back(profilers::makeTorchProfilerLike());

    analysis::TextTable matrix(
        {"profiler", "Epoch", "Batch", "Async", "Wait", "Delay"});
    for (const auto &profiler : all) {
        const auto caps = profiler->capabilities();
        matrix.addRow({profiler->name(), cell(caps.epoch_ops),
                       cell(caps.per_batch), cell(caps.async_flow),
                       cell(caps.wait_time), cell(caps.delay_time)});
    }
    std::printf("%s", matrix.render().c_str());

    // Demonstration run: Lotus + the py-spy-like sampler concurrently
    // observing the same epoch; compare the per-epoch op seconds each
    // reconstructs (the paper reports py-spy within 1% for epochs).
    bench::printSection("per-epoch op seconds: Lotus vs sampling profiler");
    workloads::ImageNetConfig config;
    config.num_images = 48;
    config.median_width = 160;
    auto workload = workloads::makeImageClassification(
        workloads::buildImageNetStore(config), 96);

    trace::TraceLogger logger;
    auto lotus_profiler = profilers::makeLotus();
    lotus_profiler->attach(logger);
    auto sampler = profilers::makePySpyLike();
    // The sampler is out-of-process: it does not attach to the logger
    // (that would disable Lotus's record keeping); it just samples.
    sampler->start();
    dataflow::DataLoaderOptions options;
    options.batch_size = 8;
    options.num_workers = 2;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    while (loader.next().has_value()) {
    }
    sampler->stop();

    const auto lotus_seconds = lotus_profiler->perOpEpochSeconds();
    const auto sampler_seconds = sampler->perOpEpochSeconds();
    analysis::TextTable compare(
        {"op", "Lotus s", "py-spy-like s", "relative error"});
    for (const auto &[op, seconds] : lotus_seconds) {
        const double sampled =
            sampler_seconds.count(op) ? sampler_seconds.at(op) : 0.0;
        compare.addRow(
            {op, strFormat("%.3f", seconds), strFormat("%.3f", sampled),
             seconds > 0.0
                 ? strFormat("%+.0f%%", 100.0 * (sampled / seconds - 1.0))
                 : "n/a"});
    }
    std::printf("%s", compare.render().c_str());
    std::printf("\nNote how sub-interval ops (RandomHorizontalFlip, "
                "Normalize) vanish or quantize in the sampler's view — "
                "the paper's core argument for instrumented tracing — "
                "while batch/wait/delay metrics exist only for Lotus.\n");

    // Lotus uniquely reconstructs batch-level metrics; show them.
    core::lotustrace::TraceAnalysis analysis(logger.records());
    std::printf("\nLotus-only view: %zu batches, out-of-order %s, mean "
                "per-batch preprocess %.1f ms\n",
                analysis.batches().size(),
                bench::pct(analysis.outOfOrderFraction()).c_str(),
                analysis::summarize(analysis.perBatchPreprocessMs()).mean);
    return 0;
}
