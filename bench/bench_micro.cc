/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths whose costs
 * the paper quantifies or depends on: LotusTrace's per-log overhead
 * (paper: ~200 µs on their setup; ours is far cheaper since it is
 * native), kernel-scope annotation, codec and resample throughput,
 * and the DES event loop.
 */

#include <benchmark/benchmark.h>

#include "hwcount/registry.h"
#include "image/codec/codec.h"
#include "image/resample.h"
#include "image/synth.h"
#include "sim/des/engine.h"
#include "tensor/ops.h"
#include "trace/logger.h"

namespace {

using namespace lotus;

void
BM_TraceLoggerLog(benchmark::State &state)
{
    trace::TraceLogger logger;
    trace::TraceRecord record;
    record.kind = trace::RecordKind::TransformOp;
    record.op_name = "RandomResizedCrop";
    for (auto _ : state) {
        record.start = logger.now();
        record.duration = logger.now() - record.start;
        logger.log(record);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceLoggerLog);

void
BM_KernelScope(benchmark::State &state)
{
    for (auto _ : state) {
        hwcount::KernelScope scope(hwcount::KernelId::IdctBlock);
        scope.stats().arith_ops += 64;
        benchmark::DoNotOptimize(scope.stats());
    }
    hwcount::KernelRegistry::instance().reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelScope);

void
BM_CodecDecode(benchmark::State &state)
{
    Rng rng(1);
    const auto img = image::synthesize(
        rng, static_cast<int>(state.range(0)),
        static_cast<int>(state.range(0)));
    const std::string blob = image::codec::encode(img);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::codec::decode(blob));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_CodecDecode)->Arg(64)->Arg(224);

void
BM_CodecEncode(benchmark::State &state)
{
    Rng rng(2);
    const auto img = image::synthesize(rng, 224, 224);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::codec::encode(img));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_CodecEncode);

void
BM_Resize(benchmark::State &state)
{
    Rng rng(3);
    const auto img = image::synthesize(rng, 512, 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::resize(img, 224, 224));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_Resize);

void
BM_ToTensorPath(benchmark::State &state)
{
    Rng rng(4);
    const auto img = image::synthesize(rng, 224, 224);
    for (auto _ : state) {
        const auto hwc = img.toTensorHwc();
        benchmark::DoNotOptimize(
            tensor::castU8ToF32(tensor::hwcToChw(hwc)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToTensorPath);

void
BM_DesEventLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::des::Engine engine;
        for (int i = 0; i < 1000; ++i)
            engine.schedule(i, [] {});
        engine.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DesEventLoop);

} // namespace

BENCHMARK_MAIN();
