/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths whose costs
 * the paper quantifies or depends on: LotusTrace's per-log overhead
 * (paper: ~200 µs on their setup; ours is far cheaper since it is
 * native), kernel-scope annotation, codec and resample throughput,
 * and the DES event loop.
 *
 * Invoked with `--json`, skips google-benchmark and instead runs the
 * image-path kernels (decode fast/reference, encode, resize, color
 * convert, chroma upsample) over paper-distribution image sizes with
 * a manual timing loop, writing ns/op and MB/s per kernel to
 * BENCH_image.json so the perf trajectory is tracked across PRs.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "dataflow/data_loader.h"
#include "hwcount/registry.h"
#include "hwcount/thread_counters.h"
#include "image/codec/codec.h"
#include "image/codec/color.h"
#include "image/resample.h"
#include "image/synth.h"
#include "memory/buffer_pool.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/dataset.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "sim/des/engine.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"
#include "trace/logger.h"

namespace {

using namespace lotus;

void
BM_TraceLoggerLog(benchmark::State &state)
{
    trace::TraceLogger logger;
    trace::TraceRecord record;
    record.kind = trace::RecordKind::TransformOp;
    record.op_name = "RandomResizedCrop";
    for (auto _ : state) {
        record.start = logger.now();
        record.duration = logger.now() - record.start;
        logger.log(record);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceLoggerLog);

void
BM_KernelScope(benchmark::State &state)
{
    for (auto _ : state) {
        hwcount::KernelScope scope(hwcount::KernelId::IdctBlock);
        scope.stats().arith_ops += 64;
        benchmark::DoNotOptimize(scope.stats());
    }
    hwcount::KernelRegistry::instance().reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelScope);

void
BM_CodecDecode(benchmark::State &state)
{
    Rng rng(1);
    const auto img = image::synthesize(
        rng, static_cast<int>(state.range(0)),
        static_cast<int>(state.range(1)));
    const std::string blob = image::codec::encode(img);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::codec::decode(blob));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_CodecDecode)
    ->Args({64, 64})
    ->Args({224, 224})
    ->Args({500, 375});

void
BM_CodecDecodeReference(benchmark::State &state)
{
    Rng rng(1);
    const auto img = image::synthesize(
        rng, static_cast<int>(state.range(0)),
        static_cast<int>(state.range(1)));
    const std::string blob = image::codec::encode(img);
    const image::codec::DecodeOptions reference{.reference = true};
    for (auto _ : state)
        benchmark::DoNotOptimize(image::codec::decode(blob, reference));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_CodecDecodeReference)->Args({224, 224})->Args({500, 375});

void
BM_CodecEncode(benchmark::State &state)
{
    Rng rng(2);
    const auto img = image::synthesize(rng, 224, 224);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::codec::encode(img));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_CodecEncode);

void
BM_Resize(benchmark::State &state)
{
    Rng rng(3);
    const auto img = image::synthesize(
        rng, static_cast<int>(state.range(0)),
        static_cast<int>(state.range(1)));
    for (auto _ : state)
        benchmark::DoNotOptimize(image::resize(img, 224, 224));
    state.SetBytesProcessed(state.iterations() * img.byteSize());
}
BENCHMARK(BM_Resize)->Args({512, 512})->Args({500, 375})->Args({1024, 768});

void
BM_ToTensorPath(benchmark::State &state)
{
    Rng rng(4);
    const auto img = image::synthesize(rng, 224, 224);
    for (auto _ : state) {
        const auto hwc = img.toTensorHwc();
        benchmark::DoNotOptimize(
            tensor::castU8ToF32(tensor::hwcToChw(hwc)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToTensorPath);

// Telemetry primitives: the per-site costs behind the <= 2% budget.

void
BM_MetricsCounterDisabled(benchmark::State &state)
{
    metrics::MetricsRegistry registry;
    auto *counter = registry.counter("bench_total");
    for (auto _ : state) {
        counter->add(1);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterDisabled);

void
BM_MetricsCounterEnabled(benchmark::State &state)
{
    metrics::ScopedEnable enable;
    metrics::MetricsRegistry registry;
    auto *counter = registry.counter("bench_total");
    for (auto _ : state) {
        counter->add(1);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterEnabled);

void
BM_MetricsHistogramEnabled(benchmark::State &state)
{
    metrics::ScopedEnable enable;
    metrics::MetricsRegistry registry;
    auto *hist = registry.histogram("bench_ns");
    std::uint64_t value = 1;
    for (auto _ : state) {
        hist->record(value);
        value = value * 1664525 + 1013904223; // vary the bucket
        benchmark::DoNotOptimize(hist);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramEnabled);

void
BM_MetricsScopedTimerEnabled(benchmark::State &state)
{
    metrics::ScopedEnable enable;
    metrics::MetricsRegistry registry;
    auto *hist = registry.histogram("bench_span_ns");
    for (auto _ : state) {
        metrics::ScopedTimer timer(hist);
        benchmark::DoNotOptimize(hist);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsScopedTimerEnabled);

void
BM_DesEventLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::des::Engine engine;
        for (int i = 0; i < 1000; ++i)
            engine.schedule(i, [] {});
        engine.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DesEventLoop);

// ---------------------------------------------------------------------------
// --json mode: manual timing loops + BENCH_image.json trajectory file.

struct JsonCase
{
    std::string name;
    double ns_per_op = 0.0;
    double mb_per_s = 0.0;
    std::uint64_t bytes_per_op = 0;
};

JsonCase
measureCase(const std::string &name, std::uint64_t bytes_per_op,
            const std::function<void()> &body)
{
    using clock = std::chrono::steady_clock;
    // Warm caches and lazy tables.
    body();
    body();
    const auto start = clock::now();
    int iterations = 0;
    double elapsed_ns = 0.0;
    do {
        body();
        ++iterations;
        elapsed_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start)
                .count());
    } while (elapsed_ns < 2e8 || iterations < 5);

    JsonCase result;
    result.name = name;
    result.bytes_per_op = bytes_per_op;
    result.ns_per_op = elapsed_ns / iterations;
    result.mb_per_s = static_cast<double>(bytes_per_op) /
                      (result.ns_per_op / 1e9) / 1e6;
    return result;
}

/** Dataset whose samples each decode one LJPG blob: the decode+loader
 *  path the telemetry overhead budget is measured on. */
class DecodeDataset : public lotus::pipeline::Dataset
{
  public:
    DecodeDataset(std::string blob, std::int64_t size)
        : blob_(std::move(blob)), size_(size)
    {
    }

    std::int64_t size() const override { return size_; }

    lotus::pipeline::Sample
    get(std::int64_t index,
        lotus::pipeline::PipelineContext &ctx) const override
    {
        (void)ctx;
        const auto img = image::codec::decode(blob_);
        lotus::pipeline::Sample sample;
        sample.data = tensor::Tensor(tensor::DType::F32, {1});
        sample.data.data<float>()[0] = static_cast<float>(img.width());
        sample.label = index;
        return sample;
    }

  private:
    std::string blob_;
    std::int64_t size_;
};

double
measureLoaderEpochNs(const std::string &blob)
{
    auto dataset = std::make_shared<DecodeDataset>(blob, 32);
    auto collate = std::make_shared<lotus::pipeline::StackCollate>();
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    using clock = std::chrono::steady_clock;
    double best_ns = 0.0;
    // Best-of-3 epochs: thread startup noise dominates the tail, the
    // minimum tracks the true cost.
    for (int run = 0; run < 3; ++run) {
        dataflow::DataLoader loader(dataset, collate, options);
        const auto start = clock::now();
        while (loader.next().has_value()) {
        }
        const auto ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start)
                .count());
        if (best_ns == 0.0 || ns < best_ns)
            best_ns = ns;
    }
    return best_ns;
}

/**
 * One loader epoch over an ImageFolderDataset backed by @p store:
 * the store-read + decode path the I/O-trace overhead budget is
 * measured on (raw InMemoryStore vs the same store TracedStore-
 * wrapped). Best-of-3 epochs, like measureLoaderEpochNs.
 */
double
measureStoreEpochNs(std::shared_ptr<const lotus::pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    auto dataset = std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<const pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/10);
    auto collate = std::make_shared<lotus::pipeline::StackCollate>();
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    using clock = std::chrono::steady_clock;
    double best_ns = 0.0;
    for (int run = 0; run < 3; ++run) {
        dataflow::DataLoader loader(dataset, collate, options);
        const auto start = clock::now();
        while (loader.next().has_value()) {
        }
        const auto ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start)
                .count());
        if (best_ns == 0.0 || ns < best_ns)
            best_ns = ns;
    }
    return best_ns;
}

/**
 * Buffer-pool behaviour over synchronous loader epochs with batch
 * recycling: after the warm-up epoch the decode -> collate sample
 * path should run entirely out of the pool (zero misses).
 */
memory::BufferPool::Stats
measurePoolSteadyState(const std::string &blob)
{
    auto dataset = std::make_shared<DecodeDataset>(blob, 16);
    auto collate = std::make_shared<lotus::pipeline::StackCollate>();
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 0;
    dataflow::DataLoader loader(dataset, collate, options);
    auto &pool = memory::BufferPool::instance();

    const auto epoch = [&loader] {
        loader.startEpoch();
        while (auto batch = loader.next())
            loader.recycle(std::move(*batch));
    };
    epoch(); // warm-up: populates the freelists
    const auto warmed = pool.stats();
    epoch(); // steady state
    const auto after = pool.stats();
    memory::BufferPool::Stats delta;
    delta.hits = after.hits - warmed.hits;
    delta.misses = after.misses - warmed.misses;
    delta.cached_bytes = after.cached_bytes;
    return delta;
}

int
runJsonMode(const char *path)
{
    using image::codec::DecodeOptions;
    using image::codec::EncodeOptions;

    std::vector<JsonCase> cases;

    // Paper-distribution decode workloads (500x375 is the ImageNet
    // average size the paper's Loader numbers are dominated by).
    struct DecodeSpec
    {
        const char *label;
        int width, height, quality;
        bool subsample;
    };
    const DecodeSpec decode_specs[] = {
        {"decode_500x375_q75_sub", 500, 375, 75, true},
        {"decode_224x224_q85_sub", 224, 224, 85, true},
        {"decode_1024x768_q75_sub", 1024, 768, 75, true},
        {"decode_500x375_q95_full", 500, 375, 95, false},
    };
    double fast_ns = 0.0;
    double reference_ns = 0.0;
    for (const auto &spec : decode_specs) {
        Rng rng(41);
        const auto img =
            image::synthesize(rng, spec.width, spec.height,
                              image::SynthOptions{0.5, 4});
        const std::string blob = image::codec::encode(
            img, EncodeOptions{spec.quality, spec.subsample});
        const auto bytes = static_cast<std::uint64_t>(img.byteSize());
        cases.push_back(measureCase(spec.label, bytes, [&blob] {
            image::codec::decode(blob);
        }));
        const auto reference = measureCase(
            std::string(spec.label) + "_reference", bytes, [&blob] {
                image::codec::decode(blob,
                                     DecodeOptions{.reference = true});
            });
        cases.push_back(reference);
        if (std::strcmp(spec.label, "decode_500x375_q75_sub") == 0) {
            fast_ns = cases[cases.size() - 2].ns_per_op;
            reference_ns = reference.ns_per_op;
        }
    }

    // The same decode forced through every SIMD dispatch tier the
    // host supports: the per-tier trajectory behind
    // simd_speedup_vs_scalar.
    const simd::Tier default_tier = simd::activeTier();
    double scalar_decode_ns = 0.0;
    double active_decode_ns = 0.0;
    {
        Rng rng(41);
        const auto img = image::synthesize(rng, 500, 375,
                                           image::SynthOptions{0.5, 4});
        const std::string blob =
            image::codec::encode(img, EncodeOptions{75, true});
        const auto bytes = static_cast<std::uint64_t>(img.byteSize());
        for (const simd::Tier tier :
             {simd::Tier::Scalar, simd::Tier::Sse4, simd::Tier::Avx2}) {
            if (!simd::tierSupported(tier))
                continue;
            simd::ScopedTier scoped(tier);
            char label[64];
            std::snprintf(label, sizeof(label), "decode_500x375_q75_sub_%s",
                          simd::tierName(tier));
            const auto result = measureCase(
                label, bytes, [&blob] { image::codec::decode(blob); });
            cases.push_back(result);
            if (tier == simd::Tier::Scalar)
                scalar_decode_ns = result.ns_per_op;
            if (tier == default_tier)
                active_decode_ns = result.ns_per_op;
        }
    }

    {
        Rng rng(42);
        const auto img = image::synthesize(rng, 500, 375,
                                           image::SynthOptions{0.5, 4});
        cases.push_back(measureCase(
            "encode_500x375_q75",
            static_cast<std::uint64_t>(img.byteSize()), [&img] {
                image::codec::encode(img, EncodeOptions{75, true});
            }));
    }

    const std::pair<int, int> resize_specs[] = {
        {500, 375}, {1024, 768}, {512, 512}};
    double scalar_resize_ns = 0.0;
    double active_resize_ns = 0.0;
    for (const auto &[w, h] : resize_specs) {
        Rng rng(43);
        const auto img = image::synthesize(rng, w, h);
        char label[64];
        std::snprintf(label, sizeof(label), "resize_%dx%d_to_224", w, h);
        const auto result = measureCase(
            label, static_cast<std::uint64_t>(img.byteSize()),
            [&img] { image::resize(img, 224, 224); });
        cases.push_back(result);
        if (w == 500) {
            active_resize_ns = result.ns_per_op;
            simd::ScopedTier scoped(simd::Tier::Scalar);
            const auto scalar_case =
                measureCase("resize_500x375_to_224_scalar",
                            static_cast<std::uint64_t>(img.byteSize()),
                            [&img] { image::resize(img, 224, 224); });
            cases.push_back(scalar_case);
            scalar_resize_ns = scalar_case.ns_per_op;
        }
    }

    // Tensor-side hot kernels (ToTensor / Normalize on a 3x224x224
    // CHW sample), plus their scalar-tier reference.
    double scalar_normalize_ns = 0.0;
    double active_normalize_ns = 0.0;
    {
        Rng rng(45);
        const auto img = image::synthesize(rng, 224, 224);
        const auto chw = tensor::hwcToChw(img.toTensorHwc());
        const auto bytes = static_cast<std::uint64_t>(chw.byteSize());
        cases.push_back(measureCase("cast_u8_to_f32_224", bytes, [&chw] {
            tensor::castU8ToF32(chw);
        }));
        auto f32 = tensor::castU8ToF32(chw);
        const std::vector<float> mean{0.485f, 0.456f, 0.406f};
        const std::vector<float> stddev{0.229f, 0.224f, 0.225f};
        const auto f32_bytes = static_cast<std::uint64_t>(f32.byteSize());
        const auto normalize = measureCase("normalize_224", f32_bytes, [&] {
            tensor::normalizeChannels(f32, mean, stddev);
        });
        cases.push_back(normalize);
        active_normalize_ns = normalize.ns_per_op;
        {
            simd::ScopedTier scoped(simd::Tier::Scalar);
            const auto scalar_case =
                measureCase("normalize_224_scalar", f32_bytes, [&] {
                    tensor::normalizeChannels(f32, mean, stddev);
                });
            cases.push_back(scalar_case);
            scalar_normalize_ns = scalar_case.ns_per_op;
        }
    }

    {
        Rng rng(44);
        const auto img = image::synthesize(rng, 500, 375);
        image::codec::Plane y, cb, cr;
        image::codec::rgbToYcc(img, y, cb, cr);
        // The fast decode tail runs on integer planes; benchmark the
        // same representation it consumes.
        const auto y16 = image::codec::quantizePlane(y);
        const auto cb16 = image::codec::quantizePlane(cb);
        const auto cr16 = image::codec::quantizePlane(cr);
        const auto bytes = static_cast<std::uint64_t>(img.byteSize());
        cases.push_back(measureCase("ycc_to_rgb_500x375", bytes, [&] {
            image::codec::yccToRgb(y16, cb16, cr16);
        }));
        cases.push_back(
            measureCase("ycc_to_rgb_500x375_reference", bytes, [&] {
                image::codec::yccToRgb(y, cb, cr);
            }));
        cases.push_back(measureCase("rgb_to_ycc_500x375", bytes, [&] {
            image::codec::rgbToYcc(img, y, cb, cr);
        }));

        const auto half = image::codec::downsample2x2(y);
        const auto half16 = image::codec::quantizePlane(half);
        const auto up_bytes = static_cast<std::uint64_t>(img.pixelCount()) * 4;
        cases.push_back(
            measureCase("chroma_upsample_500x375", up_bytes, [&] {
                image::codec::upsample2x(half16, 500, 375);
            }));
        cases.push_back(measureCase(
            "chroma_upsample_500x375_reference", up_bytes, [&] {
                image::codec::upsample2x(half, 500, 375);
            }));
    }

    const double speedup =
        fast_ns > 0.0 ? reference_ns / fast_ns : 0.0;

    // Telemetry overhead on the decode+loader path: the same work
    // with metrics off (default) vs enabled must stay within the
    // paper's ~0% overhead claim (budget: <= 2%).
    double decode_overhead_pct = 0.0;
    double loader_overhead_pct = 0.0;
    {
        Rng rng(41);
        const auto img = image::synthesize(rng, 500, 375,
                                           image::SynthOptions{0.5, 4});
        const std::string blob =
            image::codec::encode(img, EncodeOptions{75, true});
        const auto bytes = static_cast<std::uint64_t>(img.byteSize());

        const auto decode_off = measureCase(
            "decode_500x375_metrics_off", bytes,
            [&blob] { image::codec::decode(blob); });
        const double loader_off_ns = measureLoaderEpochNs(blob);
        JsonCase decode_on, loader_on_case;
        double loader_on_ns = 0.0;
        {
            metrics::ScopedEnable enable;
            decode_on = measureCase(
                "decode_500x375_metrics_on", bytes,
                [&blob] { image::codec::decode(blob); });
            loader_on_ns = measureLoaderEpochNs(blob);
        }
        cases.push_back(decode_off);
        cases.push_back(decode_on);
        decode_overhead_pct =
            (decode_on.ns_per_op / decode_off.ns_per_op - 1.0) * 100.0;
        loader_overhead_pct = (loader_on_ns / loader_off_ns - 1.0) * 100.0;
    }

    // Observability overhead on the loader path: per-thread PMU
    // attribution (two counter reads per kernel scope on attached
    // threads) and store I/O tracing each carry the same <= 2%
    // budget as the metrics layer. In sandboxes without
    // perf_event_open the PMU backend resolves to sim and the
    // enabled run measures just the gate cost.
    double pmu_overhead_pct = 0.0;
    double io_trace_overhead_pct = 0.0;
    std::string pmu_backend_name;
    {
        Rng rng(41);
        const auto img = image::synthesize(rng, 500, 375,
                                           image::SynthOptions{0.5, 4});
        const std::string blob =
            image::codec::encode(img, EncodeOptions{75, true});
        const double pmu_off_ns = measureLoaderEpochNs(blob);
        auto &pmu = hwcount::ThreadCounterRegistry::instance();
        pmu.setEnabled(true);
        pmu_backend_name = hwcount::pmuBackendName(pmu.resolvedBackend());
        const double pmu_on_ns = measureLoaderEpochNs(blob);
        pmu.setEnabled(false);
        pmu.reset();
        pmu_overhead_pct = (pmu_on_ns / pmu_off_ns - 1.0) * 100.0;
    }
    {
        Rng rng(46);
        auto blobs = std::make_shared<pipeline::InMemoryStore>();
        for (int i = 0; i < 32; ++i)
            blobs->add(image::codec::encode(image::synthesize(rng, 224, 224),
                                            EncodeOptions{75, true}));
        const double raw_ns = measureStoreEpochNs(blobs);
        const double traced_ns = measureStoreEpochNs(
            std::make_shared<pipeline::TracedStore>(blobs));
        io_trace_overhead_pct = (traced_ns / raw_ns - 1.0) * 100.0;
    }

    // Buffer-pool steady state: one warm loader epoch, then a second
    // epoch whose sample path must be allocation-free.
    memory::BufferPool::Stats pool_steady;
    {
        Rng rng(41);
        const auto img = image::synthesize(rng, 500, 375,
                                           image::SynthOptions{0.5, 4});
        const std::string blob =
            image::codec::encode(img, EncodeOptions{75, true});
        pool_steady = measurePoolSteadyState(blob);
    }

    std::FILE *out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    // schema_version makes BENCH_image.json diffs comparable across
    // PRs; bump it whenever a field changes meaning.
    std::fprintf(out, "{\n  \"schema_version\": 4,\n");
    std::fprintf(out, "  \"simd_active_tier\": \"%s\",\n",
                 simd::tierName(default_tier));
    std::fprintf(out, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                     "\"mb_per_s\": %.2f, \"bytes_per_op\": %llu}%s\n",
                     c.name.c_str(), c.ns_per_op, c.mb_per_s,
                     static_cast<unsigned long long>(c.bytes_per_op),
                     i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"decode_speedup_vs_reference_500x375_q75\": %.2f,\n",
                 speedup);
    std::fprintf(out,
                 "  \"simd_speedup_vs_scalar\": "
                 "{\"decode_500x375_q75_sub\": %.2f, "
                 "\"resize_500x375_to_224\": %.2f, "
                 "\"normalize_224\": %.2f},\n",
                 active_decode_ns > 0.0 ? scalar_decode_ns / active_decode_ns
                                        : 0.0,
                 active_resize_ns > 0.0 ? scalar_resize_ns / active_resize_ns
                                        : 0.0,
                 active_normalize_ns > 0.0
                     ? scalar_normalize_ns / active_normalize_ns
                     : 0.0);
    std::fprintf(out,
                 "  \"pool_warm_epoch\": {\"hits\": %llu, "
                 "\"misses\": %llu},\n",
                 static_cast<unsigned long long>(pool_steady.hits),
                 static_cast<unsigned long long>(pool_steady.misses));
    std::fprintf(out, "  \"metrics_overhead_pct\": "
                      "{\"decode_500x375\": %.2f, "
                      "\"loader_epoch_decode\": %.2f},\n",
                 decode_overhead_pct, loader_overhead_pct);
    std::fprintf(out, "  \"pmu_backend\": \"%s\",\n",
                 pmu_backend_name.c_str());
    std::fprintf(out, "  \"pmu_overhead_pct\": %.2f,\n",
                 pmu_overhead_pct);
    std::fprintf(out, "  \"io_trace_overhead_pct\": %.2f\n",
                 io_trace_overhead_pct);
    std::fprintf(out, "}\n");
    std::fclose(out);

    for (const auto &c : cases)
        std::printf("%-40s %12.1f ns/op %10.2f MB/s\n", c.name.c_str(),
                    c.ns_per_op, c.mb_per_s);
    std::printf("decode 500x375 q75 speedup vs reference: %.2fx\n",
                speedup);
    std::printf("simd tier %s vs scalar: decode %.2fx, resize %.2fx, "
                "normalize %.2fx\n",
                simd::tierName(default_tier),
                active_decode_ns > 0.0 ? scalar_decode_ns / active_decode_ns
                                       : 0.0,
                active_resize_ns > 0.0 ? scalar_resize_ns / active_resize_ns
                                       : 0.0,
                active_normalize_ns > 0.0
                    ? scalar_normalize_ns / active_normalize_ns
                    : 0.0);
    std::printf("pool warm epoch: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(pool_steady.hits),
                static_cast<unsigned long long>(pool_steady.misses));
    std::printf("metrics-enabled overhead: decode %.2f%%, "
                "loader epoch %.2f%%\n",
                decode_overhead_pct, loader_overhead_pct);
    std::printf("pmu (%s) overhead: loader epoch %.2f%%\n",
                pmu_backend_name.c_str(), pmu_overhead_pct);
    std::printf("io-trace overhead: store epoch %.2f%%\n",
                io_trace_overhead_pct);
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return runJsonMode("BENCH_image.json");
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
