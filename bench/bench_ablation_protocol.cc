/**
 * @file
 * Ablations over the DataLoader protocol knobs DESIGN.md calls out:
 *
 *  1. prefetch_factor (1..8): deeper prefetch hides worker variance
 *     but raises delay times and the out-of-order fraction — the
 *     mechanism behind the paper's Fig. 5 findings.
 *  2. contention model on/off: the occupancy-driven CPU inflation is
 *     what produces Fig. 6(b)'s rising CPU seconds.
 *  3. pin cost: the main process's per-batch pin work serializes
 *     consumption and amplifies delays when many workers race ahead.
 */

#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lotustrace/analysis.h"
#include "sim/loader_sim.h"

namespace lotus {
namespace {

sim::LoaderSimConfig
base()
{
    sim::LoaderSimConfig config;
    config.model = sim::ServiceModel::imageClassification();
    config.batch_size = 256;
    config.num_workers = 8;
    config.num_gpus = 4;
    config.num_batches = 32;
    config.cores = 32;
    config.gpu_time_per_sample = 250 * kMicrosecond;
    config.seed = 77;
    config.log_ops = false;
    return config;
}

} // namespace
} // namespace lotus

int
main()
{
    using namespace lotus;
    bench::printHeader("Protocol ablations",
                       "design-choice ablations (prefetch depth, "
                       "contention model, pin cost)");

    bench::printSection("1. prefetch_factor sweep");
    {
        analysis::TextTable table({"prefetch", "e2e s", "mean wait ms",
                                   "mean delay ms", "out-of-order"});
        for (const int prefetch : {1, 2, 4, 8}) {
            auto config = base();
            config.prefetch_factor = prefetch;
            const auto result = sim::LoaderSim(config).run();
            core::lotustrace::TraceAnalysis analysis(result.records);
            table.addRow(
                {strFormat("%d", prefetch),
                 strFormat("%.1f", toSec(result.e2e_time)),
                 bench::ms(
                     analysis::summarize(analysis.waitTimesMs()).mean),
                 bench::ms(
                     analysis::summarize(analysis.delayTimesMs()).mean),
                 bench::pct(analysis.outOfOrderFraction())});
        }
        std::printf("%s", table.render().c_str());
        std::printf("deeper prefetch trades main-process waits for batch "
                    "delays and out-of-order arrivals.\n");
    }

    bench::printSection("2. contention model on/off (28 workers)");
    {
        analysis::TextTable table(
            {"contention", "e2e s", "total CPU s", "occupancy"});
        for (const bool contention : {false, true}) {
            auto config = base();
            config.num_workers = 28;
            config.apply_contention = contention;
            const auto result = sim::LoaderSim(config).run();
            table.addRow({contention ? "on" : "off",
                          strFormat("%.1f", toSec(result.e2e_time)),
                          strFormat("%.1f", result.total_cpu_seconds),
                          strFormat("%.2f", result.avg_occupancy)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("the occupancy-driven inflation is the Fig. 6(b) "
                    "CPU-seconds growth mechanism.\n");
    }

    bench::printSection("3. shared vs per-worker data queue (Takeaway 4)");
    {
        analysis::TextTable table({"data queue", "out-of-order",
                                   "mean delay ms", "delays > 500ms",
                                   "e2e s"});
        for (const auto policy : {sim::DataQueuePolicy::Shared,
                                  sim::DataQueuePolicy::PerWorker}) {
            auto config = base();
            config.queue_policy = policy;
            const auto result = sim::LoaderSim(config).run();
            core::lotustrace::TraceAnalysis analysis(result.records);
            // The sentinel-based OOO metric is meaningful only for
            // the shared topology; per-worker queues cannot reorder.
            const std::string ooo =
                policy == sim::DataQueuePolicy::Shared
                    ? bench::pct(analysis.outOfOrderFraction())
                    : "0% (by construction)";
            table.addRow(
                {policy == sim::DataQueuePolicy::Shared ? "shared (paper)"
                                                        : "per-worker",
                 ooo,
                 bench::ms(
                     analysis::summarize(analysis.delayTimesMs()).mean),
                 bench::pct(
                     analysis.fractionDelaysOver(500 * kMillisecond)),
                 strFormat("%.1f", toSec(result.e2e_time))});
        }
        std::printf("%s", table.render().c_str());
        std::printf(
            "per-worker return queues remove out-of-order arrivals and "
            "the pin-and-cache machinery, but batch delays and epoch "
            "time barely move: the delays come from strict in-order "
            "consumption plus accelerator backpressure, and the shared "
            "queue's OOO is the *symptom* LotusTrace makes visible, not "
            "itself the time sink.\n");
    }

    bench::printSection("4. pin cost sweep");
    {
        analysis::TextTable table({"pin us/sample", "mean delay ms",
                                   "delays > 500ms", "e2e s"});
        for (const TimeNs pin :
             {TimeNs{0}, 60 * kMicrosecond, 300 * kMicrosecond}) {
            auto config = base();
            config.model.pin_per_sample = pin;
            const auto result = sim::LoaderSim(config).run();
            core::lotustrace::TraceAnalysis analysis(result.records);
            table.addRow(
                {strFormat("%.0f", toUs(pin)),
                 bench::ms(
                     analysis::summarize(analysis.delayTimesMs()).mean),
                 bench::pct(
                     analysis.fractionDelaysOver(500 * kMillisecond)),
                 strFormat("%.1f", toSec(result.e2e_time))});
        }
        std::printf("%s", table.render().c_str());
        std::printf("pinning on the single main thread serializes "
                    "consumption: higher pin cost -> longer queue-side "
                    "delays (the paper's Fig. 3/5 explanation).\n");
    }
    return 0;
}
