/**
 * @file
 * Small string formatting and manipulation helpers.
 */

#ifndef LOTUS_COMMON_STRINGS_H
#define LOTUS_COMMON_STRINGS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace lotus {

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Overload so LOTUS_ASSERT can pass zero varargs cleanly. */
inline std::string strFormat() { return {}; }

/** vprintf-style formatting into a std::string. */
std::string vstrFormat(const char *fmt, std::va_list args);

/** Join @p parts with @p sep. */
std::string strJoin(const std::vector<std::string> &parts,
                    const std::string &sep);

/** Split @p s on character @p sep (no empty trailing element). */
std::vector<std::string> strSplit(const std::string &s, char sep);

/** True if @p s starts with @p prefix. */
bool strStartsWith(const std::string &s, const std::string &prefix);

/** True if @p s ends with @p suffix. */
bool strEndsWith(const std::string &s, const std::string &suffix);

/** Render a byte count human-readably ("6.1 MB"). */
std::string formatBytes(std::uint64_t bytes);

} // namespace lotus

#endif // LOTUS_COMMON_STRINGS_H
