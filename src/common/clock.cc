#include "common/clock.h"

#include <chrono>

namespace lotus {

TimeNs
SteadyClock::now() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

const SteadyClock &
SteadyClock::instance()
{
    static const SteadyClock clock;
    return clock;
}

} // namespace lotus
