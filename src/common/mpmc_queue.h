/**
 * @file
 * Bounded blocking multi-producer/multi-consumer queue.
 *
 * This is the shared-memory analogue of Python's multiprocessing.Queue
 * that PyTorch's DataLoader uses for both its per-worker index queues
 * and the shared data queue. FIFO across all producers, with close()
 * semantics so consumers drain remaining items and then observe
 * end-of-stream.
 */

#ifndef LOTUS_COMMON_MPMC_QUEUE_H
#define LOTUS_COMMON_MPMC_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace lotus {

template <typename T>
class MpmcQueue
{
  public:
    /** @param capacity 0 means unbounded. */
    explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /**
     * Enqueue an item, blocking while the queue is full.
     * @return false if the queue was closed before the item was queued.
     */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || capacity_ == 0 || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue the front item, blocking while the queue is empty.
     * @return nullopt once the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /**
     * Dequeue with a timeout.
     * @return nullopt on timeout or on closed-and-drained.
     */
    std::optional<T>
    popFor(std::chrono::nanoseconds timeout)
    {
        std::unique_lock lock(mutex_);
        if (!not_empty_.wait_for(lock, timeout,
                                 [&] { return closed_ || !items_.empty(); }))
            return std::nullopt;
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Non-blocking dequeue. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /**
     * Close the queue: producers fail fast, consumers drain what is
     * left and then see end-of-stream.
     */
    void
    close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace lotus

#endif // LOTUS_COMMON_MPMC_QUEUE_H
