/**
 * @file
 * Minimal filesystem helpers for log files and synthetic datasets.
 */

#ifndef LOTUS_COMMON_FILES_H
#define LOTUS_COMMON_FILES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lotus {

/** Write @p bytes to @p path, replacing any existing file. */
void writeFile(const std::string &path, const std::string &bytes);

/**
 * Read the whole file at @p path. Missing files come back as
 * kNotFound and open/read failures as kIoError — dataset files are
 * untrusted input, so an unreadable one must not abort the process.
 */
Result<std::string> tryReadFile(const std::string &path);

/** Fatal wrapper over tryReadFile for trusted paths (configs,
 *  harness-generated fixtures). */
std::string readFile(const std::string &path);

/** Size of the file at @p path in bytes, or 0 if absent. */
std::uint64_t fileSize(const std::string &path);

/** True if @p path exists. */
bool fileExists(const std::string &path);

/** Create directory @p path (and parents). */
void makeDirs(const std::string &path);

/** Recursively delete @p path if it exists. */
void removeAll(const std::string &path);

/**
 * Create a fresh uniquely named directory under the system temp dir.
 * The caller owns cleanup (see TempDir for RAII).
 */
std::string makeTempDir(const std::string &prefix);

/**
 * RAII temporary directory, removed on destruction.
 */
class TempDir
{
  public:
    explicit TempDir(const std::string &prefix = "lotus");
    ~TempDir();

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }

    /** Join a filename onto the temp dir path. */
    std::string file(const std::string &name) const;

  private:
    std::string path_;
};

} // namespace lotus

#endif // LOTUS_COMMON_FILES_H
