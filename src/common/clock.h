/**
 * @file
 * Clock abstractions used by every timed component.
 *
 * All timestamps in the system are nanoseconds since an arbitrary,
 * monotonically increasing epoch (TimeNs). Components that take time
 * measurements accept a Clock so unit tests can substitute a
 * deterministic VirtualClock while production paths use SteadyClock.
 */

#ifndef LOTUS_COMMON_CLOCK_H
#define LOTUS_COMMON_CLOCK_H

#include <atomic>
#include <cstdint>

namespace lotus {

/** Nanoseconds since an arbitrary monotonic epoch. */
using TimeNs = std::int64_t;

/** Convenience conversions. */
constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

/** Convert nanoseconds to (fractional) milliseconds. */
constexpr double toMs(TimeNs t) { return static_cast<double>(t) / 1e6; }

/** Convert nanoseconds to (fractional) microseconds. */
constexpr double toUs(TimeNs t) { return static_cast<double>(t) / 1e3; }

/** Convert nanoseconds to (fractional) seconds. */
constexpr double toSec(TimeNs t) { return static_cast<double>(t) / 1e9; }

/**
 * Source of monotonic timestamps.
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current time in nanoseconds since the clock's epoch. */
    virtual TimeNs now() const = 0;
};

/**
 * Wall-clock backed monotonic clock (std::chrono::steady_clock).
 */
class SteadyClock : public Clock
{
  public:
    TimeNs now() const override;

    /** Process-wide shared instance. */
    static const SteadyClock &instance();
};

/**
 * Deterministic, manually advanced clock for tests.
 *
 * Thread-safe: concurrent readers observe the latest advance.
 */
class VirtualClock : public Clock
{
  public:
    explicit VirtualClock(TimeNs start = 0) : time_(start) {}

    TimeNs now() const override { return time_.load(std::memory_order_acquire); }

    /** Move the clock forward by @p delta nanoseconds. */
    void
    advance(TimeNs delta)
    {
        time_.fetch_add(delta, std::memory_order_acq_rel);
    }

    /** Jump to an absolute time (must not move backwards). */
    void set(TimeNs t) { time_.store(t, std::memory_order_release); }

  private:
    std::atomic<TimeNs> time_;
};

} // namespace lotus

#endif // LOTUS_COMMON_CLOCK_H
