#include "common/result.h"

namespace lotus {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kCorruptData: return "corrupt_data";
      case ErrorCode::kTruncated: return "truncated";
      case ErrorCode::kIoError: return "io_error";
      case ErrorCode::kNotFound: return "not_found";
      case ErrorCode::kTimeout: return "timeout";
      case ErrorCode::kRejected: return "rejected";
    }
    LOTUS_PANIC("bad error code %d", static_cast<int>(code));
}

bool
errorIsTransient(ErrorCode code)
{
    return code == ErrorCode::kIoError || code == ErrorCode::kTimeout;
}

std::string
Error::describe() const
{
    return std::string(errorCodeName(code)) + ": " + message;
}

} // namespace lotus
