/**
 * @file
 * Thread identification helpers.
 *
 * The DataLoader analogue runs the main coordinator and worker loops
 * on named threads; traces and kernel timelines key on a small dense
 * process-like id (pid analogue) rather than opaque std::thread::id.
 */

#ifndef LOTUS_COMMON_THREAD_UTIL_H
#define LOTUS_COMMON_THREAD_UTIL_H

#include <cstdint>
#include <string>

namespace lotus {

/** Dense process-like id of the calling thread (stable for its life). */
std::uint32_t currentTid();

/** Set the calling thread's name for traces and debugging. */
void setCurrentThreadName(const std::string &name);

/** Name previously assigned to the calling thread ("" if none). */
std::string currentThreadName();

} // namespace lotus

#endif // LOTUS_COMMON_THREAD_UTIL_H
