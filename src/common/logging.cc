#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace lotus {

namespace {
std::atomic<bool> inform_enabled{true};
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!inform_enabled.load(std::memory_order_relaxed))
        return;
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    inform_enabled.store(enabled, std::memory_order_relaxed);
}

} // namespace lotus
