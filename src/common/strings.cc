#include "common/strings.h"

#include <cstdint>
#include <cstdio>

namespace lotus {

std::string
vstrFormat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return {};
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strFormat(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vstrFormat(fmt, args);
    va_end(args);
    return out;
}

std::string
strJoin(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
strSplit(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    while (!out.empty() && out.back().empty())
        out.pop_back();
    return out;
}

bool
strStartsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
strEndsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *kUnits[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return strFormat("%llu B", static_cast<unsigned long long>(bytes));
    return strFormat("%.1f %s", value, kUnits[unit]);
}

} // namespace lotus
