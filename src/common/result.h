/**
 * @file
 * Recoverable errors for the sample path.
 *
 * The gem5-spirit split in logging.h (panic = Lotus bug, fatal = bad
 * user config) covers failures that should stop the process. Data
 * that arrives from outside the process — encoded blobs, files on
 * disk, anything a production pipeline would call a "bad record" —
 * must instead fail *recoverably*: one corrupt sample cannot be
 * allowed to abort a characterization campaign. Result<T> is the
 * return currency of that untrusted-input surface (codec decode,
 * blob-store reads); the loader layer turns it into an ErrorPolicy
 * decision (fail / skip / retry).
 */

#ifndef LOTUS_COMMON_RESULT_H
#define LOTUS_COMMON_RESULT_H

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace lotus {

enum class ErrorCode : std::uint8_t
{
    /** Malformed bytes from an untrusted source (corrupt blob). */
    kCorruptData,
    /** A stream or file ended before the expected payload did. */
    kTruncated,
    /** The underlying I/O failed; possibly transient (retryable). */
    kIoError,
    /** A named resource does not exist. */
    kNotFound,
    /** A deadline elapsed before the operation completed (slow or
     *  congested remote store); transient — a retry may find the
     *  store less loaded. */
    kTimeout,
    /** Admission control refused the request (service at capacity).
     *  Not transient from the service's point of view: the caller
     *  decides whether to back off and reconnect. */
    kRejected,
};

/** Stable lower-case name, e.g. "corrupt_data". */
const char *errorCodeName(ErrorCode code);

/** True for codes a bounded retry can plausibly clear. */
bool errorIsTransient(ErrorCode code);

struct Error
{
    ErrorCode code = ErrorCode::kCorruptData;
    std::string message;
    /**
     * Sample-path stage the error surfaced in ("store", "decode",
     * ...). Assigned by the dataset layer, which knows the pipeline
     * position; feeds the {stage=...} label of
     * lotus_loader_sample_errors_total and ErrorEvent trace records.
     */
    std::string stage;

    /** "corrupt_data: <message>". */
    std::string describe() const;
};

/** Build an Error with printf-style formatting. */
#define LOTUS_ERROR(code_, ...)                                               \
    (::lotus::Error{(code_), ::lotus::strFormat(__VA_ARGS__), {}})

/**
 * Either a value or an Error. Accessors assert, so forgetting the
 * ok() check is a Lotus bug (panic), never silent garbage.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : state_(std::move(value)) {}
    Result(Error error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        LOTUS_ASSERT(ok(), "value() on an error Result (%s)",
                     std::get<Error>(state_).describe().c_str());
        return std::get<T>(state_);
    }

    T &
    value() &
    {
        LOTUS_ASSERT(ok(), "value() on an error Result (%s)",
                     std::get<Error>(state_).describe().c_str());
        return std::get<T>(state_);
    }

    /** Move the value out (the Result is spent afterwards). */
    T
    take()
    {
        LOTUS_ASSERT(ok(), "take() on an error Result (%s)",
                     std::get<Error>(state_).describe().c_str());
        return std::move(std::get<T>(state_));
    }

    const Error &
    error() const
    {
        LOTUS_ASSERT(!ok(), "error() on an ok Result");
        return std::get<Error>(state_);
    }

    Error &
    error()
    {
        LOTUS_ASSERT(!ok(), "error() on an ok Result");
        return std::get<Error>(state_);
    }

    /** Move the error out, e.g. to rewrap as a differently-typed
     *  Result (the Result is spent afterwards). */
    Error
    takeError()
    {
        LOTUS_ASSERT(!ok(), "takeError() on an ok Result");
        return std::move(std::get<Error>(state_));
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace lotus

#endif // LOTUS_COMMON_RESULT_H
