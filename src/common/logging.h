/**
 * @file
 * Status and error reporting in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (a Lotus bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef LOTUS_COMMON_LOGGING_H
#define LOTUS_COMMON_LOGGING_H

#include <string>

#include "common/strings.h"

namespace lotus {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace lotus

#define LOTUS_PANIC(...) \
    ::lotus::panicImpl(__FILE__, __LINE__, ::lotus::strFormat(__VA_ARGS__))
#define LOTUS_FATAL(...) \
    ::lotus::fatalImpl(__FILE__, __LINE__, ::lotus::strFormat(__VA_ARGS__))
#define LOTUS_WARN(...) ::lotus::warnImpl(::lotus::strFormat(__VA_ARGS__))
#define LOTUS_INFORM(...) ::lotus::informImpl(::lotus::strFormat(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define LOTUS_ASSERT(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::lotus::panicImpl(                                               \
                __FILE__, __LINE__,                                           \
                std::string("assertion failed: " #cond)                       \
                    __VA_OPT__(+" " + ::lotus::strFormat(__VA_ARGS__)));      \
        }                                                                     \
    } while (0)

#endif // LOTUS_COMMON_LOGGING_H
