#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace lotus {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    LOTUS_ASSERT(bound > 0);
    // Lemire-style rejection-free-enough reduction; bias is negligible
    // for the bounds used in workload synthesis, but reject the short
    // tail anyway for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    LOTUS_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::normal()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_normal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_ = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormalFromMoments(double mean, double stddev)
{
    LOTUS_ASSERT(mean > 0.0 && stddev >= 0.0);
    if (stddev == 0.0)
        return mean;
    const double variance_ratio = (stddev * stddev) / (mean * mean);
    const double sigma2 = std::log1p(variance_ratio);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool
Rng::chance(double probability)
{
    return nextDouble() < probability;
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

} // namespace lotus
