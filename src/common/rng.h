/**
 * @file
 * Deterministic seeded random number generation.
 *
 * Every stochastic component in Lotus-CPP (datasets, transforms,
 * sampling phases, the GPU jitter model) draws from an Rng seeded
 * explicitly, so benches and tests are reproducible bit-for-bit across
 * runs on the same platform.
 */

#ifndef LOTUS_COMMON_RNG_H
#define LOTUS_COMMON_RNG_H

#include <cstdint>

namespace lotus {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast, and statistically strong enough for workload synthesis.
 * Not suitable for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Uniform 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal parameterized by the mean/stddev of the *result*. */
    double logNormalFromMoments(double mean, double stddev);

    /** Bernoulli trial. */
    bool chance(double probability);

    /** Derive an independent child generator (for per-worker streams). */
    Rng fork();

  private:
    std::uint64_t state_[4];
    double spare_normal_ = 0.0;
    bool has_spare_ = false;
};

} // namespace lotus

#endif // LOTUS_COMMON_RNG_H
