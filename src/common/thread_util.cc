#include "common/thread_util.h"

#include <atomic>

#include <pthread.h>

namespace lotus {

namespace {

std::atomic<std::uint32_t> next_tid{1};

thread_local std::uint32_t this_tid = 0;
thread_local std::string this_name;

} // namespace

std::uint32_t
currentTid()
{
    if (this_tid == 0)
        this_tid = next_tid.fetch_add(1, std::memory_order_relaxed);
    return this_tid;
}

void
setCurrentThreadName(const std::string &name)
{
    this_name = name;
    // Best effort: also expose to native tooling (15-char limit).
    pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
}

std::string
currentThreadName()
{
    return this_name;
}

} // namespace lotus
