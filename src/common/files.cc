#include "common/files.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/strings.h"

namespace fs = std::filesystem;

namespace lotus {

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        LOTUS_FATAL("cannot open %s for writing", path.c_str());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out)
        LOTUS_FATAL("short write to %s", path.c_str());
}

Result<std::string>
tryReadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::error_code ec;
        const bool missing = !fs::exists(path, ec) || ec;
        return LOTUS_ERROR(missing ? ErrorCode::kNotFound
                                   : ErrorCode::kIoError,
                           "cannot open %s for reading", path.c_str());
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad())
        return LOTUS_ERROR(ErrorCode::kIoError, "read failed on %s",
                           path.c_str());
    return bytes;
}

std::string
readFile(const std::string &path)
{
    Result<std::string> bytes = tryReadFile(path);
    if (!bytes.ok())
        LOTUS_FATAL("%s", bytes.error().describe().c_str());
    return bytes.take();
}

std::uint64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

void
makeDirs(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec)
        LOTUS_FATAL("mkdir %s: %s", path.c_str(), ec.message().c_str());
}

void
removeAll(const std::string &path)
{
    std::error_code ec;
    fs::remove_all(path, ec);
}

std::string
makeTempDir(const std::string &prefix)
{
    static std::atomic<std::uint64_t> counter{0};
    const auto base = fs::temp_directory_path();
    for (int attempt = 0; attempt < 1000; ++attempt) {
        const auto name = strFormat(
            "%s-%d-%llu", prefix.c_str(), static_cast<int>(::getpid()),
            static_cast<unsigned long long>(counter.fetch_add(1)));
        const auto dir = base / name;
        std::error_code ec;
        if (fs::create_directory(dir, ec))
            return dir.string();
    }
    LOTUS_FATAL("cannot create temp dir with prefix %s", prefix.c_str());
}

TempDir::TempDir(const std::string &prefix) : path_(makeTempDir(prefix)) {}

TempDir::~TempDir()
{
    removeAll(path_);
}

std::string
TempDir::file(const std::string &name) const
{
    return (fs::path(path_) / name).string();
}

} // namespace lotus
