#include "dataflow/sampler.h"

#include <numeric>

#include "common/logging.h"

namespace lotus::dataflow {

std::vector<std::int64_t>
sequentialIndices(std::int64_t dataset_size)
{
    LOTUS_ASSERT(dataset_size >= 0);
    std::vector<std::int64_t> indices(
        static_cast<std::size_t>(dataset_size));
    std::iota(indices.begin(), indices.end(), 0);
    return indices;
}

std::vector<std::int64_t>
shuffledIndices(std::int64_t dataset_size, std::uint64_t seed)
{
    auto indices = sequentialIndices(dataset_size);
    Rng rng(seed);
    for (std::size_t i = indices.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.nextBelow(i));
        std::swap(indices[i - 1], indices[j]);
    }
    return indices;
}

std::vector<std::vector<std::int64_t>>
batchIndices(const std::vector<std::int64_t> &indices, int batch_size,
             bool drop_last)
{
    LOTUS_ASSERT(batch_size > 0, "batch size must be positive");
    std::vector<std::vector<std::int64_t>> batches;
    std::size_t i = 0;
    while (i < indices.size()) {
        const std::size_t take = std::min(
            static_cast<std::size_t>(batch_size), indices.size() - i);
        if (take < static_cast<std::size_t>(batch_size) && drop_last)
            break;
        batches.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(i),
                             indices.begin() +
                                 static_cast<std::ptrdiff_t>(i + take));
        i += take;
    }
    return batches;
}

std::vector<std::vector<std::int64_t>>
epochBatchPlan(std::int64_t dataset_size, int batch_size, bool shuffle,
               bool drop_last, std::uint64_t seed, std::int64_t epoch)
{
    constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
    const auto indices =
        shuffle ? shuffledIndices(
                      dataset_size,
                      seed + kGolden * static_cast<std::uint64_t>(epoch))
                : sequentialIndices(dataset_size);
    return batchIndices(indices, batch_size, drop_last);
}

} // namespace lotus::dataflow
