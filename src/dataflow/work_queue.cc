#include "dataflow/work_queue.h"

#include <chrono>

#include "common/logging.h"

namespace lotus::dataflow {

TaskDeque::TaskDeque(std::int64_t capacity)
{
    LOTUS_ASSERT(capacity > 0 && (capacity & (capacity - 1)) == 0,
                 "deque capacity must be a power of two");
    rings_.push_back(std::make_unique<Ring>(capacity));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
}

TaskDeque::Ring *
TaskDeque::grow(Ring *old, std::int64_t top, std::int64_t bottom)
{
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring *fresh = rings_.back().get();
    for (std::int64_t i = top; i < bottom; ++i)
        fresh->put(i, old->get(i));
    // Publish after the copy; a thief that still reads the old ring
    // sees identical entries for every index in [top, bottom).
    ring_.store(fresh, std::memory_order_release);
    return fresh;
}

void
TaskDeque::push(SampleTask *task)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring *ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity)
        ring = grow(ring, t, b);
    ring->put(b, task);
    // Release: the slot write (and the task fields the owner set)
    // become visible to any thief that observes the new bottom.
    bottom_.store(b + 1, std::memory_order_release);
}

SampleTask *
TaskDeque::pop()
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring *ring = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the reservation of slot b must be
    // globally ordered against a concurrent thief's top read/CAS
    // (fence-free Chase–Lev; see the file comment for why no
    // atomic_thread_fence).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
        // Deque was empty; undo the reservation.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }
    SampleTask *task = ring->get(b);
    if (t == b) {
        // Last element: race the thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            task = nullptr; // a thief won
        bottom_.store(b + 1, std::memory_order_relaxed);
        return task;
    }
    return task;
}

SampleTask *
TaskDeque::steal()
{
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
        return nullptr;
    Ring *ring = ring_.load(std::memory_order_acquire);
    SampleTask *task = ring->get(t);
    // The slot stays valid until top moves past t (push never laps
    // top), so a successful CAS hands us exactly the task we read.
    if (!top_.compare_exchange_strong(t, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
        return nullptr; // lost the race; caller retries elsewhere
    return task;
}

std::int64_t
TaskDeque::sizeEstimate() const
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
}

StealGroup::StealGroup(int num_workers)
{
    LOTUS_ASSERT(num_workers > 0);
    deques_.reserve(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w)
        deques_.push_back(std::make_unique<TaskDeque>());
}

SampleTask *
StealGroup::stealBusiest(int thief, int *victim_out)
{
    const int n = size();
    // Two passes: a failed CAS (or a just-drained victim) gets one
    // re-scan before the caller falls back to the index queue.
    for (int attempt = 0; attempt < 2; ++attempt) {
        int victim = -1;
        std::int64_t best = 0;
        for (int w = 0; w < n; ++w) {
            if (w == thief)
                continue;
            const std::int64_t depth = deques_[static_cast<std::size_t>(w)]
                                           ->sizeEstimate();
            if (depth > best) {
                best = depth;
                victim = w;
            }
        }
        if (victim < 0)
            return nullptr;
        if (SampleTask *task =
                deques_[static_cast<std::size_t>(victim)]->steal()) {
            *victim_out = victim;
            return task;
        }
    }
    return nullptr;
}

std::uint64_t
WorkSignal::workEpoch() const
{
    std::lock_guard lock(mutex_);
    return work_epoch_;
}

void
WorkSignal::notifyWork()
{
    {
        std::lock_guard lock(mutex_);
        ++work_epoch_;
    }
    cv_.notify_all();
}

void
WorkSignal::notifyShutdown()
{
    {
        std::lock_guard lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
}

void
WorkSignal::waitForWork(std::uint64_t seen_epoch, TimeNs timeout)
{
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, std::chrono::nanoseconds(timeout), [&] {
        return work_epoch_ != seen_epoch || shutdown_;
    });
}

} // namespace lotus::dataflow
