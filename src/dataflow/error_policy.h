/**
 * @file
 * Loader-level handling of recoverable sample errors.
 *
 * The untrusted-input surface (codec, store) reports bad data as
 * lotus::Error values; ErrorPolicy is how the loader turns those into
 * campaign-level behavior, mirroring what production input pipelines
 * do (tf.data error-tolerant iterators, PyTorch worker re-raise).
 */

#ifndef LOTUS_DATAFLOW_ERROR_POLICY_H
#define LOTUS_DATAFLOW_ERROR_POLICY_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/result.h"

namespace lotus::dataflow {

enum class ErrorPolicy : std::uint8_t
{
    /**
     * Surface the error to the consumer: next() throws a LoaderError
     * carrying the failing batch id, worker id, and the underlying
     * Error (the PyTorch-style worker re-raise). Default, because
     * silently dropping data is never the right surprise.
     */
    kFail,
    /**
     * Drop the bad sample and refill the batch slot from a spare
     * index so batch cadence and batch size stay intact; count the
     * drop in lotus_loader_sample_errors_total.
     */
    kSkip,
    /**
     * Retry the same sample a bounded number of times if the error is
     * transient (kIoError); non-transient errors and exhausted
     * retries fall back to kFail semantics.
     */
    kRetry,
};

/** Stable lower-case name, e.g. "skip" (metric label value). */
const char *errorPolicyName(ErrorPolicy policy);

/** Policy plus its tuning knobs, threaded from the loader options
 *  down to the Fetcher. */
struct ErrorHandling
{
    ErrorPolicy policy = ErrorPolicy::kFail;
    /** kRetry: attempts after the first failure before giving up. */
    int max_retries = 2;
    /** kSkip: replacement candidates tried per bad slot before the
     *  batch is declared unfillable (guards a fully corrupt store). */
    int max_refill_attempts = 8;
};

/**
 * Thrown by DataLoader::next() / IterableDataLoader::next() under
 * ErrorPolicy::kFail (and on exhausted kRetry) — the only exception
 * in the codebase, used deliberately so a failed batch unwinds
 * through the consumer loop the way a PyTorch DataLoader re-raise
 * does, carrying exactly what an operator needs to find the bad
 * record.
 */
class LoaderError : public std::runtime_error
{
  public:
    LoaderError(Error error, std::int64_t batch_id, int worker_id)
        : std::runtime_error(describe(error, batch_id, worker_id)),
          error_(std::move(error)), batch_id_(batch_id),
          worker_id_(worker_id)
    {
    }

    const Error &error() const { return error_; }
    /** Batch the failing sample belonged to. */
    std::int64_t batchId() const { return batch_id_; }
    /** Worker that hit the failure (-1 for synchronous mode). */
    int workerId() const { return worker_id_; }

  private:
    static std::string describe(const Error &error, std::int64_t batch_id,
                                int worker_id);

    Error error_;
    std::int64_t batch_id_;
    int worker_id_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_ERROR_POLICY_H
