/**
 * @file
 * Dataset fetcher: produce one collated batch from a list of indices
 * (the common fetch() method across PyTorch's _MapDatasetFetcher /
 * _IterableDatasetFetcher that LotusTrace instruments for [T1]).
 */

#ifndef LOTUS_DATAFLOW_FETCHER_H
#define LOTUS_DATAFLOW_FETCHER_H

#include <memory>

#include "hwcount/registry.h"
#include "pipeline/collate.h"
#include "pipeline/dataset.h"

namespace lotus::dataflow {

class Fetcher
{
  public:
    Fetcher(std::shared_ptr<const pipeline::Dataset> dataset,
            std::shared_ptr<const pipeline::Collate> collate);

    /**
     * Produce the batch for @p indices. ctx supplies the tracer, the
     * worker identity and RNG; per-op [T3] records come from the
     * dataset's Compose, and the collation is logged as a [T3] op
     * named "Collate". @p reuse optionally donates a recycled batch
     * tensor's storage to the collation (see Collate::collateInto);
     * pass a default-constructed tensor to allocate fresh.
     */
    pipeline::Batch fetch(std::int64_t batch_id,
                          const std::vector<std::int64_t> &indices,
                          pipeline::PipelineContext &ctx,
                          tensor::Tensor reuse = {}) const;

    const pipeline::Dataset &dataset() const { return *dataset_; }

  private:
    std::shared_ptr<const pipeline::Dataset> dataset_;
    std::shared_ptr<const pipeline::Collate> collate_;
    hwcount::OpTag collate_tag_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_FETCHER_H
