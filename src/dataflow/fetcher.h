/**
 * @file
 * Dataset fetcher: produce one collated batch from a list of indices
 * (the common fetch() method across PyTorch's _MapDatasetFetcher /
 * _IterableDatasetFetcher that LotusTrace instruments for [T1]).
 */

#ifndef LOTUS_DATAFLOW_FETCHER_H
#define LOTUS_DATAFLOW_FETCHER_H

#include <memory>

#include "dataflow/error_policy.h"
#include "hwcount/registry.h"
#include "pipeline/collate.h"
#include "pipeline/dataset.h"

namespace lotus::dataflow {

/** Counter family for recoverable sample errors; exported with
 *  {policy="...",stage="..."} labels. */
inline constexpr const char *kSampleErrorsMetric =
    "lotus_loader_sample_errors_total";

/**
 * Record one observed recoverable sample error: bump
 * lotus_loader_sample_errors_total{policy,stage} and, when ctx has a
 * tracer, log an ErrorEvent instant ("error:<stage>") in the calling
 * lane. Shared by the map-style Fetcher and the iterable loader.
 */
void noteSampleError(const Error &error, std::int64_t sample_index,
                     pipeline::PipelineContext &ctx, ErrorPolicy policy);

class Fetcher
{
  public:
    Fetcher(std::shared_ptr<const pipeline::Dataset> dataset,
            std::shared_ptr<const pipeline::Collate> collate);

    /**
     * Produce the batch for @p indices. ctx supplies the tracer, the
     * worker identity and RNG; per-op [T3] records come from the
     * dataset's Compose, and the collation is logged as a [T3] op
     * named "Collate". @p reuse optionally donates a recycled batch
     * tensor's storage to the collation (see Collate::collateInto);
     * pass a default-constructed tensor to allocate fresh.
     *
     * Fatal on bad sample data — the wrapper for trusted fixtures;
     * loader paths go through tryFetch.
     */
    pipeline::Batch fetch(std::int64_t batch_id,
                          const std::vector<std::int64_t> &indices,
                          pipeline::PipelineContext &ctx,
                          tensor::Tensor reuse = {}) const;

    /**
     * Like fetch(), but recoverable sample errors are resolved by
     * @p errors: kSkip refills the bad slot from spare indices
     * ((index + attempt) % dataset size — deterministic, may
     * duplicate a sample within the epoch, keeps the batch full),
     * kRetry re-reads the same index while the error is transient,
     * and kFail (or an unrecoverable error under the other policies)
     * returns the error, stamped with the failing sample's stage.
     * Every observed sample error increments
     * lotus_loader_sample_errors_total{policy,stage} and logs an
     * ErrorEvent trace record in the worker's lane.
     */
    Result<pipeline::Batch> tryFetch(std::int64_t batch_id,
                                     const std::vector<std::int64_t> &indices,
                                     pipeline::PipelineContext &ctx,
                                     const ErrorHandling &errors,
                                     tensor::Tensor reuse = {}) const;

    const pipeline::Dataset &dataset() const { return *dataset_; }

  private:
    /** Resolve one batch slot under the error policy. */
    Result<pipeline::Sample> fetchSample(std::int64_t index,
                                         pipeline::PipelineContext &ctx,
                                         const ErrorHandling &errors) const;

    std::shared_ptr<const pipeline::Dataset> dataset_;
    std::shared_ptr<const pipeline::Collate> collate_;
    hwcount::OpTag collate_tag_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_FETCHER_H
