/**
 * @file
 * Dataset fetcher: produce one collated batch from a list of indices
 * (the common fetch() method across PyTorch's _MapDatasetFetcher /
 * _IterableDatasetFetcher that LotusTrace instruments for [T1]).
 */

#ifndef LOTUS_DATAFLOW_FETCHER_H
#define LOTUS_DATAFLOW_FETCHER_H

#include <memory>
#include <optional>

#include "cache/sample_cache.h"
#include "dataflow/error_policy.h"
#include "dataflow/read_ahead.h"
#include "hwcount/registry.h"
#include "pipeline/collate.h"
#include "pipeline/dataset.h"

namespace lotus::dataflow {

/** Counter family for recoverable sample errors; exported with
 *  {policy="...",stage="..."} labels. */
inline constexpr const char *kSampleErrorsMetric =
    "lotus_loader_sample_errors_total";

/**
 * Record one observed recoverable sample error: bump
 * lotus_loader_sample_errors_total{policy,stage} and, when ctx has a
 * tracer, log an ErrorEvent instant ("error:<stage>") in the calling
 * lane. Shared by the map-style Fetcher and the iterable loader.
 */
void noteSampleError(const Error &error, std::int64_t sample_index,
                     pipeline::PipelineContext &ctx, ErrorPolicy policy);

/**
 * Augmentation RNG seeding contract (DESIGN.md §10). When
 * `per_sample` is set, the fetch path reseeds ctx.rng with
 * sampleRngSeed(epoch_base, index) immediately before *every* sample
 * attempt — including kSkip refill candidates and kRetry re-reads —
 * so a sample's random draws depend only on (base seed, epoch,
 * dataset index), never on which worker executes it or in what order.
 * This is what makes Schedule::kWorkStealing bit-identical to
 * round-robin and to num_workers=0 for the same seed. Off (the
 * default) preserves a free-running per-caller stream for standalone
 * Fetcher users.
 */
struct FetchSeeding
{
    bool per_sample = false;
    /** Per-epoch base, e.g. DataLoader's (seed, epoch) mix. */
    std::uint64_t epoch_base = 0;
};

/** The per-attempt seed: a splitmix64-style mix of the epoch base and
 *  the dataset index (not the batch slot), so refilled candidates
 *  draw exactly what they would have drawn in their own slot. */
std::uint64_t sampleRngSeed(std::uint64_t epoch_base,
                            std::int64_t sample_index);

class Fetcher
{
  public:
    Fetcher(std::shared_ptr<const pipeline::Dataset> dataset,
            std::shared_ptr<const pipeline::Collate> collate);

    /**
     * Produce the batch for @p indices. ctx supplies the tracer, the
     * worker identity and RNG; per-op [T3] records come from the
     * dataset's Compose, and the collation is logged as a [T3] op
     * named "Collate". @p reuse optionally donates a recycled batch
     * tensor's storage to the collation (see Collate::collateInto);
     * pass a default-constructed tensor to allocate fresh.
     *
     * Fatal on bad sample data — the wrapper for trusted fixtures;
     * loader paths go through tryFetch.
     */
    pipeline::Batch fetch(std::int64_t batch_id,
                          const std::vector<std::int64_t> &indices,
                          pipeline::PipelineContext &ctx,
                          tensor::Tensor reuse = {}) const;

    /**
     * Like fetch(), but recoverable sample errors are resolved by
     * @p errors: kSkip refills the bad slot from spare indices
     * ((index + attempt) % dataset size — deterministic, may
     * duplicate a sample within the epoch, keeps the batch full),
     * kRetry re-reads the same index while the error is transient,
     * and kFail (or an unrecoverable error under the other policies)
     * returns the error, stamped with the failing sample's stage.
     * Every observed sample error increments
     * lotus_loader_sample_errors_total{policy,stage} and logs an
     * ErrorEvent trace record in the worker's lane.
     */
    Result<pipeline::Batch> tryFetch(std::int64_t batch_id,
                                     const std::vector<std::int64_t> &indices,
                                     pipeline::PipelineContext &ctx,
                                     const ErrorHandling &errors,
                                     tensor::Tensor reuse = {},
                                     const FetchSeeding &seeding = {}) const;

    /**
     * Collate already-fetched samples into the batch for @p batch_id,
     * with the same [T3] "Collate" trace span and hwcount tag as the
     * fetch paths. The work-stealing scheduler resolves slots across
     * workers and hands the assembled sample vector here.
     */
    pipeline::Batch collateBatch(std::int64_t batch_id,
                                 std::vector<pipeline::Sample> samples,
                                 pipeline::PipelineContext &ctx,
                                 tensor::Tensor reuse = {}) const;

    const pipeline::Dataset &dataset() const { return *dataset_; }

    /**
     * Attach a decoded-sample cache. Only engages when the dataset
     * opts in via cacheableSplit(); a non-cacheable dataset keeps the
     * plain tryGet path (warned once at attach time). Every fetch path
     * — round-robin workers, work-stealing tasks, and the synchronous
     * loader — funnels single-sample reads through getSample(), so
     * attaching here covers all three.
     */
    void setCache(std::shared_ptr<cache::SampleCache> cache);

    /**
     * Attach a read-ahead engine. getSample() then claims the
     * prefetched blob before any store-reading path and stages it for
     * the dataset's readBlobOrStaged(); a claim miss reads
     * synchronously, so the engine is purely opportunistic. With a
     * decoded-sample cache attached, claims happen only on the
     * cache-miss path — a warm hit never consumes (or waits for) a
     * prefetched blob.
     */
    void setReadAhead(std::shared_ptr<ReadAhead> read_ahead);

    /**
     * Cache-aware single-sample read. On a warm hit the deterministic
     * prefix (store read + decode + deterministic transforms) is
     * skipped entirely and only the random suffix runs — the caller
     * must have reseeded ctx.rng exactly as for a full tryGet, and the
     * result is bit-identical because the prefix draws nothing. On a
     * miss, the prefix-stage sample is admitted to the cache before
     * the suffix runs. Without a cache (or for a non-cacheable
     * dataset) this is exactly dataset().tryGet().
     */
    Result<pipeline::Sample> getSample(std::int64_t index,
                                       pipeline::PipelineContext &ctx) const;

  private:
    /** Resolve one batch slot under the error policy. */
    Result<pipeline::Sample> fetchSample(std::int64_t index,
                                         pipeline::PipelineContext &ctx,
                                         const ErrorHandling &errors,
                                         const FetchSeeding &seeding) const;

    std::shared_ptr<const pipeline::Dataset> dataset_;
    std::shared_ptr<const pipeline::Collate> collate_;
    hwcount::OpTag collate_tag_;
    /** lotus_pipeline_op_ns{op="Collate"}: collate joins the per-op
     *  [T3] histograms so the tuner can weigh it against transforms. */
    metrics::Histogram *collate_ns_;
    std::shared_ptr<cache::SampleCache> cache_;
    /** Cached dataset cacheableSplit(); nullopt disables the cache. */
    std::optional<pipeline::CacheableSplit> split_;
    /** Read-ahead engine shared with the DataLoader (null = off). */
    std::shared_ptr<ReadAhead> read_ahead_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_FETCHER_H
