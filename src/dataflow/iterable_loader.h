/**
 * @file
 * DataLoader for iterable datasets (_IterableDatasetFetcher path).
 *
 * Workers stream their shard, assemble batches of batch_size, and
 * push them to the shared data queue. There is no index protocol and
 * no expected consumption order: the main process yields batches in
 * arrival order, so out-of-order caching never happens — but [T1]
 * fetch spans and [T2] wait spans are instrumented identically to the
 * map-style loader, via the same common fetch points.
 *
 * The decoded-sample cache (CachePolicy / lotus::cache) does not
 * apply here: cache keys need a stable per-sample dataset index, and
 * a stream yields elements by position in the stream, not identity —
 * reshuffled or re-sharded epochs would pair cached payloads with the
 * wrong elements. Stream-style reuse is snapshotting the *source*,
 * which is out of scope for this loader.
 */

#ifndef LOTUS_DATAFLOW_ITERABLE_LOADER_H
#define LOTUS_DATAFLOW_ITERABLE_LOADER_H

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "dataflow/error_policy.h"
#include "hwcount/registry.h"
#include "pipeline/collate.h"
#include "pipeline/iterable_dataset.h"
#include "trace/logger.h"

namespace lotus::dataflow {

struct IterableLoaderOptions
{
    int batch_size = 1;
    int num_workers = 1;
    /** Keep a trailing partial batch per worker shard. */
    bool drop_last = false;
    std::uint64_t seed = 0;
    trace::TraceLogger *logger = nullptr;
    /**
     * Recoverable sample errors: kFail makes next() throw a
     * LoaderError, kSkip drops the bad sample and streams on. kRetry
     * degrades to kSkip here — a stream consumes the sample either
     * way, so the same record cannot be re-fetched.
     */
    ErrorPolicy error_policy = ErrorPolicy::kFail;
};

class IterableDataLoader
{
  public:
    IterableDataLoader(
        std::shared_ptr<const pipeline::IterableDataset> dataset,
        std::shared_ptr<const pipeline::Collate> collate,
        IterableLoaderOptions options);
    ~IterableDataLoader();

    IterableDataLoader(const IterableDataLoader &) = delete;
    IterableDataLoader &operator=(const IterableDataLoader &) = delete;

    /** Begin (or restart) streaming. Implicit on first next(). */
    void startEpoch();

    /** Next batch in arrival order; nullopt once every shard ends.
     *  Under ErrorPolicy::kFail a bad sample surfaces here as a
     *  thrown LoaderError; the epoch is over and an explicit
     *  startEpoch() restarts it. */
    std::optional<pipeline::Batch> next();

    std::uint32_t mainPid() const { return main_pid_; }

  private:
    struct DataMsg
    {
        bool done = false; ///< worker-exhausted marker
        int worker_id = -1;
        pipeline::Batch batch;
        /** Set when the worker's stream failed under kFail. */
        std::optional<Error> error;
    };

    void workerLoop(int worker_id);
    void shutdownWorkers();

    std::shared_ptr<const pipeline::IterableDataset> dataset_;
    std::shared_ptr<const pipeline::Collate> collate_;
    IterableLoaderOptions options_;
    std::uint32_t main_pid_;
    hwcount::OpTag collate_tag_;

    bool epoch_started_ = false;
    /** Stream-restart counter mixed into worker RNG seeds so
     *  augmentation draws differ across epochs. */
    std::int64_t epoch_ = -1;
    int workers_done_ = 0;
    std::unique_ptr<MpmcQueue<DataMsg>> data_queue_;
    std::vector<std::thread> workers_;
    std::atomic<std::int64_t> next_batch_id_{0};
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_ITERABLE_LOADER_H
