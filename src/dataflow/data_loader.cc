#include "dataflow/data_loader.h"

#include <chrono>
#include <limits>

#include "common/strings.h"
#include "common/thread_util.h"
#include "dataflow/sampler.h"
#include "dataflow/task_runner.h"
#include "hwcount/thread_counters.h"

namespace lotus::dataflow {

using pipeline::Batch;

namespace {

/** Idle-worker wake backstop under work-stealing; wake events from
 *  StealGroup::notifyWork make the common case prompt. */
constexpr TimeNs kStealIdleWait = 200 * kMicrosecond;

/**
 * Option validation is a user-facing contract (fatal, not panic):
 * bad configs must fail loudly at construction — and now also at
 * reconfigure(), which funnels through the same checks — never
 * half-run.
 */
void
validateOptions(const DataLoaderOptions &options)
{
    if (options.batch_size <= 0)
        LOTUS_FATAL("DataLoaderOptions: batch_size must be > 0 (got %d)",
                    options.batch_size);
    if (options.num_workers < 0)
        LOTUS_FATAL("DataLoaderOptions: num_workers must be >= 0 (got %d)",
                    options.num_workers);
    if (options.prefetch_factor < 1)
        LOTUS_FATAL(
            "DataLoaderOptions: prefetch_factor must be >= 1 (got %d)",
            options.prefetch_factor);
    if (options.max_retries < 0)
        LOTUS_FATAL("DataLoaderOptions: max_retries must be >= 0 (got %d)",
                    options.max_retries);
    if (options.max_refill_attempts < 0)
        LOTUS_FATAL(
            "DataLoaderOptions: max_refill_attempts must be >= 0 (got %d)",
            options.max_refill_attempts);
    // The priming budget prefetch_factor * num_workers must stay an
    // int: overflow used to wrap silently and prime nothing (or spin
    // the epoch-start loop for minutes). Huge-but-valid factors are
    // fine — startEpoch caps the priming rounds at numBatches().
    if (static_cast<std::int64_t>(options.prefetch_factor) *
            std::max(options.num_workers, 1) >
        std::numeric_limits<int>::max())
        LOTUS_FATAL("DataLoaderOptions: prefetch_factor x num_workers "
                    "overflows (%d x %d)",
                    options.prefetch_factor, options.num_workers);
    if (options.cache_policy != CachePolicy::kNone) {
        if (options.cache_budget_bytes <= 0)
            LOTUS_FATAL("DataLoaderOptions: cache_budget_bytes must be "
                        "> 0 when caching (got %lld)",
                        static_cast<long long>(options.cache_budget_bytes));
        if (options.cache_shards <= 0)
            LOTUS_FATAL(
                "DataLoaderOptions: cache_shards must be > 0 (got %d)",
                options.cache_shards);
    }
    if (options.cache_policy == CachePolicy::kMaterialize &&
        options.materialize_dir.empty())
        LOTUS_FATAL("DataLoaderOptions: CachePolicy::kMaterialize needs "
                    "a materialize_dir");
    if (options.cache_policy != CachePolicy::kMaterialize &&
        !options.materialize_dir.empty())
        LOTUS_FATAL("DataLoaderOptions: materialize_dir is set but "
                    "cache_policy is not kMaterialize");
    if (options.read_ahead_depth < 0)
        LOTUS_FATAL(
            "DataLoaderOptions: read_ahead_depth must be >= 0 (got %d)",
            options.read_ahead_depth);
    if (options.io_threads < 0)
        LOTUS_FATAL("DataLoaderOptions: io_threads must be >= 0 (got %d)",
                    options.io_threads);
    if ((options.read_ahead_depth > 0) != (options.io_threads > 0))
        LOTUS_FATAL("DataLoaderOptions: read_ahead_depth and io_threads "
                    "must be enabled together (got %d and %d)",
                    options.read_ahead_depth, options.io_threads);
}

/**
 * RAII publication of one fetch span's measured PMU delta into the
 * lotus_pmu_* counters. Costs one branch on threads without a live
 * counter group (the common case: registry disabled or sim backend),
 * so it can wrap every fetch unconditionally.
 */
class PmuSpanGuard
{
  public:
    PmuSpanGuard(metrics::Counter *cycles, metrics::Counter *instructions,
                 metrics::Counter *llc_misses)
        : cycles_(cycles), instructions_(instructions),
          llc_misses_(llc_misses),
          active_(hwcount::ThreadCounterRegistry::threadHasPmu())
    {
        if (active_)
            start_ = hwcount::ThreadCounterRegistry::readCurrent();
    }

    ~PmuSpanGuard()
    {
        if (!active_)
            return;
        const hwcount::CounterSet delta = hwcount::counterDelta(
            hwcount::ThreadCounterRegistry::readCurrent(), start_);
        cycles_->add(delta.cycles);
        instructions_->add(delta.instructions);
        llc_misses_->add(delta.llc_misses);
    }

    PmuSpanGuard(const PmuSpanGuard &) = delete;
    PmuSpanGuard &operator=(const PmuSpanGuard &) = delete;

  private:
    metrics::Counter *cycles_;
    metrics::Counter *instructions_;
    metrics::Counter *llc_misses_;
    bool active_;
    hwcount::CounterSet start_;
};

} // namespace

DataLoader::DataLoader(std::shared_ptr<const pipeline::Dataset> dataset,
                       std::shared_ptr<const pipeline::Collate> collate,
                       DataLoaderOptions options)
    : dataset_(dataset), fetcher_(std::move(dataset), std::move(collate)),
      options_(options), main_pid_(currentTid())
{
    validateOptions(options_);
    if (options_.cache_policy != CachePolicy::kNone) {
        cache::CacheConfig config;
        config.budget_bytes = options_.cache_budget_bytes;
        config.shards = options_.cache_shards;
        if (options_.cache_policy == CachePolicy::kMaterialize) {
            const auto split = dataset_->cacheableSplit();
            config.materialize_dir = options_.materialize_dir;
            config.fingerprint =
                split.has_value() ? split->prefix_fingerprint : 0;
        }
        // Directory collisions between live loaders are fatal inside
        // MaterializeStore's claim, i.e. right here at construction.
        cache_ = std::make_shared<cache::SampleCache>(config);
        fetcher_.setCache(cache_);
    }
    rebuildReadAhead();
    registerMetrics();
    rebuildBatches();
}

void
DataLoader::rebuildReadAhead()
{
    if (options_.read_ahead_depth <= 0) {
        if (read_ahead_ != nullptr) {
            read_ahead_.reset();
            fetcher_.setReadAhead(nullptr);
        }
        return;
    }
    const pipeline::BlobStore *store = dataset_->blobStore();
    if (store == nullptr) {
        LOTUS_WARN("read_ahead_depth set but the dataset exposes no "
                   "blobStore(); running without read-ahead");
        return;
    }
    if (read_ahead_ != nullptr &&
        read_ahead_->options().depth == options_.read_ahead_depth &&
        read_ahead_->options().io_threads == options_.io_threads)
        return;
    ReadAheadOptions ra;
    ra.depth = options_.read_ahead_depth;
    ra.io_threads = options_.io_threads;
    // Build the replacement first, then swap: the fetcher's pointer is
    // never left dangling, and the old engine joins its I/O threads
    // when the last reference drops.
    read_ahead_ = std::make_shared<ReadAhead>(store, ra);
    fetcher_.setReadAhead(read_ahead_);
}

LoaderReconfig
DataLoader::currentConfig() const
{
    LoaderReconfig config;
    config.num_workers = options_.num_workers;
    config.prefetch_factor = options_.prefetch_factor;
    config.schedule = options_.schedule;
    config.read_ahead_depth = options_.read_ahead_depth;
    config.io_threads = options_.io_threads;
    return config;
}

void
DataLoader::reconfigure(const LoaderReconfig &next)
{
    // Workers, queues, and the read-ahead plan are all per-epoch
    // state; swapping them under a live epoch would orphan in-flight
    // batches. Epoch boundaries only (DESIGN.md §14).
    if (epoch_started_ && rcvd_idx_ < numBatches())
        LOTUS_FATAL("DataLoader::reconfigure: epoch %lld still in "
                    "flight (batch %lld of %lld); reconfiguration is "
                    "epoch-boundary only",
                    static_cast<long long>(epoch_),
                    static_cast<long long>(rcvd_idx_),
                    static_cast<long long>(numBatches()));
    // A loader co-hosted with a PreprocServer does not own the worker
    // fleet: a tuner decision that resizes or reschedules it would
    // silently fight the server's weighted-fair scheduler. Per-client
    // knobs (prefetch, read-ahead) stay tunable.
    if (!attached_service_.empty() &&
        (next.num_workers != options_.num_workers ||
         next.schedule != options_.schedule))
        LOTUS_FATAL(
            "DataLoader::reconfigure: this loader is attached to "
            "preprocessing service '%s', which owns the shared worker "
            "fleet; fleet-level knobs (num_workers %d->%d, schedule "
            "%d->%d) must be changed on the server, not per client — "
            "only prefetch_factor, read_ahead_depth, and io_threads "
            "may change here",
            attached_service_.c_str(), options_.num_workers,
            next.num_workers, static_cast<int>(options_.schedule),
            static_cast<int>(next.schedule));
    DataLoaderOptions candidate = options_;
    candidate.num_workers = next.num_workers;
    candidate.prefetch_factor = next.prefetch_factor;
    candidate.schedule = next.schedule;
    candidate.read_ahead_depth = next.read_ahead_depth;
    candidate.io_threads = next.io_threads;
    validateOptions(candidate);
    shutdownWorkers();
    const bool workers_changed =
        candidate.num_workers != options_.num_workers;
    options_ = candidate;
    if (workers_changed)
        registerMetrics();
    rebuildReadAhead();
}

void
DataLoader::registerMetrics()
{
    // Re-entrant: reconfigure() re-runs this when the worker count
    // changes, so the per-worker vectors must rebuild, not append.
    metrics_.fetch_ns.clear();
    metrics_.index_queue_depth.clear();
    metrics_.steals.clear();
    auto &registry = metrics::MetricsRegistry::instance();
    metrics_.batches_total = registry.counter("lotus_loader_batches_total");
    metrics_.ooo_batches_total =
        registry.counter("lotus_loader_ooo_batches_total");
    metrics_.wait_ns_total = registry.counter("lotus_loader_wait_ns_total");
    metrics_.wait_ns = registry.histogram("lotus_loader_wait_ns");
    metrics_.data_queue_depth =
        registry.gauge("lotus_loader_data_queue_depth");
    metrics_.pin_cache_size =
        registry.gauge("lotus_loader_pin_cache_size");
    // Work-stealing telemetry. tasks/batch-span register in every
    // mode (they just stay untouched under round-robin) so dashboards
    // can diff schedules without conditional queries.
    metrics_.tasks_total = registry.counter(kTasksMetric);
    metrics_.batch_span_ns =
        registry.histogram("lotus_loader_batch_span_ns");
    // Measured PMU totals. Registered unconditionally; they only move
    // when the ThreadCounterRegistry resolved to the perf backend.
    metrics_.pmu_cycles = registry.counter(kPmuCyclesMetric);
    metrics_.pmu_instructions = registry.counter(kPmuInstructionsMetric);
    metrics_.pmu_llc_misses = registry.counter(kPmuLlcMissesMetric);
    if (options_.num_workers == 0) {
        metrics_.fetch_ns.push_back(registry.histogram(
            metrics::labeled("lotus_loader_fetch_ns", "worker", "main")));
        return;
    }
    for (int w = 0; w < options_.num_workers; ++w) {
        const std::string id = strFormat("%d", w);
        metrics_.fetch_ns.push_back(registry.histogram(
            metrics::labeled("lotus_loader_fetch_ns", "worker", id)));
        metrics_.index_queue_depth.push_back(registry.gauge(
            metrics::labeled("lotus_loader_index_queue_depth", "worker",
                             id)));
        metrics_.steals.push_back(registry.counter(
            metrics::labeled(kStealsMetric, "worker", id)));
    }
}

void
DataLoader::rebuildBatches()
{
    batches_ = epochBatchPlan(dataset_->size(), options_.batch_size,
                              options_.shuffle, options_.drop_last,
                              options_.seed, epoch_);
}

void
DataLoader::attachToService(const std::string &service)
{
    attached_service_ = service;
}

DataLoader::~DataLoader()
{
    shutdownWorkers();
}

std::int64_t
DataLoader::numBatches() const
{
    return static_cast<std::int64_t>(batches_.size());
}

void
DataLoader::startEpoch()
{
    shutdownWorkers();

    if (epoch_started_) {
        ++epoch_;
        rebuildBatches();
    }
    send_idx_ = 0;
    rcvd_idx_ = 0;
    reorder_cache_.clear();
    batch_worker_.clear();
    epoch_seed_base_ = epochSeedBase(options_.seed, epoch_);

    if (read_ahead_ != nullptr) {
        // Arm the I/O threads with this epoch's reads in fetch order,
        // each carrying its (batch, sample) trace correlation. This
        // covers every fetch path — the synchronous loader included.
        std::vector<pipeline::BlobReadRequest> plan;
        for (std::size_t b = 0; b < batches_.size(); ++b) {
            for (const std::int64_t index : batches_[b]) {
                pipeline::BlobReadRequest request;
                request.index = index;
                request.batch_id = static_cast<std::int64_t>(b);
                request.sample_index = index;
                plan.push_back(request);
            }
        }
        read_ahead_->startEpoch(std::move(plan), options_.logger);
    }

    if (options_.num_workers == 0) {
        // Synchronous mode: no queues or workers; fetches reseed per
        // sample from epoch_seed_base_, so this object only provides
        // the storage the context points at.
        sync_rng_ = Rng(epoch_seed_base_);
        // The main thread does the fetching, so it carries the
        // counter group (no-op unless PMU attribution is enabled).
        hwcount::ThreadCounterRegistry::instance().attachCurrentThread();
        if (options_.logger) {
            trace::TraceRecord marker;
            marker.kind = trace::RecordKind::EpochBoundary;
            marker.pid = main_pid_;
            marker.start = options_.logger->now();
            marker.op_name = "epoch_start";
            options_.logger->log(std::move(marker));
        }
        epoch_started_ = true;
        return;
    }

    // Work-stealing collapses the per-worker index queues into one
    // shared queue: any worker may decompose any batch, so a slow
    // worker can never strand index messages behind its own backlog.
    index_queues_.clear();
    const int queue_count = workStealing() ? 1 : options_.num_workers;
    for (int q = 0; q < queue_count; ++q)
        index_queues_.push_back(std::make_unique<MpmcQueue<IndexMsg>>());
    data_queue_ = std::make_unique<MpmcQueue<DataMsg>>();
    if (workStealing()) {
        group_ = std::make_unique<StealGroup>(options_.num_workers);
        std::lock_guard lock(builds_mutex_);
        builds_.clear();
    }

    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_.assign(static_cast<std::size_t>(options_.num_workers),
                            0);
    }
    for (int w = 0; w < options_.num_workers; ++w)
        workers_.emplace_back([this, w] {
            if (workStealing())
                stealingLoop(w);
            else
                workerLoop(w);
        });

    // Wait for every worker to announce its pid so trace records and
    // workerPids() are complete from the first batch on.
    {
        std::unique_lock lock(worker_pids_mutex_);
        worker_ready_cv_.wait(lock, [this] {
            for (const auto pid : worker_pids_) {
                if (pid == 0)
                    return false;
            }
            return true;
        });
    }

    // Prime every worker's index queue with prefetch_factor batches,
    // round-robin across workers (paper §II-B). Rounds are capped at
    // numBatches(): beyond that every tryPutIndex is a no-op, and an
    // uncapped loop with a huge (valid) prefetch_factor would spin
    // here for prefetch_factor x num_workers iterations.
    const std::int64_t rounds = std::min<std::int64_t>(
        options_.prefetch_factor, numBatches());
    for (std::int64_t round = 0; round < rounds; ++round) {
        for (int w = 0; w < options_.num_workers; ++w)
            tryPutIndex(w);
    }
    if (options_.logger) {
        trace::TraceRecord marker;
        marker.kind = trace::RecordKind::EpochBoundary;
        marker.pid = main_pid_;
        marker.start = options_.logger->now();
        marker.op_name = "epoch_start";
        options_.logger->log(std::move(marker));
    }
    epoch_started_ = true;
}

void
DataLoader::tryPutIndex(int worker_id)
{
    if (send_idx_ >= numBatches())
        return;
    IndexMsg msg;
    msg.batch_id = send_idx_;
    msg.indices = batches_[static_cast<std::size_t>(send_idx_)];
    batch_worker_[send_idx_] = worker_id;
    ++send_idx_;
    // Under work-stealing, worker_id stays the nominal home worker
    // for refill credit, but the message goes on the shared queue.
    const auto queue =
        workStealing() ? 0u : static_cast<std::size_t>(worker_id);
    index_queues_[queue]->push(std::move(msg));
    metrics_.index_queue_depth[queue]->add(1);
    if (workStealing())
        group_->notifyWork();
}

void
DataLoader::workerLoop(int worker_id)
{
    setCurrentThreadName(strFormat("loader-%d", worker_id));
    const std::uint32_t pid = currentTid();
    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_[static_cast<std::size_t>(worker_id)] = pid;
    }
    worker_ready_cv_.notify_one();
    // Per-worker counter group (no-op unless the ThreadCounterRegistry
    // is enabled and resolved to the perf backend).
    hwcount::ThreadCounterRegistry::instance().attachCurrentThread();
    // epoch_seed_base_ is stable while workers run: startEpoch joins
    // every worker before recomputing it. The rng object is just the
    // storage ctx points at — every sample attempt reseeds it.
    Rng rng(epoch_seed_base_);
    const FetchSeeding seeding{/*per_sample=*/true, epoch_seed_base_};
    const ErrorHandling errors{options_.error_policy, options_.max_retries,
                               options_.max_refill_attempts};

    auto &index_queue = *index_queues_[static_cast<std::size_t>(worker_id)];
    auto *fetch_hist =
        metrics_.fetch_ns[static_cast<std::size_t>(worker_id)];
    for (;;) {
        auto msg = index_queue.pop();
        if (!msg.has_value())
            break; // queue closed: epoch over
        metrics_
            .index_queue_depth[static_cast<std::size_t>(worker_id)]
            ->sub(1);

        pipeline::PipelineContext ctx;
        ctx.logger = options_.logger;
        ctx.pid = pid;
        ctx.rng = &rng;

        // [T1]: the fetch() call inside the worker loop.
        trace::SpanTimer span(options_.logger,
                              trace::RecordKind::BatchPreprocessed);
        span.record().batch_id = msg->batch_id;
        span.record().pid = pid;
        DataMsg out;
        out.batch_id = msg->batch_id;
        out.worker_id = worker_id;
        {
            metrics::ScopedTimer fetch_timer(fetch_hist);
            PmuSpanGuard pmu_span(metrics_.pmu_cycles,
                                  metrics_.pmu_instructions,
                                  metrics_.pmu_llc_misses);
            Result<Batch> batch = fetcher_.tryFetch(
                msg->batch_id, msg->indices, ctx, errors, {}, seeding);
            // A failed batch still flows through the data queue (not a
            // silent worker death): the consumer re-raises it in batch
            // order as a LoaderError.
            if (batch.ok())
                out.batch = batch.take();
            else
                out.error = batch.takeError();
        }
        span.finish();

        data_queue_->push(std::move(out));
        metrics_.data_queue_depth->add(1);
    }
    hwcount::ThreadCounterRegistry::instance().detachCurrentThread();
}

void
DataLoader::stealingLoop(int worker_id)
{
    setCurrentThreadName(strFormat("loader-%d", worker_id));
    const std::uint32_t pid = currentTid();
    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_[static_cast<std::size_t>(worker_id)] = pid;
    }
    worker_ready_cv_.notify_one();
    hwcount::ThreadCounterRegistry::instance().attachCurrentThread();

    // The rng object is only the storage ctx points at: runTask
    // reseeds it per task from (epoch_seed_base_, dataset index), so
    // draws are identical no matter which worker runs the task.
    Rng rng(epoch_seed_base_);
    pipeline::PipelineContext ctx;
    ctx.logger = options_.logger;
    ctx.pid = pid;
    ctx.rng = &rng;

    auto &deque = group_->deque(worker_id);
    auto &index_queue = *index_queues_[0];
    for (;;) {
        // Snapshot the wake counter *before* scanning so a notify
        // that lands mid-scan cuts the wait short instead of being
        // lost.
        const std::uint64_t idle_token = group_->workEpoch();

        // 1) Own deque, LIFO: newest task is cache-warm.
        if (SampleTask *task = deque.pop()) {
            runTask(worker_id, task, ctx, rng);
            continue;
        }
        // 2) Steal FIFO from the busiest peer: the oldest task of the
        // most backed-up worker is the straggler batch's work.
        int victim = -1;
        if (SampleTask *task = group_->stealBusiest(worker_id, &victim)) {
            metrics_.steals[static_cast<std::size_t>(worker_id)]->add(1);
            if (options_.logger != nullptr) {
                trace::TraceRecord record;
                record.kind = trace::RecordKind::StealEvent;
                record.batch_id = task->build->batch_id;
                record.pid = pid;
                record.start = options_.logger->now();
                record.op_name = strFormat("steal<-w%d", victim);
                record.sample_index = task->index;
                options_.logger->log(std::move(record));
            }
            runTask(worker_id, task, ctx, rng);
            continue;
        }
        // 3) Nothing to steal: decompose a new batch from the shared
        // index queue.
        if (auto msg = index_queue.tryPop()) {
            metrics_.index_queue_depth[0]->sub(1);
            decomposeBatch(worker_id, std::move(*msg));
            continue;
        }
        // 4) Idle. The queue only closes after every batch is
        // consumed (or the epoch aborted), so closed + nothing above
        // means this worker is done.
        if (index_queue.closed())
            break;
        group_->waitForWork(idle_token, kStealIdleWait);
    }
    hwcount::ThreadCounterRegistry::instance().detachCurrentThread();
}

void
DataLoader::decomposeBatch(int worker_id, IndexMsg msg)
{
    auto owned = std::make_unique<BatchBuild>();
    BatchBuild *build = owned.get();
    build->batch_id = msg.batch_id;
    build->home_worker = worker_id;
    build->seed_base = epoch_seed_base_;
    if (options_.logger != nullptr)
        build->trace_start = options_.logger->now();
    if (metrics::enabled())
        build->start = SteadyClock::instance().now();
    build->indices = std::move(msg.indices);
    const auto n = build->indices.size();
    LOTUS_ASSERT(n > 0, "empty batch requested");
    build->samples.resize(n);
    build->errors.resize(n);
    build->tasks.resize(n);
    build->remaining.store(static_cast<int>(n),
                           std::memory_order_relaxed);
    {
        // Retain the build until the epoch's workers join: a stolen
        // task pointer must never outlive its build, even when the
        // epoch aborts mid-batch.
        std::lock_guard lock(builds_mutex_);
        builds_.push_back(std::move(owned));
    }
    auto &deque = group_->deque(worker_id);
    for (std::size_t slot = 0; slot < n; ++slot) {
        SampleTask &task = build->tasks[slot];
        task.build = build;
        task.slot = static_cast<int>(slot);
        task.index = build->indices[slot];
        task.retries_left = options_.max_retries;
        task.refills_left = options_.max_refill_attempts;
        deque.push(&task);
    }
    metrics_.tasks_total->add(n);
    group_->notifyWork();
}

void
DataLoader::runTask(int worker_id, SampleTask *task,
                    pipeline::PipelineContext &ctx, Rng &rng)
{
    BatchBuild &build = *task->build;
    ctx.batch_id = build.batch_id;
    ctx.sample_index = task->index;
    // The per-sample seeding contract (FetchSeeding): reseed on the
    // current candidate index so retries replay and refills draw what
    // the replacement index would draw in its own slot.
    rng = Rng(sampleRngSeed(build.seed_base, task->index));

    trace::SpanTimer span(options_.logger, trace::RecordKind::TaskSpan);
    span.record().op_name = "task";
    span.record().batch_id = build.batch_id;
    span.record().pid = ctx.pid;
    span.record().sample_index = task->index;
    Result<pipeline::Sample> sample = [&] {
        metrics::ScopedTimer fetch_timer(
            metrics_.fetch_ns[static_cast<std::size_t>(worker_id)]);
        PmuSpanGuard pmu_span(metrics_.pmu_cycles,
                              metrics_.pmu_instructions,
                              metrics_.pmu_llc_misses);
        return fetcher_.getSample(task->index, ctx);
    }();
    span.finish();
    ctx.sample_index = -1;

    const ErrorHandling errors{options_.error_policy, options_.max_retries,
                               options_.max_refill_attempts};
    switch (resolveTask(task, std::move(sample), errors, dataset_->size(),
                        ctx)) {
      case TaskOutcome::kRequeue:
        // This worker still owns the mutated task: re-enqueue it so
        // peers can steal the follow-up attempt too.
        group_->deque(worker_id).push(task);
        group_->notifyWork();
        break;
      case TaskOutcome::kResolved:
        break;
      case TaskOutcome::kBatchDone:
        completeBatch(worker_id, build, ctx);
        break;
    }
}

void
DataLoader::completeBatch(int worker_id, BatchBuild &build,
                          pipeline::PipelineContext &ctx)
{
    DataMsg out;
    out.batch_id = build.batch_id;
    out.worker_id = worker_id;

    // Deterministic failure selection: the lowest failed slot is the
    // first failure round-robin's sequential fetch would have hit, so
    // both schedules surface the same error for the same seed. (Error
    // *counts* can differ under kFail: stealing attempts every slot,
    // round-robin stops at the first failure.)
    std::size_t first_error = build.errors.size();
    for (std::size_t slot = 0; slot < build.errors.size(); ++slot) {
        if (build.errors[slot].has_value()) {
            first_error = slot;
            break;
        }
    }
    if (first_error < build.errors.size()) {
        out.error = std::move(*build.errors[first_error]);
    } else {
        ctx.batch_id = build.batch_id;
        out.batch = fetcher_.collateBatch(build.batch_id,
                                          std::move(build.samples), ctx);
    }

    // [T1] for the whole build: decompose -> last slot + collate, in
    // the finisher's lane. The span can overlap other batches' task
    // spans in the same lane — that is the point of the schedule.
    if (options_.logger != nullptr) {
        trace::TraceRecord record;
        record.kind = trace::RecordKind::BatchPreprocessed;
        record.batch_id = build.batch_id;
        record.pid = ctx.pid;
        record.start = build.trace_start;
        record.duration = options_.logger->now() - build.trace_start;
        options_.logger->log(std::move(record));
    }
    if (build.start != 0 && metrics::enabled()) {
        const TimeNs span = SteadyClock::instance().now() - build.start;
        metrics_.batch_span_ns->record(
            static_cast<std::uint64_t>(span > 0 ? span : 0));
    }

    data_queue_->push(std::move(out));
    metrics_.data_queue_depth->add(1);
}

void
DataLoader::pinBatch(Batch &batch) const
{
    if (!options_.pin_memory || batch.data.empty())
        return;
    hwcount::KernelScope scope(hwcount::KernelId::PinMemoryCopy);
    batch.data = batch.data.clone();
    scope.stats().bytes_read += batch.data.byteSize();
    scope.stats().bytes_written += batch.data.byteSize();
    scope.stats().items += 1;
}

std::optional<Batch>
DataLoader::nextSynchronous()
{
    if (rcvd_idx_ >= numBatches())
        return std::nullopt;
    const std::int64_t wanted = rcvd_idx_;

    pipeline::PipelineContext ctx;
    ctx.logger = options_.logger;
    ctx.pid = main_pid_;
    ctx.rng = &sync_rng_;

    // [T1] happens inline on the main process; there is no [T2] wait.
    trace::SpanTimer span(options_.logger,
                          trace::RecordKind::BatchPreprocessed);
    span.record().batch_id = wanted;
    span.record().pid = main_pid_;
    Batch result;
    {
        metrics::ScopedTimer fetch_timer(metrics_.fetch_ns[0]);
        PmuSpanGuard pmu_span(metrics_.pmu_cycles,
                              metrics_.pmu_instructions,
                              metrics_.pmu_llc_misses);
        const ErrorHandling errors{options_.error_policy,
                                   options_.max_retries,
                                   options_.max_refill_attempts};
        Result<Batch> fetched = fetcher_.tryFetch(
            wanted, batches_[static_cast<std::size_t>(wanted)], ctx, errors,
            std::move(spare_),
            FetchSeeding{/*per_sample=*/true, epoch_seed_base_});
        spare_ = tensor::Tensor();
        if (!fetched.ok()) {
            // Synchronous re-raise: worker id -1 marks the main
            // process. The epoch is over; startEpoch() restarts.
            epoch_started_ = false;
            throw LoaderError(fetched.takeError(), wanted, -1);
        }
        result = fetched.take();
    }
    span.finish();
    pinBatch(result);

    trace::SpanTimer consumed_span(options_.logger,
                                   trace::RecordKind::BatchConsumed);
    consumed_span.record().batch_id = wanted;
    consumed_span.record().pid = main_pid_;
    consumed_span.finish();

    metrics_.batches_total->add(1);
    ++rcvd_idx_;
    return result;
}

void
DataLoader::recycle(Batch &&batch)
{
    // Keep at most one spare; dropping extras still returns their
    // pages to the buffer pool.
    spare_ = std::move(batch.data);
    batch.labels.clear();
}

std::optional<Batch>
DataLoader::next()
{
    if (!epoch_started_)
        startEpoch();
    if (options_.num_workers == 0)
        return nextSynchronous();
    if (rcvd_idx_ >= numBatches()) {
        shutdownWorkers();
        return std::nullopt;
    }

    const std::int64_t wanted = rcvd_idx_;
    Batch result;
    bool have_result = false;

    // [T2]: wait for the desired batch. Early out-of-order arrivals
    // already pinned and cached get the 1 µs sentinel duration.
    trace::SpanTimer wait_span(options_.logger, trace::RecordKind::BatchWait);
    wait_span.record().batch_id = wanted;
    wait_span.record().pid = main_pid_;

    if (auto cached = reorder_cache_.find(wanted);
        cached != reorder_cache_.end()) {
        DataMsg msg = std::move(cached->second);
        reorder_cache_.erase(cached);
        metrics_.pin_cache_size->sub(1);
        if (msg.error.has_value())
            raiseWorkerError(std::move(msg));
        result = std::move(msg.batch);
        have_result = true;
        if (options_.logger) {
            trace::TraceRecord sentinel = wait_span.record();
            sentinel.duration = trace::kOutOfOrderSentinel;
            options_.logger->log(std::move(sentinel));
        }
    } else {
        const bool measured = metrics::enabled();
        const TimeNs wait_start =
            measured ? SteadyClock::instance().now() : 0;
        while (!have_result) {
            auto msg = data_queue_->pop();
            LOTUS_ASSERT(msg.has_value(),
                         "data queue closed with batches outstanding");
            metrics_.data_queue_depth->sub(1);
            if (msg->batch_id == wanted) {
                if (msg->error.has_value())
                    raiseWorkerError(std::move(*msg));
                result = std::move(msg->batch);
                have_result = true;
            } else {
                // Early arrival: pin to CPU memory and cache it
                // (paper §III-B). Failed batches are cached too so the
                // error surfaces in batch order, not arrival order.
                pinBatch(msg->batch);
                reorder_cache_.emplace(msg->batch_id, std::move(*msg));
                metrics_.ooo_batches_total->add(1);
                metrics_.pin_cache_size->add(1);
            }
        }
        if (measured) {
            const TimeNs waited =
                SteadyClock::instance().now() - wait_start;
            const auto waited_u =
                static_cast<std::uint64_t>(waited > 0 ? waited : 0);
            metrics_.wait_ns->record(waited_u);
            metrics_.wait_ns_total->add(waited_u);
        }
        wait_span.finish();
        pinBatch(result);
    }

    // Consumption span: bookkeeping + dispatch of new work for the
    // producing worker (paper §II-B: one new batch of indices goes to
    // the worker that produced the consumed batch).
    trace::SpanTimer consumed_span(options_.logger,
                                   trace::RecordKind::BatchConsumed);
    consumed_span.record().batch_id = wanted;
    consumed_span.record().pid = main_pid_;
    const auto producer = batch_worker_.find(wanted);
    LOTUS_ASSERT(producer != batch_worker_.end(),
                 "unknown producer for batch %lld",
                 static_cast<long long>(wanted));
    tryPutIndex(producer->second);
    batch_worker_.erase(producer);
    consumed_span.finish();

    metrics_.batches_total->add(1);
    ++rcvd_idx_;
    if (rcvd_idx_ >= numBatches()) {
        // All batches consumed; release the workers.
        shutdownWorkers();
    }
    return result;
}

void
DataLoader::raiseWorkerError(DataMsg msg)
{
    LOTUS_ASSERT(msg.error.has_value());
    // The epoch cannot continue past a failed batch: release the
    // workers (queued batches are dropped with the queues at the next
    // startEpoch) and re-raise with the batch and worker identity.
    shutdownWorkers();
    epoch_started_ = false;
    throw LoaderError(std::move(*msg.error), msg.batch_id, msg.worker_id);
}

std::vector<std::uint32_t>
DataLoader::workerPids() const
{
    std::lock_guard lock(worker_pids_mutex_);
    return worker_pids_;
}

void
DataLoader::shutdownWorkers()
{
    // Drop outstanding prefetches first: a worker blocked in a
    // read-ahead claim wakes with a miss, finishes its batch via
    // synchronous reads, and then observes the closed index queue.
    if (read_ahead_ != nullptr)
        read_ahead_->cancel();
    for (auto &queue : index_queues_)
        queue->close();
    if (group_ != nullptr)
        group_->notifyShutdown();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
    // Builds (and with them every SampleTask the deques ever held)
    // are only released once no worker can touch them.
    if (group_ != nullptr) {
        {
            std::lock_guard lock(builds_mutex_);
            builds_.clear();
        }
        group_.reset();
    }
}

} // namespace lotus::dataflow
