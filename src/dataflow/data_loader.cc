#include "dataflow/data_loader.h"

#include <chrono>

#include "common/strings.h"
#include "common/thread_util.h"
#include "dataflow/sampler.h"

namespace lotus::dataflow {

using pipeline::Batch;

namespace {

/**
 * Per-fetch RNG seed for one (base seed, epoch, worker) triple. The
 * epoch must be mixed in — otherwise random-transform augmentation
 * streams repeat identically every epoch even though the shuffle
 * reseeds — and the mix matches rebuildBatches() (golden-ratio
 * stride), so epoch 0 reproduces the historical pre-epoch-mix seeds.
 * Synchronous mode passes worker 0 (it follows the stream a lone
 * worker would).
 */
std::uint64_t
fetchSeed(std::uint64_t seed, std::int64_t epoch, int worker)
{
    constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
    return (seed + kGolden * static_cast<std::uint64_t>(epoch)) * kGolden +
           static_cast<std::uint64_t>(worker) + 1;
}

} // namespace

DataLoader::DataLoader(std::shared_ptr<const pipeline::Dataset> dataset,
                       std::shared_ptr<const pipeline::Collate> collate,
                       DataLoaderOptions options)
    : dataset_(dataset), fetcher_(std::move(dataset), std::move(collate)),
      options_(options), main_pid_(currentTid())
{
    // Option validation is a user-facing contract (fatal, not panic):
    // bad configs must fail loudly at construction, never half-run.
    if (options_.batch_size <= 0)
        LOTUS_FATAL("DataLoaderOptions: batch_size must be > 0 (got %d)",
                    options_.batch_size);
    if (options_.num_workers < 0)
        LOTUS_FATAL("DataLoaderOptions: num_workers must be >= 0 (got %d)",
                    options_.num_workers);
    if (options_.prefetch_factor < 1)
        LOTUS_FATAL(
            "DataLoaderOptions: prefetch_factor must be >= 1 (got %d)",
            options_.prefetch_factor);
    registerMetrics();
    rebuildBatches();
}

void
DataLoader::registerMetrics()
{
    auto &registry = metrics::MetricsRegistry::instance();
    metrics_.batches_total = registry.counter("lotus_loader_batches_total");
    metrics_.ooo_batches_total =
        registry.counter("lotus_loader_ooo_batches_total");
    metrics_.wait_ns_total = registry.counter("lotus_loader_wait_ns_total");
    metrics_.wait_ns = registry.histogram("lotus_loader_wait_ns");
    metrics_.data_queue_depth =
        registry.gauge("lotus_loader_data_queue_depth");
    metrics_.pin_cache_size =
        registry.gauge("lotus_loader_pin_cache_size");
    if (options_.num_workers == 0) {
        metrics_.fetch_ns.push_back(registry.histogram(
            metrics::labeled("lotus_loader_fetch_ns", "worker", "main")));
        return;
    }
    for (int w = 0; w < options_.num_workers; ++w) {
        const std::string id = strFormat("%d", w);
        metrics_.fetch_ns.push_back(registry.histogram(
            metrics::labeled("lotus_loader_fetch_ns", "worker", id)));
        metrics_.index_queue_depth.push_back(registry.gauge(
            metrics::labeled("lotus_loader_index_queue_depth", "worker",
                             id)));
    }
}

void
DataLoader::rebuildBatches()
{
    // Like PyTorch, a shuffled loader reshuffles every epoch, with a
    // deterministic per-epoch seed derived from the base seed.
    const auto indices =
        options_.shuffle
            ? shuffledIndices(dataset_->size(),
                              options_.seed +
                                  0x9E3779B97F4A7C15ull *
                                      static_cast<std::uint64_t>(epoch_))
            : sequentialIndices(dataset_->size());
    batches_ = batchIndices(indices, options_.batch_size,
                            options_.drop_last);
}

DataLoader::~DataLoader()
{
    shutdownWorkers();
}

std::int64_t
DataLoader::numBatches() const
{
    return static_cast<std::int64_t>(batches_.size());
}

void
DataLoader::startEpoch()
{
    shutdownWorkers();

    if (epoch_started_) {
        ++epoch_;
        rebuildBatches();
    }
    send_idx_ = 0;
    rcvd_idx_ = 0;
    reorder_cache_.clear();
    batch_worker_.clear();

    if (options_.num_workers == 0) {
        // Synchronous mode: no queues or workers; next() fetches with
        // the same per-epoch rng stream a lone worker would use.
        sync_rng_ = Rng(fetchSeed(options_.seed, epoch_, 0));
        if (options_.logger) {
            trace::TraceRecord marker;
            marker.kind = trace::RecordKind::EpochBoundary;
            marker.pid = main_pid_;
            marker.start = options_.logger->now();
            marker.op_name = "epoch_start";
            options_.logger->log(std::move(marker));
        }
        epoch_started_ = true;
        return;
    }

    index_queues_.clear();
    for (int w = 0; w < options_.num_workers; ++w)
        index_queues_.push_back(std::make_unique<MpmcQueue<IndexMsg>>());
    data_queue_ = std::make_unique<MpmcQueue<DataMsg>>();

    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_.assign(static_cast<std::size_t>(options_.num_workers),
                            0);
    }
    for (int w = 0; w < options_.num_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });

    // Wait for every worker to announce its pid so trace records and
    // workerPids() are complete from the first batch on.
    {
        std::unique_lock lock(worker_pids_mutex_);
        worker_ready_cv_.wait(lock, [this] {
            for (const auto pid : worker_pids_) {
                if (pid == 0)
                    return false;
            }
            return true;
        });
    }

    // Prime every worker's index queue with prefetch_factor batches,
    // round-robin across workers (paper §II-B).
    for (int round = 0; round < options_.prefetch_factor; ++round) {
        for (int w = 0; w < options_.num_workers; ++w)
            tryPutIndex(w);
    }
    if (options_.logger) {
        trace::TraceRecord marker;
        marker.kind = trace::RecordKind::EpochBoundary;
        marker.pid = main_pid_;
        marker.start = options_.logger->now();
        marker.op_name = "epoch_start";
        options_.logger->log(std::move(marker));
    }
    epoch_started_ = true;
}

void
DataLoader::tryPutIndex(int worker_id)
{
    if (send_idx_ >= numBatches())
        return;
    IndexMsg msg;
    msg.batch_id = send_idx_;
    msg.indices = batches_[static_cast<std::size_t>(send_idx_)];
    batch_worker_[send_idx_] = worker_id;
    ++send_idx_;
    index_queues_[static_cast<std::size_t>(worker_id)]->push(
        std::move(msg));
    metrics_.index_queue_depth[static_cast<std::size_t>(worker_id)]->add(1);
}

void
DataLoader::workerLoop(int worker_id)
{
    setCurrentThreadName(strFormat("loader-%d", worker_id));
    const std::uint32_t pid = currentTid();
    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_[static_cast<std::size_t>(worker_id)] = pid;
    }
    worker_ready_cv_.notify_one();
    // epoch_ is stable while workers run: startEpoch joins every
    // worker before incrementing it.
    Rng rng(fetchSeed(options_.seed, epoch_, worker_id));
    const ErrorHandling errors{options_.error_policy, options_.max_retries,
                               options_.max_refill_attempts};

    auto &index_queue = *index_queues_[static_cast<std::size_t>(worker_id)];
    auto *fetch_hist =
        metrics_.fetch_ns[static_cast<std::size_t>(worker_id)];
    for (;;) {
        auto msg = index_queue.pop();
        if (!msg.has_value())
            break; // queue closed: epoch over
        metrics_
            .index_queue_depth[static_cast<std::size_t>(worker_id)]
            ->sub(1);

        pipeline::PipelineContext ctx;
        ctx.logger = options_.logger;
        ctx.pid = pid;
        ctx.rng = &rng;

        // [T1]: the fetch() call inside the worker loop.
        trace::SpanTimer span(options_.logger,
                              trace::RecordKind::BatchPreprocessed);
        span.record().batch_id = msg->batch_id;
        span.record().pid = pid;
        DataMsg out;
        out.batch_id = msg->batch_id;
        out.worker_id = worker_id;
        {
            metrics::ScopedTimer fetch_timer(fetch_hist);
            Result<Batch> batch =
                fetcher_.tryFetch(msg->batch_id, msg->indices, ctx, errors);
            // A failed batch still flows through the data queue (not a
            // silent worker death): the consumer re-raises it in batch
            // order as a LoaderError.
            if (batch.ok())
                out.batch = batch.take();
            else
                out.error = batch.takeError();
        }
        span.finish();

        data_queue_->push(std::move(out));
        metrics_.data_queue_depth->add(1);
    }
}

void
DataLoader::pinBatch(Batch &batch) const
{
    if (!options_.pin_memory || batch.data.empty())
        return;
    hwcount::KernelScope scope(hwcount::KernelId::PinMemoryCopy);
    batch.data = batch.data.clone();
    scope.stats().bytes_read += batch.data.byteSize();
    scope.stats().bytes_written += batch.data.byteSize();
    scope.stats().items += 1;
}

std::optional<Batch>
DataLoader::nextSynchronous()
{
    if (rcvd_idx_ >= numBatches())
        return std::nullopt;
    const std::int64_t wanted = rcvd_idx_;

    pipeline::PipelineContext ctx;
    ctx.logger = options_.logger;
    ctx.pid = main_pid_;
    ctx.rng = &sync_rng_;

    // [T1] happens inline on the main process; there is no [T2] wait.
    trace::SpanTimer span(options_.logger,
                          trace::RecordKind::BatchPreprocessed);
    span.record().batch_id = wanted;
    span.record().pid = main_pid_;
    Batch result;
    {
        metrics::ScopedTimer fetch_timer(metrics_.fetch_ns[0]);
        const ErrorHandling errors{options_.error_policy,
                                   options_.max_retries,
                                   options_.max_refill_attempts};
        Result<Batch> fetched = fetcher_.tryFetch(
            wanted, batches_[static_cast<std::size_t>(wanted)], ctx, errors,
            std::move(spare_));
        spare_ = tensor::Tensor();
        if (!fetched.ok()) {
            // Synchronous re-raise: worker id -1 marks the main
            // process. The epoch is over; startEpoch() restarts.
            epoch_started_ = false;
            throw LoaderError(fetched.takeError(), wanted, -1);
        }
        result = fetched.take();
    }
    span.finish();
    pinBatch(result);

    trace::SpanTimer consumed_span(options_.logger,
                                   trace::RecordKind::BatchConsumed);
    consumed_span.record().batch_id = wanted;
    consumed_span.record().pid = main_pid_;
    consumed_span.finish();

    metrics_.batches_total->add(1);
    ++rcvd_idx_;
    return result;
}

void
DataLoader::recycle(Batch &&batch)
{
    // Keep at most one spare; dropping extras still returns their
    // pages to the buffer pool.
    spare_ = std::move(batch.data);
    batch.labels.clear();
}

std::optional<Batch>
DataLoader::next()
{
    if (!epoch_started_)
        startEpoch();
    if (options_.num_workers == 0)
        return nextSynchronous();
    if (rcvd_idx_ >= numBatches()) {
        shutdownWorkers();
        return std::nullopt;
    }

    const std::int64_t wanted = rcvd_idx_;
    Batch result;
    bool have_result = false;

    // [T2]: wait for the desired batch. Early out-of-order arrivals
    // already pinned and cached get the 1 µs sentinel duration.
    trace::SpanTimer wait_span(options_.logger, trace::RecordKind::BatchWait);
    wait_span.record().batch_id = wanted;
    wait_span.record().pid = main_pid_;

    if (auto cached = reorder_cache_.find(wanted);
        cached != reorder_cache_.end()) {
        DataMsg msg = std::move(cached->second);
        reorder_cache_.erase(cached);
        metrics_.pin_cache_size->sub(1);
        if (msg.error.has_value())
            raiseWorkerError(std::move(msg));
        result = std::move(msg.batch);
        have_result = true;
        if (options_.logger) {
            trace::TraceRecord sentinel = wait_span.record();
            sentinel.duration = trace::kOutOfOrderSentinel;
            options_.logger->log(std::move(sentinel));
        }
    } else {
        const bool measured = metrics::enabled();
        const TimeNs wait_start =
            measured ? SteadyClock::instance().now() : 0;
        while (!have_result) {
            auto msg = data_queue_->pop();
            LOTUS_ASSERT(msg.has_value(),
                         "data queue closed with batches outstanding");
            metrics_.data_queue_depth->sub(1);
            if (msg->batch_id == wanted) {
                if (msg->error.has_value())
                    raiseWorkerError(std::move(*msg));
                result = std::move(msg->batch);
                have_result = true;
            } else {
                // Early arrival: pin to CPU memory and cache it
                // (paper §III-B). Failed batches are cached too so the
                // error surfaces in batch order, not arrival order.
                pinBatch(msg->batch);
                reorder_cache_.emplace(msg->batch_id, std::move(*msg));
                metrics_.ooo_batches_total->add(1);
                metrics_.pin_cache_size->add(1);
            }
        }
        if (measured) {
            const TimeNs waited =
                SteadyClock::instance().now() - wait_start;
            const auto waited_u =
                static_cast<std::uint64_t>(waited > 0 ? waited : 0);
            metrics_.wait_ns->record(waited_u);
            metrics_.wait_ns_total->add(waited_u);
        }
        wait_span.finish();
        pinBatch(result);
    }

    // Consumption span: bookkeeping + dispatch of new work for the
    // producing worker (paper §II-B: one new batch of indices goes to
    // the worker that produced the consumed batch).
    trace::SpanTimer consumed_span(options_.logger,
                                   trace::RecordKind::BatchConsumed);
    consumed_span.record().batch_id = wanted;
    consumed_span.record().pid = main_pid_;
    const auto producer = batch_worker_.find(wanted);
    LOTUS_ASSERT(producer != batch_worker_.end(),
                 "unknown producer for batch %lld",
                 static_cast<long long>(wanted));
    tryPutIndex(producer->second);
    batch_worker_.erase(producer);
    consumed_span.finish();

    metrics_.batches_total->add(1);
    ++rcvd_idx_;
    if (rcvd_idx_ >= numBatches()) {
        // All batches consumed; release the workers.
        shutdownWorkers();
    }
    return result;
}

void
DataLoader::raiseWorkerError(DataMsg msg)
{
    LOTUS_ASSERT(msg.error.has_value());
    // The epoch cannot continue past a failed batch: release the
    // workers (queued batches are dropped with the queues at the next
    // startEpoch) and re-raise with the batch and worker identity.
    shutdownWorkers();
    epoch_started_ = false;
    throw LoaderError(std::move(*msg.error), msg.batch_id, msg.worker_id);
}

std::vector<std::uint32_t>
DataLoader::workerPids() const
{
    std::lock_guard lock(worker_pids_mutex_);
    return worker_pids_;
}

void
DataLoader::shutdownWorkers()
{
    for (auto &queue : index_queues_)
        queue->close();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

} // namespace lotus::dataflow
