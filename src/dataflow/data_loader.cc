#include "dataflow/data_loader.h"

#include <chrono>

#include "common/strings.h"
#include "common/thread_util.h"
#include "dataflow/sampler.h"

namespace lotus::dataflow {

using pipeline::Batch;

DataLoader::DataLoader(std::shared_ptr<const pipeline::Dataset> dataset,
                       std::shared_ptr<const pipeline::Collate> collate,
                       DataLoaderOptions options)
    : dataset_(dataset), fetcher_(std::move(dataset), std::move(collate)),
      options_(options), main_pid_(currentTid())
{
    LOTUS_ASSERT(options_.batch_size > 0, "batch_size must be positive");
    LOTUS_ASSERT(options_.num_workers > 0, "num_workers must be positive");
    LOTUS_ASSERT(options_.prefetch_factor > 0,
                 "prefetch_factor must be positive");
    rebuildBatches();
}

void
DataLoader::rebuildBatches()
{
    // Like PyTorch, a shuffled loader reshuffles every epoch, with a
    // deterministic per-epoch seed derived from the base seed.
    const auto indices =
        options_.shuffle
            ? shuffledIndices(dataset_->size(),
                              options_.seed +
                                  0x9E3779B97F4A7C15ull *
                                      static_cast<std::uint64_t>(epoch_))
            : sequentialIndices(dataset_->size());
    batches_ = batchIndices(indices, options_.batch_size,
                            options_.drop_last);
}

DataLoader::~DataLoader()
{
    shutdownWorkers();
}

std::int64_t
DataLoader::numBatches() const
{
    return static_cast<std::int64_t>(batches_.size());
}

void
DataLoader::startEpoch()
{
    shutdownWorkers();

    if (epoch_started_) {
        ++epoch_;
        rebuildBatches();
    }
    send_idx_ = 0;
    rcvd_idx_ = 0;
    reorder_cache_.clear();
    batch_worker_.clear();

    index_queues_.clear();
    for (int w = 0; w < options_.num_workers; ++w)
        index_queues_.push_back(std::make_unique<MpmcQueue<IndexMsg>>());
    data_queue_ = std::make_unique<MpmcQueue<DataMsg>>();

    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_.assign(static_cast<std::size_t>(options_.num_workers),
                            0);
    }
    for (int w = 0; w < options_.num_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });

    // Wait for every worker to announce its pid so trace records and
    // workerPids() are complete from the first batch on.
    for (;;) {
        bool all_ready = true;
        {
            std::lock_guard lock(worker_pids_mutex_);
            for (const auto pid : worker_pids_) {
                if (pid == 0)
                    all_ready = false;
            }
        }
        if (all_ready)
            break;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }

    // Prime every worker's index queue with prefetch_factor batches,
    // round-robin across workers (paper §II-B).
    for (int round = 0; round < options_.prefetch_factor; ++round) {
        for (int w = 0; w < options_.num_workers; ++w)
            tryPutIndex(w);
    }
    if (options_.logger) {
        trace::TraceRecord marker;
        marker.kind = trace::RecordKind::EpochBoundary;
        marker.pid = main_pid_;
        marker.start = options_.logger->now();
        marker.op_name = "epoch_start";
        options_.logger->log(std::move(marker));
    }
    epoch_started_ = true;
}

void
DataLoader::tryPutIndex(int worker_id)
{
    if (send_idx_ >= numBatches())
        return;
    IndexMsg msg;
    msg.batch_id = send_idx_;
    msg.indices = batches_[static_cast<std::size_t>(send_idx_)];
    batch_worker_[send_idx_] = worker_id;
    ++send_idx_;
    index_queues_[static_cast<std::size_t>(worker_id)]->push(
        std::move(msg));
}

void
DataLoader::workerLoop(int worker_id)
{
    setCurrentThreadName(strFormat("loader-%d", worker_id));
    const std::uint32_t pid = currentTid();
    {
        std::lock_guard lock(worker_pids_mutex_);
        worker_pids_[static_cast<std::size_t>(worker_id)] = pid;
    }
    Rng rng(options_.seed * 0x9E3779B97F4A7C15ull +
            static_cast<std::uint64_t>(worker_id) + 1);

    auto &index_queue = *index_queues_[static_cast<std::size_t>(worker_id)];
    for (;;) {
        auto msg = index_queue.pop();
        if (!msg.has_value())
            break; // queue closed: epoch over

        pipeline::PipelineContext ctx;
        ctx.logger = options_.logger;
        ctx.pid = pid;
        ctx.rng = &rng;

        // [T1]: the fetch() call inside the worker loop.
        trace::SpanTimer span(options_.logger,
                              trace::RecordKind::BatchPreprocessed);
        span.record().batch_id = msg->batch_id;
        span.record().pid = pid;
        Batch batch = fetcher_.fetch(msg->batch_id, msg->indices, ctx);
        span.finish();

        DataMsg out;
        out.batch_id = msg->batch_id;
        out.worker_id = worker_id;
        out.batch = std::move(batch);
        data_queue_->push(std::move(out));
    }
}

void
DataLoader::pinBatch(Batch &batch) const
{
    if (!options_.pin_memory || batch.data.empty())
        return;
    hwcount::KernelScope scope(hwcount::KernelId::PinMemoryCopy);
    batch.data = batch.data.clone();
    scope.stats().bytes_read += batch.data.byteSize();
    scope.stats().bytes_written += batch.data.byteSize();
    scope.stats().items += 1;
}

std::optional<Batch>
DataLoader::next()
{
    if (!epoch_started_)
        startEpoch();
    if (rcvd_idx_ >= numBatches()) {
        shutdownWorkers();
        return std::nullopt;
    }

    const std::int64_t wanted = rcvd_idx_;
    Batch result;
    bool have_result = false;

    // [T2]: wait for the desired batch. Early out-of-order arrivals
    // already pinned and cached get the 1 µs sentinel duration.
    trace::SpanTimer wait_span(options_.logger, trace::RecordKind::BatchWait);
    wait_span.record().batch_id = wanted;
    wait_span.record().pid = main_pid_;

    if (auto cached = reorder_cache_.find(wanted);
        cached != reorder_cache_.end()) {
        result = std::move(cached->second);
        reorder_cache_.erase(cached);
        have_result = true;
        if (options_.logger) {
            trace::TraceRecord sentinel = wait_span.record();
            sentinel.duration = trace::kOutOfOrderSentinel;
            options_.logger->log(std::move(sentinel));
        }
    } else {
        while (!have_result) {
            auto msg = data_queue_->pop();
            LOTUS_ASSERT(msg.has_value(),
                         "data queue closed with batches outstanding");
            if (msg->batch_id == wanted) {
                result = std::move(msg->batch);
                have_result = true;
            } else {
                // Early arrival: pin to CPU memory and cache it
                // (paper §III-B).
                pinBatch(msg->batch);
                reorder_cache_.emplace(msg->batch_id,
                                       std::move(msg->batch));
            }
        }
        wait_span.finish();
        pinBatch(result);
    }

    // Consumption span: bookkeeping + dispatch of new work for the
    // producing worker (paper §II-B: one new batch of indices goes to
    // the worker that produced the consumed batch).
    trace::SpanTimer consumed_span(options_.logger,
                                   trace::RecordKind::BatchConsumed);
    consumed_span.record().batch_id = wanted;
    consumed_span.record().pid = main_pid_;
    const auto producer = batch_worker_.find(wanted);
    LOTUS_ASSERT(producer != batch_worker_.end(),
                 "unknown producer for batch %lld",
                 static_cast<long long>(wanted));
    tryPutIndex(producer->second);
    batch_worker_.erase(producer);
    consumed_span.finish();

    ++rcvd_idx_;
    if (rcvd_idx_ >= numBatches()) {
        // All batches consumed; release the workers.
        shutdownWorkers();
    }
    return result;
}

std::vector<std::uint32_t>
DataLoader::workerPids() const
{
    std::lock_guard lock(worker_pids_mutex_);
    return worker_pids_;
}

void
DataLoader::shutdownWorkers()
{
    for (auto &queue : index_queues_)
        queue->close();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

} // namespace lotus::dataflow
