#include "dataflow/fetcher.h"

namespace lotus::dataflow {

Fetcher::Fetcher(std::shared_ptr<const pipeline::Dataset> dataset,
                 std::shared_ptr<const pipeline::Collate> collate)
    : dataset_(std::move(dataset)), collate_(std::move(collate)),
      collate_tag_(hwcount::KernelRegistry::instance().registerOp(
          pipeline::Collate::kOpName))
{
    LOTUS_ASSERT(dataset_ != nullptr && collate_ != nullptr);
}

pipeline::Batch
Fetcher::fetch(std::int64_t batch_id,
               const std::vector<std::int64_t> &indices,
               pipeline::PipelineContext &ctx, tensor::Tensor reuse) const
{
    LOTUS_ASSERT(!indices.empty(), "empty batch requested");
    ctx.batch_id = batch_id;

    std::vector<pipeline::Sample> samples;
    samples.reserve(indices.size());
    for (const auto index : indices) {
        ctx.sample_index = index;
        samples.push_back(dataset_->get(index, ctx));
    }
    ctx.sample_index = -1;

    trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
    span.record().op_name = pipeline::Collate::kOpName;
    span.record().batch_id = batch_id;
    span.record().pid = ctx.pid;
    pipeline::Batch batch;
    {
        hwcount::OpTagScope op_scope(collate_tag_);
        batch = collate_->collateInto(std::move(samples),
                                      std::move(reuse));
    }
    span.finish();
    batch.batch_id = batch_id;
    return batch;
}

} // namespace lotus::dataflow
