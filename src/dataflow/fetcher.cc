#include "dataflow/fetcher.h"

#include "common/clock.h"
#include "metrics/metrics.h"
#include "pipeline/traced_store.h"

namespace lotus::dataflow {

Fetcher::Fetcher(std::shared_ptr<const pipeline::Dataset> dataset,
                 std::shared_ptr<const pipeline::Collate> collate)
    : dataset_(std::move(dataset)), collate_(std::move(collate)),
      collate_tag_(hwcount::KernelRegistry::instance().registerOp(
          pipeline::Collate::kOpName)),
      collate_ns_(metrics::MetricsRegistry::instance().histogram(
          metrics::labeled("lotus_pipeline_op_ns", "op",
                           pipeline::Collate::kOpName)))
{
    LOTUS_ASSERT(dataset_ != nullptr && collate_ != nullptr);
}

pipeline::Batch
Fetcher::fetch(std::int64_t batch_id,
               const std::vector<std::int64_t> &indices,
               pipeline::PipelineContext &ctx, tensor::Tensor reuse) const
{
    Result<pipeline::Batch> batch =
        tryFetch(batch_id, indices, ctx, ErrorHandling{ErrorPolicy::kFail},
                 std::move(reuse));
    if (!batch.ok())
        LOTUS_FATAL("batch %lld: %s", static_cast<long long>(batch_id),
                    batch.error().describe().c_str());
    return batch.take();
}

void
noteSampleError(const Error &error, std::int64_t sample_index,
                pipeline::PipelineContext &ctx, ErrorPolicy policy)
{
    const std::string stage = error.stage.empty() ? "other" : error.stage;
    metrics::MetricsRegistry::instance()
        .counter(metrics::labeled(kSampleErrorsMetric, "policy",
                                  errorPolicyName(policy), "stage", stage))
        ->add(1);
    if (ctx.logger != nullptr) {
        trace::TraceRecord record;
        record.kind = trace::RecordKind::ErrorEvent;
        record.batch_id = ctx.batch_id;
        record.pid = ctx.pid;
        record.start = SteadyClock::instance().now();
        record.duration = 0;
        record.op_name = "error:" + stage;
        record.sample_index = sample_index;
        ctx.logger->log(std::move(record));
    }
}

std::uint64_t
sampleRngSeed(std::uint64_t epoch_base, std::int64_t sample_index)
{
    // splitmix64 finalizer over (epoch base, index): adjacent indices
    // land in unrelated streams, and the Rng's own splitmix64 seeding
    // expands the result into full generator state.
    std::uint64_t z = epoch_base +
                      0x9E3779B97F4A7C15ull *
                          (static_cast<std::uint64_t>(sample_index) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void
Fetcher::setCache(std::shared_ptr<cache::SampleCache> cache)
{
    cache_ = std::move(cache);
    split_ = cache_ != nullptr ? dataset_->cacheableSplit() : std::nullopt;
    if (cache_ != nullptr && !split_.has_value())
        LOTUS_WARN("sample cache attached to a dataset without "
                   "cacheableSplit(); every fetch will miss");
}

void
Fetcher::setReadAhead(std::shared_ptr<ReadAhead> read_ahead)
{
    read_ahead_ = std::move(read_ahead);
}

Result<pipeline::Sample>
Fetcher::getSample(std::int64_t index, pipeline::PipelineContext &ctx) const
{
    // Every fetch path funnels through here, so this one scope
    // correlates all TracedStore reads with the sample being fetched.
    pipeline::IoTraceScope io_scope(&ctx);
    if (cache_ == nullptr || !split_.has_value()) {
        if (read_ahead_ != nullptr) {
            if (std::optional<Result<std::string>> blob =
                    read_ahead_->claim(index)) {
                pipeline::ScopedStagedBlob staged(index, std::move(*blob));
                return dataset_->tryGet(index, ctx);
            }
        }
        return dataset_->tryGet(index, ctx);
    }
    const cache::CacheKey key{split_->dataset_id,
                              split_->prefix_fingerprint, index};
    if (std::optional<pipeline::Sample> hit = cache_->lookup(key, ctx)) {
        // Warm path: the deterministic prefix is already done; only
        // the random suffix runs, replaying the same rng stream a
        // full fetch would (the prefix draws nothing). No read-ahead
        // claim — a warm hit must never wait on (or consume) I/O.
        dataset_->applySuffix(*hit, ctx);
        return std::move(*hit);
    }
    Result<pipeline::Sample> prefix = [&] {
        if (read_ahead_ != nullptr) {
            if (std::optional<Result<std::string>> blob =
                    read_ahead_->claim(index)) {
                pipeline::ScopedStagedBlob staged(index, std::move(*blob));
                return dataset_->tryGetPrefix(index, ctx);
            }
        }
        return dataset_->tryGetPrefix(index, ctx);
    }();
    if (!prefix.ok())
        return prefix.takeError();
    pipeline::Sample sample = prefix.take();
    cache_->insert(key, sample, ctx);
    dataset_->applySuffix(sample, ctx);
    return sample;
}

Result<pipeline::Sample>
Fetcher::fetchSample(std::int64_t index, pipeline::PipelineContext &ctx,
                     const ErrorHandling &errors,
                     const FetchSeeding &seeding) const
{
    const std::int64_t size = dataset_->size();
    std::int64_t current = index;
    int retries_left = errors.max_retries;
    int refills_left = errors.max_refill_attempts;
    for (;;) {
        ctx.sample_index = current;
        // Reseed per attempt, keyed on the *current* candidate: a
        // kSkip refill draws what the replacement index would have
        // drawn in its own slot, and a kRetry re-read replays the
        // same stream (see FetchSeeding).
        if (seeding.per_sample && ctx.rng != nullptr)
            *ctx.rng = Rng(sampleRngSeed(seeding.epoch_base, current));
        Result<pipeline::Sample> sample = getSample(current, ctx);
        if (sample.ok())
            return sample;
        noteSampleError(sample.error(), current, ctx, errors.policy);
        switch (errors.policy) {
          case ErrorPolicy::kFail:
            return sample.takeError();
          case ErrorPolicy::kRetry:
            // Bounded same-index retries clear transient store
            // hiccups; anything else is real corruption and fails.
            if (errorIsTransient(sample.error().code) &&
                retries_left-- > 0)
                continue;
            return sample.takeError();
          case ErrorPolicy::kSkip:
            // Deterministic refill: walk forward from the bad index
            // (mod dataset size). May duplicate a sample within the
            // epoch; keeps batch shape and cadence intact.
            if (refills_left-- > 0) {
                current = (current + 1) % size;
                continue;
            }
            return sample.takeError();
        }
        LOTUS_PANIC("bad error policy %d",
                    static_cast<int>(errors.policy));
    }
}

Result<pipeline::Batch>
Fetcher::tryFetch(std::int64_t batch_id,
                  const std::vector<std::int64_t> &indices,
                  pipeline::PipelineContext &ctx,
                  const ErrorHandling &errors, tensor::Tensor reuse,
                  const FetchSeeding &seeding) const
{
    LOTUS_ASSERT(!indices.empty(), "empty batch requested");
    ctx.batch_id = batch_id;

    std::vector<pipeline::Sample> samples;
    samples.reserve(indices.size());
    for (const auto index : indices) {
        Result<pipeline::Sample> sample =
            fetchSample(index, ctx, errors, seeding);
        if (!sample.ok()) {
            ctx.sample_index = -1;
            return sample.takeError();
        }
        samples.push_back(sample.take());
    }
    ctx.sample_index = -1;
    return collateBatch(batch_id, std::move(samples), ctx,
                        std::move(reuse));
}

pipeline::Batch
Fetcher::collateBatch(std::int64_t batch_id,
                      std::vector<pipeline::Sample> samples,
                      pipeline::PipelineContext &ctx,
                      tensor::Tensor reuse) const
{
    trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
    span.record().op_name = pipeline::Collate::kOpName;
    span.record().batch_id = batch_id;
    span.record().pid = ctx.pid;
    pipeline::Batch batch;
    {
        metrics::ScopedTimer collate_timer(collate_ns_);
        hwcount::OpTagScope op_scope(collate_tag_);
        batch = collate_->collateInto(std::move(samples),
                                      std::move(reuse));
    }
    span.finish();
    batch.batch_id = batch_id;
    return batch;
}

} // namespace lotus::dataflow
