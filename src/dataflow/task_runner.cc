#include "dataflow/task_runner.h"

#include "dataflow/fetcher.h"

namespace lotus::dataflow {

std::uint64_t
epochSeedBase(std::uint64_t seed, std::int64_t epoch)
{
    constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
    return (seed + kGolden * static_cast<std::uint64_t>(epoch)) * kGolden;
}

TaskOutcome
resolveTask(SampleTask *task, Result<pipeline::Sample> sample,
            const ErrorHandling &errors, std::int64_t dataset_size,
            pipeline::PipelineContext &ctx)
{
    BatchBuild &build = *task->build;
    if (sample.ok()) {
        build.samples[static_cast<std::size_t>(task->slot)] = sample.take();
    } else {
        noteSampleError(sample.error(), task->index, ctx, errors.policy);
        // Unresolved outcomes hand the same task object back to its
        // owner for re-enqueue instead of looping inline, so peers
        // can steal the follow-up attempt too. The candidate walk
        // matches Fetcher::fetchSample exactly — determinism depends
        // on it.
        switch (errors.policy) {
          case ErrorPolicy::kFail:
            break;
          case ErrorPolicy::kRetry:
            if (errorIsTransient(sample.error().code) &&
                task->retries_left-- > 0)
                return TaskOutcome::kRequeue;
            break;
          case ErrorPolicy::kSkip:
            if (task->refills_left-- > 0) {
                task->index = (task->index + 1) % dataset_size;
                return TaskOutcome::kRequeue;
            }
            break;
        }
        build.errors[static_cast<std::size_t>(task->slot)] =
            sample.takeError();
    }

    // acq_rel: the release side joins this slot's writes to the
    // counter's release sequence; the acquire side makes every slot
    // visible to whichever worker observes the count hit zero.
    if (build.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        return TaskOutcome::kBatchDone;
    return TaskOutcome::kResolved;
}

} // namespace lotus::dataflow
