/**
 * @file
 * Bounded asynchronous read-ahead for blob-backed datasets.
 *
 * The paper's loaders interleave store I/O and decode in one thread
 * per worker: a worker blocked on a 5 ms remote GET decodes nothing,
 * so store latency lands directly on epoch wall time. ReadAhead
 * splits the I/O off onto dedicated threads that walk the epoch's
 * batch plan ahead of the fetch paths, issuing batched
 * BlobStore::tryReadMany() reads (adjacent indices coalesce into one
 * round trip on stores that support it, e.g. RemoteStore) and parking
 * the bytes until the fetch thread claims them.
 *
 * Contract (DESIGN.md §13):
 *
 *  - Bounded depth: at most `depth` blobs are issued-but-unclaimed at
 *    any time. The issuers stall — they never run ahead of a stalled
 *    consumer by more than the window, so memory stays O(depth) and a
 *    cache-warm epoch (which claims nothing) strands at most `depth`
 *    wasted reads before the engine goes quiet.
 *  - Bit-identity: read-ahead moves *when and where* bytes are read,
 *    never *what* is decoded. claim() returns exactly the bytes a
 *    synchronous tryRead() would have returned (staged errors
 *    included), decode stays on the fetch thread, and the RNG
 *    reseeding contract is untouched — batches are bit-identical with
 *    the engine on or off, under every Schedule and num_workers=0.
 *  - Opportunistic: a claim() miss (not yet issued, already consumed
 *    by a retry, epoch cancelled mid-wait) simply means the caller
 *    reads synchronously. There is no path where forward progress
 *    waits on the engine being right.
 *  - Error propagation: a failed prefetch (kIoError, kTimeout, ...)
 *    is parked and claimed like a success; the dataset surfaces it
 *    with the same stage ("store") the synchronous path would, so
 *    ErrorPolicy retry/skip compose unchanged (a retry's re-claim
 *    misses and re-reads synchronously — identical to a sync retry).
 */

#ifndef LOTUS_DATAFLOW_READ_AHEAD_H
#define LOTUS_DATAFLOW_READ_AHEAD_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/metrics.h"
#include "pipeline/store.h"
#include "trace/logger.h"

namespace lotus::dataflow {

/** Blobs served from the read-ahead window (claim hits). */
inline constexpr const char *kReadAheadHitsMetric =
    "lotus_readahead_hits_total";
/** Claims that fell back to a synchronous read. */
inline constexpr const char *kReadAheadMissesMetric =
    "lotus_readahead_misses_total";
/** Blob reads issued by the I/O threads. */
inline constexpr const char *kReadAheadIssuedMetric =
    "lotus_readahead_issued_total";
/** Issued-but-unclaimed blobs (window occupancy). */
inline constexpr const char *kReadAheadInFlightMetric =
    "lotus_readahead_in_flight";
/** Configured window depth. */
inline constexpr const char *kReadAheadDepthMetric =
    "lotus_readahead_depth";

struct ReadAheadOptions
{
    /** Max issued-but-unclaimed blobs. Must be >= 1. */
    int depth = 32;
    /** Dedicated I/O threads. Must be >= 1. */
    int io_threads = 1;
    /** Max requests per tryReadMany() call (the coalescing window a
     *  batching store sees). 0 picks depth / (2 * io_threads),
     *  clamped to [1, 16]; the effective value is always capped at
     *  depth so one chunk can never overshoot the window. */
    int io_batch = 0;
};

class ReadAhead
{
  public:
    /** @p store must outlive the engine (the loader owns both via the
     *  dataset). Threads start immediately but idle until the first
     *  startEpoch(). */
    ReadAhead(const pipeline::BlobStore *store,
              const ReadAheadOptions &options);
    ~ReadAhead();

    ReadAhead(const ReadAhead &) = delete;
    ReadAhead &operator=(const ReadAhead &) = delete;

    /**
     * Arm the engine for a new epoch: @p plan is the epoch's blob
     * reads in fetch order (flattened batches, correlation included —
     * IoEvents from the I/O threads stamp each read's batch/sample).
     * Outstanding work from the previous epoch is dropped; in-flight
     * completions are discarded on arrival.
     */
    void startEpoch(std::vector<pipeline::BlobReadRequest> plan,
                    trace::TraceLogger *logger);

    /** Drop all outstanding work and wake blocked claims (they miss
     *  and fall back to synchronous reads). */
    void cancel();

    /**
     * Take the prefetched result for @p index: the blob (or prefetch
     * error) when the window holds or is fetching it — blocks for an
     * in-flight read to land — or nullopt when it was never issued,
     * was already claimed, or the epoch was cancelled mid-wait.
     */
    std::optional<Result<std::string>> claim(std::int64_t index);

    const ReadAheadOptions &options() const { return options_; }

    /** Effective per-tryReadMany chunk size after auto-derivation:
     *  in [1, min(16, depth)] when io_batch was 0, else the explicit
     *  value capped at depth. */
    int ioBatch() const { return io_batch_; }

  private:
    struct Entry
    {
        bool ready = false;
        std::optional<Result<std::string>> blob;
    };

    void ioLoop(int thread_id);
    /** entries_ changed size: refresh the occupancy gauge. */
    void updateInFlight();

    const pipeline::BlobStore *store_;
    ReadAheadOptions options_;
    int io_batch_;

    std::mutex mutex_;
    /** Issuers wait here for window space / a new epoch. */
    std::condition_variable issue_cv_;
    /** Claims wait here for an in-flight entry to land. */
    std::condition_variable ready_cv_;
    bool shutdown_ = false;
    /** Bumped by startEpoch/cancel; completions from an older
     *  generation are discarded on arrival. */
    std::uint64_t generation_ = 0;
    std::vector<pipeline::BlobReadRequest> plan_;
    std::size_t next_pos_ = 0;
    trace::TraceLogger *logger_ = nullptr;
    /** Window contents, keyed by blob index. */
    std::unordered_map<std::int64_t, Entry> entries_;
    /** Indices already claimed (or missed) this epoch; issuing them
     *  would be a read nobody will consume. */
    std::unordered_set<std::int64_t> consumed_;

    std::vector<std::thread> io_threads_;

    metrics::Counter *hits_ = nullptr;
    metrics::Counter *misses_ = nullptr;
    metrics::Counter *issued_ = nullptr;
    metrics::Gauge *in_flight_ = nullptr;
    metrics::Gauge *depth_gauge_ = nullptr;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_READ_AHEAD_H
