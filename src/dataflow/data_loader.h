/**
 * @file
 * The asynchronous DataLoader (PyTorch torch.utils.data.DataLoader
 * analogue), faithfully reproducing the protocol of paper §II-B:
 *
 *  - the main process forks num_workers workers;
 *  - one index queue per worker (main -> worker) carries batch index
 *    lists, one shared data queue (workers -> main) carries
 *    preprocessed batches;
 *  - at epoch start the main process primes every worker's index
 *    queue with prefetch_factor batches, round-robin;
 *  - after consuming a batch it sends one new batch of indices to the
 *    worker that produced the consumed batch;
 *  - batches can arrive out of order on the shared data queue; the
 *    main process consumes strictly in order, pinning and caching
 *    early arrivals.
 *
 * LotusTrace instrumentation is built in at exactly the points the
 * paper identifies: fetch() in the worker loop ([T1]), the blocking
 * _get_data wait in next() ([T2], with the 1 µs out-of-order
 * sentinel), and batch consumption spans.
 */

#ifndef LOTUS_DATAFLOW_DATA_LOADER_H
#define LOTUS_DATAFLOW_DATA_LOADER_H

#include <condition_variable>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "dataflow/error_policy.h"
#include "dataflow/fetcher.h"
#include "dataflow/work_queue.h"
#include "metrics/metrics.h"
#include "trace/logger.h"

namespace lotus::dataflow {

/**
 * How batches are divided among workers.
 *
 * kRoundRobin is the paper-faithful §II-B protocol (static
 * whole-batch assignment, one index queue per worker) and the default
 * — characterization runs must keep it to reproduce the paper's [T2]
 * behavior. kWorkStealing decomposes every batch into per-sample
 * tasks on per-worker Chase–Lev deques: a worker drains its own deque
 * LIFO and steals FIFO from the busiest peer, so an idle fleet
 * collaborates on a straggler's batch instead of waiting behind it
 * (index queues collapse into one shared queue; see DESIGN.md §10).
 * Batch contents are bit-identical across both modes and
 * num_workers=0 for the same seed.
 */
enum class Schedule : std::uint8_t
{
    kRoundRobin,
    kWorkStealing,
};

/** Counter family for tasks stolen under Schedule::kWorkStealing,
 *  exported per thief as {worker=N}. */
inline constexpr const char *kStealsMetric = "lotus_loader_steals_total";
/** Per-sample tasks executed under Schedule::kWorkStealing. */
inline constexpr const char *kTasksMetric = "lotus_loader_tasks_total";

/** Measured PMU totals over fetch spans (zero when the perf backend
 *  is unavailable — lotus_top then labels IPC "simulated/off"). */
inline constexpr const char *kPmuCyclesMetric = "lotus_pmu_cycles_total";
inline constexpr const char *kPmuInstructionsMetric =
    "lotus_pmu_instructions_total";
inline constexpr const char *kPmuLlcMissesMetric =
    "lotus_pmu_llc_misses_total";

/**
 * Decoded-sample caching mode (see cache/sample_cache.h). The cache
 * holds prefix-stage samples — decoded and carried through the
 * deterministic transform prefix — so warm epochs skip the Loader
 * (store read + decode) and re-run only the random suffix. Batches
 * stay bit-identical to uncached runs under every Schedule and
 * num_workers=0, because the per-(seed, epoch, sample) reseeding
 * contract means the skipped prefix never consumed rng draws. Only
 * engages for datasets that implement cacheableSplit(); others run
 * uncached (warned once).
 */
enum class CachePolicy : std::uint8_t
{
    kNone,
    /** In-memory only, bounded by cache_budget_bytes. */
    kMemory,
    /** kMemory plus write-through disk materialization: epoch 0
     *  spills prefix-stage samples under materialize_dir, later
     *  epochs (and evicted entries) mmap them back instead of
     *  re-decoding. Corrupt spill files degrade to re-decode. */
    kMaterialize,
};

struct DataLoaderOptions
{
    int batch_size = 1;
    /**
     * Preprocessing workers. 0 runs the loader synchronously: every
     * fetch happens in the calling thread inside next(), like
     * PyTorch's num_workers=0 (no queues, no [T2] wait records).
     */
    int num_workers = 1;
    /** Batches primed per worker at epoch start. */
    int prefetch_factor = 2;
    bool shuffle = false;
    std::uint64_t seed = 0;
    /** Copy batches into "pinned" host memory on the main process. */
    bool pin_memory = true;
    bool drop_last = true;
    /** Optional LotusTrace sink (null = uninstrumented run). */
    trace::TraceLogger *logger = nullptr;
    /**
     * What a recoverable sample error (corrupt blob, failed read)
     * does: kFail makes next() throw a LoaderError with the batch and
     * worker id, kSkip refills the batch slot from a spare index and
     * counts the drop, kRetry re-reads transient store errors before
     * failing. See dataflow/error_policy.h.
     */
    ErrorPolicy error_policy = ErrorPolicy::kFail;
    /** kRetry: attempts after the first failure before giving up. */
    int max_retries = 2;
    /** kSkip: replacement candidates tried per bad batch slot. */
    int max_refill_attempts = 8;
    /** Batch-to-worker scheduling mode (see Schedule). */
    Schedule schedule = Schedule::kRoundRobin;
    /** Decoded-sample caching mode (see CachePolicy). */
    CachePolicy cache_policy = CachePolicy::kNone;
    /** In-memory cache budget; must be > 0 when caching is on. */
    std::int64_t cache_budget_bytes = 0;
    /** Cache lock shards; must be > 0 when caching is on. */
    int cache_shards = 8;
    /** Spill directory for kMaterialize (created if absent; claimed
     *  exclusively — two live loaders sharing one dir is fatal). */
    std::string materialize_dir;
    /**
     * Asynchronous read-ahead window (see dataflow/read_ahead.h):
     * max store reads issued ahead of decode by dedicated I/O
     * threads. 0 disables; > 0 requires io_threads > 0 and a dataset
     * that exposes its store via blobStore() (others warn once and
     * run without). Batches are bit-identical on or off, under every
     * Schedule and num_workers=0.
     */
    int read_ahead_depth = 0;
    /** Dedicated read-ahead I/O threads; must be > 0 exactly when
     *  read_ahead_depth is. */
    int io_threads = 0;
};

/**
 * The subset of DataLoaderOptions that may change between epochs
 * without touching batch contents. Every knob here is content-neutral
 * under the per-(seed, epoch, sample) reseeding contract: workers,
 * prefetch, schedule, and read-ahead move *where and when* samples
 * are produced, never *what* a batch holds. batch_size/shuffle/seed
 * are deliberately absent — changing them changes the batch plan.
 * This is the unit a tuner decision carries (see tuner/tuner.h).
 */
struct LoaderReconfig
{
    int num_workers = 1;
    int prefetch_factor = 2;
    Schedule schedule = Schedule::kRoundRobin;
    /** 0 disables read-ahead; > 0 requires io_threads > 0. */
    int read_ahead_depth = 0;
    int io_threads = 0;

    bool operator==(const LoaderReconfig &other) const
    {
        return num_workers == other.num_workers &&
               prefetch_factor == other.prefetch_factor &&
               schedule == other.schedule &&
               read_ahead_depth == other.read_ahead_depth &&
               io_threads == other.io_threads;
    }
    bool operator!=(const LoaderReconfig &other) const
    {
        return !(*this == other);
    }
};

class DataLoader
{
  public:
    DataLoader(std::shared_ptr<const pipeline::Dataset> dataset,
               std::shared_ptr<const pipeline::Collate> collate,
               DataLoaderOptions options);
    ~DataLoader();

    DataLoader(const DataLoader &) = delete;
    DataLoader &operator=(const DataLoader &) = delete;

    /** Batches one epoch will produce. */
    std::int64_t numBatches() const;

    /**
     * Begin an epoch: spawn workers and prime index queues. Called
     * implicitly by the first next(); explicit restart supports
     * multi-epoch use.
     */
    void startEpoch();

    /**
     * Next in-order batch, or nullopt at epoch end (workers are then
     * joined). Blocks on the shared data queue as needed.
     *
     * Under ErrorPolicy::kFail (and exhausted kRetry/kSkip), a worker
     * that hit a bad sample surfaces here as a thrown LoaderError
     * carrying the failing batch id, worker id, and underlying Error;
     * the workers are shut down first, and the loader needs an
     * explicit startEpoch() to run again.
     */
    std::optional<pipeline::Batch> next();

    /**
     * Return a consumed batch's storage for reuse. In synchronous
     * mode (num_workers == 0) the next fetch collates directly into
     * the recycled tensor when shapes match, making steady-state
     * epochs allocation-free on the batch path. With workers the
     * tensor is simply released here and its pages recycle through
     * the worker-local buffer pools instead.
     */
    void recycle(pipeline::Batch &&batch);

    const DataLoaderOptions &options() const { return options_; }

    /** The tunable subset of the live options (see LoaderReconfig). */
    LoaderReconfig currentConfig() const;

    /**
     * Apply a tuner decision at an epoch boundary. Fatal mid-epoch
     * (between a startEpoch and the nullopt from next()): workers,
     * queues, and the read-ahead plan are per-epoch state, so the
     * loader refuses to mutate them while an epoch is in flight — the
     * reconfiguration safety contract (DESIGN.md §14). Revalidates
     * like the constructor, re-registers per-worker metrics, and
     * rebuilds or tears down the read-ahead engine as the depth
     * moves through 0. Batch contents are unaffected: every field of
     * LoaderReconfig is content-neutral by the reseeding contract.
     */
    void reconfigure(const LoaderReconfig &next);

    /**
     * Mark this loader as co-hosted with preprocessing service
     * @p service (PreprocServer::adoptLoader calls this). An attached
     * loader refuses fleet-level reconfiguration — num_workers and
     * schedule belong to the server's shared fleet, and a tuner
     * driving them per client would silently fight the server's
     * weighted-fair scheduler. Per-client knobs (prefetch_factor,
     * read_ahead_depth, io_threads) stay reconfigurable.
     */
    void attachToService(const std::string &service);

    /** The adopting service's name, or "" when standalone. */
    const std::string &attachedService() const
    {
        return attached_service_;
    }

    /** The decoded-sample cache, or null when cache_policy is kNone
     *  (or the dataset is not cacheable). For tests and benches. */
    const cache::SampleCache *cache() const { return cache_.get(); }

    /** The read-ahead engine, or null when read_ahead_depth is 0 (or
     *  the dataset exposes no blobStore()). For tests and benches. */
    const ReadAhead *readAhead() const { return read_ahead_.get(); }

    /** Main-process id used in trace records. */
    std::uint32_t mainPid() const { return main_pid_; }

    /** Worker process ids (valid after startEpoch). */
    std::vector<std::uint32_t> workerPids() const;

  private:
    struct DataMsg
    {
        std::int64_t batch_id = -1;
        int worker_id = -1;
        pipeline::Batch batch;
        /** Set when the worker's fetch failed unrecoverably; batch is
         *  then empty and next() re-raises as a LoaderError. */
        std::optional<Error> error;
    };

    struct IndexMsg
    {
        std::int64_t batch_id = -1;
        std::vector<std::int64_t> indices;
    };

    void workerLoop(int worker_id);
    /** Worker body under Schedule::kWorkStealing: pop own deque,
     *  steal from the busiest peer, else decompose a new batch. */
    void stealingLoop(int worker_id);
    /** Split an IndexMsg into per-sample tasks on @p worker's deque. */
    void decomposeBatch(int worker_id, IndexMsg msg);
    /** Resolve one task's slot; the countdown's last writer collates. */
    void runTask(int worker_id, SampleTask *task,
                 pipeline::PipelineContext &ctx, Rng &rng);
    /** Last-finishing worker: pick the batch outcome, collate, ship. */
    void completeBatch(int worker_id, BatchBuild &build,
                       pipeline::PipelineContext &ctx);
    bool workStealing() const
    {
        return options_.schedule == Schedule::kWorkStealing &&
               options_.num_workers > 0;
    }
    void tryPutIndex(int worker_id);
    void pinBatch(pipeline::Batch &batch) const;
    /** Shut the epoch down and re-raise a worker's sample error. */
    [[noreturn]] void raiseWorkerError(DataMsg msg);
    void shutdownWorkers();
    void rebuildBatches();
    void registerMetrics();
    /** (Re)build or tear down the read-ahead engine to match
     *  options_; no-op when the live engine already matches. */
    void rebuildReadAhead();
    std::optional<pipeline::Batch> nextSynchronous();

    /** Always-on telemetry handles (process-wide registry; recording
     *  is a no-op unless metrics::setEnabled(true) was called). */
    struct Metrics
    {
        metrics::Counter *batches_total = nullptr;
        metrics::Counter *ooo_batches_total = nullptr;
        metrics::Counter *wait_ns_total = nullptr;
        metrics::Histogram *wait_ns = nullptr;
        metrics::Gauge *data_queue_depth = nullptr;
        metrics::Gauge *pin_cache_size = nullptr;
        /** Indexed by worker id (one "main" entry when num_workers=0). */
        std::vector<metrics::Histogram *> fetch_ns;
        std::vector<metrics::Gauge *> index_queue_depth;
        /** Work-stealing telemetry: per-sample tasks executed, tasks
         *  stolen per thief, and first-task-to-collate batch span. */
        metrics::Counter *tasks_total = nullptr;
        std::vector<metrics::Counter *> steals;
        metrics::Histogram *batch_span_ns = nullptr;
        /** Measured per-thread PMU deltas summed over fetch spans
         *  (stay zero on the simulated backend). */
        metrics::Counter *pmu_cycles = nullptr;
        metrics::Counter *pmu_instructions = nullptr;
        metrics::Counter *pmu_llc_misses = nullptr;
    };

    std::shared_ptr<const pipeline::Dataset> dataset_;
    Fetcher fetcher_;
    DataLoaderOptions options_;
    /** Non-empty once adopted by a PreprocServer (see
     *  attachToService): fleet-level reconfigure is then fatal. */
    std::string attached_service_;
    std::uint32_t main_pid_;
    /** Decoded-sample cache shared with fetcher_ (null = off). */
    std::shared_ptr<cache::SampleCache> cache_;
    /** Read-ahead engine shared with fetcher_ (null = off). */
    std::shared_ptr<ReadAhead> read_ahead_;

    std::vector<std::vector<std::int64_t>> batches_;

    // Per-epoch state.
    /** True from startEpoch until the next explicit startEpoch. */
    bool epoch_started_ = false;
    /** Epoch counter driving the per-epoch reshuffle. */
    std::int64_t epoch_ = 0;
    std::vector<std::unique_ptr<MpmcQueue<IndexMsg>>> index_queues_;
    std::unique_ptr<MpmcQueue<DataMsg>> data_queue_;
    std::vector<std::thread> workers_;
    std::vector<std::uint32_t> worker_pids_;
    mutable std::mutex worker_pids_mutex_;
    /** Signaled by each worker once it has announced its pid. */
    std::condition_variable worker_ready_cv_;

    std::int64_t send_idx_ = 0;
    std::int64_t rcvd_idx_ = 0;
    /** Early out-of-order arrivals (batches pinned; errors held until
     *  their turn so failures surface in batch order). */
    std::map<std::int64_t, DataMsg> reorder_cache_;
    std::map<std::int64_t, int> batch_worker_;

    // Work-stealing state (null / empty under kRoundRobin).
    /** The epoch's deques + idle coordination; rebuilt per epoch. */
    std::unique_ptr<StealGroup> group_;
    /** In-flight batch assemblies. Retained until the epoch's workers
     *  join so stolen task pointers can never dangle; the heavy
     *  payload leaves at collate, so retention is cheap. */
    std::vector<std::unique_ptr<BatchBuild>> builds_;
    std::mutex builds_mutex_;
    /** epochSeedBase(seed, epoch); drives per-sample RNG reseeding. */
    std::uint64_t epoch_seed_base_ = 0;

    /** Fetch rng for the synchronous (num_workers=0) path. */
    Rng sync_rng_{0};
    /** Recycled batch tensor donated to the next synchronous fetch. */
    tensor::Tensor spare_;
    Metrics metrics_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_DATA_LOADER_H
