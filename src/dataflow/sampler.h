/**
 * @file
 * Index samplers and batch grouping (torch.utils.data.Sampler
 * analogues).
 */

#ifndef LOTUS_DATAFLOW_SAMPLER_H
#define LOTUS_DATAFLOW_SAMPLER_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lotus::dataflow {

/** Dataset indices in sequential order. */
std::vector<std::int64_t> sequentialIndices(std::int64_t dataset_size);

/** Dataset indices in seeded shuffled order (Fisher-Yates). */
std::vector<std::int64_t> shuffledIndices(std::int64_t dataset_size,
                                          std::uint64_t seed);

/**
 * Group indices into batches of @p batch_size.
 * @param drop_last discard a trailing partial batch.
 */
std::vector<std::vector<std::int64_t>>
batchIndices(const std::vector<std::int64_t> &indices, int batch_size,
             bool drop_last);

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_SAMPLER_H
