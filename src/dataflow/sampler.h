/**
 * @file
 * Index samplers and batch grouping (torch.utils.data.Sampler
 * analogues).
 */

#ifndef LOTUS_DATAFLOW_SAMPLER_H
#define LOTUS_DATAFLOW_SAMPLER_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lotus::dataflow {

/** Dataset indices in sequential order. */
std::vector<std::int64_t> sequentialIndices(std::int64_t dataset_size);

/** Dataset indices in seeded shuffled order (Fisher-Yates). */
std::vector<std::int64_t> shuffledIndices(std::int64_t dataset_size,
                                          std::uint64_t seed);

/**
 * Group indices into batches of @p batch_size.
 * @param drop_last discard a trailing partial batch.
 */
std::vector<std::vector<std::int64_t>>
batchIndices(const std::vector<std::int64_t> &indices, int batch_size,
             bool drop_last);

/**
 * One epoch's batch plan: like PyTorch, a shuffled plan reshuffles
 * every epoch with a deterministic per-epoch seed derived from the
 * base seed (golden-ratio stride). This is the single source of the
 * plan for both the solo DataLoader and a PreprocServer client — any
 * consumer using the same (dataset size, batch size, shuffle,
 * drop_last, seed, epoch) tuple gets the identical plan, which is
 * half of the service's bit-identity contract (the other half is
 * epochSeedBase in dataflow/task_runner.h).
 */
std::vector<std::vector<std::int64_t>>
epochBatchPlan(std::int64_t dataset_size, int batch_size, bool shuffle,
               bool drop_last, std::uint64_t seed, std::int64_t epoch);

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_SAMPLER_H
