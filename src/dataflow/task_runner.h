/**
 * @file
 * The substrate-neutral half of per-sample task execution.
 *
 * Schedule::kWorkStealing (DataLoader) and the multi-tenant
 * PreprocServer (src/service/) run the same unit of work — resolve
 * one BatchBuild slot under an ErrorPolicy — on different fleets.
 * Everything that decides batch *contents* lives here, in one place,
 * so the two cannot drift: the per-epoch seed mix, and the
 * retry/skip candidate walk that must match Fetcher::fetchSample
 * exactly (the determinism contract of DESIGN.md §10/§15).
 */

#ifndef LOTUS_DATAFLOW_TASK_RUNNER_H
#define LOTUS_DATAFLOW_TASK_RUNNER_H

#include <cstdint>

#include "dataflow/error_policy.h"
#include "dataflow/work_queue.h"
#include "pipeline/sample.h"

namespace lotus::dataflow {

/**
 * Per-epoch RNG seed base for one (base seed, epoch) pair. The epoch
 * must be mixed in — otherwise random-transform augmentation streams
 * repeat identically every epoch even though the shuffle reseeds —
 * and the mix matches epochBatchPlan() (golden-ratio stride).
 * Augmentation draws are then per-sample: every fetch reseeds with
 * sampleRngSeed(epochSeedBase(...), dataset index), so batch contents
 * do not depend on worker count, schedule, tenancy, or execution
 * order (see FetchSeeding in dataflow/fetcher.h).
 */
std::uint64_t epochSeedBase(std::uint64_t seed, std::int64_t epoch);

/** What resolving one task's fetch result means for its owner. */
enum class TaskOutcome
{
    /** Unresolved (transient retry / skip refill): the task object
     *  was mutated and must be re-enqueued by its current owner. */
    kRequeue,
    /** Slot resolved; other slots are still outstanding. */
    kResolved,
    /** Slot resolved and it was the last one: the caller was elected
     *  to complete (collate and ship, or drop) the batch. */
    kBatchDone,
};

/**
 * Resolve @p task's slot with @p sample under @p errors, mirroring
 * Fetcher::fetchSample's candidate walk: kRetry re-attempts the same
 * index while the error is transient and retries remain, kSkip
 * advances to (index + 1) % dataset_size while refills remain, and
 * kFail (or exhaustion) records the error in the slot. Failures are
 * counted via noteSampleError in the caller's lane. The final
 * fetch_sub on the build's countdown uses acq_rel so every slot's
 * writes are visible to whichever worker observes kBatchDone.
 */
TaskOutcome resolveTask(SampleTask *task, Result<pipeline::Sample> sample,
                        const ErrorHandling &errors,
                        std::int64_t dataset_size,
                        pipeline::PipelineContext &ctx);

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_TASK_RUNNER_H
