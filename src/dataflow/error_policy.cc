#include "dataflow/error_policy.h"

#include "common/strings.h"

namespace lotus::dataflow {

const char *
errorPolicyName(ErrorPolicy policy)
{
    switch (policy) {
      case ErrorPolicy::kFail: return "fail";
      case ErrorPolicy::kSkip: return "skip";
      case ErrorPolicy::kRetry: return "retry";
    }
    LOTUS_PANIC("bad error policy %d", static_cast<int>(policy));
}

std::string
LoaderError::describe(const Error &error, std::int64_t batch_id,
                      int worker_id)
{
    return strFormat("batch %lld (worker %d) failed: %s [stage %s]",
                     static_cast<long long>(batch_id), worker_id,
                     error.describe().c_str(),
                     error.stage.empty() ? "?" : error.stage.c_str());
}

} // namespace lotus::dataflow
