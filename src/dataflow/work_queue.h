/**
 * @file
 * Per-worker work-stealing deques for Schedule::kWorkStealing.
 *
 * Each DataLoader worker owns a TaskDeque of per-sample fetch tasks:
 * the owner pushes and pops at the bottom (LIFO, cache-warm), idle
 * peers steal from the top (FIFO, oldest batch first) — the Chase–Lev
 * shape. A shared BatchBuild per in-flight batch collects the slot
 * results; an atomic countdown elects the last-finishing worker to
 * collate and ship the batch (see DESIGN.md §10 for the memory-order
 * argument).
 *
 * The deque is lock-free for push/pop/steal. It deliberately uses the
 * fence-free seq_cst formulation of Chase–Lev rather than standalone
 * atomic_thread_fence: ThreadSanitizer does not model fences, and the
 * deques must stay TSan-clean (tools/run_tsan.sh). The seq_cst
 * top/bottom operations cost a few cycles more per pop/steal, which
 * is noise next to a sample fetch (tens of microseconds and up).
 */

#ifndef LOTUS_DATAFLOW_WORK_QUEUE_H
#define LOTUS_DATAFLOW_WORK_QUEUE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "pipeline/sample.h"

namespace lotus::dataflow {

struct BatchBuild;

/**
 * One per-sample fetch task. Tasks live in their BatchBuild's `tasks`
 * array (stable addresses); the deques traffic in pointers. Exactly
 * one worker owns a task at any time — the one that popped or stole
 * it — so the non-atomic fields may be mutated and the task re-pushed
 * (retry / skip-refill) without further synchronization: the deque's
 * push/steal ordering publishes the writes to the next owner.
 */
struct SampleTask
{
    BatchBuild *build = nullptr;
    /** Collate slot this task resolves. */
    int slot = 0;
    /** Dataset index currently being attempted (advances on refill). */
    std::int64_t index = 0;
    int retries_left = 0;
    int refills_left = 0;
};

/**
 * Shared assembly state for one decomposed batch. Slot vectors are
 * single-writer (each slot belongs to exactly one task); `remaining`
 * counts unresolved slots, and the fetch_sub that takes it to zero
 * elects the collating worker. Builds are retained by the loader
 * until the epoch's workers have joined, so a stolen task can never
 * outlive its build.
 *
 * The build also carries everything a worker needs to execute its
 * tasks without knowing who submitted them: `seed_base` drives the
 * per-(seed, epoch, sample) RNG reseeding (FetchSeeding), and
 * `client_id`/`generation` identify the submitting tenant and epoch
 * incarnation when the substrate is shared by a PreprocServer
 * (src/service/); a solo DataLoader leaves them at their defaults.
 */
struct BatchBuild
{
    std::int64_t batch_id = -1;
    /** Worker that dequeued the IndexMsg (trace/refill bookkeeping). */
    int home_worker = 0;
    /** Decompose time on the metrics clock; 0 when metrics are off. */
    TimeNs start = 0;
    /** Decompose time on the tracer's clock; 0 when untraced. */
    TimeNs trace_start = 0;
    /** epochSeedBase(seed, epoch) of the submitting epoch: tasks
     *  reseed with sampleRngSeed(seed_base, index), so mixed-tenant
     *  fleets stay bit-identical to a solo loader per tenant. */
    std::uint64_t seed_base = 0;
    /** Submitting service client (-1: a solo DataLoader's build). */
    std::int64_t client_id = -1;
    /** Submitting client's epoch incarnation; a mismatch against the
     *  client's live generation means the build was canceled
     *  (disconnect / aborted epoch) and must drain, not ship. */
    std::uint64_t generation = 0;
    std::vector<std::int64_t> indices;
    std::vector<pipeline::Sample> samples;
    std::vector<std::optional<Error>> errors;
    std::vector<SampleTask> tasks;
    std::atomic<int> remaining{0};
};

/**
 * Chase–Lev-style deque of SampleTask pointers.
 *
 * Owner-only: push(), pop(). Any thread: steal(), sizeEstimate().
 * The ring grows on demand (owner-only); retired rings are kept until
 * destruction so a concurrent steal can always dereference the ring
 * it loaded.
 */
class TaskDeque
{
  public:
    explicit TaskDeque(std::int64_t capacity = 64);
    ~TaskDeque() = default;

    TaskDeque(const TaskDeque &) = delete;
    TaskDeque &operator=(const TaskDeque &) = delete;

    /** Owner only: push one task at the bottom. */
    void push(SampleTask *task);

    /** Owner only: pop the most recently pushed task, or null. */
    SampleTask *pop();

    /** Any thread: steal the oldest task, or null (empty or lost a
     *  race — callers just move on to another victim). */
    SampleTask *steal();

    /** Approximate depth (racy; used only for victim selection). */
    std::int64_t sizeEstimate() const;

  private:
    struct Ring
    {
        explicit Ring(std::int64_t cap)
            : capacity(cap),
              slots(std::make_unique<std::atomic<SampleTask *>[]>(
                  static_cast<std::size_t>(cap)))
        {
        }

        SampleTask *
        get(std::int64_t i) const
        {
            return slots[static_cast<std::size_t>(i & (capacity - 1))]
                .load(std::memory_order_relaxed);
        }

        void
        put(std::int64_t i, SampleTask *task)
        {
            slots[static_cast<std::size_t>(i & (capacity - 1))].store(
                task, std::memory_order_relaxed);
        }

        const std::int64_t capacity;
        std::unique_ptr<std::atomic<SampleTask *>[]> slots;
    };

    /** Owner only: double the ring, copying live entries. */
    Ring *grow(Ring *old, std::int64_t top, std::int64_t bottom);

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring *> ring_{nullptr};
    /** Every ring ever allocated; freed only at destruction so a
     *  thief holding a stale ring pointer stays safe. */
    std::vector<std::unique_ptr<Ring>> rings_;
};

/**
 * Idle/wake coordination for a fleet of workers sharing deques.
 *
 * Waking is event-counted: a worker snapshots workEpoch() *before*
 * scanning for work and passes the token to waitForWork(), so a
 * notify that lands between the scan and the wait is never lost. The
 * timeout is only a backstop against pathological scheduling.
 *
 * Extracted from StealGroup so fleets whose deques are not per-worker
 * (the PreprocServer's per-client deques) reuse the same protocol.
 */
class WorkSignal
{
  public:
    /** Current wake-event count; snapshot before scanning for work. */
    std::uint64_t workEpoch() const;

    /** New work exists (task pushed / index queued): wake idlers. */
    void notifyWork();

    /** Fleet tear-down: wake everyone for their shutdown check. */
    void notifyShutdown();

    /**
     * Block until notifyWork() advances past @p seen_epoch,
     * notifyShutdown() ran, or @p timeout elapses.
     */
    void waitForWork(std::uint64_t seen_epoch, TimeNs timeout);

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::uint64_t work_epoch_ = 0;
    bool shutdown_ = false;
};

/**
 * The deques of one epoch's workers plus the idle/wake coordination
 * (a WorkSignal).
 */
class StealGroup
{
  public:
    explicit StealGroup(int num_workers);

    TaskDeque &deque(int worker) { return *deques_[static_cast<std::size_t>(worker)]; }
    int size() const { return static_cast<int>(deques_.size()); }

    /**
     * Steal one task from the deepest peer deque (FIFO: the oldest
     * task of the most backed-up worker, i.e. the straggler batch).
     * @param victim_out set to the victim worker id on success.
     */
    SampleTask *stealBusiest(int thief, int *victim_out);

    /** See WorkSignal. */
    std::uint64_t workEpoch() const { return signal_.workEpoch(); }
    void notifyWork() { signal_.notifyWork(); }
    void notifyShutdown() { signal_.notifyShutdown(); }
    void waitForWork(std::uint64_t seen_epoch, TimeNs timeout)
    {
        signal_.waitForWork(seen_epoch, timeout);
    }

  private:
    std::vector<std::unique_ptr<TaskDeque>> deques_;
    WorkSignal signal_;
};

} // namespace lotus::dataflow

#endif // LOTUS_DATAFLOW_WORK_QUEUE_H
