#include "dataflow/read_ahead.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_util.h"
#include "pipeline/sample.h"

namespace lotus::dataflow {

ReadAhead::ReadAhead(const pipeline::BlobStore *store,
                     const ReadAheadOptions &options)
    : store_(store), options_(options)
{
    LOTUS_ASSERT(store_ != nullptr);
    if (options_.depth < 1)
        LOTUS_FATAL("ReadAheadOptions: depth must be >= 1 (got %d)",
                    options_.depth);
    if (options_.io_threads < 1)
        LOTUS_FATAL("ReadAheadOptions: io_threads must be >= 1 (got %d)",
                    options_.io_threads);
    if (options_.io_batch < 0)
        LOTUS_FATAL("ReadAheadOptions: io_batch must be >= 0 (got %d)",
                    options_.io_batch);
    // Auto io_batch: split the window across the issuers with slack
    // (two chunks each) so one thread's coalesced range never starves
    // the others, capped to keep per-call latency bounded. Degenerate
    // windows (depth < 2 * io_threads) divide to 0; the lower clamp
    // keeps every issuer able to make progress one blob at a time.
    io_batch_ = options_.io_batch > 0
                    ? options_.io_batch
                    : std::clamp(options_.depth / (2 * options_.io_threads),
                                 1, 16);
    // A chunk can never usefully exceed the window: issuing more than
    // depth blobs in one tryReadMany would overshoot the bound the
    // claim side relies on for O(depth) memory.
    io_batch_ = std::min(io_batch_, options_.depth);

    auto &registry = metrics::MetricsRegistry::instance();
    hits_ = registry.counter(kReadAheadHitsMetric);
    misses_ = registry.counter(kReadAheadMissesMetric);
    issued_ = registry.counter(kReadAheadIssuedMetric);
    in_flight_ = registry.gauge(kReadAheadInFlightMetric);
    depth_gauge_ = registry.gauge(kReadAheadDepthMetric);
    depth_gauge_->set(static_cast<std::int64_t>(options_.depth));

    for (int t = 0; t < options_.io_threads; ++t)
        io_threads_.emplace_back([this, t] { ioLoop(t); });
}

ReadAhead::~ReadAhead()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    issue_cv_.notify_all();
    ready_cv_.notify_all();
    for (std::thread &thread : io_threads_)
        thread.join();
}

void
ReadAhead::updateInFlight()
{
    in_flight_->set(static_cast<std::int64_t>(entries_.size()));
}

void
ReadAhead::startEpoch(std::vector<pipeline::BlobReadRequest> plan,
                      trace::TraceLogger *logger)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++generation_;
        plan_ = std::move(plan);
        next_pos_ = 0;
        logger_ = logger;
        entries_.clear();
        consumed_.clear();
        updateInFlight();
    }
    issue_cv_.notify_all();
    // Claims blocked on a previous epoch's in-flight entry miss now.
    ready_cv_.notify_all();
}

void
ReadAhead::cancel()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++generation_;
        plan_.clear();
        next_pos_ = 0;
        logger_ = nullptr;
        entries_.clear();
        consumed_.clear();
        updateInFlight();
    }
    issue_cv_.notify_all();
    ready_cv_.notify_all();
}

std::optional<Result<std::string>>
ReadAhead::claim(std::int64_t index)
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Whatever happens below, nobody will consume a *future* prefetch
    // of this index: the caller either takes the parked bytes now or
    // reads synchronously right after we return.
    consumed_.insert(index);
    auto it = entries_.find(index);
    if (it == entries_.end()) {
        misses_->add(1);
        return std::nullopt;
    }
    const std::uint64_t gen = generation_;
    while (!it->second.ready) {
        ready_cv_.wait(lock);
        if (shutdown_ || generation_ != gen) {
            misses_->add(1);
            return std::nullopt;
        }
        // Re-find: a duplicate claimer (kSkip refill landing on our
        // index) may have taken the entry while we slept.
        it = entries_.find(index);
        if (it == entries_.end()) {
            misses_->add(1);
            return std::nullopt;
        }
    }
    std::optional<Result<std::string>> blob = std::move(it->second.blob);
    entries_.erase(it);
    updateInFlight();
    hits_->add(1);
    lock.unlock();
    issue_cv_.notify_all();
    return blob;
}

void
ReadAhead::ioLoop(int thread_id)
{
    setCurrentThreadName(strFormat("lotus-io-%d", thread_id));
    pipeline::PipelineContext ctx;
    ctx.pid = currentTid();

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        issue_cv_.wait(lock, [this] {
            return shutdown_ ||
                   (next_pos_ < plan_.size() &&
                    entries_.size() <
                        static_cast<std::size_t>(options_.depth));
        });
        if (shutdown_)
            return;

        const std::uint64_t gen = generation_;
        std::vector<pipeline::BlobReadRequest> chunk;
        while (next_pos_ < plan_.size() &&
               entries_.size() < static_cast<std::size_t>(options_.depth) &&
               chunk.size() < static_cast<std::size_t>(io_batch_)) {
            const pipeline::BlobReadRequest request = plan_[next_pos_++];
            if (consumed_.count(request.index) != 0 ||
                entries_.count(request.index) != 0)
                continue;
            entries_.emplace(request.index, Entry{});
            chunk.push_back(request);
        }
        updateInFlight();
        if (chunk.empty())
            continue;
        ctx.logger = logger_;

        lock.unlock();
        std::vector<Result<std::string>> blobs;
        {
            // Ambient correlation for tracing stores: pid is this I/O
            // thread's lane; batch/sample come per-request, so each
            // IoEvent lands on the sample the read serves.
            pipeline::IoTraceScope scope(&ctx);
            blobs = store_->tryReadMany(chunk);
        }
        LOTUS_ASSERT(blobs.size() == chunk.size(),
                     "tryReadMany returned %zu results for %zu requests",
                     blobs.size(), chunk.size());
        lock.lock();

        issued_->add(chunk.size());
        if (generation_ != gen)
            continue; // epoch moved on: stale bytes, drop them
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            auto it = entries_.find(chunk[i].index);
            if (it == entries_.end() || it->second.ready)
                continue;
            it->second.ready = true;
            it->second.blob = std::move(blobs[i]);
        }
        ready_cv_.notify_all();
    }
}

} // namespace lotus::dataflow
