#include "dataflow/iterable_loader.h"

#include "common/strings.h"
#include "common/thread_util.h"
#include "dataflow/fetcher.h"

namespace lotus::dataflow {

using pipeline::Batch;
using pipeline::Sample;

IterableDataLoader::IterableDataLoader(
    std::shared_ptr<const pipeline::IterableDataset> dataset,
    std::shared_ptr<const pipeline::Collate> collate,
    IterableLoaderOptions options)
    : dataset_(std::move(dataset)), collate_(std::move(collate)),
      options_(options), main_pid_(currentTid()),
      collate_tag_(hwcount::KernelRegistry::instance().registerOp(
          pipeline::Collate::kOpName))
{
    LOTUS_ASSERT(dataset_ != nullptr && collate_ != nullptr);
    LOTUS_ASSERT(options_.batch_size > 0 && options_.num_workers > 0);
}

IterableDataLoader::~IterableDataLoader()
{
    shutdownWorkers();
}

void
IterableDataLoader::startEpoch()
{
    shutdownWorkers();
    ++epoch_;
    workers_done_ = 0;
    next_batch_id_.store(0);
    data_queue_ = std::make_unique<MpmcQueue<DataMsg>>();
    for (int w = 0; w < options_.num_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
    epoch_started_ = true;
}

void
IterableDataLoader::workerLoop(int worker_id)
{
    setCurrentThreadName(strFormat("stream-%d", worker_id));
    const std::uint32_t pid = currentTid();
    // Mix the restart counter into the seed the same way the
    // map-style loader mixes its epoch, so augmentation streams
    // differ across epochs (epoch 0 keeps the historical seeds).
    // Unlike the map-style loader, seeding here stays per-(worker,
    // epoch): a sharded stream has no stable global sample index to
    // key FetchSeeding's per-sample contract on, so iterable results
    // remain a function of the shard layout (= worker count).
    constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
    Rng rng((options_.seed + kGolden * static_cast<std::uint64_t>(epoch_)) *
                kGolden +
            static_cast<std::uint64_t>(worker_id) + 1);

    auto stream = dataset_->shard(worker_id, options_.num_workers);
    pipeline::PipelineContext ctx;
    ctx.logger = options_.logger;
    ctx.pid = pid;
    ctx.rng = &rng;

    bool exhausted = false;
    while (!exhausted) {
        // [T1]: one fetch = stream batch_size samples + collate, the
        // same span the map-style fetcher instruments.
        trace::SpanTimer span(options_.logger,
                              trace::RecordKind::BatchPreprocessed);
        span.record().pid = pid;

        std::vector<Sample> samples;
        samples.reserve(static_cast<std::size_t>(options_.batch_size));
        while (static_cast<int>(samples.size()) < options_.batch_size) {
            auto sample = stream->tryNext(ctx);
            if (!sample.ok()) {
                noteSampleError(sample.error(), /*sample_index=*/-1, ctx,
                                options_.error_policy);
                if (options_.error_policy == ErrorPolicy::kFail) {
                    // Ship the failure to the consumer and stop this
                    // shard; next() re-raises it as a LoaderError.
                    DataMsg failed;
                    failed.worker_id = worker_id;
                    failed.batch = Batch{};
                    failed.batch.batch_id = next_batch_id_.fetch_add(1);
                    failed.error = sample.takeError();
                    span.finish();
                    data_queue_->push(std::move(failed));
                    DataMsg done;
                    done.done = true;
                    data_queue_->push(std::move(done));
                    return;
                }
                // kSkip (and kRetry, which degrades to skip on
                // streams: the bad sample is already consumed): drop
                // it and keep filling the batch.
                continue;
            }
            if (!sample.value().has_value()) {
                exhausted = true;
                break;
            }
            samples.push_back(std::move(*sample.value()));
        }
        if (samples.empty() ||
            (exhausted &&
             static_cast<int>(samples.size()) < options_.batch_size &&
             options_.drop_last))
            break;

        const std::int64_t batch_id = next_batch_id_.fetch_add(1);
        ctx.batch_id = batch_id;
        span.record().batch_id = batch_id;

        Batch batch;
        {
            trace::SpanTimer collate_span(options_.logger,
                                          trace::RecordKind::TransformOp);
            collate_span.record().op_name = pipeline::Collate::kOpName;
            collate_span.record().batch_id = batch_id;
            collate_span.record().pid = pid;
            hwcount::OpTagScope op_scope(collate_tag_);
            batch = collate_->collate(std::move(samples));
            collate_span.finish();
        }
        batch.batch_id = batch_id;
        span.finish();

        DataMsg msg;
        msg.worker_id = worker_id;
        msg.batch = std::move(batch);
        if (!data_queue_->push(std::move(msg)))
            return; // queue closed (loader destroyed mid-epoch)
    }

    DataMsg done;
    done.done = true;
    data_queue_->push(std::move(done));
}

std::optional<Batch>
IterableDataLoader::next()
{
    if (!epoch_started_)
        startEpoch();
    while (workers_done_ < options_.num_workers) {
        // [T2]: wait for whichever batch arrives next (no expected
        // order exists for iterable datasets).
        trace::SpanTimer wait_span(options_.logger,
                                   trace::RecordKind::BatchWait);
        wait_span.record().pid = main_pid_;
        auto msg = data_queue_->pop();
        LOTUS_ASSERT(msg.has_value(), "data queue closed mid-stream");
        if (msg->done) {
            ++workers_done_;
            continue;
        }
        if (msg->error.has_value()) {
            // kFail re-raise. The other shards are torn down with the
            // epoch; an explicit startEpoch() restarts streaming.
            const std::int64_t batch_id = msg->batch.batch_id;
            const int worker_id = msg->worker_id;
            Error error = std::move(*msg->error);
            shutdownWorkers();
            epoch_started_ = false;
            throw LoaderError(std::move(error), batch_id, worker_id);
        }
        wait_span.record().batch_id = msg->batch.batch_id;
        wait_span.finish();

        trace::SpanTimer consumed(options_.logger,
                                  trace::RecordKind::BatchConsumed);
        consumed.record().batch_id = msg->batch.batch_id;
        consumed.record().pid = main_pid_;
        consumed.finish();
        return std::move(msg->batch);
    }
    shutdownWorkers();
    return std::nullopt;
}

void
IterableDataLoader::shutdownWorkers()
{
    // Note: epoch_started_ stays true so an exhausted epoch keeps
    // returning nullopt; only an explicit startEpoch() restarts.
    if (data_queue_)
        data_queue_->close();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

} // namespace lotus::dataflow
