#include "service/loader_client.h"

#include "common/clock.h"
#include "dataflow/sampler.h"
#include "dataflow/task_runner.h"

namespace lotus::service {

LoaderClient::LoaderClient(PreprocServer *server,
                           std::shared_ptr<ClientState> state)
    : server_(server), state_(std::move(state))
{
    batches_ = dataflow::epochBatchPlan(
        state_->dataset->size(), state_->config.batch_size,
        state_->config.shuffle, state_->config.drop_last,
        state_->config.seed, /*epoch=*/0);
}

LoaderClient::~LoaderClient()
{
    server_->disconnect(state_);
}

std::int64_t
LoaderClient::numBatches() const
{
    return static_cast<std::int64_t>(batches_.size());
}

void
LoaderClient::startEpoch()
{
    // Same epoch numbering as the solo loader: the first start is
    // epoch 0, an error-aborted epoch replays under the same number,
    // and only a completed epoch advances the shuffle.
    if (epoch_started_)
        ++epoch_;
    batches_ = dataflow::epochBatchPlan(
        state_->dataset->size(), state_->config.batch_size,
        state_->config.shuffle, state_->config.drop_last,
        state_->config.seed, epoch_);
    seed_base_ = dataflow::epochSeedBase(state_->config.seed, epoch_);
    generation_ = server_->beginEpoch(*state_);
    reorder_.clear();
    send_idx_ = 0;
    rcvd_idx_ = 0;
    epoch_started_ = true;
    pump();
}

void
LoaderClient::pump()
{
    while (send_idx_ < numBatches() &&
           send_idx_ - rcvd_idx_ < state_->config.prefetch_batches) {
        Submission submission;
        submission.batch_id = send_idx_;
        submission.indices =
            batches_[static_cast<std::size_t>(send_idx_)];
        submission.seed_base = seed_base_;
        submission.generation = generation_;
        server_->submit(*state_, std::move(submission));
        ++send_idx_;
    }
}

std::optional<pipeline::Batch>
LoaderClient::next()
{
    if (!epoch_started_)
        startEpoch();
    if (rcvd_idx_ >= numBatches())
        return std::nullopt;
    const std::int64_t wanted = rcvd_idx_;

    BatchMsg msg;
    if (auto cached = reorder_.find(wanted); cached != reorder_.end()) {
        msg = std::move(cached->second);
        reorder_.erase(cached);
    } else {
        // [T2]: blocked on the shared fleet, the service analogue of
        // DataLoader::next() blocking on its data queue.
        const bool measured = metrics::enabled();
        const TimeNs wait_start =
            measured ? SteadyClock::instance().now() : 0;
        for (;;) {
            auto received = state_->transport->receive();
            LOTUS_ASSERT(received.has_value(),
                         "transport closed with batches outstanding");
            state_->queue_depth_metric->set(
                static_cast<std::int64_t>(state_->transport->depth()));
            if (received->generation != generation_)
                continue; // canceled incarnation residue
            if (received->batch_id == wanted) {
                msg = std::move(*received);
                break;
            }
            // Early arrival: hold until its turn so batches (and
            // errors) surface in batch order, like the solo reorder
            // cache.
            reorder_.emplace(received->batch_id, std::move(*received));
        }
        if (measured) {
            const TimeNs waited =
                SteadyClock::instance().now() - wait_start;
            state_->wait_ns_metric->record(
                static_cast<std::uint64_t>(waited > 0 ? waited : 0));
        }
    }

    if (msg.error.has_value()) {
        // The epoch cannot continue past a failed batch: cancel the
        // outstanding incarnation (the fleet drains it as no-ops
        // without stalling other clients) and re-raise. The epoch
        // number does not advance — startEpoch() replays it.
        generation_ = server_->beginEpoch(*state_);
        reorder_.clear();
        epoch_started_ = false;
        throw dataflow::LoaderError(std::move(*msg.error), msg.batch_id,
                                    msg.worker_id);
    }

    ++rcvd_idx_;
    pump();
    return std::move(msg.batch);
}

} // namespace lotus::service
