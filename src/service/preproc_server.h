/**
 * @file
 * Multi-tenant preprocessing service over the work-stealing substrate
 * (the tf.data-service direction, PAPERS.md arXiv:2101.12127).
 *
 * One PreprocServer owns one worker fleet; N concurrent training
 * clients (LoaderClient, src/service/loader_client.h) each bring
 * their own dataset view, seed, batch size, and ErrorPolicy, submit
 * per-sample tasks into per-client Chase–Lev deques, and stream built
 * batches back over a BatchTransport. The scheduler is weighted-fair:
 * victim selection orders clients by virtual time (executed service
 * nanoseconds / weight), so a heavy-tailed tenant self-penalizes
 * instead of inflating a light tenant's [T2] tail (the MinatoLoader
 * fast-lane motivation, arXiv:2509.10712). Admission control bounds
 * the client count and per-client in-flight samples; per-client
 * outbound queues are bounded by an admission rule rather than a
 * blocking push, so a slow consumer can never wedge a fleet worker.
 *
 * Determinism contract (DESIGN.md §15): every client's batches are
 * bit-identical to a solo DataLoader with the same config, because
 * the batch plan (sampler::epochBatchPlan), the per-epoch seed mix
 * (task_runner::epochSeedBase), the per-sample reseeding
 * (fetcher::sampleRngSeed via BatchBuild::seed_base), and the
 * retry/skip candidate walk (task_runner::resolveTask) are the same
 * code the solo loader runs.
 */

#ifndef LOTUS_SERVICE_PREPROC_SERVER_H
#define LOTUS_SERVICE_PREPROC_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dataflow/data_loader.h"
#include "dataflow/error_policy.h"
#include "dataflow/fetcher.h"
#include "dataflow/work_queue.h"
#include "metrics/metrics.h"
#include "service/transport.h"

namespace lotus::service {

class LoaderClient;

/** Per-client task executions, exported as {client=N}. */
inline constexpr const char *kServiceTasksMetric =
    "lotus_service_tasks_total";
/** Per-client batches shipped, exported as {client=N}. */
inline constexpr const char *kServiceBatchesMetric =
    "lotus_service_batches_total";
/** Per-client [T2] wait (client blocked in next()), {client=N}. */
inline constexpr const char *kServiceWaitNsMetric =
    "lotus_service_wait_ns";
/** Per-client outbound (built, unconsumed) batch backlog, {client=N}. */
inline constexpr const char *kServiceQueueDepthMetric =
    "lotus_service_queue_depth";
/** Per-client decomposed-but-unfinished samples, {client=N}. */
inline constexpr const char *kServiceInflightMetric =
    "lotus_service_inflight_samples";
/** Live (connected) clients. */
inline constexpr const char *kServiceClientsMetric =
    "lotus_service_clients";
/** Connections refused by admission control. */
inline constexpr const char *kServiceRejectedMetric =
    "lotus_service_rejected_total";

struct ServerOptions
{
    /** Shared fleet size; every client's tasks run on these. */
    int num_workers = 4;
    /** Admission control: connect() past this count is refused. */
    int max_clients = 8;
    /**
     * Admission control: a client's next batch is not decomposed
     * while its in-flight samples would exceed this. One batch is
     * always admitted even if larger, so a batch bigger than the cap
     * degrades to serial batches instead of deadlocking.
     */
    std::int64_t max_inflight_samples = 256;
    /**
     * Per-client backpressure: in-flight builds plus unconsumed
     * outbound batches never exceed this, enforced at decompose time
     * so completion's transport send can never block a worker.
     */
    int outbound_capacity = 4;
    /** Name reported by adopted loaders' reconfigure guard. */
    std::string name = "preproc";
};

/** One client's loader-equivalent configuration (the solo-DataLoader
 *  fields that define its batch plan and sample contents, plus the
 *  service-only weight and pacing knobs). */
struct ClientConfig
{
    int batch_size = 1;
    bool shuffle = false;
    std::uint64_t seed = 0;
    bool drop_last = true;
    dataflow::ErrorPolicy error_policy = dataflow::ErrorPolicy::kFail;
    /** kRetry: attempts after the first failure before giving up. */
    int max_retries = 2;
    /** kSkip: replacement candidates tried per bad batch slot. */
    int max_refill_attempts = 8;
    /**
     * Weighted-fair share. Victim selection orders clients by
     * service_ns / weight, so a weight-2 client receives twice the
     * fleet time of a weight-1 client under contention.
     */
    double weight = 1.0;
    /** Batches this client keeps submitted ahead of consumption (the
     *  per-client analogue of prefetch_factor; tunable per client). */
    int prefetch_batches = 2;
    /** Optional LotusTrace sink for this client's task spans. */
    trace::TraceLogger *logger = nullptr;
};

/** One not-yet-decomposed batch submission from a client. */
struct Submission
{
    std::int64_t batch_id = -1;
    std::vector<std::int64_t> indices;
    /** epochSeedBase(seed, epoch) of the submitting epoch. */
    std::uint64_t seed_base = 0;
    /** Epoch incarnation; stale generations drain as no-ops. */
    std::uint64_t generation = 0;
};

/**
 * Server-side per-client state. Tasks live in one TaskDeque per
 * client that fleet workers consume exclusively through steal() (any
 * thread); pushes — decompose and retry/skip requeue — serialize on
 * push_mutex, whose holder plays the Chase–Lev owner role. pop() is
 * never called, so there is no owner thread to conflict with.
 */
struct ClientState
{
    ClientState(std::int64_t client_id,
                std::shared_ptr<const pipeline::Dataset> dataset_in,
                std::shared_ptr<const pipeline::Collate> collate,
                const ClientConfig &config_in)
        : id(client_id), config(config_in), dataset(dataset_in),
          fetcher(std::move(dataset_in), std::move(collate)),
          errors{config_in.error_policy, config_in.max_retries,
                 config_in.max_refill_attempts},
          transport(std::make_shared<QueueTransport>())
    {
    }

    const std::int64_t id;
    const ClientConfig config;
    const std::shared_ptr<const pipeline::Dataset> dataset;
    dataflow::Fetcher fetcher;
    const dataflow::ErrorHandling errors;

    dataflow::TaskDeque deque;
    /** Serializes owner-role deque pushes (decompose / requeue). */
    std::mutex push_mutex;
    MpmcQueue<Submission> pending;

    std::atomic<std::int64_t> inflight_samples{0};
    std::atomic<std::int64_t> peak_inflight{0};
    std::atomic<int> inflight_builds{0};
    /** Weighted-fair numerator: executed fetch nanoseconds. */
    std::atomic<std::uint64_t> service_ns{0};
    /** Epoch incarnation; bumped by startEpoch / disconnect. */
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> disconnected{false};

    std::atomic<std::uint64_t> executed_tasks{0};
    std::atomic<std::uint64_t> dropped_tasks{0};
    std::atomic<std::uint64_t> shipped_batches{0};

    const std::shared_ptr<BatchTransport> transport;

    /** In-flight builds; an entry is erased by the completing worker
     *  (after the last slot resolves no task pointer survives). */
    std::mutex builds_mutex;
    std::vector<std::unique_ptr<dataflow::BatchBuild>> builds;

    metrics::Counter *tasks_metric = nullptr;
    metrics::Counter *batches_metric = nullptr;
    metrics::Histogram *wait_ns_metric = nullptr;
    metrics::Gauge *queue_depth_metric = nullptr;
    metrics::Gauge *inflight_metric = nullptr;

    /** Virtual time: lower runs first. Relaxed reads — fairness is a
     *  scheduling heuristic, not a correctness edge. */
    double
    vtime() const
    {
        return static_cast<double>(
                   service_ns.load(std::memory_order_relaxed)) /
               config.weight;
    }
};

/** Point-in-time per-client accounting (tests, benches, lotus_top). */
struct ClientStats
{
    std::int64_t id = -1;
    double weight = 1.0;
    std::uint64_t executed_tasks = 0;
    std::uint64_t dropped_tasks = 0;
    std::uint64_t shipped_batches = 0;
    std::int64_t inflight_samples = 0;
    std::int64_t peak_inflight_samples = 0;
    std::uint64_t service_ns = 0;
    bool disconnected = false;
};

struct ServerStats
{
    int live_clients = 0;
    std::uint64_t rejected_connects = 0;
    /** Samples canceled across all clients ever (canceled epochs /
     *  disconnects) — stale tasks drained as no-ops plus submissions
     *  discarded before decomposition; survives client reaping. */
    std::uint64_t dropped_tasks = 0;
    std::vector<ClientStats> clients;
};

class PreprocServer
{
  public:
    explicit PreprocServer(ServerOptions options);

    /** Fatal with clients still connected — destroy every
     *  LoaderClient first (they disconnect in their destructors). */
    ~PreprocServer();

    PreprocServer(const PreprocServer &) = delete;
    PreprocServer &operator=(const PreprocServer &) = delete;

    /**
     * Admit a new client. Refused (recoverable Error, counted in
     * lotus_service_rejected_total) when max_clients are connected;
     * invalid configs are fatal, like DataLoaderOptions validation.
     * The returned handle disconnects on destruction and must not
     * outlive the server.
     */
    Result<std::shared_ptr<LoaderClient>>
    connect(std::shared_ptr<const pipeline::Dataset> dataset,
            std::shared_ptr<const pipeline::Collate> collate,
            ClientConfig config);

    /**
     * Guard-rail registration for a DataLoader co-hosted with this
     * server's fleet: marks the loader so fleet-level reconfigure()
     * calls (num_workers / schedule) become fatal instead of silently
     * fighting the shared fleet (see DataLoader::attachToService).
     */
    void
    adoptLoader(dataflow::DataLoader &loader) const
    {
        loader.attachToService(options_.name);
    }

    ServerStats stats() const;

    const ServerOptions &options() const { return options_; }

  private:
    friend class LoaderClient;

    void workerLoop(int worker_id);
    /** Steal one task from the min-vtime client with work; true when
     *  a task ran. */
    bool runOneTask(int worker_id, pipeline::PipelineContext &ctx,
                    Rng &rng);
    /** Decompose the min-vtime admissible pending submission; true
     *  when one was decomposed. */
    bool tryDecompose(int worker_id);
    /** Admission rule for decomposing @p client's next batch. */
    bool admissible(const ClientState &client) const;
    void decompose(ClientState &client, Submission submission,
                   int worker_id);
    void executeTask(ClientState &client, dataflow::SampleTask *task,
                     int worker_id, pipeline::PipelineContext &ctx,
                     Rng &rng);
    /** Last-finisher path: collate and ship, or drop a canceled
     *  build; frees the build and the in-flight budget either way. */
    void finishBatch(ClientState &client, dataflow::BatchBuild &build,
                     int worker_id, pipeline::PipelineContext &ctx);

    /** Discard @p client's undecomposed submissions, counting their
     *  samples as dropped (canceled-epoch accounting stays complete
     *  whether or not decomposition got to a batch). */
    void drainPending(ClientState &client);

    /** Client-side entry points (via LoaderClient). */
    void submit(ClientState &client, Submission submission);
    /** Cancel outstanding work and open the next epoch incarnation;
     *  returns the new generation. */
    std::uint64_t beginEpoch(ClientState &client);
    void disconnect(const std::shared_ptr<ClientState> &client);

    /** Live clients sorted by ascending vtime (id tie-break). */
    std::vector<std::shared_ptr<ClientState>> clientsByVtime() const;
    /** Drop fully-drained disconnected clients from the roster. */
    void reapDisconnected();

    const ServerOptions options_;

    mutable std::mutex clients_mutex_;
    std::vector<std::shared_ptr<ClientState>> clients_;
    std::int64_t next_client_id_ = 0;
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> total_dropped_{0};

    dataflow::WorkSignal signal_;
    std::atomic<bool> shutdown_{false};
    std::vector<std::thread> workers_;

    metrics::Gauge *clients_metric_ = nullptr;
    metrics::Counter *rejected_metric_ = nullptr;
};

} // namespace lotus::service

#endif // LOTUS_SERVICE_PREPROC_SERVER_H
