/**
 * @file
 * The training-side handle onto a PreprocServer: a DataLoader-shaped
 * epoch cursor (numBatches / startEpoch / next) whose fetching runs
 * on the server's shared fleet instead of a private worker pool.
 *
 * The client owns the epoch state machine — the batch plan, the
 * submission pacing (prefetch_batches ahead of consumption), and the
 * in-order reorder buffer — and the server owns execution. next()
 * blocks on the transport exactly like DataLoader::next() blocks on
 * its data queue, so the recorded wait is the same [T2] quantity,
 * exported per client as lotus_service_wait_ns{client=N}.
 */

#ifndef LOTUS_SERVICE_LOADER_CLIENT_H
#define LOTUS_SERVICE_LOADER_CLIENT_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "service/preproc_server.h"

namespace lotus::service {

class LoaderClient
{
  public:
    /** Disconnects: the server cancels and drains any outstanding
     *  work without stalling other clients. */
    ~LoaderClient();

    LoaderClient(const LoaderClient &) = delete;
    LoaderClient &operator=(const LoaderClient &) = delete;

    std::int64_t id() const { return state_->id; }
    const ClientConfig &config() const { return state_->config; }

    /** Batches one epoch will produce (same plan as a solo loader). */
    std::int64_t numBatches() const;

    /**
     * Begin an epoch: cancel any outstanding incarnation, rebuild the
     * plan (reshuffling like a solo loader on re-start), and submit
     * the first prefetch_batches. Called implicitly by the first
     * next(); explicit restart supports multi-epoch use.
     */
    void startEpoch();

    /**
     * Next in-order batch, or nullopt at epoch end. Blocks on the
     * transport as needed ([T2]). Under ErrorPolicy::kFail (and
     * exhausted kRetry/kSkip) a failed batch surfaces here as a
     * LoaderError in batch order — the epoch is then aborted
     * (outstanding work drains server-side) and needs an explicit
     * startEpoch() to run again, matching DataLoader::next().
     */
    std::optional<pipeline::Batch> next();

    /** 0-based epoch counter (increments on re-startEpoch). */
    std::int64_t epoch() const { return epoch_; }

  private:
    friend class PreprocServer;

    LoaderClient(PreprocServer *server,
                 std::shared_ptr<ClientState> state);

    /** Submit until prefetch_batches are in flight or the plan is
     *  exhausted. */
    void pump();

    PreprocServer *const server_;
    const std::shared_ptr<ClientState> state_;

    std::vector<std::vector<std::int64_t>> batches_;
    bool epoch_started_ = false;
    std::int64_t epoch_ = 0;
    std::int64_t send_idx_ = 0;
    std::int64_t rcvd_idx_ = 0;
    std::uint64_t seed_base_ = 0;
    /** Live epoch incarnation; messages from others are dropped. */
    std::uint64_t generation_ = 0;
    /** Early out-of-order arrivals, held until their turn. */
    std::map<std::int64_t, BatchMsg> reorder_;
};

} // namespace lotus::service

#endif // LOTUS_SERVICE_LOADER_CLIENT_H
