#include "service/preproc_server.h"

#include <algorithm>

#include "common/strings.h"
#include "common/thread_util.h"
#include "dataflow/task_runner.h"
#include "hwcount/thread_counters.h"
#include "service/loader_client.h"

namespace lotus::service {

using dataflow::BatchBuild;
using dataflow::SampleTask;
using dataflow::TaskOutcome;

namespace {

/** Idle-worker wake backstop; WorkSignal events make the common case
 *  prompt (same constant as the solo work-stealing loop). */
constexpr TimeNs kServiceIdleWait = 200 * kMicrosecond;

void
validateOptions(const ServerOptions &options)
{
    if (options.num_workers <= 0)
        LOTUS_FATAL("ServerOptions: num_workers must be > 0 (got %d)",
                    options.num_workers);
    if (options.max_clients <= 0)
        LOTUS_FATAL("ServerOptions: max_clients must be > 0 (got %d)",
                    options.max_clients);
    if (options.max_inflight_samples <= 0)
        LOTUS_FATAL(
            "ServerOptions: max_inflight_samples must be > 0 (got %lld)",
            static_cast<long long>(options.max_inflight_samples));
    if (options.outbound_capacity < 1)
        LOTUS_FATAL(
            "ServerOptions: outbound_capacity must be >= 1 (got %d)",
            options.outbound_capacity);
}

/** Fatal like DataLoaderOptions validation: a bad client config is a
 *  caller bug, not an admission decision. */
void
validateClientConfig(const ClientConfig &config)
{
    if (config.batch_size <= 0)
        LOTUS_FATAL("ClientConfig: batch_size must be > 0 (got %d)",
                    config.batch_size);
    if (config.weight <= 0.0)
        LOTUS_FATAL("ClientConfig: weight must be > 0 (got %g)",
                    config.weight);
    if (config.prefetch_batches < 1)
        LOTUS_FATAL("ClientConfig: prefetch_batches must be >= 1 (got %d)",
                    config.prefetch_batches);
    if (config.max_retries < 0)
        LOTUS_FATAL("ClientConfig: max_retries must be >= 0 (got %d)",
                    config.max_retries);
    if (config.max_refill_attempts < 0)
        LOTUS_FATAL(
            "ClientConfig: max_refill_attempts must be >= 0 (got %d)",
            config.max_refill_attempts);
}

} // namespace

PreprocServer::PreprocServer(ServerOptions options)
    : options_(std::move(options))
{
    validateOptions(options_);
    auto &registry = metrics::MetricsRegistry::instance();
    clients_metric_ = registry.gauge(kServiceClientsMetric);
    rejected_metric_ = registry.counter(kServiceRejectedMetric);
    workers_.reserve(static_cast<std::size_t>(options_.num_workers));
    for (int w = 0; w < options_.num_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

PreprocServer::~PreprocServer()
{
    {
        std::lock_guard lock(clients_mutex_);
        for (const auto &client : clients_) {
            if (!client->disconnected.load(std::memory_order_acquire))
                LOTUS_FATAL(
                    "PreprocServer '%s' destroyed with client %lld still "
                    "connected; destroy every LoaderClient first (their "
                    "destructors disconnect)",
                    options_.name.c_str(),
                    static_cast<long long>(client->id));
        }
    }
    shutdown_.store(true, std::memory_order_release);
    signal_.notifyShutdown();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
}

Result<std::shared_ptr<LoaderClient>>
PreprocServer::connect(std::shared_ptr<const pipeline::Dataset> dataset,
                       std::shared_ptr<const pipeline::Collate> collate,
                       ClientConfig config)
{
    validateClientConfig(config);
    std::shared_ptr<ClientState> state;
    {
        std::lock_guard lock(clients_mutex_);
        int live = 0;
        double min_vtime = -1.0;
        for (const auto &client : clients_) {
            if (client->disconnected.load(std::memory_order_acquire))
                continue;
            ++live;
            const double vtime = client->vtime();
            if (min_vtime < 0.0 || vtime < min_vtime)
                min_vtime = vtime;
        }
        if (live >= options_.max_clients) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            rejected_metric_->add(1);
            return LOTUS_ERROR(
                ErrorCode::kRejected,
                "preproc service '%s': admission control refused the "
                "connection (%d of %d clients connected)",
                options_.name.c_str(), live, options_.max_clients);
        }
        const std::int64_t id = next_client_id_++;
        state = std::make_shared<ClientState>(id, std::move(dataset),
                                              std::move(collate), config);
        // Weighted-fair join: a fresh client starts at the fleet's
        // current minimum virtual time — starting at zero would let
        // it monopolize the fleet to "catch up" with tenants that
        // have been running for hours.
        if (min_vtime > 0.0)
            state->service_ns.store(
                static_cast<std::uint64_t>(min_vtime * config.weight),
                std::memory_order_relaxed);
        auto &registry = metrics::MetricsRegistry::instance();
        const std::string label = strFormat("%lld",
                                            static_cast<long long>(id));
        state->tasks_metric = registry.counter(
            metrics::labeled(kServiceTasksMetric, "client", label));
        state->batches_metric = registry.counter(
            metrics::labeled(kServiceBatchesMetric, "client", label));
        state->wait_ns_metric = registry.histogram(
            metrics::labeled(kServiceWaitNsMetric, "client", label));
        state->queue_depth_metric = registry.gauge(
            metrics::labeled(kServiceQueueDepthMetric, "client", label));
        state->inflight_metric = registry.gauge(
            metrics::labeled(kServiceInflightMetric, "client", label));
        clients_.push_back(state);
        clients_metric_->set(live + 1);
    }
    return std::shared_ptr<LoaderClient>(
        new LoaderClient(this, std::move(state)));
}

ServerStats
PreprocServer::stats() const
{
    ServerStats out;
    out.rejected_connects = rejected_.load(std::memory_order_relaxed);
    out.dropped_tasks = total_dropped_.load(std::memory_order_relaxed);
    std::lock_guard lock(clients_mutex_);
    out.clients.reserve(clients_.size());
    for (const auto &client : clients_) {
        ClientStats stats;
        stats.id = client->id;
        stats.weight = client->config.weight;
        stats.executed_tasks =
            client->executed_tasks.load(std::memory_order_relaxed);
        stats.dropped_tasks =
            client->dropped_tasks.load(std::memory_order_relaxed);
        stats.shipped_batches =
            client->shipped_batches.load(std::memory_order_relaxed);
        stats.inflight_samples =
            client->inflight_samples.load(std::memory_order_relaxed);
        stats.peak_inflight_samples =
            client->peak_inflight.load(std::memory_order_relaxed);
        stats.service_ns =
            client->service_ns.load(std::memory_order_relaxed);
        stats.disconnected =
            client->disconnected.load(std::memory_order_relaxed);
        if (!stats.disconnected)
            ++out.live_clients;
        out.clients.push_back(std::move(stats));
    }
    return out;
}

void
PreprocServer::submit(ClientState &client, Submission submission)
{
    client.pending.push(std::move(submission));
    signal_.notifyWork();
}

void
PreprocServer::drainPending(ClientState &client)
{
    // Samples canceled before they ever became tasks count as dropped
    // alongside the stale-task no-op drain, so a canceled epoch's
    // accounting is complete whether or not decomposition got to it.
    while (auto submission = client.pending.tryPop()) {
        const auto n =
            static_cast<std::uint64_t>(submission->indices.size());
        client.dropped_tasks.fetch_add(n, std::memory_order_relaxed);
        total_dropped_.fetch_add(n, std::memory_order_relaxed);
    }
}

std::uint64_t
PreprocServer::beginEpoch(ClientState &client)
{
    // Bump first: workers decomposing concurrently see the new
    // generation and drop stale submissions the drain loop misses.
    const std::uint64_t generation =
        client.generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    drainPending(client);
    signal_.notifyWork();
    return generation;
}

void
PreprocServer::disconnect(const std::shared_ptr<ClientState> &client)
{
    client->disconnected.store(true, std::memory_order_release);
    client->generation.fetch_add(1, std::memory_order_acq_rel);
    drainPending(*client);
    client->transport->close();
    {
        std::lock_guard lock(clients_mutex_);
        int live = 0;
        for (const auto &other : clients_) {
            if (!other->disconnected.load(std::memory_order_acquire))
                ++live;
        }
        clients_metric_->set(live);
    }
    // Wake the fleet: idle workers drain the client's stale deque
    // tasks as no-ops, after which reapDisconnected drops the state.
    signal_.notifyWork();
}

std::vector<std::shared_ptr<ClientState>>
PreprocServer::clientsByVtime() const
{
    std::vector<std::shared_ptr<ClientState>> snapshot;
    {
        std::lock_guard lock(clients_mutex_);
        snapshot = clients_;
    }
    // Disconnected clients sort first so their cancellation drain
    // (cheap no-op tasks) clears promptly; live clients order by
    // virtual time — the weighted-fair victim selection.
    std::sort(snapshot.begin(), snapshot.end(),
              [](const auto &a, const auto &b) {
                  const bool da =
                      a->disconnected.load(std::memory_order_relaxed);
                  const bool db =
                      b->disconnected.load(std::memory_order_relaxed);
                  if (da != db)
                      return da;
                  const double va = a->vtime();
                  const double vb = b->vtime();
                  if (va != vb)
                      return va < vb;
                  return a->id < b->id;
              });
    return snapshot;
}

void
PreprocServer::reapDisconnected()
{
    std::lock_guard lock(clients_mutex_);
    std::erase_if(clients_, [](const auto &client) {
        return client->disconnected.load(std::memory_order_acquire) &&
               client->inflight_samples.load(std::memory_order_acquire) ==
                   0 &&
               client->inflight_builds.load(std::memory_order_acquire) ==
                   0 &&
               client->pending.empty();
    });
}

bool
PreprocServer::admissible(const ClientState &client) const
{
    // Backpressure: in-flight builds plus the unconsumed outbound
    // backlog stay under the capacity, so the completion send can
    // never block a fleet worker on a slow consumer.
    if (client.inflight_builds.load(std::memory_order_acquire) +
            static_cast<std::int64_t>(client.transport->depth()) >=
        options_.outbound_capacity)
        return false;
    // Admission: defer while in-flight samples would exceed the cap —
    // except from empty, so one oversized batch degrades to serial
    // batches instead of deadlocking.
    const std::int64_t inflight =
        client.inflight_samples.load(std::memory_order_acquire);
    return inflight == 0 ||
           inflight + client.config.batch_size <=
               options_.max_inflight_samples;
}

bool
PreprocServer::tryDecompose(int worker_id)
{
    for (const auto &client : clientsByVtime()) {
        if (client->disconnected.load(std::memory_order_acquire)) {
            // Pending submissions of a disconnected client only need
            // discarding (disconnect drains; this catches races).
            drainPending(*client);
            continue;
        }
        if (client->pending.empty() || !admissible(*client))
            continue;
        std::lock_guard lock(client->push_mutex);
        if (!admissible(*client))
            continue;
        auto submission = client->pending.tryPop();
        if (!submission.has_value())
            continue;
        if (submission->generation !=
            client->generation.load(std::memory_order_acquire)) {
            // Stale epoch residue: discard, counting its samples like
            // the drainPending and stale-task no-op paths do.
            const auto n =
                static_cast<std::uint64_t>(submission->indices.size());
            client->dropped_tasks.fetch_add(n,
                                            std::memory_order_relaxed);
            total_dropped_.fetch_add(n, std::memory_order_relaxed);
            continue;
        }
        decompose(*client, std::move(*submission), worker_id);
        return true;
    }
    return false;
}

void
PreprocServer::decompose(ClientState &client, Submission submission,
                         int worker_id)
{
    // push_mutex is held by the caller: this thread plays the
    // Chase–Lev owner for the pushes below.
    auto owned = std::make_unique<BatchBuild>();
    BatchBuild *build = owned.get();
    build->batch_id = submission.batch_id;
    build->home_worker = worker_id;
    build->seed_base = submission.seed_base;
    build->client_id = client.id;
    build->generation = submission.generation;
    if (client.config.logger != nullptr)
        build->trace_start = client.config.logger->now();
    if (metrics::enabled())
        build->start = SteadyClock::instance().now();
    build->indices = std::move(submission.indices);
    const auto n = build->indices.size();
    LOTUS_ASSERT(n > 0, "empty batch submitted");
    build->samples.resize(n);
    build->errors.resize(n);
    build->tasks.resize(n);
    build->remaining.store(static_cast<int>(n),
                           std::memory_order_relaxed);
    {
        std::lock_guard lock(client.builds_mutex);
        client.builds.push_back(std::move(owned));
    }
    for (std::size_t slot = 0; slot < n; ++slot) {
        SampleTask &task = build->tasks[slot];
        task.build = build;
        task.slot = static_cast<int>(slot);
        task.index = build->indices[slot];
        task.retries_left = client.errors.max_retries;
        task.refills_left = client.errors.max_refill_attempts;
        client.deque.push(&task);
    }
    client.inflight_builds.fetch_add(1, std::memory_order_acq_rel);
    const std::int64_t inflight =
        client.inflight_samples.fetch_add(static_cast<std::int64_t>(n),
                                          std::memory_order_acq_rel) +
        static_cast<std::int64_t>(n);
    std::int64_t peak = client.peak_inflight.load(std::memory_order_relaxed);
    while (inflight > peak &&
           !client.peak_inflight.compare_exchange_weak(
               peak, inflight, std::memory_order_relaxed))
        ;
    client.inflight_metric->set(inflight);
    signal_.notifyWork();
}

bool
PreprocServer::runOneTask(int worker_id, pipeline::PipelineContext &ctx,
                          Rng &rng)
{
    for (const auto &client : clientsByVtime()) {
        if (SampleTask *task = client->deque.steal()) {
            executeTask(*client, task, worker_id, ctx, rng);
            return true;
        }
    }
    return false;
}

void
PreprocServer::executeTask(ClientState &client, SampleTask *task,
                           int worker_id, pipeline::PipelineContext &ctx,
                           Rng &rng)
{
    BatchBuild &build = *task->build;
    // Canceled incarnation (epoch abort / disconnect): drain the task
    // as a no-op. The build still counts down so the last finisher
    // can release it and the in-flight budget.
    if (client.disconnected.load(std::memory_order_acquire) ||
        build.generation !=
            client.generation.load(std::memory_order_acquire)) {
        client.dropped_tasks.fetch_add(1, std::memory_order_relaxed);
        total_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (build.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            finishBatch(client, build, worker_id, ctx);
        return;
    }

    ctx.logger = client.config.logger;
    ctx.batch_id = build.batch_id;
    ctx.sample_index = task->index;
    // The per-sample seeding contract (FetchSeeding): reseed from the
    // *build's* seed base, so a fleet interleaving many tenants'
    // tasks draws exactly what each tenant's solo loader would.
    rng = Rng(dataflow::sampleRngSeed(build.seed_base, task->index));

    trace::SpanTimer span(ctx.logger, trace::RecordKind::TaskSpan);
    span.record().op_name = "task";
    span.record().batch_id = build.batch_id;
    span.record().pid = ctx.pid;
    span.record().sample_index = task->index;
    const TimeNs fetch_start = SteadyClock::instance().now();
    Result<pipeline::Sample> sample =
        client.fetcher.getSample(task->index, ctx);
    const TimeNs fetch_ns = SteadyClock::instance().now() - fetch_start;
    span.finish();
    ctx.sample_index = -1;

    // Weighted-fair accounting charges measured service time, not
    // task count: a straggler-heavy tenant's vtime advances faster,
    // which is exactly what shields the light tenant's [T2] tail.
    client.service_ns.fetch_add(
        static_cast<std::uint64_t>(fetch_ns > 0 ? fetch_ns : 0),
        std::memory_order_relaxed);
    client.executed_tasks.fetch_add(1, std::memory_order_relaxed);
    client.tasks_metric->add(1);

    switch (dataflow::resolveTask(task, std::move(sample), client.errors,
                                  client.dataset->size(), ctx)) {
      case TaskOutcome::kRequeue:
        {
            std::lock_guard lock(client.push_mutex);
            client.deque.push(task);
        }
        signal_.notifyWork();
        break;
      case TaskOutcome::kResolved:
        break;
      case TaskOutcome::kBatchDone:
        finishBatch(client, build, worker_id, ctx);
        break;
    }
}

void
PreprocServer::finishBatch(ClientState &client, BatchBuild &build,
                           int worker_id, pipeline::PipelineContext &ctx)
{
    const auto n = static_cast<std::int64_t>(build.indices.size());
    const bool canceled =
        client.disconnected.load(std::memory_order_acquire) ||
        build.generation !=
            client.generation.load(std::memory_order_acquire);
    if (!canceled) {
        BatchMsg msg;
        msg.client_id = client.id;
        msg.batch_id = build.batch_id;
        msg.generation = build.generation;
        msg.worker_id = worker_id;
        // Deterministic failure selection, like the solo loader: the
        // lowest failed slot is the first failure a sequential fetch
        // would have hit.
        std::size_t first_error = build.errors.size();
        for (std::size_t slot = 0; slot < build.errors.size(); ++slot) {
            if (build.errors[slot].has_value()) {
                first_error = slot;
                break;
            }
        }
        if (first_error < build.errors.size()) {
            msg.error = std::move(*build.errors[first_error]);
        } else {
            ctx.batch_id = build.batch_id;
            ctx.logger = client.config.logger;
            msg.batch = client.fetcher.collateBatch(
                build.batch_id, std::move(build.samples), ctx);
        }
        if (client.config.logger != nullptr) {
            trace::TraceRecord record;
            record.kind = trace::RecordKind::BatchPreprocessed;
            record.batch_id = build.batch_id;
            record.pid = ctx.pid;
            record.start = build.trace_start;
            record.duration =
                client.config.logger->now() - build.trace_start;
            client.config.logger->log(std::move(record));
        }
        client.transport->send(std::move(msg));
        client.shipped_batches.fetch_add(1, std::memory_order_relaxed);
        client.batches_metric->add(1);
        client.queue_depth_metric->set(
            static_cast<std::int64_t>(client.transport->depth()));
    }

    client.inflight_builds.fetch_sub(1, std::memory_order_acq_rel);
    const std::int64_t inflight =
        client.inflight_samples.fetch_sub(n, std::memory_order_acq_rel) -
        n;
    client.inflight_metric->set(inflight);
    {
        // Safe to free here: every slot resolved, so no worker owns a
        // task of this build, and thieves never dereference a pointer
        // they lost the CAS race for.
        std::lock_guard lock(client.builds_mutex);
        std::erase_if(client.builds, [&build](const auto &owned) {
            return owned.get() == &build;
        });
    }
    // In-flight budget freed: a deferred decompose may now be
    // admissible.
    signal_.notifyWork();
}

void
PreprocServer::workerLoop(int worker_id)
{
    setCurrentThreadName(strFormat("preproc-%d", worker_id));
    hwcount::ThreadCounterRegistry::instance().attachCurrentThread();
    // The rng object is only the storage ctx points at: executeTask
    // reseeds it per task from (build seed base, dataset index).
    Rng rng(0);
    pipeline::PipelineContext ctx;
    ctx.pid = currentTid();
    ctx.rng = &rng;
    for (;;) {
        // Snapshot the wake counter *before* scanning so a notify
        // that lands mid-scan cuts the wait short instead of being
        // lost.
        const std::uint64_t idle_token = signal_.workEpoch();
        if (shutdown_.load(std::memory_order_acquire))
            break;
        if (runOneTask(worker_id, ctx, rng))
            continue;
        if (tryDecompose(worker_id))
            continue;
        reapDisconnected();
        signal_.waitForWork(idle_token, kServiceIdleWait);
    }
    hwcount::ThreadCounterRegistry::instance().detachCurrentThread();
}

} // namespace lotus::service
