/**
 * @file
 * Batch transport between the PreprocServer and its clients.
 *
 * The server ships every completed batch through a BatchTransport —
 * the one seam between "preprocessing fleet" and "training client".
 * Today's only backend is the in-process QueueTransport (the two
 * sides share an address space, like tf.data service's co-located
 * mode); a socket or shared-memory backend slots in behind the same
 * interface without touching the scheduler, because the scheduler
 * only ever asks two things of it: send one message, and how deep is
 * the unconsumed backlog (the per-client backpressure signal).
 */

#ifndef LOTUS_SERVICE_TRANSPORT_H
#define LOTUS_SERVICE_TRANSPORT_H

#include <cstdint>
#include <optional>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "pipeline/sample.h"

namespace lotus::service {

/**
 * One completed batch (or its failure) in flight to a client.
 * `generation` stamps the submitting epoch incarnation; the client
 * drops messages from a canceled generation, so a batch that raced a
 * disconnect or an epoch abort can never be mistaken for the new
 * epoch's batch of the same id.
 */
struct BatchMsg
{
    std::int64_t client_id = -1;
    std::int64_t batch_id = -1;
    std::uint64_t generation = 0;
    /** Fleet worker that completed the batch (LoaderError identity). */
    int worker_id = -1;
    pipeline::Batch batch;
    /** Set when the batch failed unrecoverably; `batch` is then empty
     *  and the client re-raises a LoaderError in batch order. */
    std::optional<Error> error;
};

class BatchTransport
{
  public:
    virtual ~BatchTransport() = default;

    /** Server side: ship one completed batch. Never blocks the fleet
     *  — the scheduler's admission rule (in-flight builds + depth()
     *  below the outbound capacity) guarantees room. */
    virtual void send(BatchMsg msg) = 0;

    /** Client side: block for the next message; nullopt only after
     *  close() with the backlog drained. */
    virtual std::optional<BatchMsg> receive() = 0;

    /** Unconsumed outbound backlog (the backpressure signal). */
    virtual std::size_t depth() const = 0;

    /** Disconnect: wake a blocked receive() with end-of-stream. */
    virtual void close() = 0;
};

/** In-process transport: an unbounded MpmcQueue (boundedness is the
 *  scheduler's admission rule, not the queue's — a full queue must
 *  never block a fleet worker mid-send). */
class QueueTransport final : public BatchTransport
{
  public:
    void send(BatchMsg msg) override { queue_.push(std::move(msg)); }

    std::optional<BatchMsg> receive() override { return queue_.pop(); }

    std::size_t depth() const override { return queue_.size(); }

    void close() override { queue_.close(); }

  private:
    MpmcQueue<BatchMsg> queue_;
};

} // namespace lotus::service

#endif // LOTUS_SERVICE_TRANSPORT_H
