/**
 * @file
 * LotusMap mapping construction (paper §IV-B): bucket the kernels
 * observed in each operation's isolation profile, filter incorrect
 * attributions, and expose the operation -> native-function mapping
 * (the Table I artifact / mapping_funcs.json analogue).
 */

#ifndef LOTUS_CORE_LOTUSMAP_MAPPER_H
#define LOTUS_CORE_LOTUSMAP_MAPPER_H

#include <map>
#include <string>
#include <vector>

#include "core/lotusmap/isolation.h"
#include "hwcount/kernel_id.h"

namespace lotus::core::lotusmap {

struct MappingConfig
{
    /** Minimum total samples for a kernel to enter the mapping. */
    std::uint64_t min_samples = 1;
    /**
     * Minimum fraction of runs a kernel must appear in. 0 keeps
     * every observation (the union needed to catch short-lived
     * functions); raise it to suppress one-off skid artefacts.
     */
    double min_run_fraction = 0.0;
    /**
     * Kernels to exclude (the paper filters functions known to come
     * from the surrounding pipeline, not the isolated op).
     */
    std::vector<hwcount::KernelId> exclude;
};

/** One operation's native-function bucket. */
struct OpMapping
{
    std::string op;
    /** Kernel -> total samples observed in isolation. */
    std::map<hwcount::KernelId, std::uint64_t> kernels;

    bool
    contains(hwcount::KernelId kernel) const
    {
        return kernels.find(kernel) != kernels.end();
    }
};

class LotusMapper
{
  public:
    LotusMapper();
    explicit LotusMapper(MappingConfig config);

    /** Ingest one operation's isolation profile. */
    void addProfile(const IsolationProfile &profile);

    /** Directly install a mapping (e.g. loaded from a file). */
    void addMapping(OpMapping mapping);

    const std::vector<OpMapping> &mappings() const { return mappings_; }

    /** Ops whose buckets contain @p kernel, in insertion order. */
    std::vector<std::string> opsForKernel(hwcount::KernelId kernel) const;

    /** Table I-style rendering (op, function, library). */
    std::string renderTable() const;

    /** mapping_funcs.json-style document. */
    std::string toJson() const;

    /**
     * Rebuild a mapper from a toJson() document (the mapping is a
     * one-time preparatory step; jobs load it afterwards). Functions
     * whose names are unknown to this build are skipped with a
     * warning — the paper notes mappings are machine-specific.
     */
    static LotusMapper fromJson(const std::string &json);

  private:
    MappingConfig config_;
    std::vector<OpMapping> mappings_;
};

} // namespace lotus::core::lotusmap

#endif // LOTUS_CORE_LOTUSMAP_MAPPER_H
