#include "core/lotusmap/splitter.h"

#include "common/logging.h"

namespace lotus::core::lotusmap {

using hwcount::CounterSet;
using hwcount::KernelId;
using hwcount::kNumKernels;

AttributionResult
splitCounters(const LotusMapper &mapper,
              const std::vector<CounterSet> &per_kernel,
              const std::map<std::string, double> &op_seconds)
{
    LOTUS_ASSERT(per_kernel.size() == kNumKernels,
                 "per_kernel must be indexed by KernelId (%zu entries)",
                 kNumKernels);
    AttributionResult result;
    // Ensure every mapped op has an entry even if it gets nothing.
    for (const auto &mapping : mapper.mappings())
        result.per_op[mapping.op];

    for (std::size_t k = 1; k < kNumKernels; ++k) {
        const CounterSet &counters = per_kernel[k];
        if (counters.cycles == 0 && counters.instructions == 0)
            continue;
        const auto kernel = static_cast<KernelId>(k);
        const auto ops = mapper.opsForKernel(kernel);
        if (ops.empty()) {
            result.unattributed += counters;
            continue;
        }
        // Weight each op by its LotusTrace elapsed time among the ops
        // sharing this function.
        double total_seconds = 0.0;
        for (const auto &op : ops) {
            const auto it = op_seconds.find(op);
            if (it != op_seconds.end())
                total_seconds += it->second;
        }
        if (total_seconds <= 0.0) {
            // No timing data: split evenly.
            const double weight = 1.0 / static_cast<double>(ops.size());
            for (const auto &op : ops)
                result.per_op[op] += counters.scaled(weight);
            continue;
        }
        for (const auto &op : ops) {
            const auto it = op_seconds.find(op);
            const double seconds =
                it != op_seconds.end() ? it->second : 0.0;
            if (seconds <= 0.0)
                continue;
            result.per_op[op] += counters.scaled(seconds / total_seconds);
        }
    }
    return result;
}

} // namespace lotus::core::lotusmap
