#include "core/lotusmap/mapper.h"

#include <algorithm>

#include "analysis/table.h"
#include "common/logging.h"
#include "common/strings.h"
#include "trace/chrome_reader.h"
#include "trace/chrome_trace.h"

namespace lotus::core::lotusmap {

using hwcount::KernelId;

LotusMapper::LotusMapper() : LotusMapper(MappingConfig{}) {}

LotusMapper::LotusMapper(MappingConfig config) : config_(std::move(config))
{
    LOTUS_ASSERT(config_.min_run_fraction >= 0.0 &&
                 config_.min_run_fraction <= 1.0);
}

void
LotusMapper::addProfile(const IsolationProfile &profile)
{
    OpMapping mapping;
    mapping.op = profile.op;
    for (const auto &[kernel, samples] : profile.samples) {
        if (samples < config_.min_samples)
            continue;
        if (std::find(config_.exclude.begin(), config_.exclude.end(),
                      kernel) != config_.exclude.end())
            continue;
        if (config_.min_run_fraction > 0.0 && profile.runs > 0) {
            const auto seen = profile.runs_seen.find(kernel);
            const double fraction =
                seen == profile.runs_seen.end()
                    ? 0.0
                    : static_cast<double>(seen->second) / profile.runs;
            if (fraction < config_.min_run_fraction)
                continue;
        }
        mapping.kernels.emplace(kernel, samples);
    }
    addMapping(std::move(mapping));
}

void
LotusMapper::addMapping(OpMapping mapping)
{
    for (const auto &existing : mappings_) {
        LOTUS_ASSERT(existing.op != mapping.op,
                     "duplicate mapping for op '%s'", mapping.op.c_str());
    }
    mappings_.push_back(std::move(mapping));
}

std::vector<std::string>
LotusMapper::opsForKernel(KernelId kernel) const
{
    std::vector<std::string> ops;
    for (const auto &mapping : mappings_) {
        if (mapping.contains(kernel))
            ops.push_back(mapping.op);
    }
    return ops;
}

std::string
LotusMapper::renderTable() const
{
    analysis::TextTable table({"Transformation", "Function", "Library",
                               "Samples"});
    for (const auto &mapping : mappings_) {
        // Most-sampled functions first, like the paper's Table I.
        std::vector<std::pair<KernelId, std::uint64_t>> sorted(
            mapping.kernels.begin(), mapping.kernels.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        bool first = true;
        for (const auto &[kernel, samples] : sorted) {
            const auto &info = hwcount::kernelInfo(kernel);
            table.addRow({first ? mapping.op : "", info.name, info.library,
                          strFormat("%llu", static_cast<unsigned long long>(
                                                samples))});
            first = false;
        }
        if (mapping.kernels.empty())
            table.addRow({mapping.op, "<none captured>", "-", "0"});
    }
    return table.render();
}

std::string
LotusMapper::toJson() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < mappings_.size(); ++i) {
        if (i > 0)
            out += ",";
        const auto &mapping = mappings_[i];
        out += strFormat("\"%s\":[",
                         trace::jsonEscape(mapping.op).c_str());
        bool first = true;
        for (const auto &[kernel, samples] : mapping.kernels) {
            (void)samples;
            if (!first)
                out += ",";
            const auto &info = hwcount::kernelInfo(kernel);
            out += strFormat("{\"function\":\"%s\",\"library\":\"%s\"}",
                             trace::jsonEscape(info.name).c_str(),
                             trace::jsonEscape(info.library).c_str());
            first = false;
        }
        out += "]";
    }
    out += "}";
    return out;
}

LotusMapper
LotusMapper::fromJson(const std::string &json)
{
    const auto document = trace::detail::parseJson(json);
    LOTUS_ASSERT(document.kind ==
                     trace::detail::JsonValue::Kind::Object,
                 "mapping document must be a JSON object");
    LotusMapper mapper;
    for (const auto &[op, functions] : document.object) {
        LOTUS_ASSERT(functions.kind ==
                         trace::detail::JsonValue::Kind::Array,
                     "mapping for '%s' must be an array", op.c_str());
        OpMapping mapping;
        mapping.op = op;
        for (const auto &entry : functions.array) {
            const auto *function = entry.find("function");
            LOTUS_ASSERT(function != nullptr,
                         "mapping entry lacks a function name");
            const auto kernel = hwcount::kernelByName(function->string);
            if (kernel == hwcount::KernelId::Invalid) {
                LOTUS_WARN("mapping for '%s' names unknown function "
                           "'%s'; skipping (mappings are machine-"
                           "specific)",
                           op.c_str(), function->string.c_str());
                continue;
            }
            mapping.kernels.emplace(kernel, 0);
        }
        mapper.addMapping(std::move(mapping));
    }
    return mapper;
}

} // namespace lotus::core::lotusmap
