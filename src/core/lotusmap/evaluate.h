/**
 * @file
 * Mapping-quality evaluation against ground truth.
 *
 * The production Lotus methodology cannot see which kernels an
 * operation truly invoked — that is the gap it approximates across.
 * Our reproduction *can* (the registry's opt-in (op, kernel)
 * accounting), so we score the reconstruction: per-op precision and
 * recall over kernels, weighted by kernel self time. Used by tests
 * and the Table I bench's quality report.
 */

#ifndef LOTUS_CORE_LOTUSMAP_EVALUATE_H
#define LOTUS_CORE_LOTUSMAP_EVALUATE_H

#include <string>
#include <vector>

#include "core/lotusmap/mapper.h"
#include "hwcount/registry.h"

namespace lotus::core::lotusmap {

struct MappingQuality
{
    std::string op;
    /** Fraction of mapped kernels that are truly used by the op. */
    double precision = 0.0;
    /** Fraction of the op's true kernels that were mapped. */
    double recall = 0.0;
    /** Recall weighted by each true kernel's self time. */
    double time_weighted_recall = 0.0;
    std::vector<hwcount::KernelId> missed;
    std::vector<hwcount::KernelId> spurious;
};

/**
 * Score @p mapper against the ground truth in @p snapshot (collected
 * with KernelRegistry ground-truth mode enabled). Kernels whose true
 * self time is under @p min_self_time are exempt from recall (too
 * short for a sampling driver to owe us) but still count as correct
 * for precision — spurious means the op never ran the kernel at all.
 */
std::vector<MappingQuality>
evaluateMapping(const LotusMapper &mapper,
                const hwcount::RegistrySnapshot &snapshot,
                TimeNs min_self_time = 0);

} // namespace lotus::core::lotusmap

#endif // LOTUS_CORE_LOTUSMAP_EVALUATE_H
