/**
 * @file
 * LotusMap isolation runs (paper §IV-B, Listing 4).
 *
 * Each high-level operation is executed repeatedly in isolation with
 * the sampling profiler attached only during measured runs: warm-up
 * iterations precede collection (cold-start exclusion), a sleep gap
 * separates runs so attribution skid cannot bleed a previous
 * function into the window, and the number of runs follows the
 * capture-probability formula C >= 1 - (1 - f/s)^n so short-lived
 * functions are still observed.
 */

#ifndef LOTUS_CORE_LOTUSMAP_ISOLATION_H
#define LOTUS_CORE_LOTUSMAP_ISOLATION_H

#include <functional>
#include <map>
#include <string>

#include "hwcount/sampling_driver.h"

namespace lotus::core::lotusmap {

struct IsolationConfig
{
    /** Measured runs per operation (n in the capture formula). */
    int runs = 20;
    /** Unmeasured warm-up runs before collection. */
    int warmup_runs = 2;
    /** Quiet gap between runs (anti-skid, Listing 4 line 14). */
    TimeNs sleep_gap = 2 * kMillisecond;
    /** The modelled sampling driver (VTune: 10 ms; uProf: 1 ms). */
    hwcount::SamplingConfig sampling;
};

/** What the sampling driver observed for one isolated operation. */
struct IsolationProfile
{
    std::string op;
    int runs = 0;
    /** Total samples per kernel across all measured runs. */
    std::map<hwcount::KernelId, std::uint64_t> samples;
    /** Number of distinct runs in which each kernel appeared. */
    std::map<hwcount::KernelId, int> runs_seen;
};

class IsolationRunner
{
  public:
    IsolationRunner();
    explicit IsolationRunner(IsolationConfig config);

    const IsolationConfig &config() const { return config_; }

    /**
     * Profile @p op in isolation.
     *
     * Resets the kernel registry's recorded timeline (the mapping
     * phase is a dedicated preparatory step, per the paper) and the
     * collection-window list.
     */
    IsolationProfile profileOp(const std::string &op_name,
                               const std::function<void()> &op) const;

  private:
    IsolationConfig config_;
};

} // namespace lotus::core::lotusmap

#endif // LOTUS_CORE_LOTUSMAP_ISOLATION_H
