#include "core/lotusmap/isolation.h"

#include "common/logging.h"
#include "hwcount/collection.h"
#include "hwcount/registry.h"

namespace lotus::core::lotusmap {

using hwcount::CollectionWindow;
using hwcount::KernelRegistry;
using hwcount::SamplingDriver;

IsolationRunner::IsolationRunner() : IsolationRunner(IsolationConfig{}) {}

IsolationRunner::IsolationRunner(IsolationConfig config) : config_(config)
{
    LOTUS_ASSERT(config_.runs > 0 && config_.warmup_runs >= 0 &&
                 config_.sleep_gap >= 0);
}

IsolationProfile
IsolationRunner::profileOp(const std::string &op_name,
                           const std::function<void()> &op) const
{
    auto &registry = KernelRegistry::instance();
    registry.reset();
    hwcount::collection::reset();

    const auto quietGap = [&] {
        if (config_.sleep_gap <= 0)
            return;
        // A quiet spin keeps this thread scheduled (matching
        // time.sleep()'s effect of separating windows in the sampled
        // timeline) without recording any kernel.
        const TimeNs deadline = registry.clock().now() + config_.sleep_gap;
        while (registry.clock().now() < deadline) {
        }
    };

    // Warm-up runs outside any collection window (Listing 4: the
    // profiler resumes only on the final iterations).
    for (int i = 0; i < config_.warmup_runs; ++i) {
        quietGap();
        op();
    }

    for (int i = 0; i < config_.runs; ++i) {
        quietGap();
        hwcount::collection::resume();
        op();
        hwcount::collection::pause();
    }

    const auto snapshot = registry.snapshot();
    const auto windows = hwcount::collection::windows();
    SamplingDriver driver(config_.sampling);

    IsolationProfile profile;
    profile.op = op_name;
    profile.runs = config_.runs;
    for (const auto &window : windows) {
        const auto samples =
            driver.sampleWindow(snapshot.timeline, window.start, window.end);
        const auto counts = SamplingDriver::countByKernel(samples);
        for (const auto &[kernel, count] : counts) {
            profile.samples[kernel] += count;
            profile.runs_seen[kernel] += 1;
        }
    }
    return profile;
}

} // namespace lotus::core::lotusmap
