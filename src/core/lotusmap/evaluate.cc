#include "core/lotusmap/evaluate.h"

#include <map>
#include <set>

namespace lotus::core::lotusmap {

using hwcount::KernelId;
using hwcount::KernelRegistry;

std::vector<MappingQuality>
evaluateMapping(const LotusMapper &mapper,
                const hwcount::RegistrySnapshot &snapshot,
                TimeNs min_self_time)
{
    auto &registry = KernelRegistry::instance();

    // Ground truth: op name -> kernels (with self time). Precision is
    // judged against the op's full bucket (a mapped kernel is spurious
    // only if the op never ran it — cross-op contamination, the §V-D
    // failure mode); the significance floor applies to recall only, so
    // the mapping is not required to capture kernels too short for any
    // sampling driver to owe us.
    std::map<std::string, std::map<KernelId, TimeNs>> truth;
    std::map<std::string, std::set<KernelId>> truth_any;
    for (const auto &[key, accum] : snapshot.by_op) {
        const auto op_name = registry.opName(key.first);
        truth_any[op_name].insert(key.second);
        if (accum.self_time < min_self_time)
            continue;
        truth[op_name][key.second] = accum.self_time;
    }

    std::vector<MappingQuality> out;
    for (const auto &mapping : mapper.mappings()) {
        MappingQuality quality;
        quality.op = mapping.op;
        const auto truth_it = truth.find(mapping.op);
        const std::map<KernelId, TimeNs> empty;
        const auto &true_kernels =
            truth_it == truth.end() ? empty : truth_it->second;
        const auto any_it = truth_any.find(mapping.op);
        const std::set<KernelId> empty_any;
        const auto &any_kernels =
            any_it == truth_any.end() ? empty_any : any_it->second;

        std::size_t correct = 0;
        for (const auto &[kernel, samples] : mapping.kernels) {
            (void)samples;
            if (any_kernels.count(kernel) > 0)
                ++correct;
            else
                quality.spurious.push_back(kernel);
        }
        TimeNs covered_time = 0;
        TimeNs total_time = 0;
        for (const auto &[kernel, self_time] : true_kernels) {
            total_time += self_time;
            if (mapping.contains(kernel))
                covered_time += self_time;
            else
                quality.missed.push_back(kernel);
        }
        quality.precision =
            mapping.kernels.empty()
                ? 0.0
                : static_cast<double>(correct) / mapping.kernels.size();
        quality.recall =
            true_kernels.empty()
                ? 0.0
                : static_cast<double>(true_kernels.size() -
                                      quality.missed.size()) /
                      true_kernels.size();
        quality.time_weighted_recall =
            total_time > 0 ? static_cast<double>(covered_time) /
                                 static_cast<double>(total_time)
                           : 0.0;
        out.push_back(std::move(quality));
    }
    return out;
}

} // namespace lotus::core::lotusmap
