/**
 * @file
 * Hardware-metric splitting (paper §IV-B, "Splitting Hardware
 * Metrics"): a native function's counters are divided among the
 * high-level operations it maps to, weighted by each operation's
 * LotusTrace elapsed time. This is what produces the per-operation
 * hardware views of Fig. 6(e)-(h).
 */

#ifndef LOTUS_CORE_LOTUSMAP_SPLITTER_H
#define LOTUS_CORE_LOTUSMAP_SPLITTER_H

#include <map>
#include <string>
#include <vector>

#include "core/lotusmap/mapper.h"
#include "hwcount/counters.h"

namespace lotus::core::lotusmap {

struct AttributionResult
{
    /** Counters attributed to each operation. */
    std::map<std::string, hwcount::CounterSet> per_op;
    /** Counters of mapped-to-nothing kernels (filtered functions). */
    hwcount::CounterSet unattributed;
};

/**
 * Split per-kernel counters across operations.
 *
 * @param mapper finalized op -> kernel mapping
 * @param per_kernel counters indexed by KernelId (as produced by
 *        SimulatedPmu::countersForSnapshot or a VTune-style export)
 * @param op_seconds LotusTrace per-op elapsed seconds (the weights)
 */
AttributionResult
splitCounters(const LotusMapper &mapper,
              const std::vector<hwcount::CounterSet> &per_kernel,
              const std::map<std::string, double> &op_seconds);

} // namespace lotus::core::lotusmap

#endif // LOTUS_CORE_LOTUSMAP_SPLITTER_H
