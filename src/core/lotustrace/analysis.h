/**
 * @file
 * LotusTrace analysis: everything §V of the paper derives from the
 * collected records — per-batch timelines, wait/delay metrics,
 * per-operation elapsed-time distributions, and epoch aggregates.
 */

#ifndef LOTUS_CORE_LOTUSTRACE_ANALYSIS_H
#define LOTUS_CORE_LOTUSTRACE_ANALYSIS_H

#include <map>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "trace/record.h"

namespace lotus::core::lotustrace {

/** Reconstructed life of one batch. */
struct BatchTimeline
{
    std::int64_t batch_id = -1;
    std::uint32_t worker_pid = 0;
    std::uint32_t main_pid = 0;

    TimeNs preprocess_start = 0;
    TimeNs preprocess_end = 0;
    TimeNs wait_start = 0;
    TimeNs wait_duration = 0;
    TimeNs consumed_start = 0;
    TimeNs consumed_duration = 0;
    TimeNs gpu_start = 0;
    TimeNs gpu_duration = 0;

    bool has_preprocess = false;
    bool has_wait = false;
    bool has_consumed = false;
    bool has_gpu = false;

    /** Summed IoEvent time/reads/bytes attributed to this batch. */
    TimeNs io_time = 0;
    std::uint64_t io_reads = 0;
    std::uint64_t io_bytes = 0;

    /** [T1] preprocessing time. */
    TimeNs preprocessTime() const
    {
        return preprocess_end - preprocess_start;
    }

    /** Arrived before the main process wanted it (1 µs sentinel). */
    bool
    outOfOrder() const
    {
        return has_wait && wait_duration <= trace::kOutOfOrderSentinel;
    }

    /**
     * Delay time (Fig. 3): how long the batch sat preprocessed
     * before the main process consumed it. 0 when unknown/negative.
     */
    TimeNs
    delayTime() const
    {
        if (!has_preprocess || !has_consumed)
            return 0;
        const TimeNs delay = consumed_start - preprocess_end;
        return delay > 0 ? delay : 0;
    }
};

/** Aggregated store-read behaviour from IoEvent records
 *  (tf-Darshan-style I/O dimension of the trace). */
struct IoStats
{
    std::uint64_t reads = 0;
    std::uint64_t bytes = 0;
    TimeNs total_time = 0;
    /** Per-read latency distribution, ms. */
    analysis::Summary read_ms;
};

/** Per-operation elapsed-time statistics (Table II row block). */
struct OpStats
{
    std::string name;
    analysis::Summary summary_ms;
    /** Fraction of invocations under 10 ms / 100 µs. */
    double frac_below_10ms = 0.0;
    double frac_below_100us = 0.0;
    /** Total CPU seconds across the epoch. */
    double total_seconds = 0.0;
};

class TraceAnalysis
{
  public:
    explicit TraceAnalysis(std::vector<trace::TraceRecord> records);

    const std::vector<trace::TraceRecord> &records() const
    {
        return records_;
    }

    /** Batch timelines ordered by batch id. */
    const std::vector<BatchTimeline> &batches() const { return batches_; }

    /** Per-op statistics, in first-seen order. */
    std::vector<OpStats> opStats() const;

    /** Wall-clock span covered by the records. */
    TimeNs epochSpan() const;

    /** Per-batch preprocessing times, ms, ordered by batch id. */
    std::vector<double> perBatchPreprocessMs() const;

    /** Per-batch main-process wait times, ms (sentinels included). */
    std::vector<double> waitTimesMs() const;

    /** Per-batch delay times, ms. */
    std::vector<double> delayTimesMs() const;

    /** Fraction of batches whose wait exceeds @p threshold. */
    double fractionWaitsOver(TimeNs threshold) const;

    /** Fraction of batches whose delay exceeds @p threshold. */
    double fractionDelaysOver(TimeNs threshold) const;

    /** Fraction of batches that arrived out of order. */
    double outOfOrderFraction() const;

    /** Total preprocessing CPU seconds ([T1] sum over batches). */
    double totalPreprocessCpuSeconds() const;

    /** CPU seconds per op name ([T3] sums). */
    std::map<std::string, double> cpuSecondsByOp() const;

    /** Longest observed GPU service time, ns (0 if none). */
    TimeNs maxGpuTime() const;

    /** Store-read aggregates over all IoEvent records (zeros when the
     *  run used an untraced store). */
    IoStats ioStats() const;

  private:
    std::vector<trace::TraceRecord> records_;
    std::vector<BatchTimeline> batches_;
};

} // namespace lotus::core::lotustrace

#endif // LOTUS_CORE_LOTUSTRACE_ANALYSIS_H
