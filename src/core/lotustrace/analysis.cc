#include "core/lotustrace/analysis.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace lotus::core::lotustrace {

using trace::RecordKind;
using trace::TraceRecord;

namespace {

/** Byte count carried in an IoEvent's "io:<bytes>" op name. */
std::uint64_t
ioEventBytes(const TraceRecord &record)
{
    constexpr const char kPrefix[] = "io:";
    if (record.op_name.rfind(kPrefix, 0) != 0)
        return 0;
    return std::strtoull(record.op_name.c_str() + sizeof(kPrefix) - 1,
                         nullptr, 10);
}

} // namespace

TraceAnalysis::TraceAnalysis(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    std::map<std::int64_t, BatchTimeline> by_batch;
    for (const auto &record : records_) {
        if (record.batch_id < 0)
            continue;
        BatchTimeline &batch = by_batch[record.batch_id];
        batch.batch_id = record.batch_id;
        switch (record.kind) {
          case RecordKind::BatchPreprocessed:
            batch.worker_pid = record.pid;
            batch.preprocess_start = record.start;
            batch.preprocess_end = record.end();
            batch.has_preprocess = true;
            break;
          case RecordKind::BatchWait:
            batch.main_pid = record.pid;
            batch.wait_start = record.start;
            batch.wait_duration = record.duration;
            batch.has_wait = true;
            break;
          case RecordKind::BatchConsumed:
            batch.main_pid = record.pid;
            batch.consumed_start = record.start;
            batch.consumed_duration = record.duration;
            batch.has_consumed = true;
            break;
          case RecordKind::GpuCompute:
            batch.gpu_start = record.start;
            batch.gpu_duration = record.duration;
            batch.has_gpu = true;
            break;
          case RecordKind::IoEvent:
            batch.io_time += record.duration;
            batch.io_reads += 1;
            batch.io_bytes += ioEventBytes(record);
            break;
          case RecordKind::TransformOp:
          case RecordKind::EpochBoundary:
          case RecordKind::ErrorEvent:
          case RecordKind::TaskSpan:
          case RecordKind::StealEvent:
          case RecordKind::CacheEvent:
            break;
        }
    }
    batches_.reserve(by_batch.size());
    for (auto &[id, batch] : by_batch)
        batches_.push_back(batch);
}

std::vector<OpStats>
TraceAnalysis::opStats() const
{
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> durations_ms;
    for (const auto &record : records_) {
        if (record.kind != RecordKind::TransformOp)
            continue;
        auto [it, inserted] = durations_ms.try_emplace(record.op_name);
        if (inserted)
            order.push_back(record.op_name);
        it->second.push_back(toMs(record.duration));
    }
    std::vector<OpStats> out;
    out.reserve(order.size());
    for (const auto &name : order) {
        const auto &values = durations_ms[name];
        OpStats stats;
        stats.name = name;
        stats.summary_ms = analysis::summarize(values);
        stats.frac_below_10ms = analysis::fractionBelow(values, 10.0);
        stats.frac_below_100us = analysis::fractionBelow(values, 0.1);
        double total = 0.0;
        for (const double v : values)
            total += v;
        stats.total_seconds = total / 1e3;
        out.push_back(std::move(stats));
    }
    return out;
}

TimeNs
TraceAnalysis::epochSpan() const
{
    if (records_.empty())
        return 0;
    TimeNs lo = records_.front().start;
    TimeNs hi = records_.front().end();
    for (const auto &record : records_) {
        lo = std::min(lo, record.start);
        hi = std::max(hi, record.end());
    }
    return hi - lo;
}

std::vector<double>
TraceAnalysis::perBatchPreprocessMs() const
{
    std::vector<double> out;
    for (const auto &batch : batches_) {
        if (batch.has_preprocess)
            out.push_back(toMs(batch.preprocessTime()));
    }
    return out;
}

std::vector<double>
TraceAnalysis::waitTimesMs() const
{
    std::vector<double> out;
    for (const auto &batch : batches_) {
        if (batch.has_wait)
            out.push_back(toMs(batch.wait_duration));
    }
    return out;
}

std::vector<double>
TraceAnalysis::delayTimesMs() const
{
    std::vector<double> out;
    for (const auto &batch : batches_) {
        if (batch.has_preprocess && batch.has_consumed)
            out.push_back(toMs(batch.delayTime()));
    }
    return out;
}

double
TraceAnalysis::fractionWaitsOver(TimeNs threshold) const
{
    return analysis::fractionAtLeast(waitTimesMs(), toMs(threshold));
}

double
TraceAnalysis::fractionDelaysOver(TimeNs threshold) const
{
    return analysis::fractionAtLeast(delayTimesMs(), toMs(threshold));
}

double
TraceAnalysis::outOfOrderFraction() const
{
    if (batches_.empty())
        return 0.0;
    std::size_t ooo = 0;
    std::size_t with_wait = 0;
    for (const auto &batch : batches_) {
        if (!batch.has_wait)
            continue;
        ++with_wait;
        if (batch.outOfOrder())
            ++ooo;
    }
    return with_wait == 0
               ? 0.0
               : static_cast<double>(ooo) / static_cast<double>(with_wait);
}

double
TraceAnalysis::totalPreprocessCpuSeconds() const
{
    double total = 0.0;
    for (const auto &batch : batches_) {
        if (batch.has_preprocess)
            total += toSec(batch.preprocessTime());
    }
    return total;
}

std::map<std::string, double>
TraceAnalysis::cpuSecondsByOp() const
{
    std::map<std::string, double> out;
    for (const auto &record : records_) {
        if (record.kind == RecordKind::TransformOp)
            out[record.op_name] += toSec(record.duration);
    }
    return out;
}

IoStats
TraceAnalysis::ioStats() const
{
    IoStats stats;
    std::vector<double> latencies_ms;
    for (const auto &record : records_) {
        if (record.kind != RecordKind::IoEvent)
            continue;
        stats.reads += 1;
        stats.bytes += ioEventBytes(record);
        stats.total_time += record.duration;
        latencies_ms.push_back(toMs(record.duration));
    }
    stats.read_ms = analysis::summarize(latencies_ms);
    return stats;
}

TimeNs
TraceAnalysis::maxGpuTime() const
{
    TimeNs max_time = 0;
    for (const auto &batch : batches_) {
        if (batch.has_gpu)
            max_time = std::max(max_time, batch.gpu_duration);
    }
    return max_time;
}

} // namespace lotus::core::lotustrace
