#include "core/lotustrace/report.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace lotus::core::lotustrace {

const char *
bottleneckName(Bottleneck bottleneck)
{
    switch (bottleneck) {
      case Bottleneck::Preprocessing: return "preprocessing-bound";
      case Bottleneck::Accelerator: return "accelerator-bound";
      case Bottleneck::Balanced: return "balanced";
      case Bottleneck::Unknown: return "unknown";
    }
    LOTUS_PANIC("bad bottleneck %d", static_cast<int>(bottleneck));
}

PipelineReport
buildReport(const std::vector<trace::TraceRecord> &records)
{
    TraceAnalysis analysis(records);
    PipelineReport report;
    if (analysis.batches().empty())
        return report;

    for (const double w : analysis.waitTimesMs())
        report.total_wait_s += w / 1e3;
    for (const double d : analysis.delayTimesMs())
        report.total_delay_s += d / 1e3;
    report.max_gpu_ms = toMs(analysis.maxGpuTime());
    report.batch_ms = analysis::summarize(analysis.perBatchPreprocessMs());
    report.out_of_order_fraction = analysis.outOfOrderFraction();

    report.ops_by_cost = analysis.opStats();
    std::sort(report.ops_by_cost.begin(), report.ops_by_cost.end(),
              [](const OpStats &a, const OpStats &b) {
                  return a.total_seconds > b.total_seconds;
              });

    // Regime classification from the wait/delay balance (Fig. 2's
    // diagnostic): a clear majority on either side decides.
    const double total = report.total_wait_s + report.total_delay_s;
    if (total <= 0.0) {
        report.bottleneck = Bottleneck::Unknown;
    } else if (report.total_wait_s > 0.6 * total) {
        report.bottleneck = Bottleneck::Preprocessing;
    } else if (report.total_delay_s > 0.6 * total) {
        report.bottleneck = Bottleneck::Accelerator;
    } else {
        report.bottleneck = Bottleneck::Balanced;
    }

    // Findings.
    if (!report.ops_by_cost.empty()) {
        const auto &top = report.ops_by_cost.front();
        double op_total = 0.0;
        for (const auto &op : report.ops_by_cost)
            op_total += op.total_seconds;
        report.findings.push_back(strFormat(
            "'%s' is the most expensive operation: %.2f s (%.0f%% of "
            "per-op CPU time).",
            top.name.c_str(), top.total_seconds,
            op_total > 0.0 ? 100.0 * top.total_seconds / op_total : 0.0));
    }
    for (const auto &op : report.ops_by_cost) {
        if (op.summary_ms.mean > 0.0 &&
            op.summary_ms.p90 > 3.0 * op.summary_ms.mean) {
            report.findings.push_back(strFormat(
                "'%s' is heavy-tailed: P90 %.2f ms is %.1fx its mean "
                "%.2f ms.",
                op.name.c_str(), op.summary_ms.p90,
                op.summary_ms.p90 / op.summary_ms.mean,
                op.summary_ms.mean));
        }
    }
    if (report.batch_ms.cv() > 0.10) {
        report.findings.push_back(strFormat(
            "Per-batch preprocessing time is volatile (stddev %.0f%% of "
            "the mean; IQR %.1f ms) — resource provisioning from a few "
            "sampled batches will mis-size (Takeaway 3).",
            100.0 * report.batch_ms.cv(), report.batch_ms.iqr()));
    }
    if (report.out_of_order_fraction > 0.25) {
        report.findings.push_back(strFormat(
            "%.0f%% of batches arrived out of order on the shared data "
            "queue and sat pinned in the reorder cache (Takeaway 4).",
            100.0 * report.out_of_order_fraction));
    }

    // Recommendations keyed to the regime.
    switch (report.bottleneck) {
      case Bottleneck::Preprocessing:
        report.recommendations.push_back(
            "Add DataLoader workers or move deterministic operations "
            "offline (decode/resize ahead of training) — the accelerator "
            "is starving.");
        if (!report.ops_by_cost.empty() &&
            report.ops_by_cost.front().name == "Loader") {
            report.recommendations.push_back(
                "Loader dominates: consider a lighter codec, cached "
                "decoded samples, or faster storage.");
        }
        break;
      case Bottleneck::Accelerator:
        report.recommendations.push_back(
            "Preprocessing is ahead of the accelerator: fewer workers "
            "would free CPU (and memory) without slowing the epoch.");
        break;
      case Bottleneck::Balanced:
        report.recommendations.push_back(
            "Wait and delay are comparable; profile at the hardware "
            "level (LotusMap) before re-provisioning.");
        break;
      case Bottleneck::Unknown:
        break;
    }
    if (report.out_of_order_fraction > 0.25) {
        report.recommendations.push_back(
            "Out-of-order pressure: lower the prefetch factor or "
            "schedule index batches by observed worker pace to keep the "
            "shared data queue in order.");
    }
    return report;
}

std::string
PipelineReport::render() const
{
    std::string out;
    out += strFormat("verdict: %s\n", bottleneckName(bottleneck));
    out += strFormat(
        "evidence: total wait %.2f s vs total delay %.2f s (max GPU "
        "service %.1f ms)\n",
        total_wait_s, total_delay_s, max_gpu_ms);
    out += strFormat(
        "batches: mean preprocess %.1f ms, stddev %.0f%%, IQR %.1f ms, "
        "out-of-order %.0f%%\n",
        batch_ms.mean, 100.0 * batch_ms.cv(), batch_ms.iqr(),
        100.0 * out_of_order_fraction);
    out += "op cost ranking:\n";
    for (const auto &op : ops_by_cost) {
        out += strFormat("  %-28s %8.3f s   avg %7.2f ms   P90 %7.2f ms\n",
                         op.name.c_str(), op.total_seconds,
                         op.summary_ms.mean, op.summary_ms.p90);
    }
    if (!findings.empty()) {
        out += "findings:\n";
        for (const auto &finding : findings)
            out += "  - " + finding + "\n";
    }
    if (!recommendations.empty()) {
        out += "recommendations:\n";
        for (const auto &rec : recommendations)
            out += "  - " + rec + "\n";
    }
    return out;
}

} // namespace lotus::core::lotustrace
