/**
 * @file
 * Automated log analysis (the extension the paper's conclusion
 * names): turn a LotusTrace record set into a structured diagnosis —
 * bottleneck regime, dominant operations, wait/delay pressure,
 * out-of-order pathology — plus actionable recommendations, rendered
 * as a plain-text report.
 */

#ifndef LOTUS_CORE_LOTUSTRACE_REPORT_H
#define LOTUS_CORE_LOTUSTRACE_REPORT_H

#include <string>
#include <vector>

#include "core/lotustrace/analysis.h"

namespace lotus::core::lotustrace {

enum class Bottleneck
{
    Preprocessing, ///< main process starves waiting for batches
    Accelerator,   ///< batches queue preprocessed; GPU is the limit
    Balanced,      ///< neither side clearly dominates
    Unknown,       ///< not enough data
};

const char *bottleneckName(Bottleneck bottleneck);

struct PipelineReport
{
    Bottleneck bottleneck = Bottleneck::Unknown;
    /** Wait-vs-delay evidence behind the verdict, in seconds. */
    double total_wait_s = 0.0;
    double total_delay_s = 0.0;
    double max_gpu_ms = 0.0;

    /** Ops sorted by total CPU time, largest first. */
    std::vector<OpStats> ops_by_cost;

    /** Per-batch preprocessing variability. */
    analysis::Summary batch_ms;
    double out_of_order_fraction = 0.0;

    /** Human-readable findings and recommendations. */
    std::vector<std::string> findings;
    std::vector<std::string> recommendations;

    /** Render the whole report as text. */
    std::string render() const;
};

/** Analyze records into a report. */
PipelineReport buildReport(const std::vector<trace::TraceRecord> &records);

} // namespace lotus::core::lotustrace

#endif // LOTUS_CORE_LOTUSTRACE_REPORT_H
