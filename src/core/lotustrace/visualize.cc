#include "core/lotustrace/visualize.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "core/lotustrace/analysis.h"

namespace lotus::core::lotustrace {

using trace::ChromeTraceBuilder;
using trace::RecordKind;
using trace::TraceRecord;

void
augmentTrace(ChromeTraceBuilder &builder,
             const std::vector<TraceRecord> &records,
             const VisualizeOptions &options)
{
    // Identify lanes: main process, each worker, the GPU.
    std::set<std::uint32_t> worker_pids;
    std::uint32_t main_pid = 0;
    std::uint32_t gpu_pid = 0;
    for (const auto &record : records) {
        switch (record.kind) {
          case RecordKind::BatchPreprocessed:
          case RecordKind::TaskSpan:
          case RecordKind::StealEvent:
          case RecordKind::CacheEvent:
            worker_pids.insert(record.pid);
            break;
          case RecordKind::BatchWait:
          case RecordKind::BatchConsumed:
            main_pid = record.pid;
            break;
          case RecordKind::GpuCompute:
            gpu_pid = record.pid;
            break;
          default:
            break;
        }
    }

    if (main_pid != 0)
        builder.setProcessName(main_pid, options.main_label);
    int worker_index = 0;
    for (const auto pid : worker_pids) {
        builder.setProcessName(
            pid, strFormat("DataLoader worker %d", worker_index++));
    }
    if (gpu_pid != 0)
        builder.setProcessName(gpu_pid, "GPU");

    for (const auto &record : records) {
        switch (record.kind) {
          case RecordKind::BatchPreprocessed:
            builder.addComplete(
                strFormat("SBatchPreprocessed_%lld",
                          static_cast<long long>(record.batch_id)),
                "preprocess", record.start, record.duration, record.pid,
                record.pid);
            break;
          case RecordKind::BatchWait:
            builder.addComplete(
                strFormat("SBatchWait_%lld",
                          static_cast<long long>(record.batch_id)),
                "wait", record.start, record.duration, record.pid,
                record.pid);
            break;
          case RecordKind::BatchConsumed:
            builder.addComplete(
                strFormat("SBatchConsumed_%lld",
                          static_cast<long long>(record.batch_id)),
                "consume", record.start, record.duration, record.pid,
                record.pid);
            break;
          case RecordKind::GpuCompute:
            builder.addComplete(
                strFormat("SGpuCompute_%lld",
                          static_cast<long long>(record.batch_id)),
                "gpu", record.start, record.duration, record.pid,
                record.pid);
            break;
          case RecordKind::TransformOp:
            if (options.per_op) {
                builder.addComplete("S" + record.op_name, "op",
                                    record.start, record.duration,
                                    record.pid, record.pid);
                builder.addArgToLast(
                    "batch", strFormat("%lld", static_cast<long long>(
                                                   record.batch_id)));
            }
            break;
          case RecordKind::EpochBoundary:
            builder.addInstant("epoch", record.start, record.pid,
                               record.pid);
            break;
          case RecordKind::ErrorEvent:
            // op_name is "error:<stage>"; the instant marks the
            // corrupted sample in the worker's lane.
            builder.addInstant(record.op_name, record.start, record.pid,
                               record.pid);
            break;
          case RecordKind::TaskSpan:
            // One per-sample fetch under work-stealing; tasks of the
            // same batch can appear in several workers' lanes.
            builder.addComplete(
                strFormat("STask_%lld",
                          static_cast<long long>(record.sample_index)),
                "task", record.start, record.duration, record.pid,
                record.pid);
            builder.addArgToLast(
                "batch", strFormat("%lld", static_cast<long long>(
                                               record.batch_id)));
            break;
          case RecordKind::StealEvent:
            // op_name is "steal<-wN" (the victim); the instant sits in
            // the thief's lane at the moment of the steal.
            builder.addInstant(record.op_name, record.start, record.pid,
                               record.pid);
            break;
          case RecordKind::CacheEvent:
            // op_name is "cache:<what>" (hit/miss/spill/...); the
            // instant marks the cache action in the worker's lane.
            builder.addInstant(record.op_name, record.start, record.pid,
                               record.pid);
            break;
          case RecordKind::IoEvent:
            // op_name is "io:<bytes>"; the span nests under the
            // enclosing sample span in the reading lane.
            builder.addComplete(record.op_name, "io", record.start,
                                record.duration, record.pid, record.pid);
            builder.addArgToLast(
                "batch", strFormat("%lld", static_cast<long long>(
                                               record.batch_id)));
            break;
        }
    }

    if (options.flow_arrows) {
        TraceAnalysis analysis(records);
        for (const auto &batch : analysis.batches()) {
            if (!batch.has_preprocess || !batch.has_consumed)
                continue;
            builder.addFlow(
                strFormat("batch_%lld",
                          static_cast<long long>(batch.batch_id)),
                batch.preprocess_end, batch.worker_pid, batch.worker_pid,
                batch.consumed_start, batch.main_pid, batch.main_pid);
        }
    }
}

std::string
toChromeJson(const std::vector<TraceRecord> &records,
             const VisualizeOptions &options)
{
    ChromeTraceBuilder builder;
    augmentTrace(builder, records, options);
    return builder.toJson();
}

} // namespace lotus::core::lotustrace
