/**
 * @file
 * LotusTrace visualization (paper §III-C): turn collected records
 * into a Chrome Trace Viewer document with one lane per process and
 * flow arrows from each SBatchPreprocessed span to its
 * SBatchConsumed marker, at batch (coarse) or batch+op (fine)
 * granularity. Lotus events use negative synthetic ids so an
 * existing framework-profiler trace can be augmented in place.
 */

#ifndef LOTUS_CORE_LOTUSTRACE_VISUALIZE_H
#define LOTUS_CORE_LOTUSTRACE_VISUALIZE_H

#include <string>
#include <vector>

#include "trace/chrome_trace.h"
#include "trace/record.h"

namespace lotus::core::lotustrace {

struct VisualizeOptions
{
    /** Include per-op [T3] spans (fine granularity). */
    bool per_op = false;
    /** Draw preprocessed -> consumed flow arrows. */
    bool flow_arrows = true;
    /** Label for the main process lane. */
    std::string main_label = "main process";
};

/**
 * Append visualization events for @p records to @p builder
 * (augmenting whatever the builder already holds).
 */
void augmentTrace(trace::ChromeTraceBuilder &builder,
                  const std::vector<trace::TraceRecord> &records,
                  const VisualizeOptions &options = {});

/** Build a standalone Chrome trace JSON for @p records. */
std::string toChromeJson(const std::vector<trace::TraceRecord> &records,
                         const VisualizeOptions &options = {});

} // namespace lotus::core::lotustrace

#endif // LOTUS_CORE_LOTUSTRACE_VISUALIZE_H
