#include "memory/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <new>
#include <vector>

#include "metrics/metrics.h"

namespace lotus::memory {

namespace {

/** 2^8 .. 2^26 pooled classes. */
constexpr int kNumClasses = 19;
/** Per-class buffers a thread keeps before spilling to central. */
constexpr std::size_t kLocalCap = 8;
/** Per-class buffers the central freelist keeps before freeing. */
constexpr std::size_t kCentralCap = 64;

/** Size class for a request, or -1 for oversize (heap-direct). */
inline int
classIndex(std::size_t bytes)
{
    const std::size_t need = bytes + kSlackBytes;
    if (need > kMaxClassBytes)
        return -1;
    const std::size_t rounded = std::max(need, kMinClassBytes);
    return static_cast<int>(std::bit_width(rounded - 1)) - 8;
}

inline std::size_t
classBytes(int cls)
{
    return std::size_t{1} << (cls + 8);
}

void *
rawAlloc(std::size_t bytes)
{
    return ::operator new(bytes, std::align_val_t{kPoolAlignment});
}

void
rawFree(void *ptr) noexcept
{
    ::operator delete(ptr, std::align_val_t{kPoolAlignment});
}

/** Gated metric handles, resolved once (hot paths keep pointers). */
struct PoolMetrics
{
    metrics::Counter *hits;
    metrics::Counter *misses;
    metrics::Gauge *bytes;

    static const PoolMetrics &
    instance()
    {
        static const PoolMetrics m = [] {
            auto &registry = metrics::MetricsRegistry::instance();
            return PoolMetrics{
                registry.counter("lotus_pool_hits_total"),
                registry.counter("lotus_pool_misses_total"),
                registry.gauge("lotus_pool_bytes"),
            };
        }();
        return m;
    }
};

struct ThreadCache
{
    std::vector<void *> lists[kNumClasses];
};

// The cache pointer itself is trivially destructible, so it stays
// readable during thread teardown: once the owner's destructor has
// flushed the cache to central, late releases from other
// thread-local destructors fall through to the central freelist.
thread_local ThreadCache *t_cache = nullptr;
thread_local bool t_cache_dead = false;

} // namespace

struct BufferPool::Impl
{
    std::mutex mutex;
    std::vector<void *> central[kNumClasses];
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::int64_t> cached_bytes{0};

    void
    addCached(std::int64_t delta)
    {
        const std::int64_t now =
            cached_bytes.fetch_add(delta, std::memory_order_relaxed) +
            delta;
        PoolMetrics::instance().bytes->set(now);
    }

    /** Park a buffer on the central freelist (or free it past cap). */
    void
    centralPut(int cls, void *ptr)
    {
        {
            std::lock_guard lock(mutex);
            auto &list = central[cls];
            if (list.size() < kCentralCap) {
                list.push_back(ptr);
                ptr = nullptr;
            }
        }
        if (ptr == nullptr) {
            addCached(static_cast<std::int64_t>(classBytes(cls)));
        } else {
            rawFree(ptr);
        }
    }

    void *
    centralGet(int cls)
    {
        void *ptr = nullptr;
        {
            std::lock_guard lock(mutex);
            auto &list = central[cls];
            if (!list.empty()) {
                ptr = list.back();
                list.pop_back();
            }
        }
        if (ptr != nullptr)
            addCached(-static_cast<std::int64_t>(classBytes(cls)));
        return ptr;
    }
};

namespace {

/** Owns the calling thread's cache; flushes to central on exit so a
 *  re-spawned worker (next epoch) warms up from these buffers. */
struct ThreadCacheOwner
{
    ThreadCache cache;
    BufferPool::Impl *impl;

    explicit ThreadCacheOwner(BufferPool::Impl *pool_impl)
        : impl(pool_impl)
    {
        t_cache = &cache;
    }

    ~ThreadCacheOwner()
    {
        for (int cls = 0; cls < kNumClasses; ++cls) {
            for (void *ptr : cache.lists[cls]) {
                // Buffers move freelist-to-freelist: cached bytes are
                // only adjusted when centralPut frees past the cap.
                impl->addCached(
                    -static_cast<std::int64_t>(classBytes(cls)));
                impl->centralPut(cls, ptr);
            }
            cache.lists[cls].clear();
        }
        t_cache = nullptr;
        t_cache_dead = true;
    }
};

ThreadCache *
threadCache(BufferPool::Impl *impl)
{
    if (t_cache == nullptr && !t_cache_dead) {
        thread_local ThreadCacheOwner owner(impl);
    }
    return t_cache;
}

} // namespace

BufferPool::BufferPool() : impl_(new Impl) {}

BufferPool &
BufferPool::instance()
{
    // Leaked: buffers may be released from any destructor, including
    // during static teardown, so the pool must outlive everything.
    static BufferPool *pool = new BufferPool;
    return *pool;
}

std::size_t
BufferPool::capacityFor(std::size_t bytes)
{
    const int cls = classIndex(bytes);
    if (cls >= 0)
        return classBytes(cls);
    const std::size_t need = bytes + kSlackBytes;
    return (need + kPoolAlignment - 1) / kPoolAlignment * kPoolAlignment;
}

void *
BufferPool::acquire(std::size_t bytes)
{
    const PoolMetrics &m = PoolMetrics::instance();
    const int cls = classIndex(bytes);
    if (cls < 0) {
        impl_->misses.fetch_add(1, std::memory_order_relaxed);
        m.misses->add(1);
        return rawAlloc(capacityFor(bytes));
    }
    ThreadCache *cache = threadCache(impl_);
    if (cache != nullptr && !cache->lists[cls].empty()) {
        void *ptr = cache->lists[cls].back();
        cache->lists[cls].pop_back();
        impl_->addCached(-static_cast<std::int64_t>(classBytes(cls)));
        impl_->hits.fetch_add(1, std::memory_order_relaxed);
        m.hits->add(1);
        return ptr;
    }
    if (void *ptr = impl_->centralGet(cls); ptr != nullptr) {
        impl_->hits.fetch_add(1, std::memory_order_relaxed);
        m.hits->add(1);
        return ptr;
    }
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    m.misses->add(1);
    return rawAlloc(classBytes(cls));
}

void
BufferPool::release(void *ptr, std::size_t bytes) noexcept
{
    if (ptr == nullptr)
        return;
    const int cls = classIndex(bytes);
    if (cls < 0) {
        rawFree(ptr);
        return;
    }
    ThreadCache *cache = threadCache(impl_);
    if (cache != nullptr && cache->lists[cls].size() < kLocalCap) {
        cache->lists[cls].push_back(ptr);
        impl_->addCached(static_cast<std::int64_t>(classBytes(cls)));
        return;
    }
    impl_->centralPut(cls, ptr);
}

BufferPool::Stats
BufferPool::stats() const
{
    Stats s;
    s.hits = impl_->hits.load(std::memory_order_relaxed);
    s.misses = impl_->misses.load(std::memory_order_relaxed);
    const std::int64_t cached =
        impl_->cached_bytes.load(std::memory_order_relaxed);
    s.cached_bytes = cached > 0 ? static_cast<std::uint64_t>(cached) : 0;
    return s;
}

void
BufferPool::trim()
{
    ThreadCache *cache = threadCache(impl_);
    if (cache != nullptr) {
        for (int cls = 0; cls < kNumClasses; ++cls) {
            for (void *ptr : cache->lists[cls]) {
                rawFree(ptr);
                impl_->addCached(
                    -static_cast<std::int64_t>(classBytes(cls)));
            }
            cache->lists[cls].clear();
        }
    }
    std::vector<void *> victims;
    {
        std::lock_guard lock(impl_->mutex);
        for (int cls = 0; cls < kNumClasses; ++cls) {
            for (void *ptr : impl_->central[cls]) {
                victims.push_back(ptr);
                impl_->addCached(
                    -static_cast<std::int64_t>(classBytes(cls)));
            }
            impl_->central[cls].clear();
        }
    }
    for (void *ptr : victims)
        rawFree(ptr);
}

} // namespace lotus::memory
