/**
 * @file
 * Size-class buffer pool for the decode -> transform -> collate hot
 * path.
 *
 * Every Image, Plane and Tensor in the sample path allocates and
 * frees a multi-hundred-KiB buffer per sample; under a multi-worker
 * DataLoader that is the allocator traffic the paper attributes to
 * `__libc_calloc` / `_int_free`. The pool turns the steady state into
 * zero heap allocations:
 *
 *  - requests round up to power-of-two size classes (256 B .. 64 MiB;
 *    larger requests go straight to the heap and count as misses);
 *  - each thread owns a small per-class freelist cache, so the worker
 *    loop recycles buffers without any synchronization;
 *  - a mutex-guarded central freelist absorbs thread-cache overflow
 *    and the caches of exiting threads, which is what lets per-epoch
 *    DataLoader workers (spawned fresh every epoch) warm up from the
 *    previous epoch's buffers instead of the heap.
 *
 * Every pooled allocation is 64-byte aligned and carries at least
 * kSlackBytes of readable padding past the requested size, so SIMD
 * kernels may over-read (never over-write) up to kSlackBytes beyond
 * the logical end of any pooled buffer.
 *
 * Telemetry: `lotus_pool_hits_total`, `lotus_pool_misses_total`
 * (counters) and `lotus_pool_bytes` (gauge: bytes sitting in
 * freelists) via the metrics registry; raw always-on stats are
 * available through BufferPool::stats() for tests and benches.
 */

#ifndef LOTUS_MEMORY_BUFFER_POOL_H
#define LOTUS_MEMORY_BUFFER_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

namespace lotus::memory {

/** Guaranteed readable padding past the logical end of every pooled
 *  allocation (SIMD tail loads). */
constexpr std::size_t kSlackBytes = 32;

/** Pooled-allocation alignment. */
constexpr std::size_t kPoolAlignment = 64;

/** Smallest / largest pooled size class (bytes). Requests above the
 *  largest class bypass the freelists (and count as misses). */
constexpr std::size_t kMinClassBytes = 256;
constexpr std::size_t kMaxClassBytes = std::size_t{1} << 26; // 64 MiB

class BufferPool
{
  public:
    /** Raw pool stats (always on, relaxed): enough for tests and the
     *  bench's steady-state zero-miss check without enabling the
     *  metrics layer. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** Bytes currently parked in central + thread freelists. */
        std::uint64_t cached_bytes = 0;

        /** Counter delta since @p earlier (cached_bytes is a level,
         *  so the newer value is kept as-is). Lets tests and benches
         *  write `pool.stats() - before` to check a region of
         *  interest — e.g. that warm cache hits allocate nothing. */
        Stats
        operator-(const Stats &earlier) const
        {
            return Stats{hits - earlier.hits, misses - earlier.misses,
                         cached_bytes};
        }
    };

    /** The process-wide pool (leaked singleton: safe to release into
     *  from any thread's teardown). */
    static BufferPool &instance();

    /** Allocate at least @p bytes (+ kSlackBytes readable padding).
     *  Returns 64-byte-aligned memory whose usable capacity is the
     *  size class. Contents are indeterminate. */
    void *acquire(std::size_t bytes);

    /** Return a buffer obtained from acquire(@p bytes). */
    void release(void *ptr, std::size_t bytes) noexcept;

    /** Usable capacity acquire(@p bytes) provides (class size). */
    static std::size_t capacityFor(std::size_t bytes);

    Stats stats() const;

    /** Drop every freelist (central and this thread's cache) back to
     *  the heap; test isolation helper. */
    void trim();

    struct Impl;

  private:
    BufferPool();

    Impl *impl_;
};

/**
 * Move-only RAII handle to one pooled allocation. The logical size is
 * what was requested; the underlying capacity is the size class (see
 * BufferPool::capacityFor), so reads up to kSlackBytes past size()
 * are always in bounds.
 */
class PooledBuffer
{
  public:
    PooledBuffer() = default;

    explicit PooledBuffer(std::size_t bytes)
        : ptr_(bytes > 0 ? BufferPool::instance().acquire(bytes) : nullptr),
          size_(bytes)
    {
    }

    ~PooledBuffer() { reset(); }

    PooledBuffer(PooledBuffer &&other) noexcept
        : ptr_(std::exchange(other.ptr_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    PooledBuffer &
    operator=(PooledBuffer &&other) noexcept
    {
        if (this != &other) {
            reset();
            ptr_ = std::exchange(other.ptr_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    PooledBuffer(const PooledBuffer &) = delete;
    PooledBuffer &operator=(const PooledBuffer &) = delete;

    void *data() noexcept { return ptr_; }
    const void *data() const noexcept { return ptr_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    void
    reset() noexcept
    {
        if (ptr_ != nullptr)
            BufferPool::instance().release(ptr_, size_);
        ptr_ = nullptr;
        size_ = 0;
    }

  private:
    void *ptr_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Typed, fixed-size array over a PooledBuffer: the drop-in storage
 * for Tensor / Image / Plane (supports the container surface the
 * previous std::vector storage exposed: data/size/index/iterate).
 * Copying allocates a fresh pooled buffer; moving transfers it.
 */
template <typename T>
class PooledArray
{
  public:
    PooledArray() = default;

    /** @p zero selects zero-fill; pass false when every element is
     *  about to be overwritten (decode/resample outputs). */
    explicit PooledArray(std::size_t count, bool zero = true)
        : buffer_(count * sizeof(T)), count_(count)
    {
        if (zero && count > 0)
            std::memset(buffer_.data(), 0, count * sizeof(T));
    }

    PooledArray(PooledArray &&) noexcept = default;
    PooledArray &operator=(PooledArray &&) noexcept = default;

    PooledArray(const PooledArray &other)
        : buffer_(other.count_ * sizeof(T)), count_(other.count_)
    {
        if (count_ > 0)
            std::memcpy(buffer_.data(), other.buffer_.data(),
                        count_ * sizeof(T));
    }

    PooledArray &
    operator=(const PooledArray &other)
    {
        if (this != &other) {
            PooledArray copy(other);
            *this = std::move(copy);
        }
        return *this;
    }

    T *data() noexcept { return static_cast<T *>(buffer_.data()); }
    const T *
    data() const noexcept
    {
        return static_cast<const T *>(buffer_.data());
    }

    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    T &operator[](std::size_t i) noexcept { return data()[i]; }
    const T &operator[](std::size_t i) const noexcept { return data()[i]; }

    T *begin() noexcept { return data(); }
    T *end() noexcept { return data() + count_; }
    const T *begin() const noexcept { return data(); }
    const T *end() const noexcept { return data() + count_; }

  private:
    PooledBuffer buffer_;
    std::size_t count_ = 0;
};

} // namespace lotus::memory

#endif // LOTUS_MEMORY_BUFFER_POOL_H
