/**
 * @file
 * Single-epoch training driver (real-threaded mode): DataLoader as
 * producer, GpuModel as consumer, with the per-iteration host-side
 * overhead a Python training loop would add.
 */

#ifndef LOTUS_SIM_TRAINING_LOOP_H
#define LOTUS_SIM_TRAINING_LOOP_H

#include <memory>

#include "dataflow/data_loader.h"
#include "sim/gpu_model.h"

namespace lotus::sim {

struct EpochStats
{
    std::int64_t batches = 0;
    std::int64_t samples = 0;
    TimeNs wall_time = 0;
};

class TrainingLoop
{
  public:
    TrainingLoop(dataflow::DataLoader &loader, GpuModel &gpu);

    /** Run one epoch to completion; returns wall-clock statistics. */
    EpochStats runEpoch();

  private:
    dataflow::DataLoader &loader_;
    GpuModel &gpu_;
};

} // namespace lotus::sim

#endif // LOTUS_SIM_TRAINING_LOOP_H
