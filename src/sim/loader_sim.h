/**
 * @file
 * Virtual-time DataLoader simulation.
 *
 * Re-runs the exact protocol of dataflow::DataLoader (per-worker index
 * queues, shared data queue, prefetch priming, producer-directed
 * refill, in-order consumption with pin-and-cache) as DES coroutines
 * on a modelled machine, with per-op service times drawn from a
 * ServiceModel. Emits the same LotusTrace records a real instrumented
 * run produces, so every LotusTrace analysis (wait/delay, variance,
 * visualization) runs unchanged on simulated sweeps that exceed the
 * host's core count.
 */

#ifndef LOTUS_SIM_LOADER_SIM_H
#define LOTUS_SIM_LOADER_SIM_H

#include <vector>

#include "hwcount/cost_model.h"
#include "sim/service_model.h"
#include "trace/record.h"

namespace lotus::sim {

/** Data-return channel topology (ablation of the paper's Takeaway 4:
 *  the shared queue is what produces out-of-order arrivals). */
enum class DataQueuePolicy
{
    /** One queue shared by all workers (PyTorch; the paper's setup). */
    Shared,
    /** One queue per worker; the main process pops the producer's
     *  queue directly, so arrivals are always in order. */
    PerWorker,
};

struct LoaderSimConfig
{
    ServiceModel model;
    int batch_size = 128;
    int num_workers = 1;
    int prefetch_factor = 2;
    std::int64_t num_batches = 50;
    DataQueuePolicy queue_policy = DataQueuePolicy::Shared;

    /** Modelled machine (paper: 32 cores). */
    int cores = 32;
    /** Apply occupancy-driven CPU time inflation (contention). */
    bool apply_contention = true;

    int num_gpus = 1;
    /** GPU service time per sample (batch is split across GPUs). */
    TimeNs gpu_time_per_sample = 550 * kMicrosecond;
    TimeNs gpu_base = 2 * kMillisecond;
    double gpu_jitter = 0.05;
    /** Batches in flight before the main process blocks on submit. */
    int gpu_max_outstanding = 2;

    std::uint64_t seed = 1;
    /** Emit per-sample [T3] records (large; disable for big sweeps). */
    bool log_ops = true;
};

struct LoaderSimResult
{
    TimeNs e2e_time = 0;
    /** Mean busy fraction of the modelled cores. */
    double avg_occupancy = 0.0;
    /** Worker CPU seconds actually consumed (inflation included). */
    double total_cpu_seconds = 0.0;
    /** All LotusTrace records, sorted by start. */
    std::vector<trace::TraceRecord> records;

    /** Process ids used in records. */
    static constexpr std::uint32_t kMainPid = 1;
    static constexpr std::uint32_t kGpuPid = 2;
    static constexpr std::uint32_t kFirstWorkerPid = 10;
};

class LoaderSim
{
  public:
    explicit LoaderSim(LoaderSimConfig config);

    /** Run the simulated epoch to completion. Deterministic. */
    LoaderSimResult run();

    const LoaderSimConfig &config() const { return config_; }

  private:
    LoaderSimConfig config_;
};

} // namespace lotus::sim

#endif // LOTUS_SIM_LOADER_SIM_H
