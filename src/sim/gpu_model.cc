#include "sim/gpu_model.h"

#include "common/thread_util.h"
#include "hwcount/registry.h"

namespace lotus::sim {

GpuModel::GpuModel(GpuConfig config)
    : config_(config), rng_(config.seed),
      queue_(static_cast<std::size_t>(config.max_outstanding))
{
    LOTUS_ASSERT(config_.num_gpus > 0 && config_.max_outstanding > 0);
    device_ = std::thread([this] { deviceLoop(); });
}

GpuModel::~GpuModel()
{
    queue_.close();
    if (device_.joinable())
        device_.join();
}

TimeNs
GpuModel::serviceTime(std::int64_t batch_size) const
{
    // DataParallel splits the batch across the available GPUs.
    const std::int64_t per_gpu =
        (batch_size + config_.num_gpus - 1) / config_.num_gpus;
    return config_.base_time + per_gpu * config_.time_per_sample;
}

void
GpuModel::submit(pipeline::Batch batch)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push(std::move(batch));
}

void
GpuModel::drain()
{
    std::unique_lock lock(drain_mutex_);
    drained_.wait(lock, [this] {
        return serviced_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });
}

std::int64_t
GpuModel::servicedBatches() const
{
    return serviced_.load(std::memory_order_acquire);
}

void
GpuModel::deviceLoop()
{
    setCurrentThreadName("gpu-model");
    const std::uint32_t pid = currentTid();
    const auto &clock = SteadyClock::instance();
    for (;;) {
        auto batch = queue_.pop();
        if (!batch.has_value())
            break;
        TimeNs service = serviceTime(batch->size());
        if (config_.jitter > 0.0) {
            service = static_cast<TimeNs>(
                static_cast<double>(service) *
                rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter));
        }
        const TimeNs start = clock.now();

        // A sliver of host-side unrelated work (optimizer + loss),
        // so end-to-end hardware profiles contain non-preprocessing
        // functions that LotusMap must filter out.
        {
            hwcount::KernelScope loss(hwcount::KernelId::LossForward);
            volatile float acc = 0.0f;
            for (int i = 0; i < 2000; ++i)
                acc = acc + static_cast<float>(i) * 0.5f;
            loss.stats().arith_ops += 2000;
        }
        {
            hwcount::KernelScope adam(hwcount::KernelId::AdamStep);
            volatile float acc = 1.0f;
            for (int i = 1; i < 2000; ++i)
                acc = acc * 1.0000001f + 0.25f;
            adam.stats().arith_ops += 4000;
        }

        const TimeNs elapsed = clock.now() - start;
        if (elapsed < service)
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(service - elapsed));

        if (config_.logger) {
            trace::TraceRecord record;
            record.kind = trace::RecordKind::GpuCompute;
            record.batch_id = batch->batch_id;
            record.pid = pid;
            record.start = start;
            record.duration = clock.now() - start;
            config_.logger->log(std::move(record));
        }

        serviced_.fetch_add(1, std::memory_order_acq_rel);
        drained_.notify_all();
    }
}

} // namespace lotus::sim
