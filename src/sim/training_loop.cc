#include "sim/training_loop.h"

#include "hwcount/registry.h"

namespace lotus::sim {

TrainingLoop::TrainingLoop(dataflow::DataLoader &loader, GpuModel &gpu)
    : loader_(loader), gpu_(gpu)
{
}

EpochStats
TrainingLoop::runEpoch()
{
    const auto &clock = SteadyClock::instance();
    EpochStats stats;
    const TimeNs epoch_start = clock.now();

    loader_.startEpoch();
    for (;;) {
        auto batch = loader_.next();
        if (!batch.has_value())
            break;

        // Interpreter-style per-iteration overhead: unrelated to
        // preprocessing, present in every end-to-end profile.
        {
            hwcount::KernelScope interp(hwcount::KernelId::InterpEval);
            volatile std::uint64_t acc = 0;
            for (int i = 0; i < 1000; ++i)
                acc = acc + static_cast<std::uint64_t>(i) * 7;
            interp.stats().arith_ops += 2000;
            interp.stats().branches += 1000;
        }

        stats.batches += 1;
        stats.samples += batch->size();
        gpu_.submit(std::move(*batch));
    }
    gpu_.drain();

    stats.wall_time = clock.now() - epoch_start;
    return stats;
}

} // namespace lotus::sim
