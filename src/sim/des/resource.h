/**
 * @file
 * Counted resource (CPU cores) for DES processes, with a
 * time-weighted busy integral for occupancy statistics.
 */

#ifndef LOTUS_SIM_DES_RESOURCE_H
#define LOTUS_SIM_DES_RESOURCE_H

#include <deque>

#include "sim/des/engine.h"

namespace lotus::sim::des {

class Resource
{
  public:
    Resource(Engine &engine, int capacity)
        : engine_(engine), capacity_(capacity)
    {
        LOTUS_ASSERT(capacity > 0, "resource capacity must be positive");
    }

    Resource(const Resource &) = delete;
    Resource &operator=(const Resource &) = delete;

    struct AcquireAwaiter
    {
        Resource &resource;

        bool
        await_ready()
        {
            if (resource.in_use_ < resource.capacity_) {
                resource.accrue();
                ++resource.in_use_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> handle)
        {
            resource.waiters_.push_back(handle);
        }

        void await_resume() const noexcept {}
    };

    /** co_await resource.acquire(); pair with release(). */
    AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

    /** Free one unit, waking the oldest waiter (FIFO). */
    void
    release()
    {
        LOTUS_ASSERT(in_use_ > 0, "release without acquire");
        accrue();
        --in_use_;
        if (!waiters_.empty()) {
            auto handle = waiters_.front();
            waiters_.pop_front();
            // The waiter re-acquires at resume time.
            accrue();
            ++in_use_;
            engine_.scheduleResume(engine_.now(), handle);
        }
    }

    int inUse() const { return in_use_; }
    int capacity() const { return capacity_; }

    /** Fraction of capacity currently busy. */
    double
    occupancy() const
    {
        return static_cast<double>(in_use_) / capacity_;
    }

    /** Busy core-nanoseconds accumulated so far. */
    double
    busyIntegral() const
    {
        return busy_integral_ +
               static_cast<double>(in_use_) *
                   static_cast<double>(engine_.now() - last_change_);
    }

  private:
    friend struct AcquireAwaiter;

    void
    accrue()
    {
        const TimeNs now = engine_.now();
        busy_integral_ += static_cast<double>(in_use_) *
                          static_cast<double>(now - last_change_);
        last_change_ = now;
    }

    Engine &engine_;
    int capacity_;
    int in_use_ = 0;
    std::deque<std::coroutine_handle<>> waiters_;
    double busy_integral_ = 0.0;
    TimeNs last_change_ = 0;
};

} // namespace lotus::sim::des

#endif // LOTUS_SIM_DES_RESOURCE_H
