/**
 * @file
 * Minimal deterministic discrete-event engine with coroutine
 * processes.
 *
 * The DataLoader protocol sweeps the paper runs (varying batch size,
 * GPU count, and 8-28 workers) assume a 32-core machine; this sandbox
 * has two cores, so real threads cannot reproduce the scaling shapes.
 * The DES re-runs the exact same protocol in virtual time on a
 * modelled machine: processes are C++20 coroutines, time advances only
 * through the event queue, and every run is bit-reproducible.
 */

#ifndef LOTUS_SIM_DES_ENGINE_H
#define LOTUS_SIM_DES_ENGINE_H

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"

namespace lotus::sim::des {

/**
 * A detached simulation process. Calling a coroutine returning
 * Process starts it immediately; it runs until its first co_await and
 * is destroyed automatically when it finishes.
 */
struct Process
{
    struct promise_type
    {
        Process get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };
};

class Engine
{
  public:
    /** Current virtual time. */
    TimeNs now() const { return now_; }

    /** Schedule @p fn at absolute virtual time @p time (>= now). */
    void
    schedule(TimeNs time, std::function<void()> fn)
    {
        LOTUS_ASSERT(time >= now_, "scheduling into the past");
        events_.push(Event{time, next_seq_++, std::move(fn)});
    }

    /** Schedule a coroutine resume at absolute time @p time. */
    void
    scheduleResume(TimeNs time, std::coroutine_handle<> handle)
    {
        schedule(time, [handle] { handle.resume(); });
    }

    /** Run until the event queue is empty. Returns the final time. */
    TimeNs
    run()
    {
        while (!events_.empty()) {
            // std::priority_queue::top is const; the handler must be
            // moved out before pop, hence the const_cast idiom.
            Event event = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            LOTUS_ASSERT(event.time >= now_, "event queue corrupted");
            now_ = event.time;
            event.fn();
        }
        return now_;
    }

    /** Awaitable: suspend the calling process for @p dt virtual ns. */
    auto
    delay(TimeNs dt)
    {
        struct Awaiter
        {
            Engine &engine;
            TimeNs dt;

            bool await_ready() const noexcept { return dt <= 0; }
            void
            await_suspend(std::coroutine_handle<> handle)
            {
                engine.scheduleResume(engine.now() + dt, handle);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, dt};
    }

  private:
    struct Event
    {
        TimeNs time;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    TimeNs now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace lotus::sim::des

#endif // LOTUS_SIM_DES_ENGINE_H
