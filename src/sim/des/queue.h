/**
 * @file
 * Awaitable FIFO queue for DES processes — the virtual-time analogue
 * of the multiprocessing.Queue channels in the DataLoader protocol.
 */

#ifndef LOTUS_SIM_DES_QUEUE_H
#define LOTUS_SIM_DES_QUEUE_H

#include <deque>
#include <optional>

#include "sim/des/engine.h"

namespace lotus::sim::des {

template <typename T>
class SimQueue
{
  public:
    /** @param capacity 0 means unbounded. */
    explicit SimQueue(Engine &engine, std::size_t capacity = 0)
        : engine_(engine), capacity_(capacity)
    {
    }

    SimQueue(const SimQueue &) = delete;
    SimQueue &operator=(const SimQueue &) = delete;

    struct PushAwaiter
    {
        SimQueue &queue;
        std::optional<T> item;
        bool accepted = false;

        bool
        await_ready()
        {
            if (queue.closed_) {
                accepted = false;
                return true;
            }
            if (queue.tryDeliver(*item)) {
                accepted = true;
                item.reset();
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> handle)
        {
            queue.push_waiters_.push_back({this, handle});
        }

        /** @return false when the queue was closed before acceptance. */
        bool await_resume() const noexcept { return accepted; }
    };

    struct PopAwaiter
    {
        SimQueue &queue;
        std::optional<T> value;
        bool finished = false;

        bool
        await_ready()
        {
            if (!queue.items_.empty()) {
                value = std::move(queue.items_.front());
                queue.items_.pop_front();
                queue.admitWaitingPush();
                finished = true;
                return true;
            }
            if (queue.closed_) {
                finished = true;
                return true; // value stays empty: end of stream
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> handle)
        {
            queue.pop_waiters_.push_back({this, handle});
        }

        /** @return the item, or nullopt on closed-and-drained. */
        std::optional<T> await_resume() noexcept { return std::move(value); }
    };

    /** co_await queue.push(item) -> bool accepted. */
    PushAwaiter push(T item) { return PushAwaiter{*this, std::move(item)}; }

    /** co_await queue.pop() -> std::optional<T>. */
    PopAwaiter pop() { return PopAwaiter{*this, std::nullopt, false}; }

    /** Close: pending and future pops drain then see nullopt;
     *  blocked pushes fail. */
    void
    close()
    {
        closed_ = true;
        // Fail blocked pushers.
        auto pushers = std::move(push_waiters_);
        push_waiters_.clear();
        for (auto &[awaiter, handle] : pushers) {
            awaiter->accepted = false;
            engine_.scheduleResume(engine_.now(), handle);
        }
        // Wake blocked poppers (queue is empty if they were blocked).
        auto poppers = std::move(pop_waiters_);
        pop_waiters_.clear();
        for (auto &[awaiter, handle] : poppers) {
            awaiter->finished = true;
            engine_.scheduleResume(engine_.now(), handle);
        }
    }

    std::size_t size() const { return items_.size(); }
    bool closed() const { return closed_; }

  private:
    friend struct PushAwaiter;
    friend struct PopAwaiter;

    struct PushWaiter
    {
        PushAwaiter *awaiter;
        std::coroutine_handle<> handle;
    };

    struct PopWaiter
    {
        PopAwaiter *awaiter;
        std::coroutine_handle<> handle;
    };

    /** Hand @p item to a waiting popper or buffer it if space allows. */
    bool
    tryDeliver(T &item)
    {
        if (!pop_waiters_.empty()) {
            PopWaiter waiter = pop_waiters_.front();
            pop_waiters_.pop_front();
            waiter.awaiter->value = std::move(item);
            waiter.awaiter->finished = true;
            engine_.scheduleResume(engine_.now(), waiter.handle);
            return true;
        }
        if (capacity_ == 0 || items_.size() < capacity_) {
            items_.push_back(std::move(item));
            return true;
        }
        return false;
    }

    /** After a buffered slot freed, admit one blocked pusher. */
    void
    admitWaitingPush()
    {
        if (push_waiters_.empty())
            return;
        if (capacity_ != 0 && items_.size() >= capacity_)
            return;
        PushWaiter waiter = push_waiters_.front();
        push_waiters_.pop_front();
        items_.push_back(std::move(*waiter.awaiter->item));
        waiter.awaiter->item.reset();
        waiter.awaiter->accepted = true;
        engine_.scheduleResume(engine_.now(), waiter.handle);
    }

    Engine &engine_;
    std::size_t capacity_;
    std::deque<T> items_;
    std::deque<PushWaiter> push_waiters_;
    std::deque<PopWaiter> pop_waiters_;
    bool closed_ = false;
};

} // namespace lotus::sim::des

#endif // LOTUS_SIM_DES_QUEUE_H
