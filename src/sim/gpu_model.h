/**
 * @file
 * Accelerator consumer model (real-threaded mode).
 *
 * The paper uses GPUs only as a batch consumer with a characteristic
 * per-batch service time (e.g. 750 ms for IS, 250 ms for OD). GpuModel
 * reproduces that role: a device thread services submitted batches
 * after a configurable model time; submit() applies backpressure once
 * max_outstanding batches are in flight, which is what turns a slow
 * consumer into the GPU-bound regime of Fig. 2(b)/(c).
 */

#ifndef LOTUS_SIM_GPU_MODEL_H
#define LOTUS_SIM_GPU_MODEL_H

#include <thread>

#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "pipeline/sample.h"
#include "trace/logger.h"

namespace lotus::sim {

struct GpuConfig
{
    int num_gpus = 1;
    /** Service time per sample on one GPU. */
    TimeNs time_per_sample = 500 * kMicrosecond;
    /** Fixed per-batch overhead (launch, sync). */
    TimeNs base_time = 2 * kMillisecond;
    /** Multiplicative jitter fraction (+-). */
    double jitter = 0.05;
    /** Batches allowed in flight before submit() blocks. */
    int max_outstanding = 2;
    std::uint64_t seed = 42;
    /** Optional tracer for GpuCompute spans. */
    trace::TraceLogger *logger = nullptr;
};

class GpuModel
{
  public:
    explicit GpuModel(GpuConfig config);
    ~GpuModel();

    GpuModel(const GpuModel &) = delete;
    GpuModel &operator=(const GpuModel &) = delete;

    /** Modelled service time for a batch of @p batch_size (no jitter). */
    TimeNs serviceTime(std::int64_t batch_size) const;

    /**
     * Submit a batch; blocks while max_outstanding batches are
     * already in flight (the training loop's implicit sync).
     */
    void submit(pipeline::Batch batch);

    /** Block until every submitted batch has been serviced. */
    void drain();

    /** Total batches serviced so far. */
    std::int64_t servicedBatches() const;

  private:
    void deviceLoop();

    GpuConfig config_;
    Rng rng_;
    MpmcQueue<pipeline::Batch> queue_;
    std::thread device_;
    std::atomic<std::int64_t> submitted_{0};
    std::atomic<std::int64_t> serviced_{0};
    std::mutex drain_mutex_;
    std::condition_variable drained_;
};

} // namespace lotus::sim

#endif // LOTUS_SIM_GPU_MODEL_H
