/**
 * @file
 * Per-operation service-time model driving the DES workers.
 *
 * Each preprocessing op costs a lognormal per-sample CPU time
 * (mean + coefficient of variation), the distribution family that
 * matches the heavy-tailed per-op times Table II reports. Models can
 * be built from the paper's published means, or calibrated from a
 * real instrumented run's [T3] records.
 */

#ifndef LOTUS_SIM_SERVICE_MODEL_H
#define LOTUS_SIM_SERVICE_MODEL_H

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "trace/record.h"

namespace lotus::sim {

struct OpCost
{
    std::string name;
    /** Mean per-sample CPU time. */
    TimeNs mean = 0;
    /** Coefficient of variation (stddev / mean). */
    double cv = 0.3;
};

struct ServiceModel
{
    /** Ops applied per sample, in order (first is the Loader). */
    std::vector<OpCost> per_sample_ops;
    /** Collation cost per sample in the batch. */
    OpCost collate{"Collate", 350 * kMicrosecond, 0.15};
    /** Main-process pin cost per sample in a batch. */
    TimeNs pin_per_sample = 60 * kMicrosecond;
    /**
     * Batch-level correlated variation: one lognormal factor drawn
     * per batch multiplies every op time in it. Models input-size
     * clustering and scheduling noise, which is why the paper's
     * per-batch stddev stays at 5-11% of the mean at every batch size
     * instead of shrinking with sqrt(batch_size).
     */
    double batch_factor_cv = 0.0;

    /** Draw the batch-level multiplier (1.0 when batch_factor_cv=0). */
    double drawBatchFactor(Rng &rng) const;

    /** Draw one op's per-sample time. */
    TimeNs drawOpTime(std::size_t op_index, Rng &rng) const;

    /** Draw the collate time for a batch of @p batch_size. */
    TimeNs drawCollateTime(std::int64_t batch_size, Rng &rng) const;

    /** Mean total per-sample preprocessing time (excluding collate). */
    TimeNs meanSampleTime() const;

    /**
     * The paper's Image Classification pipeline at Table II
     * magnitudes (Loader 4.76 ms, RRC 1.11 ms, RHF 0.06 ms,
     * TT 0.34 ms, Normalize 0.21 ms; C(128) 49.76 ms).
     */
    static ServiceModel imageClassification();

    /** IS pipeline at Table II magnitudes. */
    static ServiceModel imageSegmentation();

    /** OD pipeline at Table II magnitudes. */
    static ServiceModel objectDetection();

    /**
     * Fit a model from [T3] TransformOp records of a real
     * instrumented run: per-op mean and cv, with collate split out by
     * name. Ops appear in first-seen order.
     */
    static ServiceModel calibrate(
        const std::vector<trace::TraceRecord> &records,
        std::int64_t collate_batch_size);
};

/** Lognormal draw with the given mean and coefficient of variation. */
TimeNs drawLogNormal(TimeNs mean, double cv, Rng &rng);

} // namespace lotus::sim

#endif // LOTUS_SIM_SERVICE_MODEL_H
