#include "sim/service_model.h"

#include <cmath>
#include <map>

#include "common/logging.h"
#include "pipeline/collate.h"

namespace lotus::sim {

TimeNs
drawLogNormal(TimeNs mean, double cv, Rng &rng)
{
    if (mean <= 0)
        return 0;
    if (cv <= 0.0)
        return mean;
    const double value = rng.logNormalFromMoments(
        static_cast<double>(mean), cv * static_cast<double>(mean));
    return value < 0.0 ? 0 : static_cast<TimeNs>(std::llround(value));
}

TimeNs
ServiceModel::drawOpTime(std::size_t op_index, Rng &rng) const
{
    LOTUS_ASSERT(op_index < per_sample_ops.size(), "op index out of range");
    const OpCost &op = per_sample_ops[op_index];
    return drawLogNormal(op.mean, op.cv, rng);
}

TimeNs
ServiceModel::drawCollateTime(std::int64_t batch_size, Rng &rng) const
{
    return drawLogNormal(collate.mean * batch_size, collate.cv, rng);
}

double
ServiceModel::drawBatchFactor(Rng &rng) const
{
    if (batch_factor_cv <= 0.0)
        return 1.0;
    return rng.logNormalFromMoments(1.0, batch_factor_cv);
}

TimeNs
ServiceModel::meanSampleTime() const
{
    TimeNs total = 0;
    for (const auto &op : per_sample_ops)
        total += op.mean;
    return total;
}

ServiceModel
ServiceModel::imageClassification()
{
    ServiceModel model;
    // Table II, IC row (per image, average). The Loader has the widest
    // spread: encoded sizes vary a lot (ImageNet file-size cv ~1.2).
    model.per_sample_ops = {
        {"Loader", static_cast<TimeNs>(4.76 * kMillisecond), 0.55},
        {"RandomResizedCrop", static_cast<TimeNs>(1.11 * kMillisecond), 0.30},
        {"RandomHorizontalFlip", static_cast<TimeNs>(0.06 * kMillisecond),
         0.80},
        {"ToTensor", static_cast<TimeNs>(0.34 * kMillisecond), 0.15},
        {"Normalize", static_cast<TimeNs>(0.21 * kMillisecond), 0.12},
    };
    // C(128) = 49.76 ms -> ~0.389 ms per sample.
    model.collate = {"Collate", static_cast<TimeNs>(0.389 * kMillisecond),
                     0.10};
    model.pin_per_sample = 60 * kMicrosecond;
    // Fig. 4: per-batch stddev 5.48-10.73% of the mean at every size.
    model.batch_factor_cv = 0.075;
    return model;
}

ServiceModel
ServiceModel::imageSegmentation()
{
    ServiceModel model;
    // Table II, IS row: bimodal/heavy-tailed ops (RBC P90 is 3.3x its
    // mean; GN fires with probability ~0.1 and is huge when it does).
    model.per_sample_ops = {
        {"Loader", static_cast<TimeNs>(72.03 * kMillisecond), 0.60},
        {"RandBalancedCrop", static_cast<TimeNs>(91.10 * kMillisecond), 1.6},
        {"RandomFlip", static_cast<TimeNs>(4.39 * kMillisecond), 0.9},
        {"Cast", static_cast<TimeNs>(2.16 * kMillisecond), 0.5},
        {"RandomBrightnessAugmentation",
         static_cast<TimeNs>(0.78 * kMillisecond), 2.5},
        {"GaussianNoise", static_cast<TimeNs>(6.46 * kMillisecond), 3.0},
    };
    // C(2) = 14.24 ms -> 7.12 ms per sample.
    model.collate = {"Collate", static_cast<TimeNs>(7.12 * kMillisecond),
                     0.12};
    model.pin_per_sample = 800 * kMicrosecond;
    // Paper: IS per-batch stddev 15.47% of the mean.
    model.batch_factor_cv = 0.12;
    return model;
}

ServiceModel
ServiceModel::objectDetection()
{
    ServiceModel model;
    // Table II, OD row.
    model.per_sample_ops = {
        {"Loader", static_cast<TimeNs>(9.59 * kMillisecond), 0.55},
        {"Resize", static_cast<TimeNs>(9.43 * kMillisecond), 0.25},
        {"RandomHorizontalFlip", static_cast<TimeNs>(0.52 * kMillisecond),
         1.0},
        {"ToTensor", static_cast<TimeNs>(6.75 * kMillisecond), 0.55},
        {"Normalize", static_cast<TimeNs>(7.80 * kMillisecond), 0.45},
    };
    // C(2) = 7.39 ms -> 3.70 ms per sample.
    model.collate = {"Collate", static_cast<TimeNs>(3.70 * kMillisecond),
                     0.25};
    model.pin_per_sample = 500 * kMicrosecond;
    // Paper: OD per-batch stddev 66.8% of the mean.
    model.batch_factor_cv = 0.60;
    return model;
}

ServiceModel
ServiceModel::calibrate(const std::vector<trace::TraceRecord> &records,
                        std::int64_t collate_batch_size)
{
    LOTUS_ASSERT(collate_batch_size > 0);
    struct Moments
    {
        double sum = 0.0;
        double sum_sq = 0.0;
        std::uint64_t count = 0;
    };
    std::map<std::string, Moments> by_op;
    std::vector<std::string> order;
    for (const auto &record : records) {
        if (record.kind != trace::RecordKind::TransformOp)
            continue;
        auto [it, inserted] = by_op.try_emplace(record.op_name);
        if (inserted)
            order.push_back(record.op_name);
        const auto duration = static_cast<double>(record.duration);
        it->second.sum += duration;
        it->second.sum_sq += duration * duration;
        it->second.count += 1;
    }
    LOTUS_ASSERT(!order.empty(), "no TransformOp records to calibrate from");

    auto costOf = [&](const std::string &name) {
        const Moments &m = by_op.at(name);
        OpCost cost;
        cost.name = name;
        const double mean = m.sum / static_cast<double>(m.count);
        const double var =
            m.count > 1
                ? std::max(0.0, m.sum_sq / static_cast<double>(m.count) -
                                    mean * mean)
                : 0.0;
        cost.mean = static_cast<TimeNs>(std::llround(mean));
        cost.cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
        return cost;
    };

    ServiceModel model;
    for (const auto &name : order) {
        if (name == pipeline::Collate::kOpName) {
            OpCost collate = costOf(name);
            collate.mean /= collate_batch_size; // per-sample share
            model.collate = collate;
        } else {
            model.per_sample_ops.push_back(costOf(name));
        }
    }
    return model;
}

} // namespace lotus::sim
