#include "sim/loader_sim.h"

#include <algorithm>
#include <map>
#include <set>

#include "sim/des/engine.h"
#include "sim/des/queue.h"
#include "sim/des/resource.h"

namespace lotus::sim {

namespace {

using des::Engine;
using des::Process;
using des::Resource;
using des::SimQueue;
using trace::RecordKind;
using trace::TraceRecord;

struct IndexMsg
{
    std::int64_t batch_id;
};

struct DataMsg
{
    std::int64_t batch_id;
    int worker_id;
};

/** Shared state of one simulated epoch. */
struct Sim
{
    explicit Sim(const LoaderSimConfig &config)
        : cfg(config), cores(engine, config.cores),
          gpu_queue(engine,
                    static_cast<std::size_t>(config.gpu_max_outstanding)),
          pmu(hwcount::MachineConfig{config.cores, 3.2, 64, 220.0}),
          main_rng(config.seed ^ 0xD1B54A32D192ED03ull)
    {
        const int data_queues =
            config.queue_policy == DataQueuePolicy::Shared
                ? 1
                : config.num_workers;
        for (int q = 0; q < data_queues; ++q)
            this->data_queues.push_back(
                std::make_unique<SimQueue<DataMsg>>(engine));
        for (int w = 0; w < config.num_workers; ++w) {
            index_queues.push_back(
                std::make_unique<SimQueue<IndexMsg>>(engine));
            worker_rngs.emplace_back(config.seed * 0x9E3779B97F4A7C15ull +
                                     static_cast<std::uint64_t>(w) + 1);
        }
    }

    /** Data queue a worker pushes to. */
    SimQueue<DataMsg> &
    dataQueueFor(int worker_id)
    {
        if (cfg.queue_policy == DataQueuePolicy::Shared)
            return *data_queues[0];
        return *data_queues[static_cast<std::size_t>(worker_id)];
    }

    void
    emit(RecordKind kind, std::int64_t batch_id, std::uint32_t pid,
         TimeNs start, TimeNs duration, const std::string &op_name = "",
         std::int64_t sample_index = -1)
    {
        TraceRecord record;
        record.kind = kind;
        record.batch_id = batch_id;
        record.pid = pid;
        record.start = start;
        record.duration = duration;
        record.op_name = op_name;
        record.sample_index = sample_index;
        records.push_back(std::move(record));
    }

    void
    tryPutIndex(int worker_id)
    {
        if (send_idx >= cfg.num_batches)
            return;
        batch_worker[send_idx] = worker_id;
        // Index queues are unbounded: delivery is immediate, no
        // suspension, so a plain non-awaited push is safe here.
        auto awaiter = index_queues[static_cast<std::size_t>(worker_id)]
                           ->push(IndexMsg{send_idx});
        const bool ready = awaiter.await_ready();
        LOTUS_ASSERT(ready, "unbounded index queue refused a push");
        ++send_idx;
    }

    const LoaderSimConfig &cfg;
    Engine engine;
    Resource cores;
    std::vector<std::unique_ptr<SimQueue<DataMsg>>> data_queues;
    SimQueue<std::int64_t> gpu_queue;
    hwcount::SimulatedPmu pmu;
    std::vector<std::unique_ptr<SimQueue<IndexMsg>>> index_queues;
    std::vector<Rng> worker_rngs;
    Rng main_rng;

    std::int64_t send_idx = 0;
    std::map<std::int64_t, int> batch_worker;
    std::set<std::int64_t> reorder_cache;
    std::vector<TraceRecord> records;
    double worker_cpu_ns = 0.0;
    TimeNs finish_time = 0;
};

Process
workerProc(Sim &s, int worker_id)
{
    const auto pid = static_cast<std::uint32_t>(
        LoaderSimResult::kFirstWorkerPid + worker_id);
    Rng &rng = s.worker_rngs[static_cast<std::size_t>(worker_id)];
    auto &index_queue = *s.index_queues[static_cast<std::size_t>(worker_id)];
    const auto &model = s.cfg.model;

    for (;;) {
        auto msg = co_await index_queue.pop();
        if (!msg.has_value())
            break;
        const std::int64_t batch_id = msg->batch_id;

        const TimeNs fetch_start = s.engine.now();
        co_await s.cores.acquire();
        const double inflation =
            (s.cfg.apply_contention
                 ? s.pmu.cpuTimeInflation(s.cores.occupancy())
                 : 1.0) *
            model.drawBatchFactor(rng);

        for (int sample = 0; sample < s.cfg.batch_size; ++sample) {
            // Draw every op's time up front, advance once, then emit
            // the per-op [T3] records at their computed offsets.
            TimeNs sample_total = 0;
            std::vector<TimeNs> op_times(model.per_sample_ops.size());
            for (std::size_t op = 0; op < model.per_sample_ops.size();
                 ++op) {
                op_times[op] = static_cast<TimeNs>(
                    static_cast<double>(model.drawOpTime(op, rng)) *
                    inflation);
                sample_total += op_times[op];
            }
            const TimeNs sample_start = s.engine.now();
            co_await s.engine.delay(sample_total);
            if (s.cfg.log_ops) {
                TimeNs offset = 0;
                for (std::size_t op = 0; op < op_times.size(); ++op) {
                    s.emit(RecordKind::TransformOp, batch_id, pid,
                           sample_start + offset, op_times[op],
                           model.per_sample_ops[op].name,
                           static_cast<std::int64_t>(batch_id) *
                                   s.cfg.batch_size +
                               sample);
                    offset += op_times[op];
                }
            }
        }

        const TimeNs collate_time = static_cast<TimeNs>(
            static_cast<double>(
                model.drawCollateTime(s.cfg.batch_size, rng)) *
            inflation);
        const TimeNs collate_start = s.engine.now();
        co_await s.engine.delay(collate_time);
        if (s.cfg.log_ops) {
            s.emit(RecordKind::TransformOp, batch_id, pid, collate_start,
                   collate_time, model.collate.name);
        }

        s.cores.release();
        const TimeNs fetch_end = s.engine.now();
        s.emit(RecordKind::BatchPreprocessed, batch_id, pid, fetch_start,
               fetch_end - fetch_start);
        s.worker_cpu_ns += static_cast<double>(fetch_end - fetch_start);

        co_await s.dataQueueFor(worker_id).push(
            DataMsg{batch_id, worker_id});
    }
}

Process
gpuProc(Sim &s)
{
    Rng rng(s.cfg.seed ^ 0xA3EC647659359ACDull);
    for (;;) {
        auto msg = co_await s.gpu_queue.pop();
        if (!msg.has_value())
            break;
        const std::int64_t per_gpu =
            (s.cfg.batch_size + s.cfg.num_gpus - 1) / s.cfg.num_gpus;
        TimeNs service = s.cfg.gpu_base + per_gpu * s.cfg.gpu_time_per_sample;
        if (s.cfg.gpu_jitter > 0.0) {
            service = static_cast<TimeNs>(
                static_cast<double>(service) *
                rng.uniform(1.0 - s.cfg.gpu_jitter,
                            1.0 + s.cfg.gpu_jitter));
        }
        const TimeNs start = s.engine.now();
        co_await s.engine.delay(service);
        s.emit(RecordKind::GpuCompute, *msg, LoaderSimResult::kGpuPid,
               start, service);
        s.finish_time = s.engine.now();
    }
}

Process
mainProc(Sim &s)
{
    const std::uint32_t pid = LoaderSimResult::kMainPid;
    const TimeNs pin_time =
        s.cfg.model.pin_per_sample * s.cfg.batch_size;

    // Prime every worker's index queue with prefetch_factor batches.
    for (int round = 0; round < s.cfg.prefetch_factor; ++round) {
        for (int w = 0; w < s.cfg.num_workers; ++w)
            s.tryPutIndex(w);
    }

    for (std::int64_t wanted = 0; wanted < s.cfg.num_batches; ++wanted) {
        const TimeNs wait_start = s.engine.now();
        if (s.cfg.queue_policy == DataQueuePolicy::PerWorker) {
            // Ablation topology: pop the producer's own queue; its
            // front is always the wanted batch, so no reorder cache
            // and no out-of-order sentinel can occur.
            const int producer_id = s.batch_worker.at(wanted);
            auto msg =
                co_await s.dataQueueFor(producer_id).pop();
            LOTUS_ASSERT(msg.has_value() && msg->batch_id == wanted,
                         "per-worker queue out of order");
            s.emit(RecordKind::BatchWait, wanted, pid, wait_start,
                   s.engine.now() - wait_start);
            co_await s.engine.delay(pin_time);
        } else if (s.reorder_cache.erase(wanted) > 0) {
            // Already pinned and cached: the 1 µs sentinel.
            s.emit(RecordKind::BatchWait, wanted, pid, wait_start,
                   trace::kOutOfOrderSentinel);
        } else {
            for (;;) {
                auto msg = co_await s.dataQueueFor(0).pop();
                LOTUS_ASSERT(msg.has_value(),
                             "data queue closed mid-epoch");
                if (msg->batch_id == wanted) {
                    s.emit(RecordKind::BatchWait, wanted, pid, wait_start,
                           s.engine.now() - wait_start);
                    co_await s.engine.delay(pin_time);
                    break;
                }
                // Early arrival: pin and cache.
                co_await s.engine.delay(pin_time);
                s.reorder_cache.insert(msg->batch_id);
            }
        }

        const TimeNs consumed_start = s.engine.now();
        const auto producer = s.batch_worker.find(wanted);
        LOTUS_ASSERT(producer != s.batch_worker.end());
        const int producer_id = producer->second;
        s.batch_worker.erase(producer);
        s.tryPutIndex(producer_id);
        const bool accepted = co_await s.gpu_queue.push(wanted);
        LOTUS_ASSERT(accepted, "gpu queue closed mid-epoch");
        s.emit(RecordKind::BatchConsumed, wanted, pid, consumed_start,
               s.engine.now() - consumed_start);
    }

    for (auto &queue : s.index_queues)
        queue->close();
    s.gpu_queue.close();
}

} // namespace

LoaderSim::LoaderSim(LoaderSimConfig config) : config_(std::move(config))
{
    LOTUS_ASSERT(config_.batch_size > 0 && config_.num_workers > 0 &&
                 config_.prefetch_factor > 0 && config_.num_batches > 0 &&
                 config_.cores > 0 && config_.num_gpus > 0 &&
                 config_.gpu_max_outstanding > 0);
    LOTUS_ASSERT(!config_.model.per_sample_ops.empty(),
                 "service model has no ops");
}

LoaderSimResult
LoaderSim::run()
{
    Sim sim(config_);
    for (int w = 0; w < config_.num_workers; ++w)
        workerProc(sim, w);
    gpuProc(sim);
    mainProc(sim);
    sim.engine.run();

    LoaderSimResult result;
    result.e2e_time = sim.finish_time;
    result.total_cpu_seconds = sim.worker_cpu_ns / 1e9;
    result.avg_occupancy =
        result.e2e_time > 0
            ? sim.cores.busyIntegral() /
                  (static_cast<double>(config_.cores) *
                   static_cast<double>(result.e2e_time))
            : 0.0;
    std::sort(sim.records.begin(), sim.records.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  return a.start < b.start;
              });
    result.records = std::move(sim.records);
    return result;
}

} // namespace lotus::sim
