#include "pipeline/collate.h"

#include <algorithm>
#include <cstring>

#include "hwcount/registry.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"

namespace lotus::pipeline {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace {

/** True when @p reuse can hold a batch of @p dtype / @p shape. */
bool
reuseMatches(const tensor::Tensor &reuse, tensor::DType dtype,
             const std::vector<std::int64_t> &shape)
{
    return !reuse.empty() && reuse.dtype() == dtype &&
           reuse.shape() == shape;
}

} // namespace

Batch
Collate::collateInto(std::vector<Sample> samples, tensor::Tensor) const
{
    return collate(std::move(samples));
}

Batch
StackCollate::collate(std::vector<Sample> samples) const
{
    return collateInto(std::move(samples), tensor::Tensor());
}

Batch
StackCollate::collateInto(std::vector<Sample> samples,
                          tensor::Tensor reuse) const
{
    LOTUS_ASSERT(!samples.empty(), "cannot collate an empty batch");
    Batch batch;
    std::vector<const tensor::Tensor *> tensors;
    tensors.reserve(samples.size());
    for (const auto &sample : samples) {
        LOTUS_ASSERT(!sample.hasImage(),
                     "collate needs tensor samples (missing ToTensor?)");
        tensors.push_back(&sample.data);
    }
    const auto &first = samples.front().data;
    std::vector<std::int64_t> batch_shape;
    batch_shape.push_back(static_cast<std::int64_t>(samples.size()));
    batch_shape.insert(batch_shape.end(), first.shape().begin(),
                       first.shape().end());
    if (reuseMatches(reuse, first.dtype(), batch_shape)) {
        tensor::stackInto(tensors, reuse);
        batch.data = std::move(reuse);
    } else {
        batch.data = tensor::stack(tensors);
    }
    batch.labels.reserve(samples.size());
    for (const auto &sample : samples)
        batch.labels.push_back(sample.label);
    return batch;
}

PadCollate::PadCollate(std::int64_t size_divisor)
    : size_divisor_(size_divisor)
{
    LOTUS_ASSERT(size_divisor >= 0);
}

Batch
PadCollate::collate(std::vector<Sample> samples) const
{
    return collateInto(std::move(samples), tensor::Tensor());
}

Batch
PadCollate::collateInto(std::vector<Sample> samples,
                        tensor::Tensor reuse) const
{
    LOTUS_ASSERT(!samples.empty(), "cannot collate an empty batch");
    const std::size_t rank = samples.front().data.rank();
    const tensor::DType dtype = samples.front().data.dtype();
    std::vector<std::int64_t> max_shape(rank, 0);
    for (const auto &sample : samples) {
        LOTUS_ASSERT(!sample.hasImage(),
                     "collate needs tensor samples (missing ToTensor?)");
        LOTUS_ASSERT(sample.data.rank() == rank,
                     "pad collate requires uniform rank");
        LOTUS_ASSERT(sample.data.dtype() == dtype,
                     "pad collate requires uniform dtype");
        for (std::size_t i = 0; i < rank; ++i) {
            max_shape[i] = std::max(max_shape[i],
                                    sample.data.dim(static_cast<int>(i)));
        }
    }
    if (size_divisor_ > 1) {
        // Pad spatial axes (all but the leading channel axis) up to a
        // multiple of the divisor, as detection frameworks do.
        for (std::size_t i = 1; i < rank; ++i) {
            const std::int64_t rem = max_shape[i] % size_divisor_;
            if (rem != 0)
                max_shape[i] += size_divisor_ - rem;
        }
    }
    bool any_padding = false;
    for (const auto &sample : samples)
        any_padding = any_padding || sample.data.shape() != max_shape;

    // Write every sample straight into its batch slot rather than
    // materializing per-sample padded copies and stacking them.
    std::vector<std::int64_t> batch_shape;
    batch_shape.push_back(static_cast<std::int64_t>(samples.size()));
    batch_shape.insert(batch_shape.end(), max_shape.begin(),
                       max_shape.end());
    Batch batch;
    if (reuseMatches(reuse, dtype, batch_shape))
        batch.data = std::move(reuse);
    else
        batch.data = tensor::Tensor::uninitialized(dtype, batch_shape);

    const std::size_t esize = tensor::dtypeSize(dtype);
    std::size_t item_bytes = esize;
    for (const auto extent : max_shape)
        item_bytes *= static_cast<std::size_t>(extent);

    if (any_padding) {
        // Zero the batch first so the gaps around each sample (and
        // any stale recycled contents) read as padding.
        KernelScope scope(KernelId::MemsetBulk);
        std::memset(batch.data.raw(), 0, batch.data.byteSize());
        scope.stats().bytes_written += batch.data.byteSize();
        scope.stats().items += 1;
    }

    KernelScope scope(KernelId::CollateCopy);
    std::vector<std::int64_t> out_strides(rank, 1);
    for (int i = static_cast<int>(rank) - 2; i >= 0; --i)
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i) + 1] *
            max_shape[static_cast<std::size_t>(i) + 1];
    const auto &kernel = simd::kernels();
    std::uint64_t copied = 0;
    for (std::size_t n = 0; n < samples.size(); ++n) {
        const auto &sample = samples[n].data;
        std::uint8_t *slot = batch.data.raw() + n * item_bytes;
        if (sample.shape() == max_shape) {
            kernel.copy_bytes(sample.raw(), slot, sample.byteSize());
            copied += sample.byteSize();
            continue;
        }
        // Copy the sample into the origin corner row by row.
        std::vector<std::int64_t> idx(rank, 0);
        std::int64_t outer = 1;
        for (std::size_t i = 0; i + 1 < rank; ++i)
            outer *= sample.dim(static_cast<int>(i));
        const std::int64_t inner = sample.dim(static_cast<int>(rank) - 1);
        const std::uint8_t *src = sample.raw();
        for (std::int64_t o = 0; o < outer; ++o) {
            std::int64_t dst_index = 0;
            for (std::size_t i = 0; i + 1 < rank; ++i)
                dst_index += idx[i] * out_strides[i];
            kernel.copy_bytes(
                src + static_cast<std::size_t>(o * inner) * esize,
                slot + static_cast<std::size_t>(dst_index) * esize,
                static_cast<std::size_t>(inner) * esize);
            for (int i = static_cast<int>(rank) - 2; i >= 0; --i) {
                if (++idx[static_cast<std::size_t>(i)] < sample.dim(i))
                    break;
                idx[static_cast<std::size_t>(i)] = 0;
            }
        }
        copied += sample.byteSize();
    }
    scope.stats().bytes_read += copied;
    scope.stats().bytes_written += copied;
    scope.stats().items += samples.size();

    batch.labels.reserve(samples.size());
    for (const auto &sample : samples)
        batch.labels.push_back(sample.label);
    return batch;
}

} // namespace lotus::pipeline
