#include "pipeline/collate.h"

#include <algorithm>

#include "tensor/ops.h"

namespace lotus::pipeline {

Batch
StackCollate::collate(std::vector<Sample> samples) const
{
    LOTUS_ASSERT(!samples.empty(), "cannot collate an empty batch");
    Batch batch;
    std::vector<const tensor::Tensor *> tensors;
    tensors.reserve(samples.size());
    for (const auto &sample : samples) {
        LOTUS_ASSERT(!sample.hasImage(),
                     "collate needs tensor samples (missing ToTensor?)");
        tensors.push_back(&sample.data);
    }
    batch.data = tensor::stack(tensors);
    batch.labels.reserve(samples.size());
    for (const auto &sample : samples)
        batch.labels.push_back(sample.label);
    return batch;
}

PadCollate::PadCollate(std::int64_t size_divisor)
    : size_divisor_(size_divisor)
{
    LOTUS_ASSERT(size_divisor >= 0);
}

Batch
PadCollate::collate(std::vector<Sample> samples) const
{
    LOTUS_ASSERT(!samples.empty(), "cannot collate an empty batch");
    const std::size_t rank = samples.front().data.rank();
    std::vector<std::int64_t> max_shape(rank, 0);
    for (const auto &sample : samples) {
        LOTUS_ASSERT(!sample.hasImage(),
                     "collate needs tensor samples (missing ToTensor?)");
        LOTUS_ASSERT(sample.data.rank() == rank,
                     "pad collate requires uniform rank");
        LOTUS_ASSERT(sample.data.dtype() == samples.front().data.dtype(),
                     "pad collate requires uniform dtype");
        for (std::size_t i = 0; i < rank; ++i) {
            max_shape[i] = std::max(max_shape[i],
                                    sample.data.dim(static_cast<int>(i)));
        }
    }
    if (size_divisor_ > 1) {
        // Pad spatial axes (all but the leading channel axis) up to a
        // multiple of the divisor, as detection frameworks do.
        for (std::size_t i = 1; i < rank; ++i) {
            const std::int64_t rem = max_shape[i] % size_divisor_;
            if (rem != 0)
                max_shape[i] += size_divisor_ - rem;
        }
    }

    // Pad each sample with zeros to the common shape, then stack.
    std::vector<tensor::Tensor> padded;
    padded.reserve(samples.size());
    for (const auto &sample : samples) {
        if (sample.data.shape() == max_shape) {
            padded.push_back(sample.data.clone());
            continue;
        }
        tensor::Tensor grown(sample.data.dtype(), max_shape);
        // Copy the sample into the origin corner row by row.
        const std::size_t esize = tensor::dtypeSize(sample.data.dtype());
        std::vector<std::int64_t> out_strides(rank, 1);
        for (int i = static_cast<int>(rank) - 2; i >= 0; --i)
            out_strides[static_cast<std::size_t>(i)] =
                out_strides[static_cast<std::size_t>(i) + 1] *
                max_shape[static_cast<std::size_t>(i) + 1];
        std::vector<std::int64_t> idx(rank, 0);
        std::int64_t outer = 1;
        for (std::size_t i = 0; i + 1 < rank; ++i)
            outer *= sample.data.dim(static_cast<int>(i));
        const std::int64_t inner = sample.data.dim(static_cast<int>(rank) - 1);
        const std::uint8_t *src = sample.data.raw();
        std::uint8_t *dst = grown.raw();
        for (std::int64_t o = 0; o < outer; ++o) {
            std::int64_t dst_index = 0;
            for (std::size_t i = 0; i + 1 < rank; ++i)
                dst_index += idx[i] * out_strides[i];
            std::copy_n(
                src + static_cast<std::size_t>(o * inner) * esize,
                static_cast<std::size_t>(inner) * esize,
                dst + static_cast<std::size_t>(dst_index) * esize);
            for (int i = static_cast<int>(rank) - 2; i >= 0; --i) {
                if (++idx[static_cast<std::size_t>(i)] <
                    sample.data.dim(i))
                    break;
                idx[static_cast<std::size_t>(i)] = 0;
            }
        }
        padded.push_back(std::move(grown));
    }

    Batch batch;
    batch.data = tensor::stack(padded);
    batch.labels.reserve(samples.size());
    for (const auto &sample : samples)
        batch.labels.push_back(sample.label);
    return batch;
}

} // namespace lotus::pipeline
