/**
 * @file
 * The Transform interface: one declaratively specified preprocessing
 * operation (a torchvision transform analogue).
 */

#ifndef LOTUS_PIPELINE_TRANSFORM_H
#define LOTUS_PIPELINE_TRANSFORM_H

#include <memory>
#include <string>

#include "common/rng.h"
#include "pipeline/sample.h"

namespace lotus::pipeline {

class Transform
{
  public:
    virtual ~Transform() = default;

    /** Class-style name shown in traces (e.g. "RandomResizedCrop"). */
    virtual const std::string &name() const = 0;

    /** Apply in place. Randomized transforms draw from @p rng. */
    virtual void apply(Sample &sample, Rng &rng) const = 0;
};

using TransformPtr = std::unique_ptr<Transform>;

/** Helper base that stores the name. */
class NamedTransform : public Transform
{
  public:
    explicit NamedTransform(std::string name) : name_(std::move(name)) {}
    const std::string &name() const override { return name_; }

  private:
    std::string name_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_TRANSFORM_H
