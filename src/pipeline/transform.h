/**
 * @file
 * The Transform interface: one declaratively specified preprocessing
 * operation (a torchvision transform analogue).
 */

#ifndef LOTUS_PIPELINE_TRANSFORM_H
#define LOTUS_PIPELINE_TRANSFORM_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "common/rng.h"
#include "pipeline/sample.h"

namespace lotus::pipeline {

/**
 * FNV-1a accumulator for Transform::configHash() implementations:
 * mix every construction-time parameter that changes the output, so
 * two transforms hash equal exactly when they compute the same
 * function. Doubles are mixed by bit pattern (the configs are exact
 * constants, never derived floats).
 */
class ConfigHash
{
  public:
    ConfigHash &
    mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state_ ^= (value >> (8 * i)) & 0xFF;
            state_ *= 0x100000001B3ull;
        }
        return *this;
    }

    ConfigHash &
    mix(double value)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        return mix(bits);
    }

    ConfigHash &
    mix(const std::string &value)
    {
        for (const char c : value) {
            state_ ^= static_cast<std::uint8_t>(c);
            state_ *= 0x100000001B3ull;
        }
        return mix(static_cast<std::uint64_t>(value.size()));
    }

    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xCBF29CE484222325ull; // FNV offset basis
};

class Transform
{
  public:
    virtual ~Transform() = default;

    /** Class-style name shown in traces (e.g. "RandomResizedCrop"). */
    virtual const std::string &name() const = 0;

    /** Apply in place. Randomized transforms draw from @p rng. */
    virtual void apply(Sample &sample, Rng &rng) const = 0;

    /**
     * True when apply() never draws from rng and its output is a pure
     * function of the input sample and construction-time config. The
     * leading run of deterministic transforms is the cacheable
     * pipeline prefix (lotus::cache): its output can be snapshotted
     * and replayed on later epochs without changing any downstream
     * random draw. Defaults to false — an unmarked transform is never
     * cached, only ever recomputed, so forgetting the override costs
     * performance, never correctness.
     */
    virtual bool deterministic() const { return false; }

    /**
     * Hash of the construction-time configuration, mixed into the
     * cache key's prefix fingerprint so a config change (e.g. a new
     * resize target) invalidates stale cached/materialized samples.
     * Only consulted for deterministic() transforms.
     */
    virtual std::uint64_t configHash() const { return 0; }
};

using TransformPtr = std::unique_ptr<Transform>;

/** Helper base that stores the name. */
class NamedTransform : public Transform
{
  public:
    explicit NamedTransform(std::string name) : name_(std::move(name)) {}
    const std::string &name() const override { return name_; }

  private:
    std::string name_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_TRANSFORM_H
