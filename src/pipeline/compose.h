/**
 * @file
 * Compose: a declaratively chained sequence of transforms, with the
 * paper's [T3] instrumentation (Listing 3) built in.
 *
 * When a TraceLogger is supplied, every transform application on
 * every sample is logged with two timestamps — name, start, duration —
 * and also wrapped in a ground-truth OpTagScope so LotusMap's
 * reconstruction can be scored against reality in tests.
 */

#ifndef LOTUS_PIPELINE_COMPOSE_H
#define LOTUS_PIPELINE_COMPOSE_H

#include <vector>

#include "hwcount/registry.h"
#include "metrics/metrics.h"
#include "pipeline/transform.h"

namespace lotus::pipeline {

class Compose
{
  public:
    Compose() = default;
    explicit Compose(std::vector<TransformPtr> transforms);

    /** Append a transform. */
    void add(TransformPtr transform);

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const Transform &
    transform(std::size_t i) const
    {
        return *entries_.at(i).transform;
    }

    /** Names of all transforms, in order. */
    std::vector<std::string> names() const;

    /**
     * Number of leading transforms that are deterministic(): the
     * cacheable pipeline prefix. The prefix ends at the first
     * stochastic op — a deterministic transform *after* a random one
     * is not cacheable, because its input already depends on random
     * draws.
     */
    std::size_t deterministicPrefixLength() const { return prefix_len_; }

    /**
     * Order-sensitive fingerprint of the deterministic prefix: a hash
     * chain over each prefix transform's (name, configHash). Part of
     * the lotus::cache key, so appending/removing/reconfiguring a
     * prefix op invalidates cached and materialized samples. Stable
     * across processes for the same transform configs.
     */
    std::uint64_t prefixFingerprint() const;

    /**
     * Apply every transform in order to @p sample.
     * [T3] per-op records go to ctx.logger when present.
     */
    void operator()(Sample &sample, PipelineContext &ctx) const;

    /** Apply only the deterministic prefix (ops [0, prefixLen)). */
    void applyPrefix(Sample &sample, PipelineContext &ctx) const;

    /** Apply only the random suffix (ops [prefixLen, size)). Never
     *  touches rng state for the prefix — deterministic ops draw
     *  nothing — so prefix-from-cache + suffix replays the exact
     *  stream a full application would. */
    void applySuffix(Sample &sample, PipelineContext &ctx) const;

  private:
    void applyRange(Sample &sample, PipelineContext &ctx,
                    std::size_t begin, std::size_t end) const;
    struct Entry
    {
        TransformPtr transform;
        hwcount::OpTag op_tag;
        /** `lotus_pipeline_op_ns{op="..."}` [T3] latency histogram. */
        metrics::Histogram *op_ns = nullptr;
    };

    std::vector<Entry> entries_;
    /** Leading deterministic run; maintained by add(). */
    std::size_t prefix_len_ = 0;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_COMPOSE_H
