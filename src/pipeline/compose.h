/**
 * @file
 * Compose: a declaratively chained sequence of transforms, with the
 * paper's [T3] instrumentation (Listing 3) built in.
 *
 * When a TraceLogger is supplied, every transform application on
 * every sample is logged with two timestamps — name, start, duration —
 * and also wrapped in a ground-truth OpTagScope so LotusMap's
 * reconstruction can be scored against reality in tests.
 */

#ifndef LOTUS_PIPELINE_COMPOSE_H
#define LOTUS_PIPELINE_COMPOSE_H

#include <vector>

#include "hwcount/registry.h"
#include "metrics/metrics.h"
#include "pipeline/transform.h"

namespace lotus::pipeline {

class Compose
{
  public:
    Compose() = default;
    explicit Compose(std::vector<TransformPtr> transforms);

    /** Append a transform. */
    void add(TransformPtr transform);

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const Transform &
    transform(std::size_t i) const
    {
        return *entries_.at(i).transform;
    }

    /** Names of all transforms, in order. */
    std::vector<std::string> names() const;

    /**
     * Apply every transform in order to @p sample.
     * [T3] per-op records go to ctx.logger when present.
     */
    void operator()(Sample &sample, PipelineContext &ctx) const;

  private:
    struct Entry
    {
        TransformPtr transform;
        hwcount::OpTag op_tag;
        /** `lotus_pipeline_op_ns{op="..."}` [T3] latency histogram. */
        metrics::Histogram *op_ns = nullptr;
    };

    std::vector<Entry> entries_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_COMPOSE_H
