/**
 * @file
 * Map-style dataset interface (torch.utils.data.Dataset analogue).
 */

#ifndef LOTUS_PIPELINE_DATASET_H
#define LOTUS_PIPELINE_DATASET_H

#include "common/result.h"
#include "pipeline/sample.h"

namespace lotus::pipeline {

class Dataset
{
  public:
    virtual ~Dataset() = default;

    /** Number of samples. */
    virtual std::int64_t size() const = 0;

    /**
     * Produce sample @p index, fully preprocessed. Must be safe to
     * call concurrently from multiple workers; per-worker randomness
     * comes from @p ctx. Fatal on bad input data; datasets over
     * untrusted sources must override tryGet.
     */
    virtual Sample get(std::int64_t index, PipelineContext &ctx) const = 0;

    /**
     * Like get(), but bad input data (unreadable blob, corrupt
     * encoding) comes back as an Error whose `stage` names the
     * pipeline position that failed ("store", "decode", ...). The
     * loader's ErrorPolicy decides what happens next. The default
     * forwards to get() for datasets whose samples cannot fail
     * recoverably (synthetic/generated data).
     */
    virtual Result<Sample>
    tryGet(std::int64_t index, PipelineContext &ctx) const
    {
        return get(index, ctx);
    }
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_DATASET_H
