/**
 * @file
 * Map-style dataset interface (torch.utils.data.Dataset analogue).
 */

#ifndef LOTUS_PIPELINE_DATASET_H
#define LOTUS_PIPELINE_DATASET_H

#include <cstdint>
#include <optional>

#include "common/logging.h"
#include "common/result.h"
#include "pipeline/sample.h"
#include "pipeline/store.h"

namespace lotus::pipeline {

/**
 * Allocate a process-unique dataset id. Each cacheable dataset claims
 * one at construction so two dataset instances never collide in a
 * shared lotus::cache. Ids are per-process only; cross-run reuse of
 * materialized samples pairs the id with the prefix fingerprint.
 */
std::uint64_t allocateDatasetId();

/**
 * How a dataset participates in decoded-sample caching. A dataset
 * that returns this from cacheableSplit() promises:
 *
 *  - tryGetPrefix() produces the sample after source read + decode +
 *    the deterministic transform prefix only, drawing nothing from
 *    ctx rng;
 *  - applySuffix() applied to that intermediate is bit-identical to a
 *    full tryGet() under the same rng state;
 *  - prefix_fingerprint changes whenever the prefix computation
 *    changes (transform reconfiguration, reordering, ...).
 */
struct CacheableSplit
{
    /** From allocateDatasetId(); distinguishes dataset instances. */
    std::uint64_t dataset_id = 0;
    /** Hash of decode + deterministic-prefix configuration. */
    std::uint64_t prefix_fingerprint = 0;
};

class Dataset
{
  public:
    virtual ~Dataset() = default;

    /** Number of samples. */
    virtual std::int64_t size() const = 0;

    /**
     * Produce sample @p index, fully preprocessed. Must be safe to
     * call concurrently from multiple workers; per-worker randomness
     * comes from @p ctx. Fatal on bad input data; datasets over
     * untrusted sources must override tryGet.
     */
    virtual Sample get(std::int64_t index, PipelineContext &ctx) const = 0;

    /**
     * Like get(), but bad input data (unreadable blob, corrupt
     * encoding) comes back as an Error whose `stage` names the
     * pipeline position that failed ("store", "decode", ...). The
     * loader's ErrorPolicy decides what happens next. The default
     * forwards to get() for datasets whose samples cannot fail
     * recoverably (synthetic/generated data).
     */
    virtual Result<Sample>
    tryGet(std::int64_t index, PipelineContext &ctx) const
    {
        return get(index, ctx);
    }

    /**
     * The blob store this dataset's samples are read from, or null
     * for datasets without one (synthetic/generated data). Returning
     * a store opts in to the loader's read-ahead stage
     * (dataflow::ReadAhead): the loader prefetches upcoming blobs
     * through this exact store object from dedicated I/O threads, and
     * the dataset promises to consume staged bytes via
     * readBlobOrStaged() so a prefetched blob is never re-read.
     */
    virtual const BlobStore *blobStore() const { return nullptr; }

    /**
     * Opt-in to decoded-sample caching. Datasets that can split their
     * work into a deterministic prefix and a random suffix return a
     * CacheableSplit and override tryGetPrefix()/applySuffix();
     * everything else (synthetic data, stream-style sources) keeps
     * the nullopt default and is never cached.
     */
    virtual std::optional<CacheableSplit> cacheableSplit() const
    {
        return std::nullopt;
    }

    /**
     * Produce sample @p index up to the end of the deterministic
     * prefix (source read + decode + deterministic transforms). Must
     * not draw from ctx rng. Only called when cacheableSplit() is
     * engaged.
     */
    virtual Result<Sample>
    tryGetPrefix(std::int64_t index, PipelineContext &ctx) const
    {
        (void)index;
        (void)ctx;
        LOTUS_PANIC("tryGetPrefix on a dataset without cacheableSplit()");
    }

    /** Apply the random transform suffix to a prefix-stage sample. */
    virtual void
    applySuffix(Sample &sample, PipelineContext &ctx) const
    {
        (void)sample;
        (void)ctx;
        LOTUS_PANIC("applySuffix on a dataset without cacheableSplit()");
    }
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_DATASET_H
