/**
 * @file
 * Map-style dataset interface (torch.utils.data.Dataset analogue).
 */

#ifndef LOTUS_PIPELINE_DATASET_H
#define LOTUS_PIPELINE_DATASET_H

#include "pipeline/sample.h"

namespace lotus::pipeline {

class Dataset
{
  public:
    virtual ~Dataset() = default;

    /** Number of samples. */
    virtual std::int64_t size() const = 0;

    /**
     * Produce sample @p index, fully preprocessed. Must be safe to
     * call concurrently from multiple workers; per-worker randomness
     * comes from @p ctx.
     */
    virtual Sample get(std::int64_t index, PipelineContext &ctx) const = 0;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_DATASET_H
