/**
 * @file
 * Iterable (stream-style) datasets — the IterableDataset side of
 * PyTorch's two dataset flavors. Each worker gets its own shard
 * iterator (the worker_info pattern); the paper's [T1]
 * instrumentation targets the fetch() method shared by both fetcher
 * kinds, which is why our loaders instrument the same way.
 */

#ifndef LOTUS_PIPELINE_ITERABLE_DATASET_H
#define LOTUS_PIPELINE_ITERABLE_DATASET_H

#include <memory>
#include <optional>

#include "pipeline/dataset.h"

namespace lotus::pipeline {

/** A stream of samples owned by one worker. */
class SampleStream
{
  public:
    virtual ~SampleStream() = default;

    /** Next sample, or nullopt when the shard is exhausted. Fatal on
     *  bad sample data; streams over untrusted sources override
     *  tryNext. */
    virtual std::optional<Sample> next(PipelineContext &ctx) = 0;

    /**
     * Like next(), but bad sample data comes back as an Error. The
     * bad sample is consumed either way — a stream cannot re-fetch,
     * so the caller's retry option degrades to skip semantics. The
     * default forwards to next() for streams that cannot fail
     * recoverably.
     */
    virtual Result<std::optional<Sample>> tryNext(PipelineContext &ctx)
    {
        return next(ctx);
    }
};

class IterableDataset
{
  public:
    virtual ~IterableDataset() = default;

    /**
     * Open this worker's shard: worker @p worker_id of
     * @p num_workers. Streams must partition the data (no sample
     * duplicated across workers).
     */
    virtual std::unique_ptr<SampleStream>
    shard(int worker_id, int num_workers) const = 0;
};

/**
 * Adapter: expose a map-style Dataset as an IterableDataset with
 * strided sharding (worker w yields indices w, w+W, w+2W, ...).
 */
class ShardedIterable : public IterableDataset
{
  public:
    explicit ShardedIterable(std::shared_ptr<const Dataset> dataset);

    std::unique_ptr<SampleStream> shard(int worker_id,
                                        int num_workers) const override;

  private:
    std::shared_ptr<const Dataset> dataset_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_ITERABLE_DATASET_H
