#include "pipeline/compose.h"

namespace lotus::pipeline {

Compose::Compose(std::vector<TransformPtr> transforms)
{
    for (auto &transform : transforms)
        add(std::move(transform));
}

void
Compose::add(TransformPtr transform)
{
    LOTUS_ASSERT(transform != nullptr, "null transform");
    Entry entry;
    entry.op_tag =
        hwcount::KernelRegistry::instance().registerOp(transform->name());
    entry.op_ns = metrics::MetricsRegistry::instance().histogram(
        metrics::labeled("lotus_pipeline_op_ns", "op", transform->name()));
    entry.transform = std::move(transform);
    // The cacheable prefix grows only while every transform so far is
    // deterministic; the first stochastic op ends it permanently.
    if (prefix_len_ == entries_.size() &&
        entry.transform->deterministic())
        ++prefix_len_;
    entries_.push_back(std::move(entry));
}

std::uint64_t
Compose::prefixFingerprint() const
{
    ConfigHash hash;
    hash.mix(static_cast<std::uint64_t>(prefix_len_));
    for (std::size_t i = 0; i < prefix_len_; ++i) {
        hash.mix(entries_[i].transform->name());
        hash.mix(entries_[i].transform->configHash());
    }
    return hash.value();
}

std::vector<std::string>
Compose::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.transform->name());
    return out;
}

void
Compose::operator()(Sample &sample, PipelineContext &ctx) const
{
    applyRange(sample, ctx, 0, entries_.size());
}

void
Compose::applyPrefix(Sample &sample, PipelineContext &ctx) const
{
    applyRange(sample, ctx, 0, prefix_len_);
}

void
Compose::applySuffix(Sample &sample, PipelineContext &ctx) const
{
    applyRange(sample, ctx, prefix_len_, entries_.size());
}

void
Compose::applyRange(Sample &sample, PipelineContext &ctx,
                    std::size_t begin, std::size_t end) const
{
    for (std::size_t i = begin; i < end; ++i) {
        const auto &entry = entries_[i];
        trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
        span.record().op_name = entry.transform->name();
        span.record().batch_id = ctx.batch_id;
        span.record().pid = ctx.pid;
        span.record().sample_index = ctx.sample_index;
        {
            metrics::ScopedTimer op_timer(entry.op_ns);
            hwcount::OpTagScope op_scope(entry.op_tag);
            entry.transform->apply(sample, ctx.rngRef());
        }
        span.finish();
    }
}

} // namespace lotus::pipeline
