#include "pipeline/compose.h"

namespace lotus::pipeline {

Compose::Compose(std::vector<TransformPtr> transforms)
{
    for (auto &transform : transforms)
        add(std::move(transform));
}

void
Compose::add(TransformPtr transform)
{
    LOTUS_ASSERT(transform != nullptr, "null transform");
    Entry entry;
    entry.op_tag =
        hwcount::KernelRegistry::instance().registerOp(transform->name());
    entry.op_ns = metrics::MetricsRegistry::instance().histogram(
        metrics::labeled("lotus_pipeline_op_ns", "op", transform->name()));
    entry.transform = std::move(transform);
    entries_.push_back(std::move(entry));
}

std::vector<std::string>
Compose::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.transform->name());
    return out;
}

void
Compose::operator()(Sample &sample, PipelineContext &ctx) const
{
    for (const auto &entry : entries_) {
        trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
        span.record().op_name = entry.transform->name();
        span.record().batch_id = ctx.batch_id;
        span.record().pid = ctx.pid;
        span.record().sample_index = ctx.sample_index;
        {
            metrics::ScopedTimer op_timer(entry.op_ns);
            hwcount::OpTagScope op_scope(entry.op_tag);
            entry.transform->apply(sample, ctx.rngRef());
        }
        span.finish();
    }
}

} // namespace lotus::pipeline
