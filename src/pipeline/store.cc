#include "pipeline/store.h"

#include <optional>
#include <utility>

#include "common/files.h"
#include "common/logging.h"
#include "hwcount/registry.h"
#include "pipeline/sample.h"

namespace lotus::pipeline {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace {

thread_local PipelineContext *io_context = nullptr;

/** The blob a read-ahead stage left for this thread's current sample
 *  fetch (nullopt = nothing staged). */
thread_local std::optional<std::pair<std::int64_t, Result<std::string>>>
    staged_blob;

} // namespace

IoTraceScope::IoTraceScope(PipelineContext *ctx) : previous_(io_context)
{
    io_context = ctx;
}

IoTraceScope::~IoTraceScope()
{
    io_context = previous_;
}

PipelineContext *
currentIoContext()
{
    return io_context;
}

ScopedStagedBlob::ScopedStagedBlob(std::int64_t index,
                                   Result<std::string> blob)
{
    LOTUS_ASSERT(!staged_blob.has_value(),
                 "staged blobs do not nest (sample fetch already has one)");
    staged_blob.emplace(index, std::move(blob));
}

ScopedStagedBlob::~ScopedStagedBlob()
{
    // Unconsumed is legal: the decoded-sample cache may satisfy the
    // sample without a store read, or an error path may unwind first.
    staged_blob.reset();
}

Result<std::string>
readBlobOrStaged(const BlobStore &store, std::int64_t index)
{
    if (staged_blob.has_value() && staged_blob->first == index) {
        Result<std::string> blob = std::move(staged_blob->second);
        staged_blob.reset();
        return blob;
    }
    return store.tryRead(index);
}

std::uint64_t
BlobStore::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::int64_t i = 0; i < size(); ++i)
        total += blobSize(i);
    return total;
}

std::vector<Result<std::string>>
BlobStore::tryReadMany(const std::vector<BlobReadRequest> &requests) const
{
    std::vector<Result<std::string>> blobs;
    blobs.reserve(requests.size());
    PipelineContext *ambient = currentIoContext();
    for (const BlobReadRequest &request : requests) {
        if (ambient != nullptr) {
            // Re-scope the ambient context per request so tracing
            // stores below stamp each read with the sample it serves
            // (not whatever the issuing thread was last doing).
            PipelineContext ctx = *ambient;
            ctx.batch_id = request.batch_id;
            ctx.sample_index = request.sample_index;
            IoTraceScope scope(&ctx);
            blobs.push_back(tryRead(request.index));
        } else {
            blobs.push_back(tryRead(request.index));
        }
    }
    return blobs;
}

InMemoryStore::InMemoryStore(TimeNs io_base_ns, double io_ns_per_byte)
    : io_base_ns_(io_base_ns), io_ns_per_byte_(io_ns_per_byte)
{
    LOTUS_ASSERT(io_base_ns >= 0 && io_ns_per_byte >= 0.0);
}

std::int64_t
InMemoryStore::add(std::string blob)
{
    blobs_.push_back(std::move(blob));
    return static_cast<std::int64_t>(blobs_.size()) - 1;
}

std::int64_t
InMemoryStore::size() const
{
    return static_cast<std::int64_t>(blobs_.size());
}

std::string
InMemoryStore::read(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size(), "blob index %lld out of range",
                 static_cast<long long>(index));
    KernelScope scope(KernelId::FileRead);
    const std::string &blob = blobs_[static_cast<std::size_t>(index)];
    if (io_base_ns_ > 0 || io_ns_per_byte_ > 0.0) {
        const auto &clock = SteadyClock::instance();
        const TimeNs deadline =
            clock.now() + io_base_ns_ +
            static_cast<TimeNs>(io_ns_per_byte_ *
                                static_cast<double>(blob.size()));
        // Busy wait: modelled device latency should appear as blocked
        // loader time, and sleeping would deschedule the worker in a
        // way a synchronous read() would not.
        while (clock.now() < deadline) {
        }
    }
    std::string copy = blob;
    scope.stats().bytes_read += copy.size();
    scope.stats().bytes_written += copy.size();
    scope.stats().items += 1;
    return copy;
}

std::uint64_t
InMemoryStore::blobSize(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size());
    return blobs_[static_cast<std::size_t>(index)].size();
}

DiskStore::DiskStore(std::vector<std::string> paths)
    : paths_(std::move(paths))
{
}

std::int64_t
DiskStore::size() const
{
    return static_cast<std::int64_t>(paths_.size());
}

std::string
DiskStore::read(std::int64_t index) const
{
    Result<std::string> bytes = tryRead(index);
    if (!bytes.ok())
        LOTUS_FATAL("%s", bytes.error().describe().c_str());
    return bytes.take();
}

Result<std::string>
DiskStore::tryRead(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size(), "blob index %lld out of range",
                 static_cast<long long>(index));
    KernelScope scope(KernelId::FileRead);
    Result<std::string> bytes =
        tryReadFile(paths_[static_cast<std::size_t>(index)]);
    if (!bytes.ok())
        return bytes.takeError();
    scope.stats().bytes_read += bytes.value().size();
    scope.stats().bytes_written += bytes.value().size();
    scope.stats().items += 1;
    return bytes.take();
}

std::uint64_t
DiskStore::blobSize(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size());
    return fileSize(paths_[static_cast<std::size_t>(index)]);
}

} // namespace lotus::pipeline
