/**
 * @file
 * Sample blob storage backing datasets.
 *
 * InMemoryStore keeps encoded blobs resident (used by benches so
 * timing reflects compute, not the sandbox's filesystem), with an
 * optional modelled I/O latency per byte to stand in for the paper's
 * iSCSI-mounted remote dataset. DiskStore round-trips real files.
 * Reads are annotated as the file_read kernel either way.
 */

#ifndef LOTUS_PIPELINE_STORE_H
#define LOTUS_PIPELINE_STORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace lotus::pipeline {

class BlobStore
{
  public:
    virtual ~BlobStore() = default;

    /** Number of stored blobs. */
    virtual std::int64_t size() const = 0;

    /** Fetch blob @p index (0-based). Fatal on I/O failure; stores
     *  whose reads can fail recoverably must override tryRead. */
    virtual std::string read(std::int64_t index) const = 0;

    /**
     * Fetch blob @p index, reporting I/O failures as errors instead
     * of aborting. Index-out-of-range stays an assert in every store:
     * indices come from the sampler, so a bad one is a Lotus bug, not
     * bad data. The default forwards to read() for stores that cannot
     * fail recoverably (e.g. InMemoryStore).
     */
    virtual Result<std::string> tryRead(std::int64_t index) const
    {
        return read(index);
    }

    /** Size in bytes of blob @p index without reading it. */
    virtual std::uint64_t blobSize(std::int64_t index) const = 0;

    /** Sum of all blob sizes. */
    std::uint64_t totalBytes() const;
};

class InMemoryStore : public BlobStore
{
  public:
    InMemoryStore() = default;

    /**
     * @param io_ns_per_byte modelled storage latency applied on every
     *        read via busy-wait (0 disables).
     * @param io_base_ns per-read fixed latency (seek/request cost).
     */
    InMemoryStore(TimeNs io_base_ns, double io_ns_per_byte);

    /** Append a blob, returning its index. */
    std::int64_t add(std::string blob);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

  private:
    std::vector<std::string> blobs_;
    TimeNs io_base_ns_ = 0;
    double io_ns_per_byte_ = 0.0;
};

class DiskStore : public BlobStore
{
  public:
    /** Serve the given files in order. */
    explicit DiskStore(std::vector<std::string> paths);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    Result<std::string> tryRead(std::int64_t index) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

    const std::vector<std::string> &paths() const { return paths_; }

  private:
    std::vector<std::string> paths_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_STORE_H
