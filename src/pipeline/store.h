/**
 * @file
 * Sample blob storage backing datasets.
 *
 * InMemoryStore keeps encoded blobs resident (used by benches so
 * timing reflects compute, not the sandbox's filesystem), with an
 * optional modelled I/O latency per byte to stand in for the paper's
 * iSCSI-mounted remote dataset. DiskStore round-trips real files.
 * Reads are annotated as the file_read kernel either way.
 *
 * Two cross-cutting mechanisms live here because every store shares
 * them:
 *
 *  - IoTraceScope: the ambient per-thread trace correlation that
 *    TracedStore reads to stamp IoEvents with (batch, sample)
 *    identity. Batched reads carry the correlation *per request* in
 *    BlobReadRequest, so reads issued from dedicated I/O threads
 *    (dataflow::ReadAhead) correlate with the sample they serve, not
 *    with the thread that happened to issue them.
 *
 *  - Staged blobs: the handoff that lets a read-ahead stage deliver
 *    bytes it already fetched. The read-ahead layer stages the blob
 *    on the fetch thread; the dataset's readBlobOrStaged() consumes
 *    it instead of re-reading the store. Bytes are bit-identical to a
 *    synchronous read by construction, and a staged *error* surfaces
 *    exactly as the same error would on the synchronous path.
 */

#ifndef LOTUS_PIPELINE_STORE_H
#define LOTUS_PIPELINE_STORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace lotus::pipeline {

struct PipelineContext;

/**
 * RAII ambient I/O-trace context: while alive, TracedStore reads on
 * this thread emit IoEvent records into @p ctx's logger, stamped with
 * its batch/pid/sample identity. Nests (restores the previous context
 * on destruction); a null ctx is allowed and disables emission.
 */
class IoTraceScope
{
  public:
    explicit IoTraceScope(PipelineContext *ctx);
    ~IoTraceScope();

    IoTraceScope(const IoTraceScope &) = delete;
    IoTraceScope &operator=(const IoTraceScope &) = delete;

  private:
    PipelineContext *previous_;
};

/** The PipelineContext of the innermost live IoTraceScope on this
 *  thread (null outside any fetch). */
PipelineContext *currentIoContext();

/**
 * One read in a batched tryReadMany() call. batch_id/sample_index
 * carry trace correlation for reads issued off the fetch thread:
 * stores that emit IoEvents stamp them from the request, so a blob
 * prefetched by an I/O thread still lands on the sample it serves
 * (-1 = uncorrelated). sample_index is usually == index; they differ
 * only for datasets whose blob indices are not sample indices.
 */
struct BlobReadRequest
{
    std::int64_t index = -1;
    std::int64_t batch_id = -1;
    std::int64_t sample_index = -1;
};

class BlobStore
{
  public:
    virtual ~BlobStore() = default;

    /** Number of stored blobs. */
    virtual std::int64_t size() const = 0;

    /** Fetch blob @p index (0-based). Fatal on I/O failure; stores
     *  whose reads can fail recoverably must override tryRead. */
    virtual std::string read(std::int64_t index) const = 0;

    /**
     * Fetch blob @p index, reporting I/O failures as errors instead
     * of aborting. Index-out-of-range stays an assert in every store:
     * indices come from the sampler, so a bad one is a Lotus bug, not
     * bad data. The default forwards to read() for stores that cannot
     * fail recoverably (e.g. InMemoryStore).
     */
    virtual Result<std::string> tryRead(std::int64_t index) const
    {
        return read(index);
    }

    /**
     * Batched read: fetch every requested blob, returning one Result
     * per request in request order (a failed blob fails only its own
     * slot). The default loops tryRead() with each request's trace
     * correlation installed, so every existing store works unchanged;
     * stores that can serve ranges cheaper than per-index round trips
     * (RemoteStore) override this to coalesce adjacent-index runs,
     * and decorators forward it so the coalescing survives the stack.
     */
    virtual std::vector<Result<std::string>>
    tryReadMany(const std::vector<BlobReadRequest> &requests) const;

    /** Size in bytes of blob @p index without reading it. */
    virtual std::uint64_t blobSize(std::int64_t index) const = 0;

    /** Sum of all blob sizes. */
    std::uint64_t totalBytes() const;
};

/**
 * Hand a prefetched blob (or prefetch error) to the next
 * readBlobOrStaged() call for @p index on this thread. The scope
 * covers one sample fetch: an unconsumed blob is dropped at
 * destruction (e.g. the decoded-sample cache hit and no store read
 * happened). Does not nest — one sample stages at most one blob.
 */
class ScopedStagedBlob
{
  public:
    ScopedStagedBlob(std::int64_t index, Result<std::string> blob);
    ~ScopedStagedBlob();

    ScopedStagedBlob(const ScopedStagedBlob &) = delete;
    ScopedStagedBlob &operator=(const ScopedStagedBlob &) = delete;
};

/**
 * The staged-aware store read every blob-backed dataset funnels
 * through: consume the blob a read-ahead stage left for @p index on
 * this thread, else fall back to a synchronous store.tryRead(). The
 * fallback guarantees progress — read-ahead is purely opportunistic.
 */
Result<std::string> readBlobOrStaged(const BlobStore &store,
                                     std::int64_t index);

class InMemoryStore : public BlobStore
{
  public:
    InMemoryStore() = default;

    /**
     * @param io_ns_per_byte modelled storage latency applied on every
     *        read via busy-wait (0 disables).
     * @param io_base_ns per-read fixed latency (seek/request cost).
     */
    InMemoryStore(TimeNs io_base_ns, double io_ns_per_byte);

    /** Append a blob, returning its index. */
    std::int64_t add(std::string blob);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

  private:
    std::vector<std::string> blobs_;
    TimeNs io_base_ns_ = 0;
    double io_ns_per_byte_ = 0.0;
};

class DiskStore : public BlobStore
{
  public:
    /** Serve the given files in order. */
    explicit DiskStore(std::vector<std::string> paths);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    Result<std::string> tryRead(std::int64_t index) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

    const std::vector<std::string> &paths() const { return paths_; }

  private:
    std::vector<std::string> paths_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_STORE_H
