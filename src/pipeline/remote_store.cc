#include "pipeline/remote_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "pipeline/sample.h"

namespace lotus::pipeline {

namespace {

/**
 * Deschedule for the modelled duration. sleep_for (not busy-wait):
 * a remote GET blocks on a socket, and yielding the core is exactly
 * what makes read-ahead overlap possible on small machines — see the
 * header contrast with InMemoryStore.
 */
void
modelDelay(TimeNs duration)
{
    if (duration > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
}

} // namespace

RemoteStore::RemoteStore(std::shared_ptr<const BlobStore> inner,
                         const RemoteStoreOptions &options)
    : inner_(std::move(inner)), options_(options)
{
    LOTUS_ASSERT(inner_ != nullptr);
    if (options_.rtt < 0)
        LOTUS_FATAL("RemoteStore rtt must be >= 0 (got %lld)",
                    static_cast<long long>(options_.rtt));
    if (options_.max_inflight < 1)
        LOTUS_FATAL("RemoteStore max_inflight must be >= 1 (got %d)",
                    options_.max_inflight);
    if (options_.max_coalesce_gap < 0)
        LOTUS_FATAL("RemoteStore max_coalesce_gap must be >= 0 (got %lld)",
                    static_cast<long long>(options_.max_coalesce_gap));
    if (options_.deadline < 0)
        LOTUS_FATAL("RemoteStore deadline must be >= 0 (got %lld)",
                    static_cast<long long>(options_.deadline));
}

std::int64_t
RemoteStore::size() const
{
    return inner_->size();
}

std::uint64_t
RemoteStore::blobSize(std::int64_t index) const
{
    return inner_->blobSize(index);
}

std::string
RemoteStore::read(std::int64_t index) const
{
    Result<std::string> blob = tryRead(index);
    if (!blob.ok())
        LOTUS_FATAL("remote blob %lld: %s", static_cast<long long>(index),
                    blob.error().describe().c_str());
    return blob.take();
}

Result<std::string>
RemoteStore::tryRead(std::int64_t index) const
{
    BlobReadRequest request;
    request.index = index;
    if (const PipelineContext *ambient = currentIoContext()) {
        request.batch_id = ambient->batch_id;
        request.sample_index = ambient->sample_index;
    }
    std::vector<std::optional<Result<std::string>>> out(1);
    serveRange({RangeSlot{request, 0}}, out);
    return std::move(*out[0]);
}

std::vector<Result<std::string>>
RemoteStore::tryReadMany(const std::vector<BlobReadRequest> &requests) const
{
    std::vector<std::optional<Result<std::string>>> out(requests.size());
    std::vector<RangeSlot> slots;
    slots.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        slots.push_back(RangeSlot{requests[i], i});
    std::stable_sort(slots.begin(), slots.end(),
                     [](const RangeSlot &a, const RangeSlot &b) {
                         return a.request.index < b.request.index;
                     });

    // Split the sorted requests into runs; each run becomes one
    // ranged GET. A run breaks when the next index is beyond the
    // coalescing window or extending the span would blow the byte
    // cap (gap blobs count — they ride the wire too).
    std::vector<RangeSlot> run;
    std::int64_t span_bytes = 0;
    for (const RangeSlot &slot : slots) {
        if (!run.empty()) {
            const std::int64_t prev = run.back().request.index;
            const std::int64_t gap = slot.request.index - prev - 1;
            std::int64_t extension = 0;
            if (slot.request.index > prev)
                for (std::int64_t i = prev + 1; i <= slot.request.index; ++i)
                    extension += static_cast<std::int64_t>(
                        inner_->blobSize(i));
            const bool over_bytes =
                options_.max_coalesced_bytes > 0 &&
                span_bytes + extension > options_.max_coalesced_bytes;
            if (gap > options_.max_coalesce_gap || over_bytes) {
                serveRange(run, out);
                run.clear();
                span_bytes = 0;
            } else {
                run.push_back(slot);
                span_bytes += extension;
                continue;
            }
        }
        run.push_back(slot);
        span_bytes =
            static_cast<std::int64_t>(inner_->blobSize(slot.request.index));
    }
    if (!run.empty())
        serveRange(run, out);

    std::vector<Result<std::string>> blobs;
    blobs.reserve(out.size());
    for (std::optional<Result<std::string>> &blob : out) {
        LOTUS_ASSERT(blob.has_value());
        blobs.push_back(std::move(*blob));
    }
    return blobs;
}

void
RemoteStore::serveRange(
    const std::vector<RangeSlot> &run,
    std::vector<std::optional<Result<std::string>>> &out) const
{
    LOTUS_ASSERT(!run.empty());
    const std::int64_t first = run.front().request.index;
    const std::int64_t last = run.back().request.index;
    LOTUS_ASSERT(first >= 0 && last < inner_->size(),
                 "remote range [%lld, %lld] out of range",
                 static_cast<long long>(first),
                 static_cast<long long>(last));

    std::int64_t span_bytes = 0;
    for (std::int64_t i = first; i <= last; ++i)
        span_bytes += static_cast<std::int64_t>(inner_->blobSize(i));

    const TimeNs submitted = SteadyClock::instance().now();
    acquireConnection();

    TimeNs transfer = 0;
    if (options_.bytes_per_ns > 0.0)
        transfer = static_cast<TimeNs>(static_cast<double>(span_bytes) /
                                       options_.bytes_per_ns);
    const TimeNs served = SteadyClock::instance().now() - submitted +
                          options_.rtt + transfer;
    if (options_.deadline > 0 && served > options_.deadline) {
        // Miss: consume the time up to the deadline (the caller did
        // wait that long before giving up), then fail the whole run.
        modelDelay(options_.deadline -
                   (SteadyClock::instance().now() - submitted));
        releaseConnection();
        timeouts_.fetch_add(run.size(), std::memory_order_relaxed);
        for (const RangeSlot &slot : run)
            out[slot.out_slot] = LOTUS_ERROR(
                ErrorCode::kTimeout,
                "remote read [%lld, %lld] (%lld bytes) missed %.1f ms "
                "deadline",
                static_cast<long long>(first), static_cast<long long>(last),
                static_cast<long long>(span_bytes), toMs(options_.deadline));
        return;
    }

    modelDelay(options_.rtt + transfer);
    releaseConnection();

    round_trips_.fetch_add(1, std::memory_order_relaxed);
    bytes_transferred_.fetch_add(static_cast<std::uint64_t>(span_bytes),
                                 std::memory_order_relaxed);
    if (run.size() > 1)
        coalesced_reads_.fetch_add(run.size(), std::memory_order_relaxed);

    PipelineContext *ambient = currentIoContext();
    for (const RangeSlot &slot : run) {
        // Re-scope the ambient trace context per delivered blob so an
        // inner tracing store stamps it for the sample it serves.
        if (ambient != nullptr) {
            PipelineContext ctx = *ambient;
            ctx.batch_id = slot.request.batch_id;
            ctx.sample_index = slot.request.sample_index;
            IoTraceScope scope(&ctx);
            out[slot.out_slot] = inner_->tryRead(slot.request.index);
        } else {
            out[slot.out_slot] = inner_->tryRead(slot.request.index);
        }
    }
}

void
RemoteStore::acquireConnection() const
{
    std::unique_lock<std::mutex> lock(slots_mutex_);
    slot_free_cv_.wait(lock,
                       [this] { return inflight_ < options_.max_inflight; });
    ++inflight_;
}

void
RemoteStore::releaseConnection() const
{
    {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        --inflight_;
    }
    slot_free_cv_.notify_one();
}

} // namespace lotus::pipeline
