/**
 * @file
 * Volume dataset for the segmentation pipeline: serialized tensors
 * (the KiTS19 "preprocessed numpy" analogue) loaded from a store.
 *
 * get() performs the Load operation (blob read + tensor
 * deserialization), logged as a [T3] op named "Loader", then applies
 * the Compose chain of volumetric transforms.
 */

#ifndef LOTUS_PIPELINE_VOLUME_DATASET_H
#define LOTUS_PIPELINE_VOLUME_DATASET_H

#include <memory>

#include "hwcount/registry.h"
#include "pipeline/compose.h"
#include "pipeline/dataset.h"
#include "pipeline/store.h"

namespace lotus::pipeline {

class VolumeDataset : public Dataset
{
  public:
    static constexpr const char *kLoaderOpName = "Loader";

    VolumeDataset(std::shared_ptr<const BlobStore> store,
                  std::shared_ptr<const Compose> transforms);

    std::int64_t size() const override;
    Sample get(std::int64_t index, PipelineContext &ctx) const override;
    const BlobStore *blobStore() const override { return store_.get(); }

  private:
    std::shared_ptr<const BlobStore> store_;
    std::shared_ptr<const Compose> transforms_;
    hwcount::OpTag loader_tag_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_VOLUME_DATASET_H
