#include "pipeline/iterable_dataset.h"

namespace lotus::pipeline {

namespace {

class StridedStream : public SampleStream
{
  public:
    StridedStream(std::shared_ptr<const Dataset> dataset, int worker_id,
                  int num_workers)
        : dataset_(std::move(dataset)), cursor_(worker_id),
          stride_(num_workers)
    {
    }

    std::optional<Sample>
    next(PipelineContext &ctx) override
    {
        if (cursor_ >= dataset_->size())
            return std::nullopt;
        Sample sample = dataset_->get(cursor_, ctx);
        cursor_ += stride_;
        return sample;
    }

    Result<std::optional<Sample>>
    tryNext(PipelineContext &ctx) override
    {
        if (cursor_ >= dataset_->size())
            return std::optional<Sample>(std::nullopt);
        Result<Sample> sample = dataset_->tryGet(cursor_, ctx);
        // The slot is consumed even on error: streams advance.
        cursor_ += stride_;
        if (!sample.ok())
            return sample.takeError();
        return std::optional<Sample>(sample.take());
    }

  private:
    std::shared_ptr<const Dataset> dataset_;
    std::int64_t cursor_;
    std::int64_t stride_;
};

} // namespace

ShardedIterable::ShardedIterable(std::shared_ptr<const Dataset> dataset)
    : dataset_(std::move(dataset))
{
    LOTUS_ASSERT(dataset_ != nullptr);
}

std::unique_ptr<SampleStream>
ShardedIterable::shard(int worker_id, int num_workers) const
{
    LOTUS_ASSERT(num_workers > 0 && worker_id >= 0 &&
                 worker_id < num_workers,
                 "bad shard (%d of %d)", worker_id, num_workers);
    return std::make_unique<StridedStream>(dataset_, worker_id,
                                           num_workers);
}

} // namespace lotus::pipeline
