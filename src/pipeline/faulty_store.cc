#include "pipeline/faulty_store.h"

#include "common/rng.h"

namespace lotus::pipeline {

FaultyStore::FaultyStore(std::shared_ptr<const BlobStore> inner,
                         const FaultyStoreOptions &options)
    : inner_(std::move(inner)), options_(options)
{
    LOTUS_ASSERT(inner_ != nullptr);
    LOTUS_ASSERT(options_.truncate_fraction >= 0.0 &&
                 options_.bitflip_fraction >= 0.0 &&
                 options_.io_error_fraction >= 0.0 &&
                 options_.truncate_fraction + options_.bitflip_fraction +
                         options_.io_error_fraction <=
                     1.0,
                 "fault fractions must be non-negative and sum to <= 1");

    const auto count = static_cast<std::size_t>(inner_->size());
    faults_.assign(count, Fault::kNone);
    fault_seeds_.assign(count, 0);
    transient_left_ = std::make_unique<std::atomic<int>[]>(count);

    // One draw per index against the cumulative fractions: the fault
    // map is a pure function of (seed, fractions, store size).
    Rng rng(options_.seed * 0x9E3779B97F4A7C15ull + 0xFA017ull);
    for (std::size_t i = 0; i < count; ++i) {
        const double draw = rng.nextDouble();
        if (draw < options_.truncate_fraction)
            faults_[i] = Fault::kTruncate;
        else if (draw < options_.truncate_fraction +
                            options_.bitflip_fraction)
            faults_[i] = Fault::kBitFlip;
        else if (draw < options_.truncate_fraction +
                            options_.bitflip_fraction +
                            options_.io_error_fraction)
            faults_[i] = Fault::kIoError;
        fault_seeds_[i] = rng.nextU64();
        transient_left_[i].store(options_.transient_failures,
                                 std::memory_order_relaxed);
    }
}

void
FaultyStore::inject(std::int64_t index, Fault fault)
{
    LOTUS_ASSERT(index >= 0 && index < size());
    faults_[static_cast<std::size_t>(index)] = fault;
}

FaultyStore::Fault
FaultyStore::faultFor(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size());
    return faults_[static_cast<std::size_t>(index)];
}

std::int64_t
FaultyStore::faultCount() const
{
    std::int64_t count = 0;
    for (const auto fault : faults_) {
        if (fault != Fault::kNone)
            ++count;
    }
    return count;
}

std::int64_t
FaultyStore::size() const
{
    return inner_->size();
}

std::string
FaultyStore::read(std::int64_t index) const
{
    Result<std::string> blob = tryRead(index);
    if (!blob.ok())
        LOTUS_FATAL("%s", blob.error().describe().c_str());
    return blob.take();
}

Result<std::string>
FaultyStore::tryRead(std::int64_t index) const
{
    LOTUS_ASSERT(index >= 0 && index < size(), "blob index %lld out of range",
                 static_cast<long long>(index));
    const auto i = static_cast<std::size_t>(index);
    const Fault fault = faults_[i];

    if (fault == Fault::kIoError) {
        if (options_.transient_failures > 0) {
            // fetch_sub so concurrent readers each consume one
            // failure; once exhausted the blob reads cleanly.
            const int left = transient_left_[i].fetch_add(
                -1, std::memory_order_relaxed);
            if (left <= 0) {
                transient_left_[i].store(0, std::memory_order_relaxed);
                return inner_->tryRead(index);
            }
        }
        faults_served_.fetch_add(1, std::memory_order_relaxed);
        return LOTUS_ERROR(ErrorCode::kIoError,
                           "injected io error on blob %lld",
                           static_cast<long long>(index));
    }

    Result<std::string> blob = inner_->tryRead(index);
    if (!blob.ok() || fault == Fault::kNone)
        return blob;

    std::string bytes = blob.take();
    Rng rng(fault_seeds_[i]);
    if (fault == Fault::kTruncate) {
        // Anywhere from empty to one-byte-short.
        bytes.resize(static_cast<std::size_t>(
            rng.nextBelow(bytes.empty() ? 1 : bytes.size())));
    } else { // kBitFlip
        if (!bytes.empty()) {
            // Prefer payload bytes (past the 10-byte LJPG header) so
            // the flip exercises entropy-decode error paths, not just
            // header validation.
            const std::size_t lo = bytes.size() > 10 ? 10 : 0;
            const std::size_t pos =
                lo + static_cast<std::size_t>(
                         rng.nextBelow(bytes.size() - lo));
            bytes[pos] = static_cast<char>(
                static_cast<unsigned char>(bytes[pos]) ^
                (1u << rng.nextBelow(8)));
        }
    }
    faults_served_.fetch_add(1, std::memory_order_relaxed);
    return bytes;
}

std::uint64_t
FaultyStore::blobSize(std::int64_t index) const
{
    return inner_->blobSize(index);
}

} // namespace lotus::pipeline
