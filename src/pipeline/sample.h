/**
 * @file
 * Data currency of the preprocessing framework.
 *
 * A Sample carries either a decoded Image (vision pipelines before
 * ToTensor) or a Tensor (after ToTensor, and throughout volumetric
 * pipelines), plus its label. A Batch is the collated result a worker
 * ships to the main process.
 */

#ifndef LOTUS_PIPELINE_SAMPLE_H
#define LOTUS_PIPELINE_SAMPLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "image/image.h"
#include "tensor/tensor.h"
#include "trace/logger.h"

namespace lotus::pipeline {

struct Sample
{
    /** Image-domain payload (present until ToTensor consumes it). */
    std::optional<image::Image> image;
    /** Tensor-domain payload. */
    tensor::Tensor data;
    std::int64_t label = 0;

    bool hasImage() const { return image.has_value(); }
};

struct Batch
{
    std::int64_t batch_id = -1;
    tensor::Tensor data;
    std::vector<std::int64_t> labels;

    std::int64_t size() const
    {
        return data.rank() == 0 || data.empty() ? 0 : data.dim(0);
    }
};

/**
 * Ambient state for one dataset/pipeline invocation: the tracer (may
 * be null = tracing disabled), the calling worker's identity and RNG
 * stream, and the batch/sample being produced (for [T3] records).
 */
struct PipelineContext
{
    trace::TraceLogger *logger = nullptr;
    std::uint32_t pid = 0;
    std::int64_t batch_id = -1;
    std::int64_t sample_index = -1;
    Rng *rng = nullptr;

    Rng &
    rngRef()
    {
        LOTUS_ASSERT(rng != nullptr, "pipeline context has no rng");
        return *rng;
    }
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_SAMPLE_H
