/**
 * @file
 * ImageFolder analogue: decode-from-store dataset for vision
 * pipelines.
 *
 * get() performs the Loader operation (blob read + LJPG decode),
 * logged as a [T3] op named "Loader" exactly like the paper's
 * instrumented torchvision.datasets, then applies the Compose chain.
 */

#ifndef LOTUS_PIPELINE_IMAGE_FOLDER_H
#define LOTUS_PIPELINE_IMAGE_FOLDER_H

#include <memory>

#include "hwcount/registry.h"
#include "pipeline/compose.h"
#include "pipeline/dataset.h"
#include "pipeline/store.h"

namespace lotus::pipeline {

class ImageFolderDataset : public Dataset
{
  public:
    static constexpr const char *kLoaderOpName = "Loader";

    /**
     * @param store encoded image blobs
     * @param transforms transform chain applied after decode
     * @param num_classes labels are index % num_classes
     */
    ImageFolderDataset(std::shared_ptr<const BlobStore> store,
                       std::shared_ptr<const Compose> transforms,
                       std::int64_t num_classes = 1000);

    std::int64_t size() const override;
    Sample get(std::int64_t index, PipelineContext &ctx) const override;
    Result<Sample> tryGet(std::int64_t index,
                          PipelineContext &ctx) const override;
    const BlobStore *blobStore() const override { return store_.get(); }

    /**
     * Cache split: the prefix is Loader (store read + decode) plus
     * the Compose chain's deterministic prefix; the suffix is the
     * remaining (stochastic-first) transforms. The fingerprint covers
     * the labeling scheme and the prefix transform configs.
     */
    std::optional<CacheableSplit> cacheableSplit() const override;
    Result<Sample> tryGetPrefix(std::int64_t index,
                                PipelineContext &ctx) const override;
    void applySuffix(Sample &sample,
                     PipelineContext &ctx) const override;

    const Compose &transforms() const { return *transforms_; }

  private:
    std::shared_ptr<const BlobStore> store_;
    std::shared_ptr<const Compose> transforms_;
    std::int64_t num_classes_;
    hwcount::OpTag loader_tag_;
    std::uint64_t dataset_id_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_IMAGE_FOLDER_H
