/**
 * @file
 * Fault-injecting BlobStore decorator for the error-path test
 * harness.
 *
 * Wraps any BlobStore and corrupts a deterministic, seeded subset of
 * its blobs on the way out: truncations, single-bit flips, and
 * (optionally transient) I/O errors — the failure modes a long
 * characterization campaign meets on real storage. Fault assignment
 * is drawn once per index at construction, so a given (seed,
 * fractions) configuration injects exactly the same faults on every
 * epoch and every run, and tests can assert exact error counts.
 */

#ifndef LOTUS_PIPELINE_FAULTY_STORE_H
#define LOTUS_PIPELINE_FAULTY_STORE_H

#include <atomic>
#include <memory>

#include "pipeline/store.h"

namespace lotus::pipeline {

struct FaultyStoreOptions
{
    std::uint64_t seed = 0;
    /** Fraction of blobs served with a seeded truncation. */
    double truncate_fraction = 0.0;
    /** Fraction of blobs served with one flipped payload bit. */
    double bitflip_fraction = 0.0;
    /** Fraction of blobs whose reads fail with kIoError. */
    double io_error_fraction = 0.0;
    /**
     * When > 0, an io-error blob fails this many reads and then
     * succeeds — the transient-fault shape ErrorPolicy::kRetry
     * exists for. 0 makes io errors permanent.
     */
    int transient_failures = 0;
};

class FaultyStore : public BlobStore
{
  public:
    enum class Fault : std::uint8_t
    {
        kNone,
        kTruncate,
        kBitFlip,
        kIoError,
    };

    FaultyStore(std::shared_ptr<const BlobStore> inner,
                const FaultyStoreOptions &options);

    /** Force a specific fault on one index (overrides the draw). */
    void inject(std::int64_t index, Fault fault);

    /** The fault assigned to @p index. */
    Fault faultFor(std::int64_t index) const;

    /** Indices with a non-kNone fault assigned. */
    std::int64_t faultCount() const;

    /** Reads that actually served a fault (truncated/flipped payload
     *  or returned error) so far. */
    std::uint64_t faultsServed() const
    {
        return faults_served_.load(std::memory_order_relaxed);
    }

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    Result<std::string> tryRead(std::int64_t index) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

  private:
    std::shared_ptr<const BlobStore> inner_;
    FaultyStoreOptions options_;
    std::vector<Fault> faults_;
    /** Per-index seeds for the truncation point / flipped bit. */
    std::vector<std::uint64_t> fault_seeds_;
    /** Remaining failures per index for transient io errors. */
    std::unique_ptr<std::atomic<int>[]> transient_left_;
    mutable std::atomic<std::uint64_t> faults_served_{0};
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_FAULTY_STORE_H
