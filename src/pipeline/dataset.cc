#include "pipeline/dataset.h"

#include <atomic>

namespace lotus::pipeline {

std::uint64_t
allocateDatasetId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace lotus::pipeline
