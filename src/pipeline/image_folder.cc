#include "pipeline/image_folder.h"

#include "image/codec/codec.h"

namespace lotus::pipeline {

ImageFolderDataset::ImageFolderDataset(
    std::shared_ptr<const BlobStore> store,
    std::shared_ptr<const Compose> transforms, std::int64_t num_classes)
    : store_(std::move(store)), transforms_(std::move(transforms)),
      num_classes_(num_classes),
      loader_tag_(hwcount::KernelRegistry::instance().registerOp(
          kLoaderOpName)),
      dataset_id_(allocateDatasetId())
{
    LOTUS_ASSERT(store_ != nullptr && transforms_ != nullptr);
    LOTUS_ASSERT(num_classes_ > 0);
}

std::int64_t
ImageFolderDataset::size() const
{
    return store_->size();
}

Sample
ImageFolderDataset::get(std::int64_t index, PipelineContext &ctx) const
{
    Result<Sample> sample = tryGet(index, ctx);
    if (!sample.ok())
        LOTUS_FATAL("sample %lld: %s", static_cast<long long>(index),
                    sample.error().describe().c_str());
    return sample.take();
}

Result<Sample>
ImageFolderDataset::tryGet(std::int64_t index, PipelineContext &ctx) const
{
    Result<Sample> prefix = tryGetPrefix(index, ctx);
    if (!prefix.ok())
        return prefix.takeError();
    Sample sample = prefix.take();
    transforms_->applySuffix(sample, ctx);
    return sample;
}

std::optional<CacheableSplit>
ImageFolderDataset::cacheableSplit() const
{
    CacheableSplit split;
    split.dataset_id = dataset_id_;
    split.prefix_fingerprint =
        ConfigHash()
            .mix(std::string("ImageFolderDataset"))
            .mix(static_cast<std::uint64_t>(num_classes_))
            .mix(transforms_->prefixFingerprint())
            .value();
    return split;
}

Result<Sample>
ImageFolderDataset::tryGetPrefix(std::int64_t index,
                                 PipelineContext &ctx) const
{
    Sample sample;
    sample.label = index % num_classes_;
    {
        trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
        span.record().op_name = kLoaderOpName;
        span.record().batch_id = ctx.batch_id;
        span.record().pid = ctx.pid;
        span.record().sample_index = ctx.sample_index;
        {
            hwcount::OpTagScope op_scope(loader_tag_);
            Result<std::string> blob = readBlobOrStaged(*store_, index);
            if (!blob.ok()) {
                Error error = blob.takeError();
                error.stage = "store";
                span.finish();
                return error;
            }
            Result<image::Image> image =
                image::codec::tryDecode(blob.value());
            if (!image.ok()) {
                Error error = image.takeError();
                error.stage = "decode";
                span.finish();
                return error;
            }
            sample.image = image.take();
        }
        span.finish();
    }
    transforms_->applyPrefix(sample, ctx);
    return sample;
}

void
ImageFolderDataset::applySuffix(Sample &sample, PipelineContext &ctx) const
{
    transforms_->applySuffix(sample, ctx);
}

} // namespace lotus::pipeline
