#include "pipeline/traced_store.h"

#include "common/logging.h"
#include "metrics/metrics.h"
#include "trace/logger.h"

namespace lotus::pipeline {

TracedStore::TracedStore(std::shared_ptr<const BlobStore> inner)
    : inner_(std::move(inner))
{
    LOTUS_ASSERT(inner_ != nullptr);
}

std::int64_t
TracedStore::size() const
{
    return inner_->size();
}

std::uint64_t
TracedStore::blobSize(std::int64_t index) const
{
    return inner_->blobSize(index);
}

std::string
TracedStore::read(std::int64_t index) const
{
    const TimeNs start = SteadyClock::instance().now();
    std::string blob = inner_->read(index);
    note(blob.size(), SteadyClock::instance().now() - start, start);
    return blob;
}

Result<std::string>
TracedStore::tryRead(std::int64_t index) const
{
    const TimeNs start = SteadyClock::instance().now();
    Result<std::string> blob = inner_->tryRead(index);
    // Failed reads are not observations of store latency — the error
    // path is accounted by lotus_loader_sample_errors_total instead.
    if (blob.ok())
        note(blob.value().size(), SteadyClock::instance().now() - start,
             start);
    return blob;
}

std::vector<Result<std::string>>
TracedStore::tryReadMany(const std::vector<BlobReadRequest> &requests) const
{
    const TimeNs start = SteadyClock::instance().now();
    std::vector<Result<std::string>> blobs = inner_->tryReadMany(requests);
    const TimeNs elapsed = SteadyClock::instance().now() - start;
    LOTUS_ASSERT(blobs.size() == requests.size(),
                 "tryReadMany returned %zu results for %zu requests",
                 blobs.size(), requests.size());
    PipelineContext *ambient = currentIoContext();
    for (std::size_t i = 0; i < blobs.size(); ++i) {
        if (!blobs[i].ok())
            continue;
        if (ambient != nullptr) {
            // Stamp each blob's IoEvent from its own request, not from
            // whatever the issuing thread's ambient context says: on
            // an I/O thread the ambient scope only carries logger+pid.
            PipelineContext ctx = *ambient;
            ctx.batch_id = requests[i].batch_id;
            ctx.sample_index = requests[i].sample_index;
            IoTraceScope scope(&ctx);
            note(blobs[i].value().size(), elapsed, start);
        } else {
            note(blobs[i].value().size(), elapsed, start);
        }
    }
    return blobs;
}

void
TracedStore::note(std::uint64_t bytes, TimeNs elapsed, TimeNs start) const
{
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);

    if (metrics::enabled()) {
        auto &registry = metrics::MetricsRegistry::instance();
        registry.histogram(kStoreReadNsMetric)
            ->record(static_cast<std::uint64_t>(elapsed));
        registry.histogram(kStoreReadBytesMetric)->record(bytes);
    }

    PipelineContext *ctx = currentIoContext();
    if (ctx == nullptr || ctx->logger == nullptr)
        return;
    trace::TraceRecord record;
    record.kind = trace::RecordKind::IoEvent;
    record.batch_id = ctx->batch_id;
    record.pid = ctx->pid;
    record.start = start;
    record.duration = elapsed;
    // Op names must stay comma-free (record.cc line format); the byte
    // count rides in the name so analysis can recover sizes from the
    // trace alone.
    record.op_name = "io:" + std::to_string(bytes);
    record.sample_index = ctx->sample_index;
    ctx->logger->log(std::move(record));
}

} // namespace lotus::pipeline
