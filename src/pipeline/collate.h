/**
 * @file
 * Batch collation (the paper's C(k) operation): combine k
 * preprocessed samples into one batch tensor.
 */

#ifndef LOTUS_PIPELINE_COLLATE_H
#define LOTUS_PIPELINE_COLLATE_H

#include <string>
#include <vector>

#include "pipeline/sample.h"

namespace lotus::pipeline {

class Collate
{
  public:
    static constexpr const char *kOpName = "Collate";

    virtual ~Collate() = default;

    /** Consume samples, producing a batch (batch_id left unset). */
    virtual Batch collate(std::vector<Sample> samples) const = 0;

    /**
     * Like collate(), but may build the batch inside @p reuse's
     * storage when its dtype and shape match the batch being formed
     * (a recycled batch tensor from a previous iteration). The
     * default implementation ignores @p reuse and forwards to
     * collate(), so existing subclasses keep working unchanged.
     */
    virtual Batch collateInto(std::vector<Sample> samples,
                              tensor::Tensor reuse) const;
};

/** Stack equally shaped sample tensors along a new batch axis. */
class StackCollate : public Collate
{
  public:
    Batch collate(std::vector<Sample> samples) const override;
    Batch collateInto(std::vector<Sample> samples,
                      tensor::Tensor reuse) const override;
};

/**
 * Pad samples to the per-axis maximum before stacking (the detection
 * pipeline's variable-size batches, a Mask R-CNN style pad collate).
 */
class PadCollate : public Collate
{
  public:
    /** Pad spatial extents up to a multiple of this (0 = exact max). */
    explicit PadCollate(std::int64_t size_divisor = 0);

    Batch collate(std::vector<Sample> samples) const override;
    Batch collateInto(std::vector<Sample> samples,
                      tensor::Tensor reuse) const override;

  private:
    std::int64_t size_divisor_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_COLLATE_H
