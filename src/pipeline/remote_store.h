/**
 * @file
 * Latency/bandwidth-modelled remote object store.
 *
 * RemoteStore decorates any BlobStore with the performance model of
 * an off-host object store (S3/GCS-style GETs over a connection
 * pool), opening the I/O-bound regime the paper's local-store
 * workloads could not explore (ROADMAP "streaming/off-host stores"):
 *
 *  - every request pays a configurable round-trip time (RTT);
 *  - payload transfer is capped at a per-connection bandwidth;
 *  - at most max_inflight requests progress concurrently — excess
 *    requests queue for a connection, like a saturated client pool;
 *  - tryReadMany() coalesces adjacent-index runs into one ranged GET:
 *    a run of blobs costs a single RTT plus the transfer of the whole
 *    covered span (gap blobs inside a tolerated gap are dead bytes on
 *    the wire — the classic range-coalescing trade);
 *  - an optional per-request deadline turns slow completions
 *    (including connection-queue waits) into ErrorCode::kTimeout,
 *    which errorIsTransient() classifies as retryable so
 *    ErrorPolicy::kRetry handles a congested store exactly like a
 *    flaky one.
 *
 * Unlike InMemoryStore's busy-wait latency (which models a *local*
 * synchronous device where blocked time should pin the worker),
 * RemoteStore sleeps: a remote GET is a blocking socket wait, and
 * descheduling is what lets a read-ahead stage overlap store latency
 * with decode CPU — the effect this store exists to expose.
 *
 * The model is deliberately deterministic given a serial request
 * pattern (no jitter): benches and tests reason about exact
 * round-trip counts via roundTrips()/coalescedReads().
 */

#ifndef LOTUS_PIPELINE_REMOTE_STORE_H
#define LOTUS_PIPELINE_REMOTE_STORE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "pipeline/store.h"

namespace lotus::pipeline {

struct RemoteStoreOptions
{
    /** Fixed per-request latency (connection + first-byte). */
    TimeNs rtt = 5 * kMillisecond;
    /** Per-connection payload throughput cap, bytes per nanosecond
     *  (0.1 = 100 MB/s). <= 0 means unlimited. */
    double bytes_per_ns = 0.1;
    /** Concurrent in-flight requests; more requests queue for a
     *  connection slot. Must be >= 1. */
    int max_inflight = 8;
    /**
     * tryReadMany coalescing window: two requested indices join one
     * ranged GET when the run of unrequested indices between them is
     * <= this. 0 coalesces strictly adjacent indices; gap blobs are
     * fetched and discarded (their bytes still ride the wire and
     * count toward transfer time).
     */
    std::int64_t max_coalesce_gap = 0;
    /** Byte cap per coalesced range; a run splits when the covered
     *  span would exceed it. <= 0 means unlimited. */
    std::int64_t max_coalesced_bytes = 8ll << 20;
    /**
     * Per-request deadline measured from request submission to
     * completion, connection-queue wait included. 0 disables. A miss
     * consumes the modelled time up to the deadline, then fails every
     * read in the request with ErrorCode::kTimeout.
     */
    TimeNs deadline = 0;
};

class RemoteStore : public BlobStore
{
  public:
    RemoteStore(std::shared_ptr<const BlobStore> inner,
                const RemoteStoreOptions &options);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    Result<std::string> tryRead(std::int64_t index) const override;
    /** Coalesces adjacent-index runs (request order need not be
     *  sorted; results come back in request order). */
    std::vector<Result<std::string>>
    tryReadMany(const std::vector<BlobReadRequest> &requests) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

    const BlobStore &inner() const { return *inner_; }
    const RemoteStoreOptions &options() const { return options_; }

    /** Modelled round trips served (one per coalesced range). */
    std::uint64_t roundTrips() const
    {
        return round_trips_.load(std::memory_order_relaxed);
    }

    /** Blobs delivered by a range that carried more than one. */
    std::uint64_t coalescedReads() const
    {
        return coalesced_reads_.load(std::memory_order_relaxed);
    }

    /** Blob reads failed with kTimeout (one per affected slot). */
    std::uint64_t timeouts() const
    {
        return timeouts_.load(std::memory_order_relaxed);
    }

    /** Bytes that rode the wire (requested + coalescing gap blobs). */
    std::uint64_t bytesTransferred() const
    {
        return bytes_transferred_.load(std::memory_order_relaxed);
    }

  private:
    /** One requested blob inside a coalesced range: inner index plus
     *  the slot of @p out it fills (requests may repeat an index, so
     *  a run can carry several slots for one blob). */
    struct RangeSlot
    {
        BlobReadRequest request;
        std::size_t out_slot;
    };

    /**
     * Serve one ranged GET covering the run's [front.index,
     * back.index] span: queue for a connection, sleep the modelled
     * RTT plus the transfer of the whole span (coalescing-gap blobs
     * included — dead bytes still ride the wire), then deliver the
     * requested subset from the inner store. On a deadline miss every
     * slot of the run becomes kTimeout instead.
     */
    void serveRange(const std::vector<RangeSlot> &run,
                    std::vector<std::optional<Result<std::string>>> &out)
        const;

    /** Block until a connection slot is free. */
    void acquireConnection() const;
    void releaseConnection() const;

    std::shared_ptr<const BlobStore> inner_;
    RemoteStoreOptions options_;

    mutable std::mutex slots_mutex_;
    mutable std::condition_variable slot_free_cv_;
    mutable int inflight_ = 0;

    mutable std::atomic<std::uint64_t> round_trips_{0};
    mutable std::atomic<std::uint64_t> coalesced_reads_{0};
    mutable std::atomic<std::uint64_t> timeouts_{0};
    mutable std::atomic<std::uint64_t> bytes_transferred_{0};
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_REMOTE_STORE_H
