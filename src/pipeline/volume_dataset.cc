#include "pipeline/volume_dataset.h"

#include "tensor/serialize.h"

namespace lotus::pipeline {

VolumeDataset::VolumeDataset(std::shared_ptr<const BlobStore> store,
                             std::shared_ptr<const Compose> transforms)
    : store_(std::move(store)), transforms_(std::move(transforms)),
      loader_tag_(hwcount::KernelRegistry::instance().registerOp(
          kLoaderOpName))
{
    LOTUS_ASSERT(store_ != nullptr && transforms_ != nullptr);
}

std::int64_t
VolumeDataset::size() const
{
    return store_->size();
}

Sample
VolumeDataset::get(std::int64_t index, PipelineContext &ctx) const
{
    Sample sample;
    sample.label = index;
    {
        trace::SpanTimer span(ctx.logger, trace::RecordKind::TransformOp);
        span.record().op_name = kLoaderOpName;
        span.record().batch_id = ctx.batch_id;
        span.record().pid = ctx.pid;
        span.record().sample_index = ctx.sample_index;
        {
            hwcount::OpTagScope op_scope(loader_tag_);
            Result<std::string> blob = readBlobOrStaged(*store_, index);
            if (!blob.ok())
                LOTUS_FATAL("volume %lld: %s",
                            static_cast<long long>(index),
                            blob.error().describe().c_str());
            sample.data = tensor::fromBytes(blob.take());
        }
        span.finish();
    }
    (*transforms_)(sample, ctx);
    return sample;
}

} // namespace lotus::pipeline
