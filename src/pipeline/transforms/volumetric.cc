#include "pipeline/transforms/volumetric.h"

#include <algorithm>

#include "tensor/ops.h"

namespace lotus::pipeline {

RandBalancedCrop::RandBalancedCrop() : RandBalancedCrop(Params{}) {}

RandBalancedCrop::RandBalancedCrop(Params params)
    : NamedTransform("RandBalancedCrop"), params_(params)
{
    for (const auto extent : params_.patch)
        LOTUS_ASSERT(extent > 0, "bad patch extent");
    LOTUS_ASSERT(params_.oversampling >= 0.0 && params_.oversampling <= 1.0);
}

void
RandBalancedCrop::apply(Sample &sample, Rng &rng) const
{
    const tensor::Tensor &input = sample.data;
    LOTUS_ASSERT(input.rank() == 4, "RandBalancedCrop expects (C, D, H, W)");
    const std::int64_t c = input.dim(0);
    const std::array<std::int64_t, 3> dims = {input.dim(1), input.dim(2),
                                              input.dim(3)};
    std::array<std::int64_t, 3> patch = params_.patch;
    for (int axis = 0; axis < 3; ++axis)
        patch[static_cast<std::size_t>(axis)] = std::min(
            patch[static_cast<std::size_t>(axis)],
            dims[static_cast<std::size_t>(axis)]);

    std::array<std::int64_t, 3> offset{};
    if (rng.chance(params_.oversampling)) {
        // Foreground-centered: scan for bright voxels, then center the
        // window on a random hit (clamped to bounds).
        const auto hits = tensor::foregroundSearch(
            input, params_.foreground_threshold, 4096);
        if (!hits.empty()) {
            const std::int64_t pick = hits[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(hits.size()) - 1))];
            const std::int64_t plane = dims[1] * dims[2];
            std::array<std::int64_t, 3> center = {
                pick / plane, (pick % plane) / dims[2], pick % dims[2]};
            for (int axis = 0; axis < 3; ++axis) {
                const auto a = static_cast<std::size_t>(axis);
                offset[a] = std::clamp<std::int64_t>(
                    center[a] - patch[a] / 2, 0, dims[a] - patch[a]);
            }
        }
    } else {
        for (int axis = 0; axis < 3; ++axis) {
            const auto a = static_cast<std::size_t>(axis);
            offset[a] = rng.uniformInt(0, dims[a] - patch[a]);
        }
    }

    sample.data = tensor::cropWindow(
        input, {0, offset[0], offset[1], offset[2]},
        {c, patch[0], patch[1], patch[2]});
    // Volumes smaller than the requested patch are zero-padded so the
    // output shape is always (C, patch) and batches stack cleanly.
    sample.data = tensor::padTo(sample.data,
                                {c, params_.patch[0], params_.patch[1],
                                 params_.patch[2]});
}

RandomFlip::RandomFlip(double per_axis_probability)
    : NamedTransform("RandomFlip"), probability_(per_axis_probability)
{
    LOTUS_ASSERT(probability_ >= 0.0 && probability_ <= 1.0);
}

void
RandomFlip::apply(Sample &sample, Rng &rng) const
{
    const int rank = static_cast<int>(sample.data.rank());
    LOTUS_ASSERT(rank >= 2, "RandomFlip expects a channel-first tensor");
    for (int axis = 1; axis < rank; ++axis) {
        if (rng.chance(probability_))
            sample.data = tensor::flipAxis(sample.data, axis);
    }
}

Cast::Cast(tensor::DType target) : NamedTransform("Cast"), target_(target) {}

void
Cast::apply(Sample &sample, Rng &rng) const
{
    (void)rng;
    if (sample.data.dtype() == target_)
        return;
    if (target_ == tensor::DType::F32)
        sample.data = tensor::castU8ToF32(sample.data, 1.0f);
    else
        sample.data = tensor::castF32ToU8(sample.data, 1.0f);
}

RandomBrightnessAugmentation::RandomBrightnessAugmentation(double factor,
                                                           double probability)
    : NamedTransform("RandomBrightnessAugmentation"), factor_(factor),
      probability_(probability)
{
    LOTUS_ASSERT(factor_ >= 0.0 && probability_ >= 0.0 &&
                 probability_ <= 1.0);
}

void
RandomBrightnessAugmentation::apply(Sample &sample, Rng &rng) const
{
    if (!rng.chance(probability_))
        return;
    const float scale = static_cast<float>(
        rng.uniform(1.0 - factor_, 1.0 + factor_));
    tensor::scaleBrightness(sample.data, scale);
}

GaussianNoise::GaussianNoise(float mean, float stddev, double probability)
    : NamedTransform("GaussianNoise"), mean_(mean), stddev_(stddev),
      probability_(probability)
{
    LOTUS_ASSERT(stddev_ >= 0.0f && probability_ >= 0.0 &&
                 probability_ <= 1.0);
}

void
GaussianNoise::apply(Sample &sample, Rng &rng) const
{
    if (!rng.chance(probability_))
        return;
    tensor::addGaussianNoise(sample.data, rng, mean_, stddev_);
}

} // namespace lotus::pipeline
