/**
 * @file
 * Volumetric (tensor-domain) transforms used by the paper's Image
 * Segmentation pipeline (MLPerf U-Net3D / KiTS19 analogue). All
 * operate on channel-first tensors (C, D, H, W).
 */

#ifndef LOTUS_PIPELINE_TRANSFORMS_VOLUMETRIC_H
#define LOTUS_PIPELINE_TRANSFORMS_VOLUMETRIC_H

#include <array>

#include "pipeline/transform.h"
#include "tensor/tensor.h"

namespace lotus::pipeline {

/**
 * Foreground-aware random 3-D crop (RandBalancedCrop). With
 * probability @p oversampling the crop is centered on a foreground
 * voxel located by an (expensive) scan; otherwise the window is
 * uniform random. The bimodal cost is the source of the huge P90/avg
 * spread Table II reports for RBC.
 */
class RandBalancedCrop : public NamedTransform
{
  public:
    struct Params
    {
        std::array<std::int64_t, 3> patch = {64, 64, 64};
        double oversampling = 0.4;
        float foreground_threshold = 200.0f;
    };

    RandBalancedCrop();
    explicit RandBalancedCrop(Params params);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    Params params_;
};

/** Flip each spatial axis independently with probability p. */
class RandomFlip : public NamedTransform
{
  public:
    explicit RandomFlip(double per_axis_probability = 1.0 / 3.0);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    double probability_;
};

/** Cast the tensor payload to the target dtype. */
class Cast : public NamedTransform
{
  public:
    explicit Cast(tensor::DType target);

    void apply(Sample &sample, Rng &rng) const override;
    bool deterministic() const override { return true; }
    std::uint64_t configHash() const override
    {
        return ConfigHash()
            .mix(static_cast<std::uint64_t>(target_))
            .value();
    }

  private:
    tensor::DType target_;
};

/** Scale brightness by a random factor with probability p. */
class RandomBrightnessAugmentation : public NamedTransform
{
  public:
    RandomBrightnessAugmentation(double factor = 0.3,
                                 double probability = 0.1);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    double factor_;
    double probability_;
};

/** Add zero-mean Gaussian noise with probability p. */
class GaussianNoise : public NamedTransform
{
  public:
    GaussianNoise(float mean = 0.0f, float stddev = 0.1f,
                  double probability = 0.1);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    float mean_;
    float stddev_;
    double probability_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_TRANSFORMS_VOLUMETRIC_H
