#include "pipeline/transforms/vision.h"

#include <algorithm>
#include <cmath>

#include "image/geometry.h"
#include "image/resample.h"
#include "tensor/ops.h"

namespace lotus::pipeline {

RandomResizedCrop::RandomResizedCrop() : RandomResizedCrop(Params{}) {}

RandomResizedCrop::RandomResizedCrop(Params params)
    : NamedTransform("RandomResizedCrop"), params_(params)
{
    LOTUS_ASSERT(params_.size > 0 && params_.scale_min > 0.0 &&
                 params_.scale_min <= params_.scale_max &&
                 params_.ratio_min > 0.0 &&
                 params_.ratio_min <= params_.ratio_max);
}

void
RandomResizedCrop::apply(Sample &sample, Rng &rng) const
{
    LOTUS_ASSERT(sample.hasImage(), "RandomResizedCrop needs an image");
    const image::Image &input = *sample.image;
    const double area =
        static_cast<double>(input.width()) * input.height();

    image::Rect region{0, 0, input.width(), input.height()};
    bool found = false;
    for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
        const double target_area =
            area * rng.uniform(params_.scale_min, params_.scale_max);
        const double log_ratio = rng.uniform(std::log(params_.ratio_min),
                                             std::log(params_.ratio_max));
        const double ratio = std::exp(log_ratio);
        const int w = static_cast<int>(
            std::lround(std::sqrt(target_area * ratio)));
        const int h = static_cast<int>(
            std::lround(std::sqrt(target_area / ratio)));
        if (w <= 0 || h <= 0 || w > input.width() || h > input.height())
            continue;
        region.x = static_cast<int>(
            rng.uniformInt(0, input.width() - w));
        region.y = static_cast<int>(
            rng.uniformInt(0, input.height() - h));
        region.width = w;
        region.height = h;
        found = true;
        break;
    }
    if (!found) {
        // Torchvision fallback: central crop at a valid ratio.
        const double in_ratio =
            static_cast<double>(input.width()) / input.height();
        int w, h;
        if (in_ratio < params_.ratio_min) {
            w = input.width();
            h = static_cast<int>(std::lround(w / params_.ratio_min));
        } else if (in_ratio > params_.ratio_max) {
            h = input.height();
            w = static_cast<int>(std::lround(h * params_.ratio_max));
        } else {
            w = input.width();
            h = input.height();
        }
        region = image::Rect{(input.width() - w) / 2,
                             (input.height() - h) / 2, w, h};
    }

    const image::Image cropped = image::crop(input, region);
    sample.image = image::resize(cropped, params_.size, params_.size);
}

RandomHorizontalFlip::RandomHorizontalFlip(double probability)
    : NamedTransform("RandomHorizontalFlip"), probability_(probability)
{
    LOTUS_ASSERT(probability >= 0.0 && probability <= 1.0);
}

void
RandomHorizontalFlip::apply(Sample &sample, Rng &rng) const
{
    LOTUS_ASSERT(sample.hasImage(), "RandomHorizontalFlip needs an image");
    if (rng.chance(probability_))
        sample.image = image::flipHorizontal(*sample.image);
}

Resize::Resize(int size, int max_size, bool exact)
    : NamedTransform("Resize"), size_(size), max_size_(max_size),
      exact_(exact)
{
    LOTUS_ASSERT(size > 0);
}

void
Resize::apply(Sample &sample, Rng &rng) const
{
    (void)rng;
    LOTUS_ASSERT(sample.hasImage(), "Resize needs an image");
    const image::Image &input = *sample.image;
    int out_w, out_h;
    if (exact_) {
        out_w = size_;
        out_h = size_;
    } else {
        const int shorter = std::min(input.width(), input.height());
        double factor = static_cast<double>(size_) / shorter;
        if (max_size_ > 0) {
            const int longer = std::max(input.width(), input.height());
            factor = std::min(
                factor, static_cast<double>(max_size_) / longer);
        }
        out_w = std::max(1, static_cast<int>(
                                std::lround(input.width() * factor)));
        out_h = std::max(1, static_cast<int>(
                                std::lround(input.height() * factor)));
    }
    if (out_w == input.width() && out_h == input.height())
        return;
    sample.image = image::resize(input, out_w, out_h);
}

std::uint64_t
Resize::configHash() const
{
    return ConfigHash()
        .mix(static_cast<std::uint64_t>(size_))
        .mix(static_cast<std::uint64_t>(max_size_))
        .mix(static_cast<std::uint64_t>(exact_))
        .value();
}

ToTensor::ToTensor() : NamedTransform("ToTensor") {}

void
ToTensor::apply(Sample &sample, Rng &rng) const
{
    (void)rng;
    LOTUS_ASSERT(sample.hasImage(), "ToTensor needs an image");
    const tensor::Tensor hwc = sample.image->toTensorHwc();
    const tensor::Tensor chw = tensor::hwcToChw(hwc);
    sample.data = tensor::castU8ToF32(chw);
    sample.image.reset();
}

Normalize::Normalize(std::vector<float> mean, std::vector<float> stddev)
    : NamedTransform("Normalize"), mean_(std::move(mean)),
      stddev_(std::move(stddev))
{
    LOTUS_ASSERT(mean_.size() == stddev_.size() && !mean_.empty());
    for (const float s : stddev_)
        LOTUS_ASSERT(s > 0.0f, "stddev must be positive");
}

std::uint64_t
Normalize::configHash() const
{
    ConfigHash hash;
    for (const float m : mean_)
        hash.mix(static_cast<double>(m));
    for (const float s : stddev_)
        hash.mix(static_cast<double>(s));
    return hash.value();
}

void
Normalize::apply(Sample &sample, Rng &rng) const
{
    (void)rng;
    LOTUS_ASSERT(!sample.hasImage(),
                 "Normalize runs after ToTensor (tensor domain)");
    tensor::normalizeChannels(sample.data, mean_, stddev_);
}

} // namespace lotus::pipeline
