/**
 * @file
 * Vision (image-domain) transforms: the torchvision set used by the
 * paper's Image Classification and Object Detection pipelines.
 */

#ifndef LOTUS_PIPELINE_TRANSFORMS_VISION_H
#define LOTUS_PIPELINE_TRANSFORMS_VISION_H

#include <vector>

#include "pipeline/transform.h"

namespace lotus::pipeline {

/**
 * Crop a random area/aspect-ratio region and resize it to a square
 * target (torchvision.transforms.RandomResizedCrop).
 */
class RandomResizedCrop : public NamedTransform
{
  public:
    struct Params
    {
        int size = 224;
        double scale_min = 0.08;
        double scale_max = 1.0;
        double ratio_min = 3.0 / 4.0;
        double ratio_max = 4.0 / 3.0;
        int max_attempts = 10;
    };

    RandomResizedCrop();
    explicit RandomResizedCrop(Params params);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    Params params_;
};

/** Mirror the image with probability p. */
class RandomHorizontalFlip : public NamedTransform
{
  public:
    explicit RandomHorizontalFlip(double probability = 0.5);

    void apply(Sample &sample, Rng &rng) const override;

  private:
    double probability_;
};

/**
 * Resize so the shorter edge equals @p size (longer edge capped at
 * @p max_size, preserving aspect as well as possible). When
 * @p exact is set, resizes to exactly size x size.
 */
class Resize : public NamedTransform
{
  public:
    explicit Resize(int size, int max_size = 0, bool exact = false);

    void apply(Sample &sample, Rng &rng) const override;
    bool deterministic() const override { return true; }
    std::uint64_t configHash() const override;

  private:
    int size_;
    int max_size_;
    bool exact_;
};

/** Convert the Image payload into a CHW f32 tensor in [0, 1]. */
class ToTensor : public NamedTransform
{
  public:
    ToTensor();

    void apply(Sample &sample, Rng &rng) const override;
    bool deterministic() const override { return true; }
};

/** Per-channel normalization of a CHW f32 tensor. */
class Normalize : public NamedTransform
{
  public:
    Normalize(std::vector<float> mean, std::vector<float> stddev);

    void apply(Sample &sample, Rng &rng) const override;
    bool deterministic() const override { return true; }
    std::uint64_t configHash() const override;

  private:
    std::vector<float> mean_;
    std::vector<float> stddev_;
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_TRANSFORMS_VISION_H
