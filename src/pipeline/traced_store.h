/**
 * @file
 * tf-Darshan-style store I/O tracing (PAPERS.md, arXiv:2008.04395).
 *
 * TracedStore decorates any BlobStore: every read records its latency
 * and size into the log-bucketed histograms lotus_store_read_ns /
 * lotus_store_read_bytes and, when the enclosing fetch carries a
 * tracer, emits an IoEvent trace record (op "io:<bytes>") in the
 * worker's lane correlated with the enclosing [T2] sample span via
 * (batch_id, pid, sample_index). Correlation uses an ambient
 * thread-local PipelineContext installed by IoTraceScope (declared in
 * pipeline/store.h) in Fetcher::getSample() — the single funnel all
 * three fetch paths (round-robin workers, work-stealing tasks,
 * synchronous loader) go through — so the store interface itself
 * stays context-free. Batched reads issued off the fetch thread
 * (dataflow::ReadAhead I/O threads) carry their correlation per
 * BlobReadRequest instead: tryReadMany stamps each blob's IoEvent
 * from its request, so prefetched reads still land on the sample they
 * serve. A coalesced range read reports the whole round trip's
 * latency for each blob that rode it (the read did take that long to
 * arrive); bytes are always per blob.
 *
 * Overhead outside an IoTraceScope (or with metrics disabled) is two
 * clock reads and two relaxed atomic adds per read; budgeted in
 * bench_micro's io_trace_overhead_pct.
 */

#ifndef LOTUS_PIPELINE_TRACED_STORE_H
#define LOTUS_PIPELINE_TRACED_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "pipeline/sample.h"
#include "pipeline/store.h"

namespace lotus::pipeline {

/** Read-latency histogram (nanoseconds per store read). */
inline constexpr const char *kStoreReadNsMetric = "lotus_store_read_ns";

/** Read-size histogram (bytes per store read). */
inline constexpr const char *kStoreReadBytesMetric = "lotus_store_read_bytes";

class TracedStore : public BlobStore
{
  public:
    explicit TracedStore(std::shared_ptr<const BlobStore> inner);

    std::int64_t size() const override;
    std::string read(std::int64_t index) const override;
    Result<std::string> tryRead(std::int64_t index) const override;
    /** Forwards the whole batch to the inner store (preserving its
     *  range coalescing), then records each delivered blob and emits
     *  its IoEvent with the request's (batch, sample) correlation. */
    std::vector<Result<std::string>>
    tryReadMany(const std::vector<BlobReadRequest> &requests) const override;
    std::uint64_t blobSize(std::int64_t index) const override;

    const BlobStore &inner() const { return *inner_; }

    /** Successful reads observed (always counted, metrics or not). */
    std::uint64_t reads() const
    {
        return reads_.load(std::memory_order_relaxed);
    }

    /** Bytes delivered by successful reads. */
    std::uint64_t bytesRead() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

  private:
    /** Record one successful read of @p bytes taking @p elapsed. */
    void note(std::uint64_t bytes, TimeNs elapsed, TimeNs start) const;

    std::shared_ptr<const BlobStore> inner_;
    mutable std::atomic<std::uint64_t> reads_{0};
    mutable std::atomic<std::uint64_t> bytes_{0};
};

} // namespace lotus::pipeline

#endif // LOTUS_PIPELINE_TRACED_STORE_H
