/**
 * @file
 * Geometric image operations (Pillow ImagingCrop / ImagingFlip
 * analogues).
 */

#ifndef LOTUS_IMAGE_GEOMETRY_H
#define LOTUS_IMAGE_GEOMETRY_H

#include "image/image.h"

namespace lotus::image {

/** Rectangular region in pixel coordinates. */
struct Rect
{
    int x = 0;
    int y = 0;
    int width = 0;
    int height = 0;
};

/** Copy out the given region. Fatal when out of bounds. */
Image crop(const Image &input, const Rect &region);

/** Mirror the image left-right. */
Image flipHorizontal(const Image &input);

} // namespace lotus::image

#endif // LOTUS_IMAGE_GEOMETRY_H
