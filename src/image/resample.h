/**
 * @file
 * Two-pass separable image resampling (Pillow ImagingResample
 * analogue) with precomputed filter coefficients.
 */

#ifndef LOTUS_IMAGE_RESAMPLE_H
#define LOTUS_IMAGE_RESAMPLE_H

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace lotus::image {

enum class Filter
{
    /** Triangle / bilinear filter (support 1). */
    Bilinear,
    /** Box filter (support 0.5); cheaper, blockier. */
    Box,
};

/**
 * Resize @p input to @p out_width x @p out_height with the given
 * filter. Runs the horizontal pass then the vertical pass, each
 * annotated as its ImagingResample*_8bpc kernel; coefficient
 * precomputation is annotated as precompute_coeffs.
 */
Image resize(const Image &input, int out_width, int out_height,
             Filter filter = Filter::Bilinear);

namespace detail {

/** Fractional bits of the fixed-point resample weights (Pillow's
 *  PRECISION_BITS analogue). */
constexpr int kWeightBits = 15;

/** Per-output-pixel filter window over one source axis. */
struct FilterWindow
{
    int first = 0;
    /** Normalized weights over [first, first + size). */
    std::vector<float> weights;
    /** The same weights quantized to kWeightBits fixed point; forced
     *  to sum exactly to 1 << kWeightBits so flat fields survive
     *  resampling unchanged. */
    std::vector<std::int32_t> fixed;
};

/** Precompute windows for mapping @p in_size to @p out_size. */
std::vector<FilterWindow> precomputeCoeffs(int in_size, int out_size,
                                           Filter filter);

} // namespace detail

} // namespace lotus::image

#endif // LOTUS_IMAGE_RESAMPLE_H
