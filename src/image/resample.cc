#include "image/resample.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "hwcount/registry.h"

namespace lotus::image {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace detail {

namespace {

double
filterValue(Filter filter, double x)
{
    switch (filter) {
      case Filter::Bilinear: {
        const double ax = std::abs(x);
        return ax < 1.0 ? 1.0 - ax : 0.0;
      }
      case Filter::Box:
        return x > -0.5 && x <= 0.5 ? 1.0 : 0.0;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

double
filterSupport(Filter filter)
{
    switch (filter) {
      case Filter::Bilinear: return 1.0;
      case Filter::Box: return 0.5;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

} // namespace

std::vector<FilterWindow>
precomputeCoeffs(int in_size, int out_size, Filter filter)
{
    LOTUS_ASSERT(in_size > 0 && out_size > 0, "resample sizes must be > 0");
    KernelScope scope(KernelId::PrecomputeCoeffs);

    const double scale = static_cast<double>(in_size) / out_size;
    const double filterscale = std::max(scale, 1.0);
    const double support = filterSupport(filter) * filterscale;

    std::vector<FilterWindow> windows(static_cast<std::size_t>(out_size));
    std::uint64_t total_weights = 0;
    for (int i = 0; i < out_size; ++i) {
        const double center = (i + 0.5) * scale;
        int first = static_cast<int>(std::floor(center - support));
        int last = static_cast<int>(std::ceil(center + support));
        first = std::max(first, 0);
        last = std::min(last, in_size);
        if (last <= first)
            last = std::min(first + 1, in_size);

        auto &window = windows[static_cast<std::size_t>(i)];
        window.first = first;
        window.weights.resize(static_cast<std::size_t>(last - first));
        double sum = 0.0;
        for (int k = first; k < last; ++k) {
            const double w =
                filterValue(filter, (k + 0.5 - center) / filterscale);
            window.weights[static_cast<std::size_t>(k - first)] =
                static_cast<float>(w);
            sum += w;
        }
        if (sum > 0.0) {
            for (auto &w : window.weights)
                w = static_cast<float>(w / sum);
        } else {
            // Degenerate window: fall back to nearest neighbour.
            std::fill(window.weights.begin(), window.weights.end(), 0.0f);
            if (!window.weights.empty())
                window.weights[0] = 1.0f;
        }
        total_weights += window.weights.size();
    }
    scope.stats().arith_ops += total_weights * 6;
    scope.stats().bytes_written += total_weights * 4;
    scope.stats().items += static_cast<std::uint64_t>(out_size);
    return windows;
}

} // namespace detail

namespace {

/** Horizontal pass: input HxW -> HxW'. */
Image
resampleHorizontal(const Image &input, int out_width,
                   const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleHorizontal);
    Image out(out_width, input.height());
    std::uint64_t macs = 0;
    for (int y = 0; y < input.height(); ++y) {
        const std::uint8_t *src = input.row(y);
        std::uint8_t *dst = out.row(y);
        for (int x = 0; x < out_width; ++x) {
            const auto &window = windows[static_cast<std::size_t>(x)];
            float acc[3] = {0.0f, 0.0f, 0.0f};
            for (std::size_t k = 0; k < window.weights.size(); ++k) {
                const float w = window.weights[k];
                const std::size_t s =
                    (static_cast<std::size_t>(window.first) + k) * 3;
                acc[0] += w * src[s + 0];
                acc[1] += w * src[s + 1];
                acc[2] += w * src[s + 2];
            }
            macs += window.weights.size() * 3;
            for (int c = 0; c < 3; ++c) {
                dst[x * 3 + c] = static_cast<std::uint8_t>(
                    std::clamp(acc[c] + 0.5f, 0.0f, 255.0f));
            }
        }
    }
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

/** Vertical pass: input HxW -> H'xW. */
Image
resampleVertical(const Image &input, int out_height,
                 const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleVertical);
    Image out(input.width(), out_height);
    std::uint64_t macs = 0;
    const int row_bytes = input.width() * Image::kChannels;
    std::vector<float> acc(static_cast<std::size_t>(row_bytes));
    for (int y = 0; y < out_height; ++y) {
        const auto &window = windows[static_cast<std::size_t>(y)];
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k = 0; k < window.weights.size(); ++k) {
            const float w = window.weights[k];
            const std::uint8_t *src =
                input.row(window.first + static_cast<int>(k));
            for (int b = 0; b < row_bytes; ++b)
                acc[static_cast<std::size_t>(b)] += w * src[b];
        }
        macs += window.weights.size() * static_cast<std::uint64_t>(row_bytes);
        std::uint8_t *dst = out.row(y);
        for (int b = 0; b < row_bytes; ++b) {
            dst[b] = static_cast<std::uint8_t>(
                std::clamp(acc[static_cast<std::size_t>(b)] + 0.5f, 0.0f,
                           255.0f));
        }
    }
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

} // namespace

Image
resize(const Image &input, int out_width, int out_height, Filter filter)
{
    LOTUS_ASSERT(!input.empty(), "cannot resize an empty image");
    LOTUS_ASSERT(out_width > 0 && out_height > 0,
                 "bad target size %dx%d", out_width, out_height);
    const auto h_windows =
        detail::precomputeCoeffs(input.width(), out_width, filter);
    const auto v_windows =
        detail::precomputeCoeffs(input.height(), out_height, filter);
    const Image horizontal = resampleHorizontal(input, out_width, h_windows);
    return resampleVertical(horizontal, out_height, v_windows);
}

} // namespace lotus::image
