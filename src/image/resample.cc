#include "image/resample.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "hwcount/registry.h"

namespace lotus::image {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace detail {

namespace {

double
filterValue(Filter filter, double x)
{
    switch (filter) {
      case Filter::Bilinear: {
        const double ax = std::abs(x);
        return ax < 1.0 ? 1.0 - ax : 0.0;
      }
      case Filter::Box:
        return x > -0.5 && x <= 0.5 ? 1.0 : 0.0;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

double
filterSupport(Filter filter)
{
    switch (filter) {
      case Filter::Bilinear: return 1.0;
      case Filter::Box: return 0.5;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

} // namespace

std::vector<FilterWindow>
precomputeCoeffs(int in_size, int out_size, Filter filter)
{
    LOTUS_ASSERT(in_size > 0 && out_size > 0, "resample sizes must be > 0");
    KernelScope scope(KernelId::PrecomputeCoeffs);

    const double scale = static_cast<double>(in_size) / out_size;
    const double filterscale = std::max(scale, 1.0);
    const double support = filterSupport(filter) * filterscale;

    std::vector<FilterWindow> windows(static_cast<std::size_t>(out_size));
    std::uint64_t total_weights = 0;
    for (int i = 0; i < out_size; ++i) {
        const double center = (i + 0.5) * scale;
        int first = static_cast<int>(std::floor(center - support));
        int last = static_cast<int>(std::ceil(center + support));
        first = std::max(first, 0);
        last = std::min(last, in_size);
        if (last <= first)
            last = std::min(first + 1, in_size);

        auto &window = windows[static_cast<std::size_t>(i)];
        window.first = first;
        window.weights.resize(static_cast<std::size_t>(last - first));
        double sum = 0.0;
        for (int k = first; k < last; ++k) {
            const double w =
                filterValue(filter, (k + 0.5 - center) / filterscale);
            window.weights[static_cast<std::size_t>(k - first)] =
                static_cast<float>(w);
            sum += w;
        }
        if (sum > 0.0) {
            for (auto &w : window.weights)
                w = static_cast<float>(w / sum);
        } else {
            // Degenerate window: fall back to nearest neighbour.
            std::fill(window.weights.begin(), window.weights.end(), 0.0f);
            if (!window.weights.empty())
                window.weights[0] = 1.0f;
        }
        // Quantize to fixed point, dumping the rounding residual on
        // the largest tap so the fixed weights sum to exactly one.
        window.fixed.resize(window.weights.size());
        std::int32_t fixed_sum = 0;
        std::size_t largest = 0;
        for (std::size_t k = 0; k < window.weights.size(); ++k) {
            const auto f = static_cast<std::int32_t>(std::lround(
                static_cast<double>(window.weights[k]) * (1 << kWeightBits)));
            window.fixed[k] = f;
            fixed_sum += f;
            if (window.weights[k] > window.weights[largest])
                largest = k;
        }
        if (!window.fixed.empty())
            window.fixed[largest] += (1 << kWeightBits) - fixed_sum;
        total_weights += window.weights.size();
    }
    scope.stats().arith_ops += total_weights * 6;
    scope.stats().bytes_written += total_weights * 4;
    scope.stats().items += static_cast<std::uint64_t>(out_size);
    return windows;
}

} // namespace detail

namespace {

/** Round and clamp a kWeightBits fixed-point accumulator (rounding
 *  constant already folded in) to u8. */
inline std::uint8_t
clampAccToU8(std::int32_t acc)
{
    return static_cast<std::uint8_t>(
        std::clamp(acc >> detail::kWeightBits, 0, 255));
}

constexpr std::int32_t kAccRound = 1 << (detail::kWeightBits - 1);

/** Horizontal pass: input HxW -> HxW'. Fixed-point accumulation:
 *  u8 taps times kWeightBits integer weights, one shift per byte. */
Image
resampleHorizontal(const Image &input, int out_width,
                   const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleHorizontal);
    Image out(out_width, input.height());
    std::uint64_t macs = 0;
    for (int y = 0; y < input.height(); ++y) {
        const std::uint8_t *src = input.row(y);
        std::uint8_t *dst = out.row(y);
        for (int x = 0; x < out_width; ++x) {
            const auto &window = windows[static_cast<std::size_t>(x)];
            const std::int32_t *wf = window.fixed.data();
            const std::size_t taps = window.fixed.size();
            const std::uint8_t *sp =
                src + static_cast<std::size_t>(window.first) * 3;
            std::int32_t acc0 = kAccRound;
            std::int32_t acc1 = kAccRound;
            std::int32_t acc2 = kAccRound;
            for (std::size_t k = 0; k < taps; ++k) {
                const std::int32_t w = wf[k];
                acc0 += w * sp[0];
                acc1 += w * sp[1];
                acc2 += w * sp[2];
                sp += 3;
            }
            macs += taps * 3;
            dst[x * 3 + 0] = clampAccToU8(acc0);
            dst[x * 3 + 1] = clampAccToU8(acc1);
            dst[x * 3 + 2] = clampAccToU8(acc2);
        }
    }
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

/** Vertical pass: input HxW -> H'xW. Fixed-point accumulation over a
 *  cache-blocked strip of columns so the accumulators and the active
 *  parts of the source rows stay resident in L1 across taps. */
Image
resampleVertical(const Image &input, int out_height,
                 const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleVertical);
    Image out(input.width(), out_height);
    std::uint64_t macs = 0;
    const int row_bytes = input.width() * Image::kChannels;
    constexpr int kStripBytes = 1024; // 4 KiB of i32 accumulators
    std::array<std::int32_t, kStripBytes> acc;
    for (int y = 0; y < out_height; ++y) {
        const auto &window = windows[static_cast<std::size_t>(y)];
        const std::size_t taps = window.fixed.size();
        std::uint8_t *dst = out.row(y);
        for (int b0 = 0; b0 < row_bytes; b0 += kStripBytes) {
            const int strip = std::min(kStripBytes, row_bytes - b0);
            std::fill(acc.begin(), acc.begin() + strip, kAccRound);
            for (std::size_t k = 0; k < taps; ++k) {
                const std::int32_t w = window.fixed[k];
                const std::uint8_t *src =
                    input.row(window.first + static_cast<int>(k)) + b0;
                for (int b = 0; b < strip; ++b)
                    acc[static_cast<std::size_t>(b)] += w * src[b];
            }
            for (int b = 0; b < strip; ++b)
                dst[b0 + b] = clampAccToU8(acc[static_cast<std::size_t>(b)]);
        }
        macs += taps * static_cast<std::uint64_t>(row_bytes);
    }
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

} // namespace

Image
resize(const Image &input, int out_width, int out_height, Filter filter)
{
    LOTUS_ASSERT(!input.empty(), "cannot resize an empty image");
    LOTUS_ASSERT(out_width > 0 && out_height > 0,
                 "bad target size %dx%d", out_width, out_height);
    const auto h_windows =
        detail::precomputeCoeffs(input.width(), out_width, filter);
    const auto v_windows =
        detail::precomputeCoeffs(input.height(), out_height, filter);
    const Image horizontal = resampleHorizontal(input, out_width, h_windows);
    return resampleVertical(horizontal, out_height, v_windows);
}

} // namespace lotus::image
