#include "image/resample.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "hwcount/registry.h"
#include "simd/dispatch.h"

namespace lotus::image {

static_assert(detail::kWeightBits == simd::kResampleWeightBits,
              "simd tier constants out of sync with the resampler");

using hwcount::KernelId;
using hwcount::KernelScope;

namespace detail {

namespace {

double
filterValue(Filter filter, double x)
{
    switch (filter) {
      case Filter::Bilinear: {
        const double ax = std::abs(x);
        return ax < 1.0 ? 1.0 - ax : 0.0;
      }
      case Filter::Box:
        return x > -0.5 && x <= 0.5 ? 1.0 : 0.0;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

double
filterSupport(Filter filter)
{
    switch (filter) {
      case Filter::Bilinear: return 1.0;
      case Filter::Box: return 0.5;
    }
    LOTUS_PANIC("bad filter %d", static_cast<int>(filter));
}

} // namespace

std::vector<FilterWindow>
precomputeCoeffs(int in_size, int out_size, Filter filter)
{
    LOTUS_ASSERT(in_size > 0 && out_size > 0, "resample sizes must be > 0");
    KernelScope scope(KernelId::PrecomputeCoeffs);

    const double scale = static_cast<double>(in_size) / out_size;
    const double filterscale = std::max(scale, 1.0);
    const double support = filterSupport(filter) * filterscale;

    std::vector<FilterWindow> windows(static_cast<std::size_t>(out_size));
    std::uint64_t total_weights = 0;
    for (int i = 0; i < out_size; ++i) {
        const double center = (i + 0.5) * scale;
        int first = static_cast<int>(std::floor(center - support));
        int last = static_cast<int>(std::ceil(center + support));
        first = std::max(first, 0);
        last = std::min(last, in_size);
        if (last <= first)
            last = std::min(first + 1, in_size);

        auto &window = windows[static_cast<std::size_t>(i)];
        window.first = first;
        window.weights.resize(static_cast<std::size_t>(last - first));
        double sum = 0.0;
        for (int k = first; k < last; ++k) {
            const double w =
                filterValue(filter, (k + 0.5 - center) / filterscale);
            window.weights[static_cast<std::size_t>(k - first)] =
                static_cast<float>(w);
            sum += w;
        }
        if (sum > 0.0) {
            for (auto &w : window.weights)
                w = static_cast<float>(w / sum);
        } else {
            // Degenerate window: fall back to nearest neighbour.
            std::fill(window.weights.begin(), window.weights.end(), 0.0f);
            if (!window.weights.empty())
                window.weights[0] = 1.0f;
        }
        // Quantize to fixed point, dumping the rounding residual on
        // the largest tap so the fixed weights sum to exactly one.
        window.fixed.resize(window.weights.size());
        std::int32_t fixed_sum = 0;
        std::size_t largest = 0;
        for (std::size_t k = 0; k < window.weights.size(); ++k) {
            const auto f = static_cast<std::int32_t>(std::lround(
                static_cast<double>(window.weights[k]) * (1 << kWeightBits)));
            window.fixed[k] = f;
            fixed_sum += f;
            if (window.weights[k] > window.weights[largest])
                largest = k;
        }
        if (!window.fixed.empty())
            window.fixed[largest] += (1 << kWeightBits) - fixed_sum;
        total_weights += window.weights.size();
    }
    scope.stats().arith_ops += total_weights * 6;
    scope.stats().bytes_written += total_weights * 4;
    scope.stats().items += static_cast<std::uint64_t>(out_size);
    return windows;
}

} // namespace detail

namespace {

/** FilterWindow list flattened into the SoA layout the dispatched
 *  horizontal kernel consumes (per output pixel: first source pixel,
 *  weight offset, tap count; all weights in one array). */
struct FlatWindows
{
    std::vector<std::int32_t> first;
    std::vector<std::int32_t> offset;
    std::vector<std::int32_t> count;
    std::vector<std::int32_t> weights;
    std::uint64_t total_taps = 0;
};

FlatWindows
flattenWindows(const std::vector<detail::FilterWindow> &windows)
{
    FlatWindows flat;
    flat.first.reserve(windows.size());
    flat.offset.reserve(windows.size());
    flat.count.reserve(windows.size());
    for (const auto &window : windows) {
        flat.first.push_back(window.first);
        flat.offset.push_back(
            static_cast<std::int32_t>(flat.weights.size()));
        flat.count.push_back(static_cast<std::int32_t>(window.fixed.size()));
        flat.weights.insert(flat.weights.end(), window.fixed.begin(),
                            window.fixed.end());
    }
    flat.total_taps = flat.weights.size();
    return flat;
}

/** Horizontal pass: input HxW -> HxW'. Fixed-point accumulation:
 *  u8 taps times kWeightBits integer weights; the per-row loop is
 *  dispatched per SIMD tier. */
Image
resampleHorizontal(const Image &input, int out_width,
                   const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleHorizontal);
    Image out = Image::uninitialized(out_width, input.height());
    const FlatWindows flat = flattenWindows(windows);
    const auto &kernel = simd::kernels();
    for (int y = 0; y < input.height(); ++y) {
        kernel.resample_h_rgb_row(input.row(y), out.row(y), out_width,
                                  flat.first.data(), flat.offset.data(),
                                  flat.count.data(), flat.weights.data());
    }
    const std::uint64_t macs =
        flat.total_taps * 3 * static_cast<std::uint64_t>(input.height());
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

/** Vertical pass: input HxW -> H'xW. One weight per source row; the
 *  per-output-row loop is dispatched per SIMD tier. */
Image
resampleVertical(const Image &input, int out_height,
                 const std::vector<detail::FilterWindow> &windows)
{
    KernelScope scope(KernelId::ResampleVertical);
    Image out = Image::uninitialized(input.width(), out_height);
    std::uint64_t macs = 0;
    const int row_bytes = input.width() * Image::kChannels;
    const auto &kernel = simd::kernels();
    for (int y = 0; y < out_height; ++y) {
        const auto &window = windows[static_cast<std::size_t>(y)];
        kernel.resample_v_row(input.row(window.first), row_bytes,
                              static_cast<int>(window.fixed.size()),
                              window.fixed.data(), out.row(y), row_bytes);
        macs += window.fixed.size() * static_cast<std::uint64_t>(row_bytes);
    }
    scope.stats().arith_ops += macs * 2;
    scope.stats().bytes_read += macs;
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

} // namespace

Image
resize(const Image &input, int out_width, int out_height, Filter filter)
{
    LOTUS_ASSERT(!input.empty(), "cannot resize an empty image");
    LOTUS_ASSERT(out_width > 0 && out_height > 0,
                 "bad target size %dx%d", out_width, out_height);
    const auto h_windows =
        detail::precomputeCoeffs(input.width(), out_width, filter);
    const auto v_windows =
        detail::precomputeCoeffs(input.height(), out_height, filter);
    const Image horizontal = resampleHorizontal(input, out_width, h_windows);
    return resampleVertical(horizontal, out_height, v_windows);
}

} // namespace lotus::image
