#include "image/codec/codec.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/logging.h"
#include "hwcount/registry.h"
#include "image/codec/bitio.h"
#include "image/codec/color.h"
#include "image/codec/dct.h"
#include "metrics/metrics.h"
#include "simd/dispatch.h"

namespace lotus::image::codec {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace {

constexpr char kMagic[4] = {'L', 'J', '0', '1'};
constexpr std::uint32_t kEobRun = 63;

int
blocksAcross(int extent)
{
    return (extent + kBlockDim - 1) / kBlockDim;
}

/** True when block (bx, by) lies fully inside the plane, so loads
 *  and stores need no per-pixel bounds handling. */
template <typename PlaneT>
bool
blockInterior(const PlaneT &plane, int bx, int by)
{
    return (bx + 1) * kBlockDim <= plane.width &&
           (by + 1) * kBlockDim <= plane.height;
}

/** Load an 8x8 block from a plane with edge replication, centered
 *  around zero (sample - 128). */
void
loadBlock(const Plane &plane, int bx, int by, Block &out)
{
    if (blockInterior(plane, bx, by)) {
        // Interior fast path: straight row reads, no clamping.
        for (int y = 0; y < kBlockDim; ++y) {
            const float *row = plane.row(by * kBlockDim + y) +
                               bx * kBlockDim;
            float *dst = &out[static_cast<std::size_t>(y * kBlockDim)];
            for (int x = 0; x < kBlockDim; ++x)
                dst[x] = row[x] - 128.0f;
        }
        return;
    }
    for (int y = 0; y < kBlockDim; ++y) {
        const int sy = std::min(by * kBlockDim + y, plane.height - 1);
        const float *row = plane.row(sy);
        for (int x = 0; x < kBlockDim; ++x) {
            const int sx = std::min(bx * kBlockDim + x, plane.width - 1);
            out[static_cast<std::size_t>(y * kBlockDim + x)] =
                row[sx] - 128.0f;
        }
    }
}

/** Store an 8x8 block into a plane, clipping to plane bounds. */
void
storeBlock(Plane &plane, int bx, int by, const Block &in)
{
    if (blockInterior(plane, bx, by)) {
        // Interior fast path: straight row writes, bounds known good.
        for (int y = 0; y < kBlockDim; ++y) {
            float *row = plane.row(by * kBlockDim + y) + bx * kBlockDim;
            const float *src = &in[static_cast<std::size_t>(y * kBlockDim)];
            for (int x = 0; x < kBlockDim; ++x)
                row[x] = std::clamp(src[x] + 128.0f, 0.0f, 255.0f);
        }
        return;
    }
    for (int y = 0; y < kBlockDim; ++y) {
        const int sy = by * kBlockDim + y;
        if (sy >= plane.height)
            break;
        float *row = plane.row(sy);
        for (int x = 0; x < kBlockDim; ++x) {
            const int sx = bx * kBlockDim + x;
            if (sx >= plane.width)
                break;
            row[sx] = std::clamp(
                in[static_cast<std::size_t>(y * kBlockDim + x)] + 128.0f,
                0.0f, 255.0f);
        }
    }
}

/** Centered IDCT sample -> clamped 1/16th-step integer sample
 *  (round to nearest); the clamp mirrors the float store's
 *  [0, 255] range. */
inline std::int16_t
sampleToI16(float centered)
{
    // Clamp in the float domain: corrupt streams can yield IDCT
    // samples far outside int range, and an out-of-range float->int
    // cast is UB.
    const float s = std::clamp(
        (centered + 128.0f) * (1 << kSampleFracBits) + 0.5f, 0.0f,
        static_cast<float>(kSampleMax));
    return static_cast<std::int16_t>(s);
}

/** Store an 8x8 block into the fast path's integer plane: the single
 *  float->int conversion of the decode tail happens here, so the
 *  chroma upsample and color conversion downstream stay integer. */
void
storeBlock(PlaneI16 &plane, int bx, int by, const Block &in)
{
    if (blockInterior(plane, bx, by)) {
        // Interior blocks go through the dispatched store/clamp
        // kernel (same rounding/clamp as sampleToI16 in every tier).
        simd::kernels().idct_store_block(
            in.data(), plane.row(by * kBlockDim) + bx * kBlockDim,
            plane.width);
        return;
    }
    for (int y = 0; y < kBlockDim; ++y) {
        const int sy = by * kBlockDim + y;
        if (sy >= plane.height)
            break;
        std::int16_t *row = plane.row(sy);
        for (int x = 0; x < kBlockDim; ++x) {
            const int sx = bx * kBlockDim + x;
            if (sx >= plane.width)
                break;
            row[sx] =
                sampleToI16(in[static_cast<std::size_t>(y * kBlockDim + x)]);
        }
    }
}

/** Entropy-code one quantized block (DC delta + AC runs). */
void
writeBlock(BitWriter &writer, const QuantBlock &q, std::int32_t &dc_pred,
           std::uint64_t &symbols)
{
    const auto &zz = zigzagOrder();
    const std::int32_t dc = q[static_cast<std::size_t>(zz[0])];
    writer.putSe(dc - dc_pred);
    dc_pred = dc;
    ++symbols;

    int run = 0;
    for (int k = 1; k < kBlockSize; ++k) {
        const std::int32_t level = q[static_cast<std::size_t>(zz[k])];
        if (level == 0) {
            ++run;
            continue;
        }
        writer.putUe(static_cast<std::uint32_t>(run));
        writer.putSe(level);
        symbols += 2;
        run = 0;
    }
    writer.putUe(kEobRun);
    ++symbols;
}

/** Decode one quantized block. Returns false on stream corruption.
 *  @p extent summarizes the coded coefficients (count and last zigzag
 *  index) so the inverse transform can take sparse fast paths. */
bool
readBlock(BitReader &reader, QuantBlock &q, std::int32_t &dc_pred,
          std::uint64_t &symbols, CoeffExtent &extent)
{
    // Coefficient magnitude bound: valid quantized levels never leave
    // the low thousands (samples are 8-bit, the DCT is orthonormal),
    // but a corrupt stream can code near-INT32_MAX levels whose
    // accumulation and downstream dequant math would overflow. Reject
    // anything far outside the legitimate range as corruption.
    constexpr std::int64_t kMaxCoeffMagnitude = std::int64_t(1) << 20;

    const auto &zz = zigzagOrder();
    q.fill(0);
    const std::int64_t dc =
        static_cast<std::int64_t>(dc_pred) + reader.getSe();
    if (reader.overrun() || dc < -kMaxCoeffMagnitude ||
        dc > kMaxCoeffMagnitude)
        return false;
    dc_pred = static_cast<std::int32_t>(dc);
    q[static_cast<std::size_t>(zz[0])] = dc_pred;
    ++symbols;
    extent.nonzero = dc_pred != 0 ? 1 : 0;
    extent.last_zz = 0;

    int k = 1;
    while (k < kBlockSize) {
        const std::uint32_t run = reader.getUe();
        if (reader.overrun())
            return false;
        ++symbols;
        if (run == kEobRun)
            return true;
        // A corrupt stream can code an arbitrary 32-bit run; reject it
        // before the int cast below can wrap negative and index zz[].
        if (run > static_cast<std::uint32_t>(kBlockSize))
            return false;
        k += static_cast<int>(run);
        if (k >= kBlockSize)
            return false;
        const std::int32_t level = reader.getSe();
        if (reader.overrun() || level == 0 ||
            level < -kMaxCoeffMagnitude || level > kMaxCoeffMagnitude)
            return false;
        q[static_cast<std::size_t>(zz[k])] = level;
        ++symbols;
        ++extent.nonzero;
        extent.last_zz = static_cast<std::int16_t>(k);
        ++k;
    }
    // A full block of 63 coded ACs still carries its EOB marker.
    const std::uint32_t eob = reader.getUe();
    ++symbols;
    return !reader.overrun() && eob == kEobRun;
}

void
encodePlane(const Plane &plane, const std::array<std::uint16_t, 64> &table,
            BitWriter &writer)
{
    const int bw = blocksAcross(plane.width);
    const int bh = blocksAcross(plane.height);
    std::int32_t dc_pred = 0;
    std::vector<QuantBlock> row_blocks(static_cast<std::size_t>(bw));
    for (int by = 0; by < bh; ++by) {
        {
            KernelScope fdct_scope(KernelId::ForwardDct);
            KernelScope quant_scope(KernelId::QuantizeBlock);
            // Interleaved per-block fdct+quant; attribute the DCT math
            // to forward_dct and the division pass to quantize_block
            // by splitting work stats (time lands on the inner scope's
            // self time, which is the quantize pass here).
            for (int bx = 0; bx < bw; ++bx) {
                Block spatial, freq;
                loadBlock(plane, bx, by, spatial);
                forwardDct(spatial, freq);
                quantize(freq, table, row_blocks[static_cast<std::size_t>(bx)]);
            }
            fdct_scope.stats().arith_ops +=
                static_cast<std::uint64_t>(bw) * 64 * 16;
            fdct_scope.stats().bytes_read +=
                static_cast<std::uint64_t>(bw) * 64 * 4;
            fdct_scope.stats().items += static_cast<std::uint64_t>(bw);
            quant_scope.stats().arith_ops +=
                static_cast<std::uint64_t>(bw) * 64 * 2;
            quant_scope.stats().bytes_written +=
                static_cast<std::uint64_t>(bw) * 64 * 4;
            quant_scope.stats().items += static_cast<std::uint64_t>(bw);
        }
        {
            KernelScope entropy_scope(KernelId::EncodeMcu);
            std::uint64_t symbols = 0;
            const std::size_t bits_before = writer.bitCount();
            for (int bx = 0; bx < bw; ++bx)
                writeBlock(writer, row_blocks[static_cast<std::size_t>(bx)],
                           dc_pred, symbols);
            entropy_scope.stats().branches += symbols * 3;
            entropy_scope.stats().arith_ops += symbols * 4;
            entropy_scope.stats().bytes_written +=
                (writer.bitCount() - bits_before) / 8;
            entropy_scope.stats().items += symbols;
        }
    }
}

/** Decode one plane. The plane type selects the implementation: the
 *  float Plane runs the retained dense reference (dequantize + dense
 *  IDCT), the integer PlaneI16 runs the fast path (fused sparse
 *  dequant + IDCT, integer block store). Both attribute work to the
 *  same decode_mcu / dequantize_block / jpeg_idct_islow kernels. */
template <typename PlaneT>
bool
decodePlane(PlaneT &plane, const std::array<std::uint16_t, 64> &table,
            BitReader &reader)
{
    constexpr bool reference = std::is_same_v<PlaneT, Plane>;
    const int bw = blocksAcross(plane.width);
    const int bh = blocksAcross(plane.height);
    std::int32_t dc_pred = 0;
    std::vector<QuantBlock> row_blocks(static_cast<std::size_t>(bw));
    std::vector<CoeffExtent> row_extents(static_cast<std::size_t>(bw));
    for (int by = 0; by < bh; ++by) {
        {
            KernelScope entropy_scope(KernelId::DecodeMcu);
            std::uint64_t symbols = 0;
            const std::size_t bits_before = reader.bitPosition();
            for (int bx = 0; bx < bw; ++bx) {
                if (!readBlock(reader,
                               row_blocks[static_cast<std::size_t>(bx)],
                               dc_pred, symbols,
                               row_extents[static_cast<std::size_t>(bx)]))
                    return false;
            }
            entropy_scope.stats().branches += symbols * 3;
            entropy_scope.stats().arith_ops += symbols * 4;
            entropy_scope.stats().bytes_read +=
                (reader.bitPosition() - bits_before) / 8;
            entropy_scope.stats().items += symbols;
        }
        if constexpr (reference) {
            KernelScope dequant_scope(KernelId::DequantizeBlock);
            KernelScope idct_scope(KernelId::IdctBlock);
            for (int bx = 0; bx < bw; ++bx) {
                Block freq, spatial;
                dequantize(row_blocks[static_cast<std::size_t>(bx)], table,
                           freq);
                inverseDct(freq, spatial);
                storeBlock(plane, bx, by, spatial);
            }
            dequant_scope.stats().arith_ops +=
                static_cast<std::uint64_t>(bw) * 64;
            dequant_scope.stats().bytes_read +=
                static_cast<std::uint64_t>(bw) * 64 * 4;
            dequant_scope.stats().items += static_cast<std::uint64_t>(bw);
            idct_scope.stats().arith_ops +=
                static_cast<std::uint64_t>(bw) * 64 * 16;
            idct_scope.stats().bytes_written +=
                static_cast<std::uint64_t>(bw) * 64 * 4;
            idct_scope.stats().items += static_cast<std::uint64_t>(bw);
        } else {
            // Fused sparse dequant + IDCT. Work stats record the work
            // *actually done*: the dequantize pass multiplies only the
            // nonzero coefficients and scans only the coded prefix of
            // the zigzag order; the IDCT reports the sparse op count.
            KernelScope dequant_scope(KernelId::DequantizeBlock);
            KernelScope idct_scope(KernelId::IdctBlock);
            std::uint64_t dequant_mults = 0;
            std::uint64_t coeffs_scanned = 0;
            std::uint64_t idct_ops = 0;
            for (int bx = 0; bx < bw; ++bx) {
                const auto &extent =
                    row_extents[static_cast<std::size_t>(bx)];
                Block spatial;
                idct_ops += dequantIdctSparse(
                    row_blocks[static_cast<std::size_t>(bx)], table, extent,
                    spatial);
                storeBlock(plane, bx, by, spatial);
                if (extent.nonzero >= kIdctDenseCutoff) {
                    // Dense fallback dequantizes the whole block.
                    dequant_mults += 64;
                    coeffs_scanned += 64;
                } else {
                    dequant_mults +=
                        static_cast<std::uint64_t>(extent.nonzero);
                    coeffs_scanned +=
                        static_cast<std::uint64_t>(extent.last_zz) + 1;
                }
            }
            dequant_scope.stats().arith_ops += dequant_mults;
            dequant_scope.stats().bytes_read += coeffs_scanned * 4;
            dequant_scope.stats().items += static_cast<std::uint64_t>(bw);
            idct_scope.stats().arith_ops += idct_ops;
            idct_scope.stats().bytes_written +=
                static_cast<std::uint64_t>(bw) * 64 * 4;
            idct_scope.stats().items += static_cast<std::uint64_t>(bw);
        }
    }
    return true;
}

/** Plane decode + upsample + color-convert tail, shared between the
 *  fast (PlaneI16) and reference (Plane) pipelines. */
template <typename PlaneT>
Result<Image>
decodeTail(const LjpgHeader &header, BitReader &reader)
{
    // Every sample is written by the block store below, so the
    // planes can skip the zero fill (one less memset per sample).
    PlaneT y = PlaneT::uninitialized(header.width, header.height);
    const int cw = header.subsampled ? (header.width + 1) / 2 : header.width;
    const int ch =
        header.subsampled ? (header.height + 1) / 2 : header.height;
    PlaneT cb = PlaneT::uninitialized(cw, ch);
    PlaneT cr = PlaneT::uninitialized(cw, ch);

    const auto luma_table = quantTable(header.quality, /*chroma=*/false);
    const auto chroma_table = quantTable(header.quality, /*chroma=*/true);
    if (!decodePlane(y, luma_table, reader))
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "corrupt LJPG luma plane (bit %zu)",
                           reader.bitPosition());
    reader.alignByte();
    if (!decodePlane(cb, chroma_table, reader))
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "corrupt LJPG Cb plane (bit %zu)",
                           reader.bitPosition());
    reader.alignByte();
    if (!decodePlane(cr, chroma_table, reader))
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "corrupt LJPG Cr plane (bit %zu)",
                           reader.bitPosition());

    if (header.subsampled) {
        cb = upsample2x(cb, header.width, header.height);
        cr = upsample2x(cr, header.width, header.height);
    }
    return yccToRgb(y, cb, cr);
}

} // namespace

std::string
encode(const Image &input, const EncodeOptions &options)
{
    LOTUS_ASSERT(input.width() > 0 && input.height() > 0,
                 "cannot encode an empty image");
    LOTUS_ASSERT(input.width() <= 0xFFFF && input.height() <= 0xFFFF,
                 "image too large for LJPG header");

    Plane y, cb, cr;
    rgbToYcc(input, y, cb, cr);
    if (options.subsample_chroma) {
        cb = downsample2x2(cb);
        cr = downsample2x2(cr);
    }

    BitWriter writer;
    const auto luma_table = quantTable(options.quality, /*chroma=*/false);
    const auto chroma_table = quantTable(options.quality, /*chroma=*/true);
    encodePlane(y, luma_table, writer);
    writer.alignByte();
    encodePlane(cb, chroma_table, writer);
    writer.alignByte();
    encodePlane(cr, chroma_table, writer);

    std::string payload = writer.take();
    std::string out;
    out.reserve(payload.size() + 10);
    out.append(kMagic, sizeof(kMagic));
    const auto w = static_cast<std::uint16_t>(input.width());
    const auto h = static_cast<std::uint16_t>(input.height());
    out.push_back(static_cast<char>(w & 0xFF));
    out.push_back(static_cast<char>(w >> 8));
    out.push_back(static_cast<char>(h & 0xFF));
    out.push_back(static_cast<char>(h >> 8));
    out.push_back(static_cast<char>(options.quality));
    out.push_back(static_cast<char>(options.subsample_chroma ? 1 : 0));
    out += payload;
    return out;
}

Result<LjpgHeader>
tryPeekHeader(const std::string &bytes)
{
    if (bytes.size() < 10)
        return LOTUS_ERROR(ErrorCode::kTruncated,
                           "not an LJPG stream (%zu bytes, header needs 10)",
                           bytes.size());
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "not an LJPG stream (bad magic)");
    LjpgHeader header;
    const auto *u = reinterpret_cast<const std::uint8_t *>(bytes.data());
    header.width = u[4] | (u[5] << 8);
    header.height = u[6] | (u[7] << 8);
    header.quality = u[8];
    header.subsampled = u[9] != 0;
    if (header.width <= 0 || header.height <= 0 || header.quality < 1 ||
        header.quality > 100)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "corrupt LJPG header (%dx%d q%d)", header.width,
                           header.height, header.quality);
    return header;
}

LjpgHeader
peekHeader(const std::string &bytes)
{
    Result<LjpgHeader> header = tryPeekHeader(bytes);
    if (!header.ok())
        LOTUS_FATAL("%s", header.error().describe().c_str());
    return header.take();
}

namespace {

/** Decode telemetry: latency histogram plus fast/reference-path hit
 *  counters. Handles resolve once; recording is branch-gated. */
struct DecodeMetrics
{
    metrics::Histogram *decode_ns;
    metrics::Counter *fast_total;
    metrics::Counter *reference_total;

    static const DecodeMetrics &
    instance()
    {
        static const DecodeMetrics m = [] {
            auto &registry = metrics::MetricsRegistry::instance();
            return DecodeMetrics{
                registry.histogram("lotus_codec_decode_ns"),
                registry.counter("lotus_codec_decode_fast_total"),
                registry.counter("lotus_codec_decode_reference_total"),
            };
        }();
        return m;
    }
};

} // namespace

Result<Image>
tryDecode(const std::string &bytes, const DecodeOptions &options)
{
    const DecodeMetrics &decode_metrics = DecodeMetrics::instance();
    metrics::ScopedTimer decode_timer(decode_metrics.decode_ns);
    if (options.reference)
        decode_metrics.reference_total->add(1);
    else
        decode_metrics.fast_total->add(1);

    Result<LjpgHeader> parsed = tryPeekHeader(bytes);
    if (!parsed.ok())
        return parsed.takeError();
    const LjpgHeader header = parsed.take();
    if (static_cast<std::int64_t>(header.width) * header.height >
        options.max_pixels)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "LJPG header claims %dx%d, above the %lld-pixel "
                           "decode cap",
                           header.width, header.height,
                           static_cast<long long>(options.max_pixels));
    const auto *payload =
        reinterpret_cast<const std::uint8_t *>(bytes.data()) + 10;
    const std::size_t payload_size = bytes.size() - 10;

    // Reference mode keeps the source-manager style bulk copy of the
    // compressed payload; the fast path consumes the caller's buffer
    // in place (zero-copy) and only scans it.
    std::vector<std::uint8_t> buffered;
    {
        KernelScope fill_scope(KernelId::FillBitBuffer);
        if (options.reference) {
            buffered.assign(bytes.begin() + 10, bytes.end());
            fill_scope.stats().bytes_written += payload_size;
        }
        fill_scope.stats().bytes_read += payload_size;
        fill_scope.stats().items += payload_size;
    }
    BitReader reader(options.reference ? buffered.data() : payload,
                     payload_size);
    if (options.reference)
        return decodeTail<Plane>(header, reader);
    return decodeTail<PlaneI16>(header, reader);
}

Image
decode(const std::string &bytes, const DecodeOptions &options)
{
    Result<Image> image = tryDecode(bytes, options);
    if (!image.ok())
        LOTUS_FATAL("%s", image.error().describe().c_str());
    return image.take();
}

} // namespace lotus::image::codec
