/**
 * @file
 * RGB <-> YCbCr conversion and plane containers for the LJPG codec.
 */

#ifndef LOTUS_IMAGE_CODEC_COLOR_H
#define LOTUS_IMAGE_CODEC_COLOR_H

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace lotus::image::codec {

/** A single-channel float plane. */
struct Plane
{
    int width = 0;
    int height = 0;
    std::vector<float> samples;

    Plane() = default;
    Plane(int w, int h)
        : width(w), height(h),
          samples(static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
                  0.0f)
    {
    }

    float *row(int y) { return samples.data() + static_cast<std::size_t>(y) * width; }
    const float *
    row(int y) const
    {
        return samples.data() + static_cast<std::size_t>(y) * width;
    }
};

/** Split an RGB image into full-resolution Y, Cb, Cr planes.
 *  Annotated as rgb_ycc_convert. */
void rgbToYcc(const Image &rgb, Plane &y, Plane &cb, Plane &cr);

/** 2x2 box downsample of a plane (chroma subsampling on encode). */
Plane downsample2x2(const Plane &full);

/** Bilinear 2x upsample back to (w, h). Annotated as sep_upsample. */
Plane upsample2x(const Plane &half, int width, int height);

/**
 * Recombine Y/Cb/Cr planes (all full resolution) into an RGB image.
 * The row-assembly loop is annotated as decompress_onepass and the
 * per-row color math as ycc_rgb_convert, mirroring libjpeg's split.
 */
Image yccToRgb(const Plane &y, const Plane &cb, const Plane &cr);

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_COLOR_H
