/**
 * @file
 * RGB <-> YCbCr conversion and plane containers for the LJPG codec.
 */

#ifndef LOTUS_IMAGE_CODEC_COLOR_H
#define LOTUS_IMAGE_CODEC_COLOR_H

#include <cstdint>

#include "image/image.h"
#include "memory/buffer_pool.h"

namespace lotus::image::codec {

/** A single-channel float plane (pooled storage; reads up to
 *  memory::kSlackBytes past the last sample are in bounds). */
struct Plane
{
    int width = 0;
    int height = 0;
    memory::PooledArray<float> samples;

    Plane() = default;
    Plane(int w, int h)
        : width(w), height(h),
          samples(static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
                  /*zero=*/true)
    {
    }

    /** Plane with indeterminate contents (every sample written by
     *  the decode path). */
    static Plane
    uninitialized(int w, int h)
    {
        Plane p;
        p.width = w;
        p.height = h;
        p.samples = memory::PooledArray<float>(
            static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
            /*zero=*/false);
        return p;
    }

    float *row(int y) { return samples.data() + static_cast<std::size_t>(y) * width; }
    const float *
    row(int y) const
    {
        return samples.data() + static_cast<std::size_t>(y) * width;
    }
};

/** Fractional bits of the fast decode path's integer plane samples:
 *  a PlaneI16 sample counts 1/16ths of a level, so [0, 255] maps to
 *  [0, 4080]. */
constexpr int kSampleFracBits = 4;
/** Largest PlaneI16 sample (255 in 1/16th steps). */
constexpr std::int16_t kSampleMax = 255 << kSampleFracBits;

/**
 * A single-channel integer plane used by the fast decode path:
 * samples are 12.4 fixed point (1/16th-level steps), clamped to
 * [0, kSampleMax] at the block store, so the chroma upsample and the
 * YCC->RGB conversion downstream run in pure integer arithmetic with
 * no per-pixel float<->int conversions.
 */
struct PlaneI16
{
    int width = 0;
    int height = 0;
    memory::PooledArray<std::int16_t> samples;

    PlaneI16() = default;
    PlaneI16(int w, int h)
        : width(w), height(h),
          samples(static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
                  /*zero=*/true)
    {
    }

    /** Plane with indeterminate contents (every sample written by
     *  the decode path). */
    static PlaneI16
    uninitialized(int w, int h)
    {
        PlaneI16 p;
        p.width = w;
        p.height = h;
        p.samples = memory::PooledArray<std::int16_t>(
            static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
            /*zero=*/false);
        return p;
    }

    std::int16_t *
    row(int y)
    {
        return samples.data() + static_cast<std::size_t>(y) * width;
    }
    const std::int16_t *
    row(int y) const
    {
        return samples.data() + static_cast<std::size_t>(y) * width;
    }
};

/** Quantize a float plane (samples in [0, 255]) to the fast path's
 *  1/16th-step integer representation (round to nearest). */
PlaneI16 quantizePlane(const Plane &plane);

/** Split an RGB image into full-resolution Y, Cb, Cr planes using
 *  precomputed 16-bit fixed-point tables (libjpeg rgb_ycc_convert
 *  style; error < 2^-15 vs the float matrix).
 *  Annotated as rgb_ycc_convert. */
void rgbToYcc(const Image &rgb, Plane &y, Plane &cb, Plane &cr);

/** 2x2 box downsample of a plane (chroma subsampling on encode). */
Plane downsample2x2(const Plane &full);

/** Bilinear 2x upsample back to (w, h): the retained scalar float
 *  reference (per-pixel source index math). Annotated as
 *  sep_upsample. */
Plane upsample2x(const Plane &half, int width, int height);

/** Fast-path bilinear 2x upsample: the source indices and quarter-
 *  unit integer weights are hoisted per column, and the pixel loop is
 *  pure integer (weights {0, 1, 3}/4 are exact, so the result matches
 *  the float reference to within the 1/32-level rounding of the
 *  output grid). Annotated as sep_upsample. */
PlaneI16 upsample2x(const PlaneI16 &half, int width, int height);

/**
 * Recombine Y/Cb/Cr planes (all full resolution) into an RGB image:
 * the retained per-pixel float matrix reference. The row-assembly
 * loop is annotated as decompress_onepass and the per-row color math
 * as ycc_rgb_convert, mirroring libjpeg's split.
 */
Image yccToRgb(const Plane &y, const Plane &cb, const Plane &cr);

/**
 * Fast-path YCC->RGB over integer planes: luma feeds the 16.16
 * accumulator directly (shift, exact) and chroma indexes precomputed
 * fixed-point Cr->R / Cb->B / cross-term tables at half-level
 * resolution, keeping every channel within one count of the float
 * reference. Same kernel annotations as the reference overload.
 */
Image yccToRgb(const PlaneI16 &y, const PlaneI16 &cb, const PlaneI16 &cr);

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_COLOR_H
