#include "image/codec/bitio.h"

#include <bit>

namespace lotus::image::codec {

void
BitWriter::putBits(std::uint32_t bits, int count)
{
    LOTUS_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    for (int i = count - 1; i >= 0; --i) {
        current_ = static_cast<std::uint8_t>(
            (current_ << 1) | ((bits >> i) & 1u));
        if (++bit_pos_ == 8) {
            bytes_.push_back(current_);
            current_ = 0;
            bit_pos_ = 0;
        }
    }
}

void
BitWriter::putUe(std::uint32_t value)
{
    // Exp-Golomb: N leading zeros, then the (N+1)-bit value+1.
    const std::uint32_t v = value + 1;
    const int bits = 32 - std::countl_zero(v);
    putBits(0, bits - 1);
    putBits(v, bits);
}

void
BitWriter::putSe(std::int32_t value)
{
    // Zigzag map: 0, -1, 1, -2, 2 ... -> 0, 1, 2, 3, 4 ...
    const std::uint32_t mapped =
        value <= 0 ? static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(value))
                   : static_cast<std::uint32_t>(2 * static_cast<std::int64_t>(value) - 1);
    putUe(mapped);
}

void
BitWriter::alignByte()
{
    if (bit_pos_ > 0)
        putBits(0, 8 - bit_pos_);
}

std::string
BitWriter::take()
{
    alignByte();
    std::string out(reinterpret_cast<const char *>(bytes_.data()),
                    bytes_.size());
    bytes_.clear();
    return out;
}

BitReader::BitReader(const std::uint8_t *data, std::size_t size)
    : data_(data), size_bits_(size * 8), size_bytes_(size)
{
}

void
BitReader::refill()
{
    while (window_bits_ <= 56 && byte_cursor_ < size_bytes_) {
        window_ = (window_ << 8) | data_[byte_cursor_++];
        window_bits_ += 8;
    }
}

std::uint32_t
BitReader::getBits(int count)
{
    // The reader sits on the untrusted-input surface: a malformed
    // stream must surface as a decode error (overrun), never a panic.
    if (count < 0 || count > 32) {
        overrun_ = true;
        bit_index_ = size_bits_;
        return 0;
    }
    if (count == 0)
        return 0;
    if (bit_index_ + static_cast<std::size_t>(count) > size_bits_) {
        overrun_ = true;
        bit_index_ = size_bits_;
        return 0;
    }
    if (window_bits_ < count)
        refill();
    bit_index_ += static_cast<std::size_t>(count);
    window_bits_ -= count;
    return static_cast<std::uint32_t>((window_ >> window_bits_) &
                                      ((1ull << count) - 1));
}

std::uint32_t
BitReader::getUe()
{
    // Fast path: count the leading zeros of the whole code with one
    // clz over the refilled window instead of a bit-at-a-time loop.
    if (window_bits_ < 57)
        refill();
    if (window_bits_ > 0) {
        const std::uint64_t aligned = window_ << (64 - window_bits_);
        const int zeros =
            aligned == 0 ? 64 : std::countl_zero(aligned);
        const int code_bits = 2 * zeros + 1;
        if (zeros <= 31 && code_bits <= window_bits_) {
            window_bits_ -= code_bits;
            bit_index_ += static_cast<std::size_t>(code_bits);
            const auto code = static_cast<std::uint32_t>(
                (window_ >> window_bits_) &
                ((1ull << code_bits) - 1));
            return code - 1;
        }
    }
    // Slow path: stream nearly exhausted or an over-long code
    // (corruption); the bitwise loop handles overrun bookkeeping.
    int zeros = 0;
    while (!overrun_ && getBits(1) == 0) {
        if (++zeros > 32) {
            overrun_ = true;
            return 0;
        }
    }
    if (overrun_)
        return 0;
    const std::uint32_t tail = zeros == 0 ? 0 : getBits(zeros);
    return ((1u << zeros) | tail) - 1;
}

std::int32_t
BitReader::getSe()
{
    const std::uint32_t mapped = getUe();
    if (mapped % 2 == 0)
        return -static_cast<std::int32_t>(mapped / 2);
    return static_cast<std::int32_t>((mapped + 1) / 2);
}

void
BitReader::alignByte()
{
    const std::size_t rem = bit_index_ % 8;
    if (rem != 0)
        getBits(static_cast<int>(8 - rem));
}

} // namespace lotus::image::codec
