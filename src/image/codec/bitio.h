/**
 * @file
 * Bit-level I/O for the LJPG codec, with Exp-Golomb entropy codes.
 *
 * Deliberately unannotated: bit extraction is far too hot to scope per
 * call. The codec layer accounts entropy-input movement at block-row
 * granularity (jpeg_fill_bit_buffer / decode_mcu kernels).
 */

#ifndef LOTUS_IMAGE_CODEC_BITIO_H
#define LOTUS_IMAGE_CODEC_BITIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace lotus::image::codec {

class BitWriter
{
  public:
    /** Append the low @p count bits of @p bits (MSB first). */
    void putBits(std::uint32_t bits, int count);

    /** Exp-Golomb code an unsigned value. */
    void putUe(std::uint32_t value);

    /** Exp-Golomb code a signed value (zigzag mapped). */
    void putSe(std::int32_t value);

    /** Pad to a byte boundary with zero bits. */
    void alignByte();

    /** Finish and take the encoded bytes. */
    std::string take();

    std::size_t bitCount() const { return bytes_.size() * 8 + bit_pos_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint8_t current_ = 0;
    int bit_pos_ = 0;
};

class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size);

    /** Read @p count bits (MSB first). Reads past the end — or with a
     *  count outside [0, 32], which only a malformed stream can drive
     *  — return 0s and set overrun(). */
    std::uint32_t getBits(int count);

    /** Exp-Golomb decode an unsigned value. */
    std::uint32_t getUe();

    /** Exp-Golomb decode a signed value. */
    std::int32_t getSe();

    /** Skip to the next byte boundary. */
    void alignByte();

    /** True once a read went past the end of the stream. */
    bool overrun() const { return overrun_; }

    std::size_t bitPosition() const { return bit_index_; }

  private:
    /** Refill the 64-bit window from the byte stream. */
    void refill();

    const std::uint8_t *data_;
    std::size_t size_bits_;
    std::size_t bit_index_ = 0;
    std::uint64_t window_ = 0;
    int window_bits_ = 0;
    std::size_t byte_cursor_ = 0;
    std::size_t size_bytes_;
    bool overrun_ = false;
};

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_BITIO_H
