#include "image/codec/color.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "hwcount/registry.h"
#include "memory/buffer_pool.h"
#include "simd/dispatch.h"

namespace lotus::image::codec {

static_assert(kSampleFracBits == simd::kYccFracBits,
              "simd tier constants out of sync with the codec");
static_assert(kSampleMax == simd::kYccSampleMax,
              "simd tier constants out of sync with the codec");

using hwcount::KernelId;
using hwcount::KernelScope;

namespace {

// The decode-side 16.16 YCC->RGB half-step tables now live in the
// SIMD dispatch layer (simd::detail::yccTables) so every tier indexes
// (or gathers) the same values; the conversion itself is reached
// through simd::kernels().ycc_rgb_row.
constexpr int kFixBits = 16;

// RGB->YCC tables: inputs are true u8, so 256-entry tables apply
// exactly; the per-pixel work becomes table adds plus one int->float
// store per plane.
struct RgbYccTables
{
    std::array<std::int32_t, 256> r_y, g_y, b_y;
    std::array<std::int32_t, 256> r_cb, g_cb, b_cb;
    std::array<std::int32_t, 256> r_cr, g_cr, b_cr;
};

const RgbYccTables &
rgbYccTables()
{
    static const RgbYccTables tables = [] {
        RgbYccTables t{};
        const double scale = static_cast<double>(1 << kFixBits);
        const std::int32_t offset =
            static_cast<std::int32_t>(128.0 * scale);
        for (int i = 0; i < 256; ++i) {
            const auto s = static_cast<std::size_t>(i);
            t.r_y[s] = static_cast<std::int32_t>(
                std::lround(0.299 * i * scale));
            t.g_y[s] = static_cast<std::int32_t>(
                std::lround(0.587 * i * scale));
            t.b_y[s] = static_cast<std::int32_t>(
                std::lround(0.114 * i * scale));
            t.r_cb[s] = static_cast<std::int32_t>(
                std::lround(-0.168736 * i * scale));
            t.g_cb[s] = static_cast<std::int32_t>(
                std::lround(-0.331264 * i * scale));
            t.b_cb[s] = static_cast<std::int32_t>(
                std::lround(0.5 * i * scale)) + offset;
            t.r_cr[s] = static_cast<std::int32_t>(
                std::lround(0.5 * i * scale));
            t.g_cr[s] = static_cast<std::int32_t>(
                std::lround(-0.418688 * i * scale));
            t.b_cr[s] = static_cast<std::int32_t>(
                std::lround(-0.081312 * i * scale)) + offset;
        }
        return t;
    }();
    return tables;
}

} // namespace

void
rgbToYcc(const Image &rgb, Plane &y, Plane &cb, Plane &cr)
{
    KernelScope scope(KernelId::RgbToYcc);
    const auto &t = rgbYccTables();
    constexpr float kInvScale = 1.0f / static_cast<float>(1 << kFixBits);
    const int w = rgb.width();
    const int h = rgb.height();
    y = Plane(w, h);
    cb = Plane(w, h);
    cr = Plane(w, h);
    for (int row = 0; row < h; ++row) {
        const std::uint8_t *src = rgb.row(row);
        float *yp = y.row(row);
        float *cbp = cb.row(row);
        float *crp = cr.row(row);
        for (int x = 0; x < w; ++x) {
            const std::uint8_t r = src[x * 3 + 0];
            const std::uint8_t g = src[x * 3 + 1];
            const std::uint8_t b = src[x * 3 + 2];
            yp[x] = static_cast<float>(t.r_y[r] + t.g_y[g] + t.b_y[b]) *
                    kInvScale;
            cbp[x] = static_cast<float>(t.r_cb[r] + t.g_cb[g] + t.b_cb[b]) *
                     kInvScale;
            crp[x] = static_cast<float>(t.r_cr[r] + t.g_cr[g] + t.b_cr[b]) *
                     kInvScale;
        }
    }
    const auto pixels = static_cast<std::uint64_t>(rgb.pixelCount());
    scope.stats().bytes_read += pixels * 3;
    scope.stats().bytes_written += pixels * 12;
    scope.stats().arith_ops += pixels * 9;
    scope.stats().items += pixels;
}

Plane
downsample2x2(const Plane &full)
{
    const int hw = (full.width + 1) / 2;
    const int hh = (full.height + 1) / 2;
    Plane half(hw, hh);
    for (int y = 0; y < hh; ++y) {
        for (int x = 0; x < hw; ++x) {
            const int x0 = 2 * x;
            const int y0 = 2 * y;
            const int x1 = std::min(x0 + 1, full.width - 1);
            const int y1 = std::min(y0 + 1, full.height - 1);
            half.row(y)[x] = 0.25f * (full.row(y0)[x0] + full.row(y0)[x1] +
                                      full.row(y1)[x0] + full.row(y1)[x1]);
        }
    }
    return half;
}

PlaneI16
quantizePlane(const Plane &plane)
{
    PlaneI16 out(plane.width, plane.height);
    const std::size_t n = plane.samples.size();
    for (std::size_t i = 0; i < n; ++i) {
        const int s = static_cast<int>(
            plane.samples[i] * (1 << kSampleFracBits) + 0.5f);
        out.samples[i] = static_cast<std::int16_t>(
            std::clamp(s, 0, static_cast<int>(kSampleMax)));
    }
    return out;
}

Plane
upsample2x(const Plane &half, int width, int height)
{
    KernelScope scope(KernelId::ChromaUpsample);
    Plane full(width, height);
    const auto pixels =
        static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
    // Retained scalar reference: per-pixel source index math.
    for (int y = 0; y < height; ++y) {
        // Sample the half-res plane at (x/2, y/2) bilinearly.
        const float fy = (static_cast<float>(y) - 0.5f) / 2.0f;
        const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                                  half.height - 1);
        const int y1 = std::min(y0 + 1, half.height - 1);
        const float wy =
            std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
        for (int x = 0; x < width; ++x) {
            const float fx = (static_cast<float>(x) - 0.5f) / 2.0f;
            const int x0 = std::clamp(static_cast<int>(std::floor(fx)),
                                      0, half.width - 1);
            const int x1 = std::min(x0 + 1, half.width - 1);
            const float wx =
                std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
            const float top = half.row(y0)[x0] * (1.0f - wx) +
                              half.row(y0)[x1] * wx;
            const float bottom = half.row(y1)[x0] * (1.0f - wx) +
                                 half.row(y1)[x1] * wx;
            full.row(y)[x] = top * (1.0f - wy) + bottom * wy;
        }
    }
    scope.stats().bytes_read += pixels * 4;
    scope.stats().bytes_written += pixels * 4;
    scope.stats().arith_ops += pixels * 10;
    scope.stats().items += pixels;
    return full;
}

PlaneI16
upsample2x(const PlaneI16 &half, int width, int height)
{
    KernelScope scope(KernelId::ChromaUpsample);
    const int hw = half.width;
    const int hh = half.height;
    LOTUS_ASSERT(width >= 2 * hw - 1 && width <= 2 * hw &&
                     height >= 2 * hh - 1 && height <= 2 * hh,
                 "upsample2x target %dx%d does not match half plane %dx%d",
                 width, height, hw, hh);
    PlaneI16 full = PlaneI16::uninitialized(width, height);
    const auto pixels =
        static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
    // Fast path (h2v2_fancy_upsample style): after edge clamping, the
    // 2x bilinear weights of the reference geometry (source position
    // (x - 0.5) / 2) collapse to the fixed quarter-unit pattern
    // {3, 1} around each source gap, so there are no per-pixel index
    // or weight lookups at all: one vertical blend into a quarter-
    // unit row buffer, then a sequential pass emitting two outputs
    // per source gap. Identical sums (and rounding) to the direct
    // per-pixel fixed-point evaluation; the row kernel is dispatched
    // per SIMD tier (scratch is pooled, sized for vector overhang).
    const auto &kernel = simd::kernels();
    memory::PooledArray<std::int16_t> scratch(
        static_cast<std::size_t>(hw) + 16, /*zero=*/false);
    for (int y = 0; y < height; ++y) {
        // Vertical sources: output row 0 reads source row 0 alone;
        // odd rows 2i+1 blend rows (i, i+1) as 3:1, even rows 2i
        // blend (i, i-1) as 3:1.
        int near = 0;
        int far = 0;
        int wn = 4;
        if (y > 0) {
            const int i = y >> 1;
            near = i;
            far = (y & 1) != 0 ? std::min(i + 1, hh - 1) : i - 1;
            wn = 3;
        }
        kernel.upsample_h2v2_row(half.row(near), half.row(far), wn, hw,
                                 width, scratch.data(), full.row(y));
    }
    scope.stats().bytes_read += pixels * 2;
    scope.stats().bytes_written += pixels * 2;
    scope.stats().arith_ops += pixels * 4;
    scope.stats().items += pixels;
    return full;
}

Image
yccToRgb(const Plane &y, const Plane &cb, const Plane &cr)
{
    KernelScope outer(KernelId::DecompressOnepass);
    const int w = y.width;
    const int h = y.height;
    Image out(w, h);
    for (int row = 0; row < h; ++row) {
        KernelScope inner(KernelId::YccToRgb);
        const float *yp = y.row(row);
        const float *cbp = cb.row(row);
        const float *crp = cr.row(row);
        std::uint8_t *dst = out.row(row);
        // Retained scalar reference: per-pixel float matrix.
        for (int x = 0; x < w; ++x) {
            const float yy = yp[x];
            const float cbv = cbp[x] - 128.0f;
            const float crv = crp[x] - 128.0f;
            const float r = yy + 1.402f * crv;
            const float g = yy - 0.344136f * cbv - 0.714136f * crv;
            const float b = yy + 1.772f * cbv;
            dst[x * 3 + 0] = static_cast<std::uint8_t>(
                std::clamp(r, 0.0f, 255.0f));
            dst[x * 3 + 1] = static_cast<std::uint8_t>(
                std::clamp(g, 0.0f, 255.0f));
            dst[x * 3 + 2] = static_cast<std::uint8_t>(
                std::clamp(b, 0.0f, 255.0f));
        }
        const auto row_pixels = static_cast<std::uint64_t>(w);
        inner.stats().bytes_read += row_pixels * 12;
        inner.stats().bytes_written += row_pixels * 3;
        inner.stats().arith_ops += row_pixels * 12;
        inner.stats().items += row_pixels;
    }
    outer.stats().items += static_cast<std::uint64_t>(h);
    return out;
}

Image
yccToRgb(const PlaneI16 &y, const PlaneI16 &cb, const PlaneI16 &cr)
{
    KernelScope outer(KernelId::DecompressOnepass);
    const int w = y.width;
    const int h = y.height;
    Image out = Image::uninitialized(w, h);
    const auto &kernel = simd::kernels();
    for (int row = 0; row < h; ++row) {
        KernelScope inner(KernelId::YccToRgb);
        // Luma feeds the 16.16 accumulator exactly (a 1/16th-step
        // sample times 2^12 is the value in 16.16); chroma indexes
        // the shared half-step tables. Dispatched per SIMD tier.
        kernel.ycc_rgb_row(y.row(row), cb.row(row), cr.row(row),
                           out.row(row), w);
        const auto row_pixels = static_cast<std::uint64_t>(w);
        inner.stats().bytes_read += row_pixels * 6;
        inner.stats().bytes_written += row_pixels * 3;
        inner.stats().arith_ops += row_pixels * 9;
        inner.stats().items += row_pixels;
    }
    outer.stats().items += static_cast<std::uint64_t>(h);
    return out;
}

} // namespace lotus::image::codec
