#include "image/codec/color.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "hwcount/registry.h"

namespace lotus::image::codec {

using hwcount::KernelId;
using hwcount::KernelScope;

namespace {

// 16.16 fixed-point color tables (build_ycc_rgb_table analogue).
//
// The decode-side planes hold sub-level-precision samples (IDCT
// output in 1/16th steps), so the YCC->RGB tables are indexed at
// *half-level* resolution (index = round(2 * level), 0..510):
// quantizing the chroma input to half steps keeps the worst-case
// error of every output channel below one count even after the 1.772
// Cb->B gain, which is what lets the fast path stay within
// max-abs-diff <= 1 of the float reference.
constexpr int kFixBits = 16;
constexpr int kHalfStepTableSize = 511;

struct YccRgbTables
{
    std::array<std::int32_t, kHalfStepTableSize> cr_r;
    std::array<std::int32_t, kHalfStepTableSize> cb_b;
    std::array<std::int32_t, kHalfStepTableSize> cr_g;
    std::array<std::int32_t, kHalfStepTableSize> cb_g;
};

const YccRgbTables &
yccRgbTables()
{
    static const YccRgbTables tables = [] {
        YccRgbTables t{};
        for (int i = 0; i < kHalfStepTableSize; ++i) {
            const double v = 0.5 * i - 128.0;
            const double scale = static_cast<double>(1 << kFixBits);
            t.cr_r[static_cast<std::size_t>(i)] =
                static_cast<std::int32_t>(std::lround(1.402 * v * scale));
            t.cb_b[static_cast<std::size_t>(i)] =
                static_cast<std::int32_t>(std::lround(1.772 * v * scale));
            t.cr_g[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
                std::lround(-0.714136 * v * scale));
            t.cb_g[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
                std::lround(-0.344136 * v * scale));
        }
        return t;
    }();
    return tables;
}

/** PlaneI16 sample (1/16th-level steps, [0, kSampleMax]) -> half-step
 *  table index (round to nearest half level). In range by
 *  construction: the fast decode path clamps at the block store and
 *  the integer upsample is a convex combination. */
inline int
halfStepIndex(std::int16_t sample)
{
    return (sample + 4) >> 3;
}

/** Fixed-point value (16.16) -> clamped u8, truncating like the
 *  float reference's clamp + cast. */
inline std::uint8_t
clampFixedToU8(std::int32_t fixed)
{
    constexpr std::int32_t kMax = 255 << kFixBits;
    return static_cast<std::uint8_t>(std::clamp(fixed, 0, kMax) >> kFixBits);
}

// RGB->YCC tables: inputs are true u8, so 256-entry tables apply
// exactly; the per-pixel work becomes table adds plus one int->float
// store per plane.
struct RgbYccTables
{
    std::array<std::int32_t, 256> r_y, g_y, b_y;
    std::array<std::int32_t, 256> r_cb, g_cb, b_cb;
    std::array<std::int32_t, 256> r_cr, g_cr, b_cr;
};

const RgbYccTables &
rgbYccTables()
{
    static const RgbYccTables tables = [] {
        RgbYccTables t{};
        const double scale = static_cast<double>(1 << kFixBits);
        const std::int32_t offset =
            static_cast<std::int32_t>(128.0 * scale);
        for (int i = 0; i < 256; ++i) {
            const auto s = static_cast<std::size_t>(i);
            t.r_y[s] = static_cast<std::int32_t>(
                std::lround(0.299 * i * scale));
            t.g_y[s] = static_cast<std::int32_t>(
                std::lround(0.587 * i * scale));
            t.b_y[s] = static_cast<std::int32_t>(
                std::lround(0.114 * i * scale));
            t.r_cb[s] = static_cast<std::int32_t>(
                std::lround(-0.168736 * i * scale));
            t.g_cb[s] = static_cast<std::int32_t>(
                std::lround(-0.331264 * i * scale));
            t.b_cb[s] = static_cast<std::int32_t>(
                std::lround(0.5 * i * scale)) + offset;
            t.r_cr[s] = static_cast<std::int32_t>(
                std::lround(0.5 * i * scale));
            t.g_cr[s] = static_cast<std::int32_t>(
                std::lround(-0.418688 * i * scale));
            t.b_cr[s] = static_cast<std::int32_t>(
                std::lround(-0.081312 * i * scale)) + offset;
        }
        return t;
    }();
    return tables;
}

} // namespace

void
rgbToYcc(const Image &rgb, Plane &y, Plane &cb, Plane &cr)
{
    KernelScope scope(KernelId::RgbToYcc);
    const auto &t = rgbYccTables();
    constexpr float kInvScale = 1.0f / static_cast<float>(1 << kFixBits);
    const int w = rgb.width();
    const int h = rgb.height();
    y = Plane(w, h);
    cb = Plane(w, h);
    cr = Plane(w, h);
    for (int row = 0; row < h; ++row) {
        const std::uint8_t *src = rgb.row(row);
        float *yp = y.row(row);
        float *cbp = cb.row(row);
        float *crp = cr.row(row);
        for (int x = 0; x < w; ++x) {
            const std::uint8_t r = src[x * 3 + 0];
            const std::uint8_t g = src[x * 3 + 1];
            const std::uint8_t b = src[x * 3 + 2];
            yp[x] = static_cast<float>(t.r_y[r] + t.g_y[g] + t.b_y[b]) *
                    kInvScale;
            cbp[x] = static_cast<float>(t.r_cb[r] + t.g_cb[g] + t.b_cb[b]) *
                     kInvScale;
            crp[x] = static_cast<float>(t.r_cr[r] + t.g_cr[g] + t.b_cr[b]) *
                     kInvScale;
        }
    }
    const auto pixels = static_cast<std::uint64_t>(rgb.pixelCount());
    scope.stats().bytes_read += pixels * 3;
    scope.stats().bytes_written += pixels * 12;
    scope.stats().arith_ops += pixels * 9;
    scope.stats().items += pixels;
}

Plane
downsample2x2(const Plane &full)
{
    const int hw = (full.width + 1) / 2;
    const int hh = (full.height + 1) / 2;
    Plane half(hw, hh);
    for (int y = 0; y < hh; ++y) {
        for (int x = 0; x < hw; ++x) {
            const int x0 = 2 * x;
            const int y0 = 2 * y;
            const int x1 = std::min(x0 + 1, full.width - 1);
            const int y1 = std::min(y0 + 1, full.height - 1);
            half.row(y)[x] = 0.25f * (full.row(y0)[x0] + full.row(y0)[x1] +
                                      full.row(y1)[x0] + full.row(y1)[x1]);
        }
    }
    return half;
}

PlaneI16
quantizePlane(const Plane &plane)
{
    PlaneI16 out(plane.width, plane.height);
    const std::size_t n = plane.samples.size();
    for (std::size_t i = 0; i < n; ++i) {
        const int s = static_cast<int>(
            plane.samples[i] * (1 << kSampleFracBits) + 0.5f);
        out.samples[i] = static_cast<std::int16_t>(
            std::clamp(s, 0, static_cast<int>(kSampleMax)));
    }
    return out;
}

Plane
upsample2x(const Plane &half, int width, int height)
{
    KernelScope scope(KernelId::ChromaUpsample);
    Plane full(width, height);
    const auto pixels =
        static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
    // Retained scalar reference: per-pixel source index math.
    for (int y = 0; y < height; ++y) {
        // Sample the half-res plane at (x/2, y/2) bilinearly.
        const float fy = (static_cast<float>(y) - 0.5f) / 2.0f;
        const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                                  half.height - 1);
        const int y1 = std::min(y0 + 1, half.height - 1);
        const float wy =
            std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
        for (int x = 0; x < width; ++x) {
            const float fx = (static_cast<float>(x) - 0.5f) / 2.0f;
            const int x0 = std::clamp(static_cast<int>(std::floor(fx)),
                                      0, half.width - 1);
            const int x1 = std::min(x0 + 1, half.width - 1);
            const float wx =
                std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
            const float top = half.row(y0)[x0] * (1.0f - wx) +
                              half.row(y0)[x1] * wx;
            const float bottom = half.row(y1)[x0] * (1.0f - wx) +
                                 half.row(y1)[x1] * wx;
            full.row(y)[x] = top * (1.0f - wy) + bottom * wy;
        }
    }
    scope.stats().bytes_read += pixels * 4;
    scope.stats().bytes_written += pixels * 4;
    scope.stats().arith_ops += pixels * 10;
    scope.stats().items += pixels;
    return full;
}

PlaneI16
upsample2x(const PlaneI16 &half, int width, int height)
{
    KernelScope scope(KernelId::ChromaUpsample);
    const int hw = half.width;
    const int hh = half.height;
    LOTUS_ASSERT(width >= 2 * hw - 1 && width <= 2 * hw &&
                     height >= 2 * hh - 1 && height <= 2 * hh,
                 "upsample2x target %dx%d does not match half plane %dx%d",
                 width, height, hw, hh);
    PlaneI16 full(width, height);
    const auto pixels =
        static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
    // Fast path (h2v2_fancy_upsample style): after edge clamping, the
    // 2x bilinear weights of the reference geometry (source position
    // (x - 0.5) / 2) collapse to the fixed quarter-unit pattern
    // {3, 1} around each source gap, so there are no per-pixel index
    // or weight lookups at all: one vertical blend into a quarter-
    // unit row buffer, then a sequential pass emitting two outputs
    // per source gap. Identical sums (and rounding) to the direct
    // per-pixel fixed-point evaluation.
    std::vector<std::int32_t> v(static_cast<std::size_t>(hw));
    for (int y = 0; y < height; ++y) {
        // Vertical sources: output row 0 reads source row 0 alone;
        // odd rows 2i+1 blend rows (i, i+1) as 3:1, even rows 2i
        // blend (i, i-1) as 3:1.
        int near = 0;
        int far = 0;
        int wn = 4;
        if (y > 0) {
            const int i = y >> 1;
            near = i;
            far = (y & 1) != 0 ? std::min(i + 1, hh - 1) : i - 1;
            wn = 3;
        }
        const std::int16_t *a = half.row(near);
        const std::int16_t *b = half.row(far);
        const int wf = 4 - wn;
        for (int j = 0; j < hw; ++j)
            v[static_cast<std::size_t>(j)] = wn * a[j] + wf * b[j];
        std::int16_t *dst = full.row(y);
        dst[0] = static_cast<std::int16_t>(
            (v[0] + 2) >> 2); // full horizontal weight on column 0
        for (int j = 0; j + 1 < hw; ++j) {
            const std::int32_t s0 = v[static_cast<std::size_t>(j)];
            const std::int32_t s1 = v[static_cast<std::size_t>(j) + 1];
            dst[2 * j + 1] =
                static_cast<std::int16_t>((3 * s0 + s1 + 8) >> 4);
            dst[2 * j + 2] =
                static_cast<std::int16_t>((s0 + 3 * s1 + 8) >> 4);
        }
        if (width == 2 * hw)
            dst[width - 1] = static_cast<std::int16_t>(
                (v[static_cast<std::size_t>(hw) - 1] + 2) >> 2);
    }
    scope.stats().bytes_read += pixels * 2;
    scope.stats().bytes_written += pixels * 2;
    scope.stats().arith_ops += pixels * 4;
    scope.stats().items += pixels;
    return full;
}

Image
yccToRgb(const Plane &y, const Plane &cb, const Plane &cr)
{
    KernelScope outer(KernelId::DecompressOnepass);
    const int w = y.width;
    const int h = y.height;
    Image out(w, h);
    for (int row = 0; row < h; ++row) {
        KernelScope inner(KernelId::YccToRgb);
        const float *yp = y.row(row);
        const float *cbp = cb.row(row);
        const float *crp = cr.row(row);
        std::uint8_t *dst = out.row(row);
        // Retained scalar reference: per-pixel float matrix.
        for (int x = 0; x < w; ++x) {
            const float yy = yp[x];
            const float cbv = cbp[x] - 128.0f;
            const float crv = crp[x] - 128.0f;
            const float r = yy + 1.402f * crv;
            const float g = yy - 0.344136f * cbv - 0.714136f * crv;
            const float b = yy + 1.772f * cbv;
            dst[x * 3 + 0] = static_cast<std::uint8_t>(
                std::clamp(r, 0.0f, 255.0f));
            dst[x * 3 + 1] = static_cast<std::uint8_t>(
                std::clamp(g, 0.0f, 255.0f));
            dst[x * 3 + 2] = static_cast<std::uint8_t>(
                std::clamp(b, 0.0f, 255.0f));
        }
        const auto row_pixels = static_cast<std::uint64_t>(w);
        inner.stats().bytes_read += row_pixels * 12;
        inner.stats().bytes_written += row_pixels * 3;
        inner.stats().arith_ops += row_pixels * 12;
        inner.stats().items += row_pixels;
    }
    outer.stats().items += static_cast<std::uint64_t>(h);
    return out;
}

Image
yccToRgb(const PlaneI16 &y, const PlaneI16 &cb, const PlaneI16 &cr)
{
    KernelScope outer(KernelId::DecompressOnepass);
    const int w = y.width;
    const int h = y.height;
    Image out(w, h);
    const auto &t = yccRgbTables();
    for (int row = 0; row < h; ++row) {
        KernelScope inner(KernelId::YccToRgb);
        const std::int16_t *yp = y.row(row);
        const std::int16_t *cbp = cb.row(row);
        const std::int16_t *crp = cr.row(row);
        std::uint8_t *dst = out.row(row);
        for (int x = 0; x < w; ++x) {
            // Luma feeds the 16.16 accumulator exactly: a 1/16th-step
            // sample times 2^12 is the sample value in 16.16.
            const std::int32_t ybase =
                static_cast<std::int32_t>(yp[x])
                << (kFixBits - kSampleFracBits);
            const auto icb =
                static_cast<std::size_t>(halfStepIndex(cbp[x]));
            const auto icr =
                static_cast<std::size_t>(halfStepIndex(crp[x]));
            dst[x * 3 + 0] = clampFixedToU8(ybase + t.cr_r[icr]);
            dst[x * 3 + 1] =
                clampFixedToU8(ybase + t.cb_g[icb] + t.cr_g[icr]);
            dst[x * 3 + 2] = clampFixedToU8(ybase + t.cb_b[icb]);
        }
        const auto row_pixels = static_cast<std::uint64_t>(w);
        inner.stats().bytes_read += row_pixels * 6;
        inner.stats().bytes_written += row_pixels * 3;
        inner.stats().arith_ops += row_pixels * 9;
        inner.stats().items += row_pixels;
    }
    outer.stats().items += static_cast<std::uint64_t>(h);
    return out;
}

} // namespace lotus::image::codec
