#include "image/codec/color.h"

#include <algorithm>
#include <cmath>

#include "hwcount/registry.h"

namespace lotus::image::codec {

using hwcount::KernelId;
using hwcount::KernelScope;

void
rgbToYcc(const Image &rgb, Plane &y, Plane &cb, Plane &cr)
{
    KernelScope scope(KernelId::RgbToYcc);
    const int w = rgb.width();
    const int h = rgb.height();
    y = Plane(w, h);
    cb = Plane(w, h);
    cr = Plane(w, h);
    for (int row = 0; row < h; ++row) {
        const std::uint8_t *src = rgb.row(row);
        float *yp = y.row(row);
        float *cbp = cb.row(row);
        float *crp = cr.row(row);
        for (int x = 0; x < w; ++x) {
            const float r = src[x * 3 + 0];
            const float g = src[x * 3 + 1];
            const float b = src[x * 3 + 2];
            yp[x] = 0.299f * r + 0.587f * g + 0.114f * b;
            cbp[x] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
            crp[x] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
        }
    }
    const auto pixels = static_cast<std::uint64_t>(rgb.pixelCount());
    scope.stats().bytes_read += pixels * 3;
    scope.stats().bytes_written += pixels * 12;
    scope.stats().arith_ops += pixels * 15;
    scope.stats().items += pixels;
}

Plane
downsample2x2(const Plane &full)
{
    const int hw = (full.width + 1) / 2;
    const int hh = (full.height + 1) / 2;
    Plane half(hw, hh);
    for (int y = 0; y < hh; ++y) {
        for (int x = 0; x < hw; ++x) {
            const int x0 = 2 * x;
            const int y0 = 2 * y;
            const int x1 = std::min(x0 + 1, full.width - 1);
            const int y1 = std::min(y0 + 1, full.height - 1);
            half.row(y)[x] = 0.25f * (full.row(y0)[x0] + full.row(y0)[x1] +
                                      full.row(y1)[x0] + full.row(y1)[x1]);
        }
    }
    return half;
}

Plane
upsample2x(const Plane &half, int width, int height)
{
    KernelScope scope(KernelId::ChromaUpsample);
    Plane full(width, height);
    for (int y = 0; y < height; ++y) {
        // Sample the half-res plane at (x/2, y/2) bilinearly.
        const float fy = (static_cast<float>(y) - 0.5f) / 2.0f;
        const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                                  half.height - 1);
        const int y1 = std::min(y0 + 1, half.height - 1);
        const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
        for (int x = 0; x < width; ++x) {
            const float fx = (static_cast<float>(x) - 0.5f) / 2.0f;
            const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0,
                                      half.width - 1);
            const int x1 = std::min(x0 + 1, half.width - 1);
            const float wx =
                std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
            const float top = half.row(y0)[x0] * (1.0f - wx) +
                              half.row(y0)[x1] * wx;
            const float bottom = half.row(y1)[x0] * (1.0f - wx) +
                                 half.row(y1)[x1] * wx;
            full.row(y)[x] = top * (1.0f - wy) + bottom * wy;
        }
    }
    const auto pixels =
        static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
    scope.stats().bytes_read += pixels * 4;
    scope.stats().bytes_written += pixels * 4;
    scope.stats().arith_ops += pixels * 10;
    scope.stats().items += pixels;
    return full;
}

Image
yccToRgb(const Plane &y, const Plane &cb, const Plane &cr)
{
    KernelScope outer(KernelId::DecompressOnepass);
    const int w = y.width;
    const int h = y.height;
    Image out(w, h);
    for (int row = 0; row < h; ++row) {
        KernelScope inner(KernelId::YccToRgb);
        const float *yp = y.row(row);
        const float *cbp = cb.row(row);
        const float *crp = cr.row(row);
        std::uint8_t *dst = out.row(row);
        for (int x = 0; x < w; ++x) {
            const float yy = yp[x];
            const float cbv = cbp[x] - 128.0f;
            const float crv = crp[x] - 128.0f;
            const float r = yy + 1.402f * crv;
            const float g = yy - 0.344136f * cbv - 0.714136f * crv;
            const float b = yy + 1.772f * cbv;
            dst[x * 3 + 0] = static_cast<std::uint8_t>(
                std::clamp(r, 0.0f, 255.0f));
            dst[x * 3 + 1] = static_cast<std::uint8_t>(
                std::clamp(g, 0.0f, 255.0f));
            dst[x * 3 + 2] = static_cast<std::uint8_t>(
                std::clamp(b, 0.0f, 255.0f));
        }
        const auto row_pixels = static_cast<std::uint64_t>(w);
        inner.stats().bytes_read += row_pixels * 12;
        inner.stats().bytes_written += row_pixels * 3;
        inner.stats().arith_ops += row_pixels * 12;
        inner.stats().items += row_pixels;
    }
    outer.stats().items += static_cast<std::uint64_t>(h);
    return out;
}

} // namespace lotus::image::codec
