#include "image/codec/dct.h"

#include <cmath>

#include "common/logging.h"

namespace lotus::image::codec {

namespace {

/** A[u][x] = 0.5 * C(u) * cos((2x+1) u pi / 16); orthonormal. */
const std::array<std::array<float, 8>, 8> &
basis()
{
    static const auto table = [] {
        std::array<std::array<float, 8>, 8> a{};
        for (int u = 0; u < 8; ++u) {
            const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
            for (int x = 0; x < 8; ++x) {
                a[u][x] = static_cast<float>(
                    0.5 * cu *
                    std::cos((2.0 * x + 1.0) * u * M_PI / 16.0));
            }
        }
        return a;
    }();
    return table;
}

// Standard JPEG Annex K base quantization tables.
constexpr std::array<std::uint16_t, 64> kLumaBase = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<std::uint16_t, 64> kChromaBase = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

} // namespace

void
forwardDct(const Block &spatial, Block &freq)
{
    const auto &a = basis();
    // tmp = A * spatial
    Block tmp;
    for (int u = 0; u < 8; ++u) {
        for (int x = 0; x < 8; ++x) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += a[u][k] * spatial[static_cast<std::size_t>(k * 8 + x)];
            tmp[static_cast<std::size_t>(u * 8 + x)] = acc;
        }
    }
    // freq = tmp * A^T
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[static_cast<std::size_t>(u * 8 + k)] * a[v][k];
            freq[static_cast<std::size_t>(u * 8 + v)] = acc;
        }
    }
}

void
inverseDct(const Block &freq, Block &spatial)
{
    const auto &a = basis();
    // tmp = A^T * freq
    Block tmp;
    for (int x = 0; x < 8; ++x) {
        for (int v = 0; v < 8; ++v) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += a[k][x] * freq[static_cast<std::size_t>(k * 8 + v)];
            tmp[static_cast<std::size_t>(x * 8 + v)] = acc;
        }
    }
    // spatial = tmp * A
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[static_cast<std::size_t>(x * 8 + k)] * a[k][y];
            spatial[static_cast<std::size_t>(x * 8 + y)] = acc;
        }
    }
}

std::array<std::uint16_t, 64>
quantTable(int quality, bool chroma)
{
    LOTUS_ASSERT(quality >= 1 && quality <= 100, "quality %d out of range",
                 quality);
    const auto &base = chroma ? kChromaBase : kLumaBase;
    const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
    std::array<std::uint16_t, 64> out{};
    for (int i = 0; i < 64; ++i) {
        int q = (base[static_cast<std::size_t>(i)] * scale + 50) / 100;
        q = q < 1 ? 1 : (q > 255 ? 255 : q);
        out[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(q);
    }
    return out;
}

void
quantize(const Block &freq, const std::array<std::uint16_t, 64> &table,
         QuantBlock &out)
{
    for (int i = 0; i < 64; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            std::lround(freq[static_cast<std::size_t>(i)] /
                        static_cast<float>(table[static_cast<std::size_t>(i)])));
    }
}

void
dequantize(const QuantBlock &in, const std::array<std::uint16_t, 64> &table,
           Block &freq)
{
    for (int i = 0; i < 64; ++i) {
        freq[static_cast<std::size_t>(i)] =
            static_cast<float>(in[static_cast<std::size_t>(i)]) *
            static_cast<float>(table[static_cast<std::size_t>(i)]);
    }
}

const std::array<int, 64> &
zigzagOrder()
{
    static const auto order = [] {
        std::array<int, 64> zz{};
        int index = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) {
                // Walk up-right.
                for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y)
                    zz[static_cast<std::size_t>(index++)] = y * 8 + (s - y);
            } else {
                // Walk down-left.
                for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x)
                    zz[static_cast<std::size_t>(index++)] = (s - x) * 8 + x;
            }
        }
        return zz;
    }();
    return order;
}

} // namespace lotus::image::codec
