#include "image/codec/dct.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace lotus::image::codec {

namespace {

// cos(n * pi / 16) for n = 0..8, as exactly-representable double
// literals, so the basis is a compile-time constant: the unrolled
// fast-IDCT code below then sees literal coefficients the compiler
// can schedule freely instead of loads from a runtime-initialized
// table.
constexpr std::array<double, 9> kCosPi16 = {
    1.0,
    0.98078528040323044,
    0.92387953251128674,
    0.83146961230254524,
    0.70710678118654752,
    0.55557023301960222,
    0.38268343236508977,
    0.19509032201612827,
    0.0,
};

/** A[u][x] = 0.5 * C(u) * cos((2x+1) u pi / 16); orthonormal. */
constexpr std::array<std::array<float, 8>, 8>
makeBasis()
{
    std::array<std::array<float, 8>, 8> a{};
    for (int u = 0; u < 8; ++u) {
        const double cu = u == 0 ? kCosPi16[4] : 1.0; // C(0) = 1/sqrt(2)
        for (int x = 0; x < 8; ++x) {
            // Reduce (2x+1)u * pi/16 into [0, pi/2] by symmetry.
            int n = (2 * x + 1) * u % 32;
            double sign = 1.0;
            if (n > 16)
                n = 32 - n; // cos(2pi - t) = cos(t)
            if (n > 8) {
                n = 16 - n; // cos(pi - t) = -cos(t)
                sign = -1.0;
            }
            a[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
                static_cast<float>(0.5 * cu * sign *
                                   kCosPi16[static_cast<std::size_t>(n)]);
        }
    }
    return a;
}

constexpr auto kBasis = makeBasis();

const std::array<std::array<float, 8>, 8> &
basis()
{
    return kBasis;
}

/** 0.5 * C(0) * cos(0): the constant DC gain of a 1-D pass. */
constexpr float kA00 = kBasis[0][0];

/**
 * 1-D 8-point inverse transform, out[x] = sum_u A[u][x] f[u], using
 * the cosine symmetry A[u][7-x] = (-1)^u A[u][x]: the even and odd
 * halves are computed once for x = 0..3 and combined as e +/- o,
 * halving the multiplies (64 -> 32) with fixed-bound, fully
 * unrollable loops.
 */
inline void
idct1d(const float *__restrict f, float *__restrict out)
{
    for (int x = 0; x < 4; ++x) {
        const float e = f[0] * kBasis[0][x] + f[2] * kBasis[2][x] +
                        f[4] * kBasis[4][x] + f[6] * kBasis[6][x];
        const float o = f[1] * kBasis[1][x] + f[3] * kBasis[3][x] +
                        f[5] * kBasis[5][x] + f[7] * kBasis[7][x];
        out[x] = e + o;
        out[7 - x] = e - o;
    }
}

// Standard JPEG Annex K base quantization tables.
constexpr std::array<std::uint16_t, 64> kLumaBase = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<std::uint16_t, 64> kChromaBase = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

} // namespace

void
forwardDct(const Block &spatial, Block &freq)
{
    const auto &a = basis();
    // tmp = A * spatial
    Block tmp;
    for (int u = 0; u < 8; ++u) {
        for (int x = 0; x < 8; ++x) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += a[u][k] * spatial[static_cast<std::size_t>(k * 8 + x)];
            tmp[static_cast<std::size_t>(u * 8 + x)] = acc;
        }
    }
    // freq = tmp * A^T
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[static_cast<std::size_t>(u * 8 + k)] * a[v][k];
            freq[static_cast<std::size_t>(u * 8 + v)] = acc;
        }
    }
}

void
inverseDct(const Block &freq, Block &spatial)
{
    const auto &a = basis();
    // tmp = A^T * freq
    Block tmp;
    for (int x = 0; x < 8; ++x) {
        for (int v = 0; v < 8; ++v) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += a[k][x] * freq[static_cast<std::size_t>(k * 8 + v)];
            tmp[static_cast<std::size_t>(x * 8 + v)] = acc;
        }
    }
    // spatial = tmp * A
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
            float acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[static_cast<std::size_t>(x * 8 + k)] * a[k][y];
            spatial[static_cast<std::size_t>(x * 8 + y)] = acc;
        }
    }
}

std::array<std::uint16_t, 64>
quantTable(int quality, bool chroma)
{
    LOTUS_ASSERT(quality >= 1 && quality <= 100, "quality %d out of range",
                 quality);
    const auto &base = chroma ? kChromaBase : kLumaBase;
    const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
    std::array<std::uint16_t, 64> out{};
    for (int i = 0; i < 64; ++i) {
        int q = (base[static_cast<std::size_t>(i)] * scale + 50) / 100;
        q = q < 1 ? 1 : (q > 255 ? 255 : q);
        out[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(q);
    }
    return out;
}

void
quantize(const Block &freq, const std::array<std::uint16_t, 64> &table,
         QuantBlock &out)
{
    for (int i = 0; i < 64; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            std::lround(freq[static_cast<std::size_t>(i)] /
                        static_cast<float>(table[static_cast<std::size_t>(i)])));
    }
}

void
dequantize(const QuantBlock &in, const std::array<std::uint16_t, 64> &table,
           Block &freq)
{
    for (int i = 0; i < 64; ++i) {
        freq[static_cast<std::size_t>(i)] =
            static_cast<float>(in[static_cast<std::size_t>(i)]) *
            static_cast<float>(table[static_cast<std::size_t>(i)]);
    }
}

std::uint64_t
dequantIdctSparse(const QuantBlock &q,
                  const std::array<std::uint16_t, 64> &table,
                  const CoeffExtent &extent, Block &spatial)
{
    // DC-only (or all-zero) block: the orthonormal 2-D transform of a
    // lone DC coefficient is a flat fill at freq[0] / 8.
    if (extent.last_zz == 0) {
        const float dc =
            static_cast<float>(q[0]) * static_cast<float>(table[0]);
        spatial.fill(dc * 0.125f);
        return 2;
    }

    // Dense block: the sparse scan's zigzag scatter and per-column
    // bookkeeping cost more than they save. Dequantize all 64
    // coefficients in raster order (vectorizable) and run the
    // even/odd-factored transform over every column.
    if (extent.nonzero >= kIdctDenseCutoff) {
        alignas(64) float freq[64];
        for (int i = 0; i < 64; ++i) {
            freq[i] = static_cast<float>(q[static_cast<std::size_t>(i)]) *
                      static_cast<float>(table[static_cast<std::size_t>(i)]);
        }
        alignas(64) float t[64];
        for (int v = 0; v < 8; ++v) {
            const float f0 = freq[v], f1 = freq[8 + v], f2 = freq[16 + v],
                        f3 = freq[24 + v], f4 = freq[32 + v],
                        f5 = freq[40 + v], f6 = freq[48 + v],
                        f7 = freq[56 + v];
            for (int x = 0; x < 4; ++x) {
                const float e = f0 * kBasis[0][x] + f2 * kBasis[2][x] +
                                f4 * kBasis[4][x] + f6 * kBasis[6][x];
                const float o = f1 * kBasis[1][x] + f3 * kBasis[3][x] +
                                f5 * kBasis[5][x] + f7 * kBasis[7][x];
                t[x * 8 + v] = e + o;
                t[(7 - x) * 8 + v] = e - o;
            }
        }
        for (int x = 0; x < 8; ++x)
            idct1d(t + x * 8, &spatial[static_cast<std::size_t>(x * 8)]);
        return 2 * 8 * 64;
    }

    const auto &zz = zigzagOrder();

    // Dequantize only the coded prefix of the zigzag scan, scattering
    // into a *transposed* layout (fcol[v * 8 + k] = freq[k][v]) so the
    // column pass reads each frequency column contiguously. col_last
    // tracks the deepest nonzero row of each column.
    alignas(64) float fcol[64] = {};
    std::uint8_t col_last[8] = {};
    unsigned row_mask = 0;
    unsigned col_mask = 0;
    for (int k = 0; k <= extent.last_zz; ++k) {
        const int idx = zz[static_cast<std::size_t>(k)];
        const std::int32_t level = q[static_cast<std::size_t>(idx)];
        if (level == 0)
            continue;
        const int r = idx >> 3;
        const int c = idx & 7;
        fcol[c * 8 + r] =
            static_cast<float>(level) *
            static_cast<float>(table[static_cast<std::size_t>(idx)]);
        row_mask |= 1u << r;
        col_mask |= 1u << c;
        if (static_cast<std::uint8_t>(r) > col_last[c])
            col_last[c] = static_cast<std::uint8_t>(r);
    }
    if (row_mask == 0) { // every coded level cancelled to zero
        spatial.fill(0.0f);
        return 1;
    }

    // Coefficients confined to frequency row 0: the column pass is a
    // constant gain, so every spatial row is the same 1-D inverse
    // transform of that row.
    if (row_mask == 1u) {
        float t[8];
        for (int v = 0; v < 8; ++v)
            t[v] = kA00 * fcol[v * 8];
        float line[8];
        idct1d(t, line);
        for (int x = 0; x < 8; ++x)
            std::memcpy(&spatial[static_cast<std::size_t>(x * 8)], line,
                        sizeof(line));
        return 8 + 64;
    }

    // Coefficients confined to frequency column 0: every spatial row
    // is a constant (1-D inverse transform down the column).
    if (col_mask == 1u) {
        float col[8];
        idct1d(fcol, col);
        for (int x = 0; x < 8; ++x) {
            const float value = col[x] * kA00;
            for (int y = 0; y < 8; ++y)
                spatial[static_cast<std::size_t>(x * 8 + y)] = value;
        }
        return 64 + 8;
    }

    // General path. Column pass: transform only the columns holding
    // energy (a DC-only column is a broadcast, a column confined to
    // rows 0..3 runs the half-depth even/odd kernel); empty columns
    // stay zero in t. Row pass: full even/odd transform of each row.
    alignas(64) float t[64] = {}; // t[x * 8 + v]
    std::uint64_t ops = 0;
    for (int v = 0; v < 8; ++v) {
        if (!(col_mask & (1u << v)))
            continue;
        const float *f = fcol + v * 8;
        if (col_last[v] == 0) {
            const float c = f[0] * kA00;
            for (int x = 0; x < 8; ++x)
                t[x * 8 + v] = c;
            ops += 1;
        } else if (col_last[v] <= 3) {
            for (int x = 0; x < 4; ++x) {
                const float e = f[0] * kBasis[0][x] + f[2] * kBasis[2][x];
                const float o = f[1] * kBasis[1][x] + f[3] * kBasis[3][x];
                t[x * 8 + v] = e + o;
                t[(7 - x) * 8 + v] = e - o;
            }
            ops += 32;
        } else {
            for (int x = 0; x < 4; ++x) {
                const float e = f[0] * kBasis[0][x] + f[2] * kBasis[2][x] +
                                f[4] * kBasis[4][x] + f[6] * kBasis[6][x];
                const float o = f[1] * kBasis[1][x] + f[3] * kBasis[3][x] +
                                f[5] * kBasis[5][x] + f[7] * kBasis[7][x];
                t[x * 8 + v] = e + o;
                t[(7 - x) * 8 + v] = e - o;
            }
            ops += 64;
        }
    }
    for (int x = 0; x < 8; ++x)
        idct1d(t + x * 8, &spatial[static_cast<std::size_t>(x * 8)]);
    return ops + 8 * 64;
}

const std::array<int, 64> &
zigzagOrder()
{
    static const auto order = [] {
        std::array<int, 64> zz{};
        int index = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) {
                // Walk up-right.
                for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y)
                    zz[static_cast<std::size_t>(index++)] = y * 8 + (s - y);
            } else {
                // Walk down-left.
                for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x)
                    zz[static_cast<std::size_t>(index++)] = (s - x) * 8 + x;
            }
        }
        return zz;
    }();
    return order;
}

} // namespace lotus::image::codec
