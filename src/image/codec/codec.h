/**
 * @file
 * The LJPG image codec (libjpeg analogue).
 *
 * A real lossy block-transform codec: RGB -> YCbCr with optional
 * 4:2:0 chroma subsampling, 8x8 orthonormal DCT, JPEG-style quality-
 * scaled quantization, zigzag scan, and zero-run/Exp-Golomb entropy
 * coding with per-plane DC prediction. Encoded size is content
 * dependent, decode cost scales with pixels and coded symbols, and
 * the decode path exposes the leaf kernels the paper's Table I lists
 * for Image.convert (decode_mcu, jpeg_idct_islow, ycc_rgb_convert,
 * sep_upsample, decompress_onepass, jpeg_fill_bit_buffer, ...).
 */

#ifndef LOTUS_IMAGE_CODEC_CODEC_H
#define LOTUS_IMAGE_CODEC_CODEC_H

#include <string>

#include "common/result.h"
#include "image/image.h"

namespace lotus::image::codec {

struct EncodeOptions
{
    /** JPEG-style quality in [1, 100]. */
    int quality = 85;
    /** 4:2:0 chroma subsampling. */
    bool subsample_chroma = true;
};

/** Encode an image into an LJPG byte string. */
std::string encode(const Image &input, const EncodeOptions &options = {});

/** Metadata readable without decoding (the format header). */
struct LjpgHeader
{
    int width = 0;
    int height = 0;
    int quality = 0;
    bool subsampled = false;
};

/**
 * Parse just the header. Returns an error on malformed magic,
 * truncation, or out-of-range fields — LJPG bytes are untrusted
 * input, so corruption must never abort the process.
 */
Result<LjpgHeader> tryPeekHeader(const std::string &bytes);

/** Fatal wrapper over tryPeekHeader for trusted (self-encoded)
 *  fixtures where corruption would be a harness bug. */
LjpgHeader peekHeader(const std::string &bytes);

struct DecodeOptions
{
    /**
     * Run the retained scalar reference kernels (bulk payload copy,
     * dense dequantize + IDCT, float color conversion and chroma
     * upsampling) instead of the optimized fast path. The two paths
     * agree within max-abs-diff <= 1 per channel; the reference
     * exists for differential testing and as the baseline in perf
     * trajectory benches. Both paths emit the same KernelIds.
     */
    bool reference = false;
    /**
     * Upper bound on header.width * header.height before any plane
     * is allocated. A flipped header byte can claim a 65535x65535
     * image from a 2 KB blob; the cap turns that into a decode error
     * instead of a multi-GiB allocation. The default (64 Mpixel,
     * 8192x8192) is far above every workload in this repo.
     */
    std::int64_t max_pixels = std::int64_t(1) << 26;
};

/**
 * Decode an LJPG byte string back to an RGB image. All malformed
 * input — bad magic, corrupt header, truncated or bit-flipped
 * entropy payload — comes back as an Error, never a crash; the fault
 * injection suite sweeps every single-byte truncation and seeded
 * random flips over this entry point.
 */
Result<Image> tryDecode(const std::string &bytes,
                        const DecodeOptions &options = {});

/** Fatal wrapper over tryDecode for trusted fixtures (benches,
 *  differential tests) where corruption would be a harness bug. */
Image decode(const std::string &bytes, const DecodeOptions &options = {});

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_CODEC_H
