/**
 * @file
 * The LJPG image codec (libjpeg analogue).
 *
 * A real lossy block-transform codec: RGB -> YCbCr with optional
 * 4:2:0 chroma subsampling, 8x8 orthonormal DCT, JPEG-style quality-
 * scaled quantization, zigzag scan, and zero-run/Exp-Golomb entropy
 * coding with per-plane DC prediction. Encoded size is content
 * dependent, decode cost scales with pixels and coded symbols, and
 * the decode path exposes the leaf kernels the paper's Table I lists
 * for Image.convert (decode_mcu, jpeg_idct_islow, ycc_rgb_convert,
 * sep_upsample, decompress_onepass, jpeg_fill_bit_buffer, ...).
 */

#ifndef LOTUS_IMAGE_CODEC_CODEC_H
#define LOTUS_IMAGE_CODEC_CODEC_H

#include <string>

#include "image/image.h"

namespace lotus::image::codec {

struct EncodeOptions
{
    /** JPEG-style quality in [1, 100]. */
    int quality = 85;
    /** 4:2:0 chroma subsampling. */
    bool subsample_chroma = true;
};

/** Encode an image into an LJPG byte string. */
std::string encode(const Image &input, const EncodeOptions &options = {});

/** Metadata readable without decoding (the format header). */
struct LjpgHeader
{
    int width = 0;
    int height = 0;
    int quality = 0;
    bool subsampled = false;
};

/** Parse just the header. Fatal on malformed magic. */
LjpgHeader peekHeader(const std::string &bytes);

struct DecodeOptions
{
    /**
     * Run the retained scalar reference kernels (bulk payload copy,
     * dense dequantize + IDCT, float color conversion and chroma
     * upsampling) instead of the optimized fast path. The two paths
     * agree within max-abs-diff <= 1 per channel; the reference
     * exists for differential testing and as the baseline in perf
     * trajectory benches. Both paths emit the same KernelIds.
     */
    bool reference = false;
};

/** Decode an LJPG byte string back to an RGB image. Fatal on
 *  malformed input. */
Image decode(const std::string &bytes, const DecodeOptions &options = {});

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_CODEC_H
