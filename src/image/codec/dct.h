/**
 * @file
 * 8x8 block DCT and quantization for the LJPG codec.
 */

#ifndef LOTUS_IMAGE_CODEC_DCT_H
#define LOTUS_IMAGE_CODEC_DCT_H

#include <array>
#include <cstdint>

namespace lotus::image::codec {

/** One 8x8 block of spatial samples or frequency coefficients. */
using Block = std::array<float, 64>;
using QuantBlock = std::array<std::int32_t, 64>;

constexpr int kBlockDim = 8;
constexpr int kBlockSize = 64;

/** Forward orthonormal DCT-II of an 8x8 block. */
void forwardDct(const Block &spatial, Block &freq);

/** Inverse of forwardDct. */
void inverseDct(const Block &freq, Block &spatial);

/**
 * Quantization matrix for the given quality in [1, 100], using the
 * libjpeg quality scaling of the standard tables.
 * @param chroma selects the chrominance base table.
 */
std::array<std::uint16_t, 64> quantTable(int quality, bool chroma);

/** Quantize: q[i] = round(freq[i] / table[i]). */
void quantize(const Block &freq, const std::array<std::uint16_t, 64> &table,
              QuantBlock &out);

/** Dequantize: freq[i] = q[i] * table[i]. */
void dequantize(const QuantBlock &in,
                const std::array<std::uint16_t, 64> &table, Block &freq);

/** Zigzag scan order: zigzagOrder()[k] = raster index of the k-th
 *  coefficient in zigzag order. */
const std::array<int, 64> &zigzagOrder();

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_DCT_H
