/**
 * @file
 * 8x8 block DCT and quantization for the LJPG codec.
 */

#ifndef LOTUS_IMAGE_CODEC_DCT_H
#define LOTUS_IMAGE_CODEC_DCT_H

#include <array>
#include <cstdint>

namespace lotus::image::codec {

/** One 8x8 block of spatial samples or frequency coefficients. */
using Block = std::array<float, 64>;
using QuantBlock = std::array<std::int32_t, 64>;

constexpr int kBlockDim = 8;
constexpr int kBlockSize = 64;

/** Forward orthonormal DCT-II of an 8x8 block. */
void forwardDct(const Block &spatial, Block &freq);

/** Inverse of forwardDct. */
void inverseDct(const Block &freq, Block &spatial);

/**
 * Quantization matrix for the given quality in [1, 100], using the
 * libjpeg quality scaling of the standard tables.
 * @param chroma selects the chrominance base table.
 */
std::array<std::uint16_t, 64> quantTable(int quality, bool chroma);

/** Quantize: q[i] = round(freq[i] / table[i]). */
void quantize(const Block &freq, const std::array<std::uint16_t, 64> &table,
              QuantBlock &out);

/** Dequantize: freq[i] = q[i] * table[i]. */
void dequantize(const QuantBlock &in,
                const std::array<std::uint16_t, 64> &table, Block &freq);

/**
 * Sparsity summary of an entropy-decoded block, produced for free by
 * the entropy decoder (it already walks the coded coefficients).
 * Drives the sparse fast paths of the fused dequant + inverse DCT.
 */
struct CoeffExtent
{
    /** Number of nonzero coefficients (DC included when nonzero). */
    std::int16_t nonzero = 0;
    /** Zigzag index of the last nonzero coefficient (0 when the
     *  block is DC-only or entirely zero). */
    std::int16_t last_zz = 0;
};

/** Nonzero-coefficient count at which dequantIdctSparse abandons the
 *  sparse scan for a straight dense dequantize + even/odd IDCT: on
 *  dense blocks the zigzag scatter and per-column bookkeeping cost
 *  more than they save. At or above this cutoff the dequantize pass
 *  multiplies all 64 coefficients (callers should attribute work
 *  stats accordingly). */
constexpr int kIdctDenseCutoff = 16;

/**
 * Fused dequantize + sparse-aware inverse DCT (the jpeg_idct_islow
 * trick): dequantization happens inline on the nonzero coefficients
 * only, a DC-only block becomes a flat fill, a block whose
 * coefficients live in the first frequency row (or column) collapses
 * to a single 1-D pass, and the general path skips empty frequency
 * columns and uses the even/odd cosine symmetry to halve the
 * multiplies of each 1-D transform. Blocks with at least
 * kIdctDenseCutoff nonzero coefficients take a dense even/odd path
 * instead. Matches dequantize() + inverseDct() to within float
 * rounding (the factored passes reorder sums); in practice well
 * under 1e-3 per sample.
 *
 * @return the number of arithmetic operations actually performed by
 *         the IDCT portion (the caller attributes the dequantization
 *         multiplies - extent.nonzero of them, or all 64 on the dense
 *         path - to dequantize_block).
 */
std::uint64_t dequantIdctSparse(const QuantBlock &q,
                                const std::array<std::uint16_t, 64> &table,
                                const CoeffExtent &extent, Block &spatial);

/** Zigzag scan order: zigzagOrder()[k] = raster index of the k-th
 *  coefficient in zigzag order. */
const std::array<int, 64> &zigzagOrder();

} // namespace lotus::image::codec

#endif // LOTUS_IMAGE_CODEC_DCT_H
