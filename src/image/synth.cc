#include "image/synth.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lotus::image {

namespace {

struct Blob
{
    double cx, cy, rx, ry;
    float color[3];
};

} // namespace

Image
synthesize(Rng &rng, int width, int height, const SynthOptions &options)
{
    LOTUS_ASSERT(width > 0 && height > 0, "bad synth size %dx%d", width,
                 height);
    Image out(width, height);

    // Base gradient between two random colors.
    float c0[3], c1[3];
    for (int c = 0; c < 3; ++c) {
        c0[c] = static_cast<float>(rng.uniform(30.0, 220.0));
        c1[c] = static_cast<float>(rng.uniform(30.0, 220.0));
    }
    const double angle = rng.uniform(0.0, 2.0 * M_PI);
    const double gx = std::cos(angle);
    const double gy = std::sin(angle);

    // Band-limited texture: a few random sinusoids whose frequency
    // rises with the detail knob.
    struct Wave
    {
        double fx, fy, phase;
        float amp;
    };
    std::vector<Wave> waves;
    const int n_waves = 2 + static_cast<int>(options.detail * 5.0);
    for (int i = 0; i < n_waves; ++i) {
        Wave wave;
        const double max_freq = 0.02 + options.detail * 0.45;
        wave.fx = rng.uniform(-max_freq, max_freq) * 2.0 * M_PI;
        wave.fy = rng.uniform(-max_freq, max_freq) * 2.0 * M_PI;
        wave.phase = rng.uniform(0.0, 2.0 * M_PI);
        wave.amp = static_cast<float>(rng.uniform(4.0, 18.0));
        waves.push_back(wave);
    }

    std::vector<Blob> blobs;
    for (int i = 0; i < options.blobs; ++i) {
        Blob blob;
        blob.cx = rng.uniform(0.1, 0.9) * width;
        blob.cy = rng.uniform(0.1, 0.9) * height;
        blob.rx = rng.uniform(0.05, 0.3) * width;
        blob.ry = rng.uniform(0.05, 0.3) * height;
        for (int c = 0; c < 3; ++c)
            blob.color[c] = static_cast<float>(rng.uniform(0.0, 255.0));
        blobs.push_back(blob);
    }

    const float noise_amp = static_cast<float>(options.detail * 24.0);
    const double diag = std::sqrt(static_cast<double>(width) * width +
                                  static_cast<double>(height) * height);
    for (int y = 0; y < height; ++y) {
        std::uint8_t *row = out.row(y);
        for (int x = 0; x < width; ++x) {
            const double t =
                0.5 + (gx * (x - width / 2.0) + gy * (y - height / 2.0)) /
                          diag;
            float texture = 0.0f;
            for (const auto &wave : waves) {
                texture += wave.amp *
                           static_cast<float>(std::sin(
                               wave.fx * x + wave.fy * y + wave.phase));
            }
            for (int c = 0; c < 3; ++c) {
                float v = c0[c] + static_cast<float>(t) * (c1[c] - c0[c]);
                for (const auto &blob : blobs) {
                    const double dx = (x - blob.cx) / blob.rx;
                    const double dy = (y - blob.cy) / blob.ry;
                    const double d2 = dx * dx + dy * dy;
                    if (d2 < 1.0) {
                        const float mix = static_cast<float>(1.0 - d2);
                        v = v * (1.0f - mix) + blob.color[c] * mix;
                    }
                }
                v += texture;
                if (noise_amp > 0.0f) {
                    v += static_cast<float>(rng.uniform(-1.0, 1.0)) *
                         noise_amp;
                }
                row[x * 3 + c] = static_cast<std::uint8_t>(
                    std::clamp(v, 0.0f, 255.0f));
            }
        }
    }
    return out;
}

} // namespace lotus::image
