/**
 * @file
 * In-memory interleaved RGB images.
 *
 * The decode side of the Loader operation produces Image objects;
 * geometric transforms (crop/flip/resize) consume and produce them;
 * ToTensor converts them into CHW f32 tensors.
 */

#ifndef LOTUS_IMAGE_IMAGE_H
#define LOTUS_IMAGE_IMAGE_H

#include <cstdint>

#include "common/logging.h"
#include "memory/buffer_pool.h"
#include "tensor/tensor.h"

namespace lotus::image {

class Image
{
  public:
    static constexpr int kChannels = 3;

    /** Empty 0x0 image. */
    Image() = default;

    /** Black image of the given size. */
    Image(int width, int height);

    /** Image with indeterminate contents, for producers that write
     *  every pixel (decode, resample): skips the zero fill. */
    static Image uninitialized(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    std::int64_t pixelCount() const
    {
        return static_cast<std::int64_t>(width_) * height_;
    }
    std::size_t byteSize() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Pointer to the first byte of row @p y (RGBRGB...). */
    std::uint8_t *
    row(int y)
    {
        LOTUS_ASSERT(y >= 0 && y < height_);
        return data_.data() +
               static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) *
                   kChannels;
    }

    const std::uint8_t *
    row(int y) const
    {
        LOTUS_ASSERT(y >= 0 && y < height_);
        return data_.data() +
               static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) *
                   kChannels;
    }

    /** Pointer to pixel (x, y)'s R byte. */
    std::uint8_t *pixel(int x, int y) { return row(y) + x * kChannels; }
    const std::uint8_t *
    pixel(int x, int y) const
    {
        return row(y) + x * kChannels;
    }

    std::uint8_t *raw() { return data_.data(); }
    const std::uint8_t *raw() const { return data_.data(); }

    /** Copy out as an HWC u8 tensor. */
    tensor::Tensor toTensorHwc() const;

    /** Build from an HWC u8 tensor of shape [H, W, 3]. */
    static Image fromTensorHwc(const tensor::Tensor &hwc);

    bool
    sameSize(const Image &other) const
    {
        return width_ == other.width_ && height_ == other.height_;
    }

  private:
    struct Uninit
    {
    };
    Image(int width, int height, Uninit);

    int width_ = 0;
    int height_ = 0;
    /** Pooled storage: reads up to memory::kSlackBytes past
     *  byteSize() are in bounds (SIMD tail loads). */
    memory::PooledArray<std::uint8_t> data_;
};

} // namespace lotus::image

#endif // LOTUS_IMAGE_IMAGE_H
