#include "image/geometry.h"

#include <algorithm>

#include "common/logging.h"
#include "hwcount/registry.h"

namespace lotus::image {

using hwcount::KernelId;
using hwcount::KernelScope;

Image
crop(const Image &input, const Rect &region)
{
    LOTUS_ASSERT(region.x >= 0 && region.y >= 0 && region.width > 0 &&
                     region.height > 0 &&
                     region.x + region.width <= input.width() &&
                     region.y + region.height <= input.height(),
                 "crop (%d,%d %dx%d) outside %dx%d image", region.x,
                 region.y, region.width, region.height, input.width(),
                 input.height());
    KernelScope scope(KernelId::ImagingCrop);
    Image out(region.width, region.height);
    const std::size_t row_bytes =
        static_cast<std::size_t>(region.width) * Image::kChannels;
    for (int y = 0; y < region.height; ++y) {
        const std::uint8_t *src =
            input.row(region.y + y) +
            static_cast<std::size_t>(region.x) * Image::kChannels;
        std::copy_n(src, row_bytes, out.row(y));
    }
    scope.stats().bytes_read += out.byteSize();
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

Image
flipHorizontal(const Image &input)
{
    KernelScope scope(KernelId::ImagingFlipLeftRight);
    Image out(input.width(), input.height());
    const int w = input.width();
    for (int y = 0; y < input.height(); ++y) {
        const std::uint8_t *src = input.row(y);
        std::uint8_t *dst = out.row(y);
        for (int x = 0; x < w; ++x) {
            const int mx = w - 1 - x;
            dst[x * 3 + 0] = src[mx * 3 + 0];
            dst[x * 3 + 1] = src[mx * 3 + 1];
            dst[x * 3 + 2] = src[mx * 3 + 2];
        }
    }
    scope.stats().bytes_read += input.byteSize();
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.pixelCount());
    return out;
}

} // namespace lotus::image
