/**
 * @file
 * Synthetic image content generation.
 *
 * Stands in for ImageNet/COCO photographs: smooth gradients plus
 * band-limited texture plus blob structure. The `detail` knob sets
 * high-frequency content, which directly controls LJPG encoded size —
 * the mechanism behind the file-size variance the paper's Takeaway 3
 * attributes per-batch preprocessing variance to.
 */

#ifndef LOTUS_IMAGE_SYNTH_H
#define LOTUS_IMAGE_SYNTH_H

#include "common/rng.h"
#include "image/image.h"

namespace lotus::image {

struct SynthOptions
{
    /** High-frequency content in [0, 1]; higher -> larger encodings. */
    double detail = 0.5;
    /** Number of elliptical blobs ("objects"). */
    int blobs = 3;
};

/** Generate a deterministic synthetic photo-like image. */
Image synthesize(Rng &rng, int width, int height,
                 const SynthOptions &options = {});

} // namespace lotus::image

#endif // LOTUS_IMAGE_SYNTH_H
