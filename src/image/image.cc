#include "image/image.h"

#include <algorithm>

namespace lotus::image {

Image::Image(int width, int height)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                kChannels,
            /*zero=*/true)
{
    LOTUS_ASSERT(width >= 0 && height >= 0, "negative image size");
}

Image::Image(int width, int height, Uninit)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                kChannels,
            /*zero=*/false)
{
    LOTUS_ASSERT(width >= 0 && height >= 0, "negative image size");
}

Image
Image::uninitialized(int width, int height)
{
    return Image(width, height, Uninit{});
}

tensor::Tensor
Image::toTensorHwc() const
{
    tensor::Tensor out = tensor::Tensor::uninitialized(
        tensor::DType::U8, {height_, width_, kChannels});
    std::copy(data_.begin(), data_.end(), out.raw());
    return out;
}

Image
Image::fromTensorHwc(const tensor::Tensor &hwc)
{
    LOTUS_ASSERT(hwc.rank() == 3 && hwc.dim(2) == kChannels &&
                     hwc.dtype() == tensor::DType::U8,
                 "expected u8 [H, W, 3] tensor, got %s",
                 hwc.description().c_str());
    Image out = Image::uninitialized(static_cast<int>(hwc.dim(1)),
                                     static_cast<int>(hwc.dim(0)));
    std::copy_n(hwc.raw(), hwc.byteSize(), out.raw());
    return out;
}

} // namespace lotus::image
