#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "hwcount/kernel_id.h"
#include "simd/kernels_internal.h"

namespace lotus::simd {

namespace {

constexpr int kNumTiers = 3;

struct Resolved
{
    Tier tier = Tier::Scalar;
    KernelTable table{};
    detail::KernelNames names{};
};

/** Per-tier tables, built lazily under g_mutex; entries are immutable
 *  once built so the active pointer can be swapped lock-free. */
Resolved g_tiers[kNumTiers];
bool g_tier_built[kNumTiers] = {false, false, false};
std::mutex g_mutex;

std::atomic<const Resolved *> g_active{nullptr};

const Resolved &
buildTierLocked(Tier tier)
{
    const auto idx = static_cast<std::size_t>(tier);
    if (!g_tier_built[idx]) {
        Resolved &r = g_tiers[idx];
        r.tier = tier;
        detail::fillScalar(r.table, r.names);
#if LOTUS_SIMD_HAVE_SSE4
        if (tier >= Tier::Sse4)
            detail::fillSse4(r.table, r.names);
#endif
#if LOTUS_SIMD_HAVE_AVX2
        if (tier >= Tier::Avx2)
            detail::fillAvx2(r.table, r.names);
#endif
        g_tier_built[idx] = true;
    }
    return g_tiers[idx];
}

/** Tell hwcount which specialization each KernelId now resolves to,
 *  so LotusMap / CSV exports report the symbol that actually runs. */
void
registerSymbols(const detail::KernelNames &names)
{
    using hwcount::KernelId;
    using hwcount::setKernelSymbol;
    setKernelSymbol(KernelId::YccToRgb, names.ycc_rgb_row);
    setKernelSymbol(KernelId::ChromaUpsample, names.upsample_h2v2_row);
    setKernelSymbol(KernelId::IdctBlock, names.idct_store_block);
    setKernelSymbol(KernelId::ResampleHorizontal, names.resample_h_rgb_row);
    setKernelSymbol(KernelId::ResampleVertical, names.resample_v_row);
    setKernelSymbol(KernelId::CastU8ToF32, names.cast_u8_f32);
    setKernelSymbol(KernelId::NormalizeChannels, names.normalize_f32);
    setKernelSymbol(KernelId::CollateCopy, names.copy_bytes);
}

void
activate(Tier tier)
{
    std::lock_guard lock(g_mutex);
    const Resolved &resolved = buildTierLocked(tier);
    registerSymbols(resolved.names);
    g_active.store(&resolved, std::memory_order_release);
}

Tier
bestSupported()
{
    if (tierSupported(Tier::Avx2))
        return Tier::Avx2;
    if (tierSupported(Tier::Sse4))
        return Tier::Sse4;
    return Tier::Scalar;
}

const Resolved &
resolveOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        Tier chosen = bestSupported();
        if (const char *env = std::getenv("LOTUS_SIMD");
            env != nullptr && *env != '\0') {
            Tier requested;
            if (!tierFromName(env, requested)) {
                LOTUS_WARN("LOTUS_SIMD=%s not recognised; using %s", env,
                           tierName(chosen));
            } else if (!tierSupported(requested)) {
                LOTUS_WARN("LOTUS_SIMD=%s unsupported on this host; "
                           "using %s",
                           env, tierName(chosen));
            } else {
                chosen = requested;
            }
        }
        activate(chosen);
    });
    return *g_active.load(std::memory_order_acquire);
}

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Scalar: return "scalar";
      case Tier::Sse4: return "sse4";
      case Tier::Avx2: return "avx2";
    }
    return "unknown";
}

bool
tierSupported(Tier tier)
{
    switch (tier) {
      case Tier::Scalar:
        return true;
      case Tier::Sse4:
#if LOTUS_SIMD_HAVE_SSE4
        return __builtin_cpu_supports("sse4.2") != 0;
#else
        return false;
#endif
      case Tier::Avx2:
#if LOTUS_SIMD_HAVE_AVX2
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    }
    return false;
}

bool
tierFromName(const char *name, Tier &tier)
{
    if (name == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        tier = Tier::Scalar;
        return true;
    }
    if (std::strcmp(name, "sse4") == 0) {
        tier = Tier::Sse4;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        tier = Tier::Avx2;
        return true;
    }
    return false;
}

Tier
activeTier()
{
    return resolveOnce().tier;
}

const KernelTable &
kernels()
{
    return resolveOnce().table;
}

void
setTierForTesting(Tier tier)
{
    LOTUS_ASSERT(tierSupported(tier), "tier %s not supported here",
                 tierName(tier));
    resolveOnce(); // ensure the env/CPU default resolves first
    activate(tier);
}

} // namespace lotus::simd
