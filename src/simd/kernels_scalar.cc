/**
 * Scalar tier: the PR-1 fixed-point loops, lifted verbatim from
 * image/codec/color.cc, image/codec/codec.cc, image/resample.cc and
 * tensor/ops.cc so every stronger tier has a bit-exact baseline to
 * test against on any host.
 */

#include <cmath>
#include <cstring>

#include "simd/kernels_internal.h"

namespace lotus::simd::detail {

const YccTables &
yccTables()
{
    static const YccTables tables = [] {
        YccTables t{};
        for (int i = 0; i < kYccTableSize; ++i) {
            const double v = 0.5 * i - 128.0;
            const double scale = static_cast<double>(1 << kYccFixBits);
            t.cr_r[static_cast<std::size_t>(i)] =
                static_cast<std::int32_t>(std::lround(1.402 * v * scale));
            t.cb_b[static_cast<std::size_t>(i)] =
                static_cast<std::int32_t>(std::lround(1.772 * v * scale));
            t.cr_g[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
                std::lround(-0.714136 * v * scale));
            t.cb_g[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
                std::lround(-0.344136 * v * scale));
        }
        return t;
    }();
    return tables;
}

namespace {

void
yccRgbRowScalar(const std::int16_t *yp, const std::int16_t *cbp,
                const std::int16_t *crp, std::uint8_t *dst, int width)
{
    const YccTables &t = yccTables();
    for (int x = 0; x < width; ++x) {
        // Luma feeds the 16.16 accumulator exactly: a 1/16th-step
        // sample times 2^12 is the sample value in 16.16.
        const std::int32_t ybase = static_cast<std::int32_t>(yp[x])
                                   << (kYccFixBits - kYccFracBits);
        const auto icb = static_cast<std::size_t>(halfStepIndex(cbp[x]));
        const auto icr = static_cast<std::size_t>(halfStepIndex(crp[x]));
        dst[x * 3 + 0] = clampFixedToU8(ybase + t.cr_r[icr]);
        dst[x * 3 + 1] = clampFixedToU8(ybase + t.cb_g[icb] + t.cr_g[icr]);
        dst[x * 3 + 2] = clampFixedToU8(ybase + t.cb_b[icb]);
    }
}

void
upsampleH2v2RowScalar(const std::int16_t *near_row,
                      const std::int16_t *far_row, int weight_near,
                      int half_width, int out_width, std::int16_t *scratch,
                      std::int16_t *dst)
{
    // Quarter-unit vertical blend; max 4 * kYccSampleMax = 65280 so
    // the sums live in u16 exactly (SIMD tiers rely on this too).
    const int wf = 4 - weight_near;
    auto *v = reinterpret_cast<std::uint16_t *>(scratch);
    for (int j = 0; j < half_width; ++j)
        v[j] = static_cast<std::uint16_t>(weight_near * near_row[j] +
                                          wf * far_row[j]);
    dst[0] = static_cast<std::int16_t>(
        (v[0] + 2) >> 2); // full horizontal weight on column 0
    for (int j = 0; j + 1 < half_width; ++j) {
        const std::int32_t s0 = v[j];
        const std::int32_t s1 = v[j + 1];
        dst[2 * j + 1] = static_cast<std::int16_t>((3 * s0 + s1 + 8) >> 4);
        dst[2 * j + 2] = static_cast<std::int16_t>((s0 + 3 * s1 + 8) >> 4);
    }
    if (out_width == 2 * half_width)
        dst[out_width - 1] =
            static_cast<std::int16_t>((v[half_width - 1] + 2) >> 2);
}

void
idctStoreBlockScalar(const float *block, std::int16_t *dst, int stride)
{
    for (int y = 0; y < 8; ++y) {
        const float *src = block + y * 8;
        std::int16_t *row = dst + y * stride;
        for (int x = 0; x < 8; ++x) {
            // Clamp in the float domain: corrupt streams can yield
            // samples outside int range, and that float->int cast is
            // UB.
            const float s = std::clamp(
                (src[x] + 128.0f) * (1 << kYccFracBits) + 0.5f, 0.0f,
                static_cast<float>(kYccSampleMax));
            row[x] = static_cast<std::int16_t>(s);
        }
    }
}

void
resampleHRgbRowScalar(const std::uint8_t *src, std::uint8_t *dst,
                      int out_width, const std::int32_t *first,
                      const std::int32_t *offset, const std::int32_t *count,
                      const std::int32_t *weights)
{
    for (int x = 0; x < out_width; ++x) {
        const std::int32_t *wf = weights + offset[x];
        const int taps = count[x];
        const std::uint8_t *sp = src + static_cast<std::size_t>(first[x]) * 3;
        std::int32_t acc0 = kResampleAccRound;
        std::int32_t acc1 = kResampleAccRound;
        std::int32_t acc2 = kResampleAccRound;
        for (int k = 0; k < taps; ++k) {
            const std::int32_t w = wf[k];
            acc0 += w * sp[0];
            acc1 += w * sp[1];
            acc2 += w * sp[2];
            sp += 3;
        }
        dst[x * 3 + 0] = clampResampleAcc(acc0);
        dst[x * 3 + 1] = clampResampleAcc(acc1);
        dst[x * 3 + 2] = clampResampleAcc(acc2);
    }
}

void
resampleVRowScalar(const std::uint8_t *src, std::ptrdiff_t src_stride,
                   int taps, const std::int32_t *weights, std::uint8_t *dst,
                   int row_bytes)
{
    // Cache-blocked strips so the accumulators and the active parts
    // of the source rows stay resident in L1 across taps.
    constexpr int kStripBytes = 1024;
    std::int32_t acc[kStripBytes];
    for (int b0 = 0; b0 < row_bytes; b0 += kStripBytes) {
        const int strip = std::min(kStripBytes, row_bytes - b0);
        std::fill(acc, acc + strip, kResampleAccRound);
        for (int k = 0; k < taps; ++k) {
            const std::int32_t w = weights[k];
            const std::uint8_t *s = src + k * src_stride + b0;
            for (int b = 0; b < strip; ++b)
                acc[b] += w * s[b];
        }
        for (int b = 0; b < strip; ++b)
            dst[b0 + b] = clampResampleAcc(acc[b]);
    }
}

void
castU8F32Scalar(const std::uint8_t *src, float *dst, std::int64_t n,
                float scale)
{
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * scale;
}

void
normalizeF32Scalar(float *data, std::int64_t n, float mean, float inv_std)
{
    for (std::int64_t i = 0; i < n; ++i)
        data[i] = (data[i] - mean) * inv_std;
}

void
copyBytesScalar(const std::uint8_t *src, std::uint8_t *dst, std::size_t n)
{
    std::memcpy(dst, src, n);
}

} // namespace

void
fillScalar(KernelTable &table, KernelNames &names)
{
    table.ycc_rgb_row = yccRgbRowScalar;
    table.upsample_h2v2_row = upsampleH2v2RowScalar;
    table.idct_store_block = idctStoreBlockScalar;
    table.resample_h_rgb_row = resampleHRgbRowScalar;
    table.resample_v_row = resampleVRowScalar;
    table.cast_u8_f32 = castU8F32Scalar;
    table.normalize_f32 = normalizeF32Scalar;
    table.copy_bytes = copyBytesScalar;
    // Scalar keeps the historical base names, so single-tier hosts
    // (and LOTUS_SIMD=scalar runs) report exactly the paper symbols.
    names.ycc_rgb_row = "ycc_rgb_convert";
    names.upsample_h2v2_row = "sep_upsample";
    names.idct_store_block = "jpeg_idct_islow";
    names.resample_h_rgb_row = "ImagingResampleHorizontal_8bpc";
    names.resample_v_row = "ImagingResampleVertical_8bpc";
    names.cast_u8_f32 = "cast_u8_to_f32";
    names.normalize_f32 = "normalize_channels";
    names.copy_bytes = "collate_copy";
}

} // namespace lotus::simd::detail
