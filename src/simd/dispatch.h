/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the preprocessing hot
 * path.
 *
 * The paper's leaf functions (`ycc_rgb_convert`, `jpeg_idct_islow`,
 * `ImagingResampleHorizontal_8bpc`, ...) are exactly the loops real
 * frameworks ship as per-ISA specializations. This layer reproduces
 * that structure: the host CPU is probed once at startup, one of
 * three tiers (scalar / SSE4.2 / AVX2) is selected, and every hot
 * kernel is reached through a function-pointer table resolved to that
 * tier. `LOTUS_SIMD=scalar|sse4|avx2` overrides the choice (ignored
 * when the host lacks the tier); ScopedTier switches in-process for
 * differential tests.
 *
 * Correctness contract (enforced by tests/test_simd_dispatch.cc):
 * every tier produces *bit-identical* output to the scalar tier for
 * every kernel in the table. Integer kernels are exact by
 * construction; float kernels (cast / normalize / IDCT store) use the
 * same IEEE operation order in every tier and the SIMD translation
 * units are compiled without FMA so no contraction can change
 * results. The scalar tier itself is the PR-1 fixed-point fast path,
 * which stays within |diff| <= 1 of the retained float reference.
 *
 * Tiers may OVER-READ up to kMaxReadSlack bytes past the logical end
 * of kernel inputs (never write). All pooled buffers (Image / Plane /
 * Tensor storage) carry at least that much readable padding — see
 * memory/buffer_pool.h.
 *
 * Each resolved kernel registers its tier-suffixed symbol name with
 * hwcount (hwcount::setKernelSymbol), so LotusMap attribution and CSV
 * exports show e.g. "ycc_rgb_convert_avx2", exactly as a hardware
 * profiler would report the dispatched specialization.
 */

#ifndef LOTUS_SIMD_DISPATCH_H
#define LOTUS_SIMD_DISPATCH_H

#include <cstddef>
#include <cstdint>

namespace lotus::simd {

/** Instruction-set tiers, ordered weakest to strongest. */
enum class Tier : int
{
    Scalar = 0,
    Sse4 = 1,
    Avx2 = 2,
};

/** "scalar" / "sse4" / "avx2". */
const char *tierName(Tier tier);

/** True when this build and the host CPU can run @p tier. */
bool tierSupported(Tier tier);

/** Parse a LOTUS_SIMD-style name; returns false on unknown names. */
bool tierFromName(const char *name, Tier &tier);

/** The tier the kernel table is currently resolved to. */
Tier activeTier();

/** Bytes a kernel may read (never write) past a buffer's logical
 *  end; pooled buffers guarantee this much padding. */
constexpr std::size_t kMaxReadSlack = 32;

/** Fractional bits of the codec's integer plane samples; must match
 *  image::codec::kSampleFracBits. */
constexpr int kYccFracBits = 4;
/** Largest integer plane sample (255 in 1/16th steps). */
constexpr int kYccSampleMax = 255 << kYccFracBits;
/** Fixed-point bits of the YCC->RGB tables. */
constexpr int kYccFixBits = 16;
/** Half-level YCC table entries (index = round(2 * level)). */
constexpr int kYccTableSize = 511;

/** Fractional bits of resample filter weights; must match
 *  image::detail::kWeightBits. */
constexpr int kResampleWeightBits = 15;

/**
 * The dispatched hot kernels. All pointers are always valid: tier
 * tables start from the scalar implementations and override only the
 * kernels the tier actually specializes (e.g. SSE4.2 keeps the
 * scalar YCC conversion, which needs AVX2 gathers to win).
 */
struct KernelTable
{
    /** One row of integer YCC->RGB (12.4 planes -> interleaved u8). */
    void (*ycc_rgb_row)(const std::int16_t *y, const std::int16_t *cb,
                        const std::int16_t *cr, std::uint8_t *dst,
                        int width);

    /**
     * One output row of the h2v2 fancy chroma upsample: vertical 3:1
     * blend of @p near_row / @p far_row (weight_near in {3, 4}) into
     * @p scratch (quarter-unit samples; caller provides
     * half_width + 16 elements), then the horizontal {3,1}/4 pass
     * into @p dst (out_width samples).
     */
    void (*upsample_h2v2_row)(const std::int16_t *near_row,
                              const std::int16_t *far_row, int weight_near,
                              int half_width, int out_width,
                              std::int16_t *scratch, std::int16_t *dst);

    /** Store one interior 8x8 IDCT block (centered floats) into a
     *  12.4 integer plane at @p dst with row @p stride. */
    void (*idct_store_block)(const float *block, std::int16_t *dst,
                             int stride);

    /**
     * One row of the horizontal resample pass over interleaved RGB.
     * Flattened windows: output pixel x uses count[x] taps of
     * weights[offset[x]..] starting at source pixel first[x].
     */
    void (*resample_h_rgb_row)(const std::uint8_t *src, std::uint8_t *dst,
                               int out_width, const std::int32_t *first,
                               const std::int32_t *offset,
                               const std::int32_t *count,
                               const std::int32_t *weights);

    /** One output row of the vertical resample pass: @p taps source
     *  rows starting at @p src (consecutive via @p src_stride), one
     *  weight per row, over @p row_bytes interleaved bytes. */
    void (*resample_v_row)(const std::uint8_t *src,
                           std::ptrdiff_t src_stride, int taps,
                           const std::int32_t *weights, std::uint8_t *dst,
                           int row_bytes);

    /** dst[i] = float(src[i]) * scale. */
    void (*cast_u8_f32)(const std::uint8_t *src, float *dst,
                        std::int64_t n, float scale);

    /** data[i] = (data[i] - mean) * inv_std. */
    void (*normalize_f32)(float *data, std::int64_t n, float mean,
                          float inv_std);

    /** memcpy semantics; large copies may stream past the cache. */
    void (*copy_bytes)(const std::uint8_t *src, std::uint8_t *dst,
                       std::size_t n);
};

/**
 * The active kernel table. First call probes the CPU (honouring
 * LOTUS_SIMD) and registers the resolved kernel symbols with
 * hwcount; callers on hot paths should hoist the reference out of
 * their loops.
 */
const KernelTable &kernels();

/** Force a tier (must be supported); used by ScopedTier and the
 *  per-tier bench entries. Re-registers hwcount symbols. */
void setTierForTesting(Tier tier);

/** RAII tier override for differential tests and benches. */
class ScopedTier
{
  public:
    explicit ScopedTier(Tier tier) : previous_(activeTier())
    {
        setTierForTesting(tier);
    }
    ~ScopedTier() { setTierForTesting(previous_); }

    ScopedTier(const ScopedTier &) = delete;
    ScopedTier &operator=(const ScopedTier &) = delete;

  private:
    Tier previous_;
};

} // namespace lotus::simd

#endif // LOTUS_SIMD_DISPATCH_H
