/**
 * SSE4.2 tier. Specializes the upsample, IDCT store, both resample
 * passes and the tensor cast/normalize kernels with 128-bit vectors;
 * YCC->RGB stays scalar (it needs AVX2 gathers to beat the table
 * loads) and copy_bytes stays memcpy.
 *
 * Compiled with -msse4.2 only (no FMA): float kernels keep the exact
 * IEEE operation order of the scalar tier, so outputs here are
 * bit-identical to scalar by construction.
 */

#if LOTUS_SIMD_HAVE_SSE4

#include <cstring>
#include <smmintrin.h>

#include "simd/kernels_internal.h"

namespace lotus::simd::detail {

namespace {

void
upsampleH2v2RowSse4(const std::int16_t *near_row,
                    const std::int16_t *far_row, int weight_near,
                    int half_width, int out_width, std::int16_t *scratch,
                    std::int16_t *dst)
{
    const int wf = 4 - weight_near;
    auto *v = reinterpret_cast<std::uint16_t *>(scratch);

    // Vertical blend: sums fit u16 exactly (max 4 * 4080), so 16-bit
    // low multiplies are exact. The trailing full vector may read up
    // to 14 bytes past the source rows (pool read slack) and write
    // into the scratch pad (caller provides half_width + 16).
    const __m128i vwn = _mm_set1_epi16(static_cast<short>(weight_near));
    const __m128i vwf = _mm_set1_epi16(static_cast<short>(wf));
    for (int j = 0; j < half_width; j += 8) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(near_row + j));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(far_row + j));
        const __m128i blend = _mm_add_epi16(_mm_mullo_epi16(a, vwn),
                                            _mm_mullo_epi16(b, vwf));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(v + j), blend);
    }

    dst[0] = static_cast<std::int16_t>((v[0] + 2) >> 2);

    // Horizontal pass: (3*s0 + s1 + 8) >> 4 stays below 2^16, so the
    // arithmetic is exact in u16 with a logical shift.
    const __m128i three = _mm_set1_epi16(3);
    const __m128i eight = _mm_set1_epi16(8);
    int j = 0;
    for (; j + 8 <= half_width - 1; j += 8) {
        const __m128i s0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + j));
        const __m128i s1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + j + 1));
        const __m128i o0 = _mm_srli_epi16(
            _mm_add_epi16(
                _mm_add_epi16(_mm_mullo_epi16(s0, three), s1), eight),
            4);
        const __m128i o1 = _mm_srli_epi16(
            _mm_add_epi16(
                _mm_add_epi16(s0, _mm_mullo_epi16(s1, three)), eight),
            4);
        // Interleave (o0[k], o1[k]) pairs -> 16 outputs at 2j+1.
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 2 * j + 1),
                         _mm_unpacklo_epi16(o0, o1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 2 * j + 9),
                         _mm_unpackhi_epi16(o0, o1));
    }
    for (; j + 1 < half_width; ++j) {
        const std::int32_t s0 = v[j];
        const std::int32_t s1 = v[j + 1];
        dst[2 * j + 1] = static_cast<std::int16_t>((3 * s0 + s1 + 8) >> 4);
        dst[2 * j + 2] = static_cast<std::int16_t>((s0 + 3 * s1 + 8) >> 4);
    }
    if (out_width == 2 * half_width)
        dst[out_width - 1] =
            static_cast<std::int16_t>((v[half_width - 1] + 2) >> 2);
}

void
idctStoreBlockSse4(const float *block, std::int16_t *dst, int stride)
{
    const __m128 bias = _mm_set1_ps(128.0f);
    const __m128 gain = _mm_set1_ps(static_cast<float>(1 << kYccFracBits));
    const __m128 half = _mm_set1_ps(0.5f);
    const __m128i vmax = _mm_set1_epi16(kYccSampleMax);
    const __m128i vzero = _mm_setzero_si128();
    for (int y = 0; y < 8; ++y) {
        const float *src = block + y * 8;
        // Same IEEE order as scalar: (x + 128) * 16 + 0.5, truncate.
        const __m128 lo = _mm_add_ps(
            _mm_mul_ps(_mm_add_ps(_mm_loadu_ps(src), bias), gain), half);
        const __m128 hi = _mm_add_ps(
            _mm_mul_ps(_mm_add_ps(_mm_loadu_ps(src + 4), bias), gain),
            half);
        __m128i packed =
            _mm_packs_epi32(_mm_cvttps_epi32(lo), _mm_cvttps_epi32(hi));
        packed = _mm_max_epi16(_mm_min_epi16(packed, vmax), vzero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + y * stride),
                         packed);
    }
}

void
resampleHRgbRowSse4(const std::uint8_t *src, std::uint8_t *dst,
                    int out_width, const std::int32_t *first,
                    const std::int32_t *offset, const std::int32_t *count,
                    const std::int32_t *weights)
{
    for (int x = 0; x < out_width; ++x) {
        const std::int32_t *wf = weights + offset[x];
        const int taps = count[x];
        const std::uint8_t *sp = src + static_cast<std::size_t>(first[x]) * 3;
        // Lanes hold [R, G, B, junk]; the 4-byte tap load reads one
        // byte past the last pixel (pool read slack).
        __m128i acc = _mm_setr_epi32(kResampleAccRound, kResampleAccRound,
                                     kResampleAccRound, 0);
        for (int k = 0; k < taps; ++k) {
            std::uint32_t raw;
            std::memcpy(&raw, sp, 4);
            const __m128i px = _mm_cvtepu8_epi32(
                _mm_cvtsi32_si128(static_cast<int>(raw)));
            acc = _mm_add_epi32(
                acc, _mm_mullo_epi32(px, _mm_set1_epi32(wf[k])));
            sp += 3;
        }
        const __m128i shifted = _mm_srai_epi32(acc, kResampleWeightBits);
        const __m128i bytes = _mm_packus_epi16(
            _mm_packs_epi32(shifted, shifted), _mm_setzero_si128());
        const std::uint32_t out =
            static_cast<std::uint32_t>(_mm_cvtsi128_si32(bytes));
        // 4-byte store overwrites the next pixel's R (rewritten on the
        // next iteration); the final pixel stores 3 bytes exactly.
        std::memcpy(dst + x * 3, &out, x + 1 < out_width ? 4 : 3);
    }
}

void
resampleVRowSse4(const std::uint8_t *src, std::ptrdiff_t src_stride,
                 int taps, const std::int32_t *weights, std::uint8_t *dst,
                 int row_bytes)
{
    int b = 0;
    for (; b + 8 <= row_bytes; b += 8) {
        __m128i acc0 = _mm_set1_epi32(kResampleAccRound);
        __m128i acc1 = _mm_set1_epi32(kResampleAccRound);
        for (int k = 0; k < taps; ++k) {
            const std::uint8_t *s = src + k * src_stride + b;
            const __m128i v8 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(s));
            const __m128i w = _mm_set1_epi32(weights[k]);
            acc0 = _mm_add_epi32(
                acc0, _mm_mullo_epi32(_mm_cvtepu8_epi32(v8), w));
            acc1 = _mm_add_epi32(
                acc1, _mm_mullo_epi32(
                          _mm_cvtepu8_epi32(_mm_srli_si128(v8, 4)), w));
        }
        const __m128i p16 =
            _mm_packs_epi32(_mm_srai_epi32(acc0, kResampleWeightBits),
                            _mm_srai_epi32(acc1, kResampleWeightBits));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + b),
                         _mm_packus_epi16(p16, _mm_setzero_si128()));
    }
    for (; b < row_bytes; ++b) {
        std::int32_t acc = kResampleAccRound;
        for (int k = 0; k < taps; ++k)
            acc += weights[k] * src[k * src_stride + b];
        dst[b] = clampResampleAcc(acc);
    }
}

void
castU8F32Sse4(const std::uint8_t *src, float *dst, std::int64_t n,
              float scale)
{
    const __m128 vscale = _mm_set1_ps(scale);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i v8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128 lo = _mm_cvtepi32_ps(_mm_cvtepu8_epi32(v8));
        const __m128 hi = _mm_cvtepi32_ps(
            _mm_cvtepu8_epi32(_mm_srli_si128(v8, 4)));
        _mm_storeu_ps(dst + i, _mm_mul_ps(lo, vscale));
        _mm_storeu_ps(dst + i + 4, _mm_mul_ps(hi, vscale));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * scale;
}

void
normalizeF32Sse4(float *data, std::int64_t n, float mean, float inv_std)
{
    const __m128 vmean = _mm_set1_ps(mean);
    const __m128 vinv = _mm_set1_ps(inv_std);
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 v = _mm_loadu_ps(data + i);
        _mm_storeu_ps(data + i, _mm_mul_ps(_mm_sub_ps(v, vmean), vinv));
    }
    for (; i < n; ++i)
        data[i] = (data[i] - mean) * inv_std;
}

} // namespace

void
fillSse4(KernelTable &table, KernelNames &names)
{
    table.upsample_h2v2_row = upsampleH2v2RowSse4;
    names.upsample_h2v2_row = "sep_upsample_sse4";
    table.idct_store_block = idctStoreBlockSse4;
    names.idct_store_block = "jpeg_idct_islow_sse4";
    table.resample_h_rgb_row = resampleHRgbRowSse4;
    names.resample_h_rgb_row = "ImagingResampleHorizontal_8bpc_sse4";
    table.resample_v_row = resampleVRowSse4;
    names.resample_v_row = "ImagingResampleVertical_8bpc_sse4";
    table.cast_u8_f32 = castU8F32Sse4;
    names.cast_u8_f32 = "cast_u8_to_f32_sse4";
    table.normalize_f32 = normalizeF32Sse4;
    names.normalize_f32 = "normalize_channels_sse4";
}

} // namespace lotus::simd::detail

#endif // LOTUS_SIMD_HAVE_SSE4
