/**
 * AVX2 tier. Specializes every kernel in the table; YCC->RGB becomes
 * profitable here because the 16.16 tables can be gathered eight
 * pixels at a time.
 *
 * Compiled with -mavx2 only (no FMA): float kernels keep the exact
 * IEEE operation order of the scalar tier, so outputs here are
 * bit-identical to scalar by construction.
 */

#if LOTUS_SIMD_HAVE_AVX2

#include <cstring>
#include <immintrin.h>

#include "simd/kernels_internal.h"

namespace lotus::simd::detail {

namespace {

void
yccRgbRowAvx2(const std::int16_t *yp, const std::int16_t *cbp,
              const std::int16_t *crp, std::uint8_t *dst, int width)
{
    const YccTables &t = yccTables();
    const auto *cr_r = reinterpret_cast<const int *>(t.cr_r.data());
    const auto *cb_b = reinterpret_cast<const int *>(t.cb_b.data());
    const auto *cr_g = reinterpret_cast<const int *>(t.cr_g.data());
    const auto *cb_g = reinterpret_cast<const int *>(t.cb_g.data());
    const __m256i four = _mm256_set1_epi32(4);

    // Byte-interleave masks: r/g/b vectors each hold 8 channel bytes
    // in their low half; out bytes follow the R,G,B,R,G,B,... walk
    // (high-bit shuffle index selects zero).
    const __m128i mask_r0 = _mm_setr_epi8(0, -1, -1, 1, -1, -1, 2, -1, -1,
                                          3, -1, -1, 4, -1, -1, 5);
    const __m128i mask_g0 = _mm_setr_epi8(-1, 0, -1, -1, 1, -1, -1, 2, -1,
                                          -1, 3, -1, -1, 4, -1, -1);
    const __m128i mask_b0 = _mm_setr_epi8(-1, -1, 0, -1, -1, 1, -1, -1, 2,
                                          -1, -1, 3, -1, -1, 4, -1);
    const __m128i mask_r1 = _mm_setr_epi8(-1, -1, 6, -1, -1, 7, -1, -1, -1,
                                          -1, -1, -1, -1, -1, -1, -1);
    const __m128i mask_g1 = _mm_setr_epi8(5, -1, -1, 6, -1, -1, 7, -1, -1,
                                          -1, -1, -1, -1, -1, -1, -1);
    const __m128i mask_b1 = _mm_setr_epi8(-1, 5, -1, -1, 6, -1, -1, 7, -1,
                                          -1, -1, -1, -1, -1, -1, -1);

    int x = 0;
    for (; x + 8 <= width; x += 8) {
        const __m256i y32 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(yp + x)));
        const __m256i cb32 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(cbp + x)));
        const __m256i cr32 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(crp + x)));

        const __m256i ybase =
            _mm256_slli_epi32(y32, kYccFixBits - kYccFracBits);
        const __m256i icb =
            _mm256_srai_epi32(_mm256_add_epi32(cb32, four), 3);
        const __m256i icr =
            _mm256_srai_epi32(_mm256_add_epi32(cr32, four), 3);

        const __m256i r32 = _mm256_add_epi32(
            ybase, _mm256_i32gather_epi32(cr_r, icr, 4));
        const __m256i g32 = _mm256_add_epi32(
            ybase,
            _mm256_add_epi32(_mm256_i32gather_epi32(cb_g, icb, 4),
                             _mm256_i32gather_epi32(cr_g, icr, 4)));
        const __m256i b32 = _mm256_add_epi32(
            ybase, _mm256_i32gather_epi32(cb_b, icb, 4));

        // >>16 then saturate: values >>16 fit i16 (inputs are bounded
        // by ybase + table extremes), so packs/packus reproduce the
        // scalar clamp-to-[0,255] exactly.
        const __m256i r16v = _mm256_srai_epi32(r32, kYccFixBits);
        const __m256i g16v = _mm256_srai_epi32(g32, kYccFixBits);
        const __m256i b16v = _mm256_srai_epi32(b32, kYccFixBits);
        const __m128i r16 =
            _mm_packs_epi32(_mm256_castsi256_si128(r16v),
                            _mm256_extracti128_si256(r16v, 1));
        const __m128i g16 =
            _mm_packs_epi32(_mm256_castsi256_si128(g16v),
                            _mm256_extracti128_si256(g16v, 1));
        const __m128i b16 =
            _mm_packs_epi32(_mm256_castsi256_si128(b16v),
                            _mm256_extracti128_si256(b16v, 1));
        const __m128i r8 = _mm_packus_epi16(r16, r16);
        const __m128i g8 = _mm_packus_epi16(g16, g16);
        const __m128i b8 = _mm_packus_epi16(b16, b16);

        const __m128i out0 = _mm_or_si128(
            _mm_or_si128(_mm_shuffle_epi8(r8, mask_r0),
                         _mm_shuffle_epi8(g8, mask_g0)),
            _mm_shuffle_epi8(b8, mask_b0));
        const __m128i out1 = _mm_or_si128(
            _mm_or_si128(_mm_shuffle_epi8(r8, mask_r1),
                         _mm_shuffle_epi8(g8, mask_g1)),
            _mm_shuffle_epi8(b8, mask_b1));
        std::uint8_t *d = dst + x * 3;
        _mm_storeu_si128(reinterpret_cast<__m128i *>(d), out0);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(d + 16), out1);
    }
    for (; x < width; ++x) {
        const std::int32_t ybase = static_cast<std::int32_t>(yp[x])
                                   << (kYccFixBits - kYccFracBits);
        const auto icb = static_cast<std::size_t>(halfStepIndex(cbp[x]));
        const auto icr = static_cast<std::size_t>(halfStepIndex(crp[x]));
        dst[x * 3 + 0] = clampFixedToU8(ybase + t.cr_r[icr]);
        dst[x * 3 + 1] = clampFixedToU8(ybase + t.cb_g[icb] + t.cr_g[icr]);
        dst[x * 3 + 2] = clampFixedToU8(ybase + t.cb_b[icb]);
    }
}

void
upsampleH2v2RowAvx2(const std::int16_t *near_row,
                    const std::int16_t *far_row, int weight_near,
                    int half_width, int out_width, std::int16_t *scratch,
                    std::int16_t *dst)
{
    const int wf = 4 - weight_near;
    auto *v = reinterpret_cast<std::uint16_t *>(scratch);

    // Vertical blend: sums fit u16 exactly (max 4 * 4080). The final
    // vector may read up to 30 bytes past the source rows (pool read
    // slack) and write into the scratch pad (half_width + 16).
    const __m256i vwn = _mm256_set1_epi16(static_cast<short>(weight_near));
    const __m256i vwf = _mm256_set1_epi16(static_cast<short>(wf));
    for (int j = 0; j < half_width; j += 16) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(near_row + j));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(far_row + j));
        const __m256i blend = _mm256_add_epi16(_mm256_mullo_epi16(a, vwn),
                                               _mm256_mullo_epi16(b, vwf));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(v + j), blend);
    }

    dst[0] = static_cast<std::int16_t>((v[0] + 2) >> 2);

    // Horizontal pass: (3*s0 + s1 + 8) >> 4 stays below 2^16 -> exact
    // in u16 with a logical shift.
    const __m256i three = _mm256_set1_epi16(3);
    const __m256i eight = _mm256_set1_epi16(8);
    int j = 0;
    for (; j + 16 <= half_width - 1; j += 16) {
        const __m256i s0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + j));
        const __m256i s1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + j + 1));
        const __m256i o0 = _mm256_srli_epi16(
            _mm256_add_epi16(
                _mm256_add_epi16(_mm256_mullo_epi16(s0, three), s1),
                eight),
            4);
        const __m256i o1 = _mm256_srli_epi16(
            _mm256_add_epi16(
                _mm256_add_epi16(s0, _mm256_mullo_epi16(s1, three)),
                eight),
            4);
        // unpack interleaves within 128-bit lanes; permute2x128
        // stitches the lanes back into sequential order.
        const __m256i lo = _mm256_unpacklo_epi16(o0, o1);
        const __m256i hi = _mm256_unpackhi_epi16(o0, o1);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + 2 * j + 1),
            _mm256_permute2x128_si256(lo, hi, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + 2 * j + 17),
            _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    for (; j + 1 < half_width; ++j) {
        const std::int32_t s0 = v[j];
        const std::int32_t s1 = v[j + 1];
        dst[2 * j + 1] = static_cast<std::int16_t>((3 * s0 + s1 + 8) >> 4);
        dst[2 * j + 2] = static_cast<std::int16_t>((s0 + 3 * s1 + 8) >> 4);
    }
    if (out_width == 2 * half_width)
        dst[out_width - 1] =
            static_cast<std::int16_t>((v[half_width - 1] + 2) >> 2);
}

void
idctStoreBlockAvx2(const float *block, std::int16_t *dst, int stride)
{
    const __m256 bias = _mm256_set1_ps(128.0f);
    const __m256 gain =
        _mm256_set1_ps(static_cast<float>(1 << kYccFracBits));
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m128i vmax = _mm_set1_epi16(kYccSampleMax);
    const __m128i vzero = _mm_setzero_si128();
    for (int y = 0; y < 8; ++y) {
        // Same IEEE order as scalar: (x + 128) * 16 + 0.5, truncate.
        const __m256 scaled = _mm256_add_ps(
            _mm256_mul_ps(
                _mm256_add_ps(_mm256_loadu_ps(block + y * 8), bias), gain),
            half);
        const __m256i i32 = _mm256_cvttps_epi32(scaled);
        __m128i packed = _mm_packs_epi32(_mm256_castsi256_si128(i32),
                                         _mm256_extracti128_si256(i32, 1));
        packed = _mm_max_epi16(_mm_min_epi16(packed, vmax), vzero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + y * stride),
                         packed);
    }
}

void
resampleHRgbRowAvx2(const std::uint8_t *src, std::uint8_t *dst,
                    int out_width, const std::int32_t *first,
                    const std::int32_t *offset, const std::int32_t *count,
                    const std::int32_t *weights)
{
    // Weight-pair broadcast [w0,w0,w0,w1,w1,w1,w0,w0]; lanes 6-7 are
    // junk and never read back.
    const __m256i widx = _mm256_setr_epi32(0, 0, 0, 1, 1, 1, 0, 0);
    // Rotate-by-3 so lanes 0-2 of acc+rot hold the pair sums.
    const __m256i rotidx = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    for (int x = 0; x < out_width; ++x) {
        const std::int32_t *wf = weights + offset[x];
        const int taps = count[x];
        const std::uint8_t *sp = src + static_cast<std::size_t>(first[x]) * 3;
        // Rounding bias only in the low pixel's lanes; the pair
        // combine folds it in exactly once per channel.
        __m256i acc = _mm256_setr_epi32(kResampleAccRound,
                                        kResampleAccRound,
                                        kResampleAccRound, 0, 0, 0, 0, 0);
        int k = 0;
        for (; k + 1 < taps; k += 2) {
            // 8-byte load spans two RGB pixels (reads 2 bytes past the
            // second pixel: pool read slack).
            const __m256i px = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(sp)));
            const __m256i wpair = _mm256_permutevar8x32_epi32(
                _mm256_castsi128_si256(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(wf + k))),
                widx);
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(px, wpair));
            sp += 6;
        }
        if (k < taps) {
            std::uint32_t raw;
            std::memcpy(&raw, sp, 4);
            const __m256i px = _mm256_zextsi128_si256(_mm_cvtepu8_epi32(
                _mm_cvtsi32_si128(static_cast<int>(raw))));
            const std::int32_t w = wf[k];
            const __m256i wlast =
                _mm256_setr_epi32(w, w, w, 0, 0, 0, 0, 0);
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(px, wlast));
        }
        const __m256i sum = _mm256_add_epi32(
            acc, _mm256_permutevar8x32_epi32(acc, rotidx));
        const __m128i shifted = _mm_srai_epi32(
            _mm256_castsi256_si128(sum), kResampleWeightBits);
        const __m128i bytes = _mm_packus_epi16(
            _mm_packs_epi32(shifted, shifted), _mm_setzero_si128());
        const std::uint32_t out =
            static_cast<std::uint32_t>(_mm_cvtsi128_si32(bytes));
        // 4-byte store overwrites the next pixel's R (rewritten on the
        // next iteration); the final pixel stores 3 bytes exactly.
        std::memcpy(dst + x * 3, &out, x + 1 < out_width ? 4 : 3);
    }
}

void
resampleVRowAvx2(const std::uint8_t *src, std::ptrdiff_t src_stride,
                 int taps, const std::int32_t *weights, std::uint8_t *dst,
                 int row_bytes)
{
    int b = 0;
    for (; b + 16 <= row_bytes; b += 16) {
        __m256i acc0 = _mm256_set1_epi32(kResampleAccRound);
        __m256i acc1 = _mm256_set1_epi32(kResampleAccRound);
        for (int k = 0; k < taps; ++k) {
            const std::uint8_t *s = src + k * src_stride + b;
            const __m128i v16 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(s));
            const __m256i w = _mm256_set1_epi32(weights[k]);
            acc0 = _mm256_add_epi32(
                acc0, _mm256_mullo_epi32(_mm256_cvtepu8_epi32(v16), w));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_mullo_epi32(
                          _mm256_cvtepu8_epi32(_mm_srli_si128(v16, 8)),
                          w));
        }
        // packs interleaves 64-bit chunks across lanes; permute4x64
        // restores sequential order before the byte pack.
        __m256i p16 = _mm256_packs_epi32(
            _mm256_srai_epi32(acc0, kResampleWeightBits),
            _mm256_srai_epi32(acc1, kResampleWeightBits));
        p16 = _mm256_permute4x64_epi64(p16, _MM_SHUFFLE(3, 1, 2, 0));
        const __m256i p8 = _mm256_packus_epi16(p16, p16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + b),
                         _mm256_castsi256_si128(p8));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + b + 8),
                         _mm256_extracti128_si256(p8, 1));
    }
    for (; b < row_bytes; ++b) {
        std::int32_t acc = kResampleAccRound;
        for (int k = 0; k < taps; ++k)
            acc += weights[k] * src[k * src_stride + b];
        dst[b] = clampResampleAcc(acc);
    }
}

void
castU8F32Avx2(const std::uint8_t *src, float *dst, std::int64_t n,
              float scale)
{
    const __m256 vscale = _mm256_set1_ps(scale);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v32 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(src + i)));
        _mm256_storeu_ps(
            dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(v32), vscale));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * scale;
}

void
normalizeF32Avx2(float *data, std::int64_t n, float mean, float inv_std)
{
    const __m256 vmean = _mm256_set1_ps(mean);
    const __m256 vinv = _mm256_set1_ps(inv_std);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(data + i);
        _mm256_storeu_ps(data + i,
                         _mm256_mul_ps(_mm256_sub_ps(v, vmean), vinv));
    }
    for (; i < n; ++i)
        data[i] = (data[i] - mean) * inv_std;
}

void
copyBytesAvx2(const std::uint8_t *src, std::uint8_t *dst, std::size_t n)
{
    // Collate copies of large batches would evict the worker's entire
    // L2; stream them past the cache instead. Small copies stay on
    // the (already vectorized) memcpy path.
    constexpr std::size_t kStreamThreshold = std::size_t{2} << 20;
    if (n < kStreamThreshold) {
        std::memcpy(dst, src, n);
        return;
    }
    const std::size_t head =
        (32 - (reinterpret_cast<std::uintptr_t>(dst) & 31)) & 31;
    std::memcpy(dst, src, head);
    src += head;
    dst += head;
    n -= head;
    const std::size_t vec = n & ~std::size_t{127};
    for (std::size_t i = 0; i < vec; i += 128) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 32));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 64));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 96));
        _mm256_stream_si256(reinterpret_cast<__m256i *>(dst + i), a);
        _mm256_stream_si256(reinterpret_cast<__m256i *>(dst + i + 32), b);
        _mm256_stream_si256(reinterpret_cast<__m256i *>(dst + i + 64), c);
        _mm256_stream_si256(reinterpret_cast<__m256i *>(dst + i + 96), d);
    }
    _mm_sfence();
    std::memcpy(dst + vec, src + vec, n - vec);
}

} // namespace

void
fillAvx2(KernelTable &table, KernelNames &names)
{
    table.ycc_rgb_row = yccRgbRowAvx2;
    names.ycc_rgb_row = "ycc_rgb_convert_avx2";
    table.upsample_h2v2_row = upsampleH2v2RowAvx2;
    names.upsample_h2v2_row = "sep_upsample_avx2";
    table.idct_store_block = idctStoreBlockAvx2;
    names.idct_store_block = "jpeg_idct_islow_avx2";
    table.resample_h_rgb_row = resampleHRgbRowAvx2;
    names.resample_h_rgb_row = "ImagingResampleHorizontal_8bpc_avx2";
    table.resample_v_row = resampleVRowAvx2;
    names.resample_v_row = "ImagingResampleVertical_8bpc_avx2";
    table.cast_u8_f32 = castU8F32Avx2;
    names.cast_u8_f32 = "cast_u8_to_f32_avx2";
    table.normalize_f32 = normalizeF32Avx2;
    names.normalize_f32 = "normalize_channels_avx2";
    table.copy_bytes = copyBytesAvx2;
    names.copy_bytes = "collate_copy_avx2";
}

} // namespace lotus::simd::detail

#endif // LOTUS_SIMD_HAVE_AVX2
