/**
 * @file
 * Internal glue between the dispatch resolver and the per-tier kernel
 * translation units. Not installed; include only from src/simd.
 */

#ifndef LOTUS_SIMD_KERNELS_INTERNAL_H
#define LOTUS_SIMD_KERNELS_INTERNAL_H

#include <algorithm>
#include <array>
#include <cstdint>

#include "simd/dispatch.h"

namespace lotus::simd::detail {

/** Symbol names matching the KernelTable slot-for-slot; tier fills
 *  override a name exactly when they override the kernel, so hwcount
 *  attribution always reports the implementation that actually ran.
 *  All names are string literals (stable storage). */
struct KernelNames
{
    const char *ycc_rgb_row;
    const char *upsample_h2v2_row;
    const char *idct_store_block;
    const char *resample_h_rgb_row;
    const char *resample_v_row;
    const char *cast_u8_f32;
    const char *normalize_f32;
    const char *copy_bytes;
};

/** 16.16 YCC->RGB tables at half-level resolution, shared by every
 *  tier (the AVX2 tier gathers from the same arrays the scalar tier
 *  indexes, so outputs are bit-identical by construction). */
struct YccTables
{
    alignas(64) std::array<std::int32_t, kYccTableSize> cr_r;
    alignas(64) std::array<std::int32_t, kYccTableSize> cb_b;
    alignas(64) std::array<std::int32_t, kYccTableSize> cr_g;
    alignas(64) std::array<std::int32_t, kYccTableSize> cb_g;
};

const YccTables &yccTables();

/** PlaneI16 sample (1/16th-level steps) -> half-step table index. */
inline int
halfStepIndex(std::int16_t sample)
{
    return (sample + 4) >> 3;
}

/** 16.16 fixed-point value -> clamped u8 (truncating). */
inline std::uint8_t
clampFixedToU8(std::int32_t fixed)
{
    constexpr std::int32_t kMax = 255 << kYccFixBits;
    return static_cast<std::uint8_t>(std::clamp(fixed, 0, kMax) >>
                                     kYccFixBits);
}

/** Round and clamp a kResampleWeightBits accumulator (rounding
 *  constant already folded in) to u8. */
inline std::uint8_t
clampResampleAcc(std::int32_t acc)
{
    return static_cast<std::uint8_t>(
        std::clamp(acc >> kResampleWeightBits, 0, 255));
}

constexpr std::int32_t kResampleAccRound = 1
                                           << (kResampleWeightBits - 1);

/** Populate every slot of @p table / @p names with the scalar tier. */
void fillScalar(KernelTable &table, KernelNames &names);

#if LOTUS_SIMD_HAVE_SSE4
/** Override the kernels the SSE4.2 tier specializes. */
void fillSse4(KernelTable &table, KernelNames &names);
#endif

#if LOTUS_SIMD_HAVE_AVX2
/** Override the kernels the AVX2 tier specializes. */
void fillAvx2(KernelTable &table, KernelNames &names);
#endif

} // namespace lotus::simd::detail

#endif // LOTUS_SIMD_KERNELS_INTERNAL_H
