#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lotus::analysis {

Summary
summarize(const std::vector<double> &values)
{
    Summary s;
    if (values.empty())
        return s;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    double sum = 0.0;
    for (const double v : sorted)
        sum += v;
    s.mean = sum / static_cast<double>(sorted.size());
    double var = 0.0;
    for (const double v : sorted)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
    s.p25 = percentileSorted(sorted, 25.0);
    s.p50 = percentileSorted(sorted, 50.0);
    s.p75 = percentileSorted(sorted, 75.0);
    s.p90 = percentileSorted(sorted, 90.0);
    s.p99 = percentileSorted(sorted, 99.0);
    return s;
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    LOTUS_ASSERT(q >= 0.0 && q <= 100.0, "percentile %g out of range", q);
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double rank =
        q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
percentile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, q);
}

double
fractionBelow(const std::vector<double> &values, double threshold)
{
    if (values.empty())
        return 0.0;
    std::size_t below = 0;
    for (const double v : values) {
        if (v < threshold)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(values.size());
}

double
fractionAtLeast(const std::vector<double> &values, double threshold)
{
    if (values.empty())
        return 0.0;
    return 1.0 - fractionBelow(values, threshold);
}

} // namespace lotus::analysis
