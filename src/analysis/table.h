/**
 * @file
 * Plain-text table rendering for bench output (the rows the paper's
 * tables report).
 */

#ifndef LOTUS_ANALYSIS_TABLE_H
#define LOTUS_ANALYSIS_TABLE_H

#include <string>
#include <vector>

namespace lotus::analysis {

class TextTable
{
  public:
    /** Define the header row. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lotus::analysis

#endif // LOTUS_ANALYSIS_TABLE_H
