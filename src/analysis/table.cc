#include "analysis/table.h"

#include <algorithm>

#include "common/logging.h"

namespace lotus::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LOTUS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LOTUS_ASSERT(cells.size() == headers_.size(),
                 "row width %zu != header width %zu", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        rule.append(c + 1 < widths.size() ? 2 : 0, ' ');
    }
    out += rule + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace lotus::analysis
