/**
 * @file
 * Descriptive statistics used throughout the evaluation benches
 * (Table II's Avg/P90/<10ms/<100µs columns, Figure 4's box plots,
 * Figure 5's CDF fractions).
 */

#ifndef LOTUS_ANALYSIS_STATS_H
#define LOTUS_ANALYSIS_STATS_H

#include <cstdint>
#include <vector>

namespace lotus::analysis {

struct Summary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /** Interquartile range (p75 - p25). */
    double iqr() const { return p75 - p25; }

    /** stddev / mean (0 when mean is 0). */
    double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/** Summarize a set of values (empty input yields all zeros). */
Summary summarize(const std::vector<double> &values);

/**
 * Linear-interpolated percentile of a *sorted* vector,
 * q in [0, 100].
 */
double percentileSorted(const std::vector<double> &sorted, double q);

/** Percentile of an unsorted vector (copies and sorts). */
double percentile(std::vector<double> values, double q);

/** Fraction of values strictly below @p threshold, in [0, 1]. */
double fractionBelow(const std::vector<double> &values, double threshold);

/** Fraction of values at or above @p threshold, in [0, 1]. */
double fractionAtLeast(const std::vector<double> &values, double threshold);

} // namespace lotus::analysis

#endif // LOTUS_ANALYSIS_STATS_H
