#include "cache/sample_cache.h"

#include "common/clock.h"
#include "trace/logger.h"

namespace lotus::cache {

namespace {

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
CacheKey::hash() const
{
    std::uint64_t h = mix64(dataset_id + 0x9E3779B97F4A7C15ull);
    h = mix64(h ^ prefix_fingerprint);
    h = mix64(h ^ static_cast<std::uint64_t>(sample_index));
    return h;
}

SampleCache::SampleCache(const CacheConfig &config)
    : budget_bytes_(config.budget_bytes)
{
    LOTUS_ASSERT(config.budget_bytes > 0,
                 "cache budget must be positive (validated by the "
                 "DataLoader)");
    LOTUS_ASSERT(config.shards > 0, "cache needs at least one shard");
    shard_budget_ = config.budget_bytes / config.shards;
    if (shard_budget_ <= 0)
        shard_budget_ = 1;
    shards_.reserve(static_cast<std::size_t>(config.shards));
    for (int i = 0; i < config.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (!config.materialize_dir.empty())
        disk_ = std::make_unique<MaterializeStore>(config.materialize_dir,
                                                   config.fingerprint);

    auto &registry = metrics::MetricsRegistry::instance();
    hits_metric_ = registry.counter("lotus_cache_hits_total");
    misses_metric_ = registry.counter("lotus_cache_misses_total");
    inserts_metric_ = registry.counter("lotus_cache_inserts_total");
    evictions_metric_ = registry.counter("lotus_cache_evictions_total");
    rejects_metric_ = registry.counter("lotus_cache_rejects_total");
    disk_hits_metric_ = registry.counter("lotus_cache_disk_hits_total");
    disk_spills_metric_ = registry.counter("lotus_cache_spills_total");
    disk_corrupt_metric_ = registry.counter("lotus_cache_corrupt_total");
    bytes_metric_ = registry.gauge("lotus_cache_bytes");
}

std::size_t
SampleCache::sampleBytes(const pipeline::Sample &sample)
{
    return (sample.hasImage() ? sample.image->byteSize() : 0) +
           sample.data.byteSize();
}

SampleCache::Shard &
SampleCache::shardFor(const CacheKey &key)
{
    return *shards_[key.hash() % shards_.size()];
}

void
SampleCache::logEvent(pipeline::PipelineContext &ctx, const char *what,
                      std::int64_t sample_index) const
{
    if (ctx.logger == nullptr)
        return;
    trace::TraceRecord record;
    record.kind = trace::RecordKind::CacheEvent;
    record.batch_id = ctx.batch_id;
    record.pid = ctx.pid;
    record.start = SteadyClock::instance().now();
    record.duration = 0;
    record.op_name = std::string("cache:") + what;
    record.sample_index = sample_index;
    ctx.logger->log(std::move(record));
}

std::optional<pipeline::Sample>
SampleCache::lookup(const CacheKey &key, pipeline::PipelineContext &ctx)
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            Slot &slot = shard.slots[it->second];
            slot.referenced = true;
            // Deep clone under the shard lock: the copy is pooled
            // (freelist pop + memcpy), and handing out a reference
            // instead would race with eviction.
            pipeline::Sample copy = slot.sample;
            raw_.hits.fetch_add(1, std::memory_order_relaxed);
            hits_metric_->add(1);
            logEvent(ctx, "hit", key.sample_index);
            return copy;
        }
    }

    if (disk_ != nullptr) {
        Result<pipeline::Sample> loaded = disk_->tryLoad(key.sample_index);
        if (loaded.ok()) {
            pipeline::Sample sample = loaded.take();
            raw_.disk_hits.fetch_add(1, std::memory_order_relaxed);
            disk_hits_metric_->add(1);
            logEvent(ctx, "disk_hit", key.sample_index);
            // Promote to memory so the next epoch skips the read.
            insertMemory(key, sample, ctx);
            return sample;
        }
        if (loaded.error().code == ErrorCode::kCorruptData) {
            raw_.disk_corrupt.fetch_add(1, std::memory_order_relaxed);
            disk_corrupt_metric_->add(1);
            logEvent(ctx, "corrupt", key.sample_index);
        }
        // kNotFound / kIoError fall through to a plain miss: the
        // caller re-decodes from source, which re-spills on insert.
    }

    raw_.misses.fetch_add(1, std::memory_order_relaxed);
    misses_metric_->add(1);
    logEvent(ctx, "miss", key.sample_index);
    return std::nullopt;
}

void
SampleCache::evictOne(Shard &shard, pipeline::PipelineContext &ctx)
{
    // CLOCK sweep: clear reference bits until an unreferenced
    // occupied slot comes under the hand. Terminates because a full
    // lap clears every bit.
    for (;;) {
        if (shard.slots.empty())
            return;
        Slot &slot = shard.slots[shard.hand];
        const std::size_t victim = shard.hand;
        shard.hand = (shard.hand + 1) % shard.slots.size();
        if (!slot.occupied)
            continue;
        if (slot.referenced) {
            slot.referenced = false;
            continue;
        }
        shard.index.erase(slot.key);
        shard.bytes -= static_cast<std::int64_t>(slot.bytes);
        raw_.bytes.fetch_sub(static_cast<std::int64_t>(slot.bytes),
                             std::memory_order_relaxed);
        bytes_metric_->sub(static_cast<std::int64_t>(slot.bytes));
        slot.sample = pipeline::Sample{};
        slot.bytes = 0;
        slot.occupied = false;
        shard.free_slots.push_back(victim);
        raw_.evictions.fetch_add(1, std::memory_order_relaxed);
        evictions_metric_->add(1);
        logEvent(ctx, "evict", slot.key.sample_index);
        return;
    }
}

void
SampleCache::insertMemory(const CacheKey &key,
                          const pipeline::Sample &sample,
                          pipeline::PipelineContext &ctx)
{
    const std::size_t bytes = sampleBytes(sample);
    if (static_cast<std::int64_t>(bytes) > shard_budget_) {
        // Admitting it would flush an entire shard for one entry.
        raw_.rejects.fetch_add(1, std::memory_order_relaxed);
        rejects_metric_->add(1);
        logEvent(ctx, "reject", key.sample_index);
        return;
    }
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.find(key) != shard.index.end())
        return; // Raced with another worker inserting the same key.
    while (shard.bytes + static_cast<std::int64_t>(bytes) > shard_budget_)
        evictOne(shard, ctx);

    std::size_t slot_index;
    if (!shard.free_slots.empty()) {
        slot_index = shard.free_slots.back();
        shard.free_slots.pop_back();
    } else {
        slot_index = shard.slots.size();
        shard.slots.emplace_back();
    }
    Slot &slot = shard.slots[slot_index];
    slot.key = key;
    slot.sample = sample; // Pooled deep copy.
    slot.bytes = bytes;
    slot.referenced = true;
    slot.occupied = true;
    shard.index.emplace(key, slot_index);
    shard.bytes += static_cast<std::int64_t>(bytes);
    raw_.bytes.fetch_add(static_cast<std::int64_t>(bytes),
                         std::memory_order_relaxed);
    bytes_metric_->add(static_cast<std::int64_t>(bytes));
    raw_.inserts.fetch_add(1, std::memory_order_relaxed);
    inserts_metric_->add(1);
}

void
SampleCache::insert(const CacheKey &key, const pipeline::Sample &sample,
                    pipeline::PipelineContext &ctx)
{
    insertMemory(key, sample, ctx);
    if (disk_ != nullptr && !disk_->contains(key.sample_index)) {
        if (disk_->spill(key.sample_index, sample)) {
            raw_.disk_spills.fetch_add(1, std::memory_order_relaxed);
            disk_spills_metric_->add(1);
            logEvent(ctx, "spill", key.sample_index);
        }
    }
}

SampleCache::Stats
SampleCache::stats() const
{
    Stats out;
    out.hits = raw_.hits.load(std::memory_order_relaxed);
    out.misses = raw_.misses.load(std::memory_order_relaxed);
    out.inserts = raw_.inserts.load(std::memory_order_relaxed);
    out.evictions = raw_.evictions.load(std::memory_order_relaxed);
    out.rejects = raw_.rejects.load(std::memory_order_relaxed);
    out.disk_hits = raw_.disk_hits.load(std::memory_order_relaxed);
    out.disk_spills = raw_.disk_spills.load(std::memory_order_relaxed);
    out.disk_corrupt = raw_.disk_corrupt.load(std::memory_order_relaxed);
    out.bytes = raw_.bytes.load(std::memory_order_relaxed);
    return out;
}

} // namespace lotus::cache
