#include "cache/materialize.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <filesystem>
#include <mutex>
#include <set>
#include <sys/mman.h>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

#include "common/files.h"
#include "common/strings.h"

namespace lotus::cache {

namespace {

/** "LSPL" + format version; bump on any layout change. */
constexpr std::uint64_t kMagic = 0x4C53504C00000001ull;

/** Spill files describe shapes from disk: clamp them before trusting
 *  them so a corrupt header cannot demand an absurd allocation. */
constexpr int kMaxImageEdge = 1 << 20;
constexpr std::size_t kMaxTensorRank = 8;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 34; // 16 GiB

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001B3ull;
    }
    return hash;
}

template <typename T>
void
appendPod(std::string &out, T value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof(T));
}

/** Bounds-checked forward reader over untrusted spill bytes. */
struct Cursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    std::size_t remaining() const { return size - pos; }

    template <typename T>
    bool
    read(T &out)
    {
        if (remaining() < sizeof(T))
            return false;
        std::memcpy(&out, data + pos, sizeof(T));
        pos += sizeof(T);
        return true;
    }

    bool
    readBytes(void *out, std::size_t count)
    {
        if (remaining() < count)
            return false;
        std::memcpy(out, data + pos, count);
        pos += count;
        return true;
    }
};

std::mutex g_dirs_mutex;

/** Live materialization directories (canonical paths); leaked so
 *  static-destruction order never races a loader teardown. */
std::set<std::string> &
claimedDirs()
{
    static auto *dirs = new std::set<std::string>;
    return *dirs;
}

std::string
canonicalDir(const std::string &dir)
{
    std::error_code ec;
    const std::filesystem::path canonical =
        std::filesystem::canonical(dir, ec);
    return ec ? dir : canonical.string();
}

} // namespace

std::string
serializeSample(const pipeline::Sample &sample, std::uint64_t fingerprint)
{
    std::string out;
    const std::size_t payload =
        (sample.hasImage() ? sample.image->byteSize() : 0) +
        sample.data.byteSize();
    out.reserve(payload + 128);
    appendPod(out, kMagic);
    appendPod(out, fingerprint);
    appendPod(out, static_cast<std::int64_t>(sample.label));
    appendPod(out, static_cast<std::uint8_t>(sample.hasImage() ? 1 : 0));
    if (sample.hasImage()) {
        appendPod(out, static_cast<std::int32_t>(sample.image->width()));
        appendPod(out, static_cast<std::int32_t>(sample.image->height()));
        out.append(reinterpret_cast<const char *>(sample.image->raw()),
                   sample.image->byteSize());
    }
    const bool has_tensor = !sample.data.empty();
    appendPod(out, static_cast<std::uint8_t>(has_tensor ? 1 : 0));
    if (has_tensor) {
        appendPod(out, static_cast<std::uint8_t>(sample.data.dtype()));
        appendPod(out,
                  static_cast<std::uint8_t>(sample.data.rank()));
        for (const std::int64_t dim : sample.data.shape())
            appendPod(out, dim);
        out.append(reinterpret_cast<const char *>(sample.data.raw()),
                   sample.data.byteSize());
    }
    appendPod(out, fnv1a(reinterpret_cast<const std::uint8_t *>(
                             out.data()),
                         out.size()));
    return out;
}

Result<pipeline::Sample>
deserializeSample(const std::uint8_t *data, std::size_t size,
                  std::uint64_t expected_fingerprint)
{
    if (size < sizeof(std::uint64_t) * 3)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file truncated (%zu bytes)", size);
    std::uint64_t stored_checksum;
    std::memcpy(&stored_checksum, data + size - sizeof(std::uint64_t),
                sizeof(std::uint64_t));
    if (fnv1a(data, size - sizeof(std::uint64_t)) != stored_checksum)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file checksum mismatch");

    Cursor cursor{data, size - sizeof(std::uint64_t)};
    std::uint64_t magic = 0;
    std::uint64_t fingerprint = 0;
    if (!cursor.read(magic) || magic != kMagic)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file bad magic/version");
    if (!cursor.read(fingerprint))
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file truncated header");
    if (fingerprint != expected_fingerprint)
        return LOTUS_ERROR(
            ErrorCode::kCorruptData,
            "spill fingerprint %016llx does not match pipeline %016llx",
            static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(expected_fingerprint));

    pipeline::Sample sample;
    std::int64_t label = 0;
    std::uint8_t has_image = 0;
    if (!cursor.read(label) || !cursor.read(has_image) || has_image > 1)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file truncated header");
    sample.label = label;

    if (has_image != 0) {
        std::int32_t width = 0;
        std::int32_t height = 0;
        if (!cursor.read(width) || !cursor.read(height) || width <= 0 ||
            height <= 0 || width > kMaxImageEdge || height > kMaxImageEdge)
            return LOTUS_ERROR(ErrorCode::kCorruptData,
                               "spill image has bad dimensions");
        const std::uint64_t bytes = static_cast<std::uint64_t>(width) *
                                    static_cast<std::uint64_t>(height) *
                                    image::Image::kChannels;
        if (bytes > kMaxPayloadBytes || bytes > cursor.remaining())
            return LOTUS_ERROR(ErrorCode::kCorruptData,
                               "spill image payload truncated");
        image::Image image = image::Image::uninitialized(width, height);
        cursor.readBytes(image.raw(), static_cast<std::size_t>(bytes));
        sample.image = std::move(image);
    }

    std::uint8_t has_tensor = 0;
    if (!cursor.read(has_tensor) || has_tensor > 1)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file truncated tensor header");
    if (has_tensor != 0) {
        std::uint8_t dtype_byte = 0;
        std::uint8_t rank = 0;
        if (!cursor.read(dtype_byte) || !cursor.read(rank) ||
            dtype_byte > static_cast<std::uint8_t>(tensor::DType::F32) ||
            rank > kMaxTensorRank)
            return LOTUS_ERROR(ErrorCode::kCorruptData,
                               "spill tensor has bad dtype/rank");
        const auto dtype = static_cast<tensor::DType>(dtype_byte);
        std::vector<std::int64_t> shape(rank);
        std::uint64_t numel = 1;
        for (std::uint8_t i = 0; i < rank; ++i) {
            if (!cursor.read(shape[i]) || shape[i] < 0)
                return LOTUS_ERROR(ErrorCode::kCorruptData,
                                   "spill tensor has bad shape");
            numel *= static_cast<std::uint64_t>(shape[i]);
            if (numel > kMaxPayloadBytes)
                return LOTUS_ERROR(ErrorCode::kCorruptData,
                                   "spill tensor has bad shape");
        }
        const std::uint64_t bytes = numel * tensor::dtypeSize(dtype);
        if (bytes > kMaxPayloadBytes || bytes > cursor.remaining())
            return LOTUS_ERROR(ErrorCode::kCorruptData,
                               "spill tensor payload truncated");
        tensor::Tensor data =
            tensor::Tensor::uninitialized(dtype, std::move(shape));
        cursor.readBytes(data.raw(), static_cast<std::size_t>(bytes));
        sample.data = std::move(data);
    }

    if (cursor.remaining() != 0)
        return LOTUS_ERROR(ErrorCode::kCorruptData,
                           "spill file has %zu trailing bytes",
                           cursor.remaining());
    return sample;
}

MaterializeStore::MaterializeStore(std::string dir,
                                   std::uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint)
{
    LOTUS_ASSERT(!dir_.empty(), "empty materialize dir");
    makeDirs(dir_);
    dir_ = canonicalDir(dir_);
    std::lock_guard<std::mutex> lock(g_dirs_mutex);
    if (!claimedDirs().insert(dir_).second)
        LOTUS_FATAL("materialize_dir '%s' is already in use by another "
                    "live DataLoader",
                    dir_.c_str());
}

MaterializeStore::~MaterializeStore()
{
    std::lock_guard<std::mutex> lock(g_dirs_mutex);
    claimedDirs().erase(dir_);
}

std::string
MaterializeStore::pathFor(std::int64_t index) const
{
    return strFormat("%s/sample_%lld.lspl", dir_.c_str(),
                     static_cast<long long>(index));
}

bool
MaterializeStore::contains(std::int64_t index) const
{
    return fileExists(pathFor(index));
}

Result<pipeline::Sample>
MaterializeStore::tryLoad(std::int64_t index) const
{
    const std::string path = pathFor(index);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) {
            Error error = LOTUS_ERROR(ErrorCode::kNotFound,
                                      "sample %lld not materialized",
                                      static_cast<long long>(index));
            error.stage = "cache";
            return error;
        }
        Error error =
            LOTUS_ERROR(ErrorCode::kIoError, "open '%s': %s",
                        path.c_str(), std::strerror(errno));
        error.stage = "cache";
        return error;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        ::unlink(path.c_str());
        Error error = LOTUS_ERROR(ErrorCode::kCorruptData,
                                  "spill file '%s' empty or unstatable",
                                  path.c_str());
        error.stage = "cache";
        return error;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
        Error error =
            LOTUS_ERROR(ErrorCode::kIoError, "mmap '%s': %s",
                        path.c_str(), std::strerror(errno));
        error.stage = "cache";
        return error;
    }
    Result<pipeline::Sample> sample = deserializeSample(
        static_cast<const std::uint8_t *>(map), size, fingerprint_);
    ::munmap(map, size);
    if (!sample.ok()) {
        // Corrupt spills self-heal: drop the file so the sample
        // re-decodes from source and re-materializes.
        ::unlink(path.c_str());
        Error error = sample.takeError();
        error.stage = "cache";
        return error;
    }
    return sample;
}

bool
MaterializeStore::spill(std::int64_t index,
                        const pipeline::Sample &sample) const
{
    const std::string path = pathFor(index);
    // Per-thread tmp names keep concurrent spills of the same sample
    // from clobbering each other's partial writes; rename(2) makes
    // whichever finishes last win atomically (contents are identical
    // anyway — the prefix is deterministic).
    const std::string tmp = strFormat(
        "%s.tmp.%zu", path.c_str(),
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const std::string bytes = serializeSample(sample, fingerprint_);
    {
        // Not writeFile(): that is fatal on failure, and a full disk
        // must degrade to plain re-decoding, not abort the run.
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            ::unlink(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace lotus::cache
