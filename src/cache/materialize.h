/**
 * @file
 * Disk materialization of decoded samples (tf.data-snapshot analogue).
 *
 * Epoch 0 spills each prefix-stage sample (decoded image / tensor,
 * after the deterministic transform prefix) to one file per sample
 * under a user-chosen directory; later epochs mmap-read the files
 * back instead of re-touching the source store and re-decoding.
 *
 * Durability and safety rules:
 *  - Spills are atomic: serialize to `<name>.tmp.<tid>`, then
 *    rename(2) over the final path (the MetricsReporter pattern), so
 *    a reader never sees a half-written file.
 *  - Files carry a magic/version header, the producing pipeline's
 *    prefix fingerprint, and a trailing FNV-1a checksum. Loads
 *    validate all three with a bounds-checked parser; any mismatch
 *    comes back as a *recoverable* kCorruptData Error (never fatal),
 *    and the offending file is unlinked so the sample re-decodes and
 *    re-spills.
 *  - A directory is claimed process-wide for exclusive use at
 *    construction; two live loaders materializing into the same
 *    directory is a configuration error (fatal at claim time).
 */

#ifndef LOTUS_CACHE_MATERIALIZE_H
#define LOTUS_CACHE_MATERIALIZE_H

#include <cstdint>
#include <string>

#include "common/result.h"
#include "pipeline/sample.h"

namespace lotus::cache {

/** Serialize a prefix-stage sample to the spill-file byte format
 *  (header + payload + checksum). Exposed for tests. */
std::string serializeSample(const pipeline::Sample &sample,
                            std::uint64_t fingerprint);

/**
 * Parse spill-file bytes. Bounds-checked against truncation and
 * corruption; verifies magic, version, @p expected_fingerprint and
 * the trailing checksum. Untrusted-input surface: always returns a
 * recoverable Error on bad bytes, never panics.
 */
Result<pipeline::Sample> deserializeSample(
    const std::uint8_t *data, std::size_t size,
    std::uint64_t expected_fingerprint);

class MaterializeStore
{
  public:
    /**
     * Claim @p dir (created if absent) for exclusive materialization
     * and bind it to pipeline fingerprint @p fingerprint. Fatal if
     * another live store already owns the directory.
     */
    MaterializeStore(std::string dir, std::uint64_t fingerprint);
    ~MaterializeStore();

    MaterializeStore(const MaterializeStore &) = delete;
    MaterializeStore &operator=(const MaterializeStore &) = delete;

    /**
     * mmap-read sample @p index back. kNotFound = not spilled yet
     * (plain miss); kCorruptData = file failed validation and has
     * been unlinked (stage "cache"); kIoError = map/read failure.
     */
    Result<pipeline::Sample> tryLoad(std::int64_t index) const;

    /**
     * Atomically persist sample @p index (tmp + rename). Best-effort:
     * returns false on I/O failure — materialization is an
     * optimization, so spill failures degrade, never abort.
     */
    bool spill(std::int64_t index, const pipeline::Sample &sample) const;

    /** True if sample @p index has a spill file on disk. */
    bool contains(std::int64_t index) const;

    const std::string &dir() const { return dir_; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Spill-file path for sample @p index. */
    std::string pathFor(std::int64_t index) const;

  private:
    std::string dir_;
    std::uint64_t fingerprint_;
};

} // namespace lotus::cache

#endif // LOTUS_CACHE_MATERIALIZE_H
