/**
 * @file
 * Memory-budgeted decoded-sample cache.
 *
 * The paper's profiles show every epoch repeating the same Loader
 * work (blob read + decode) and deterministic transform prefix on
 * every sample. SampleCache keeps those prefix-stage samples resident
 * so warm epochs skip straight to the random transform suffix:
 *
 *  - keyed on (dataset id, sample index, prefix fingerprint), so a
 *    reconfigured pipeline or a second dataset never serves stale
 *    entries;
 *  - sharded: the key hash picks a shard, each shard is an
 *    independently locked CLOCK (second-chance) ring with its own
 *    slice of the byte budget, so multi-worker loaders do not
 *    serialize on one lock;
 *  - storage is pooled (memory::BufferPool via Image/Tensor copies),
 *    so a warm hit's deep clone costs a freelist pop + memcpy, not a
 *    heap allocation;
 *  - optional write-through disk materialization (MaterializeStore):
 *    inserts spill to disk, memory misses fall back to an mmap read
 *    before re-decoding, and corrupt spills degrade recoverably.
 *
 * Telemetry: `lotus_cache_{hits,misses,inserts,evictions,rejects,
 * disk_hits,spills,corrupt}_total` counters and the `lotus_cache_bytes`
 * gauge; always-on raw Stats for tests/benches; per-action CacheEvent
 * trace instants ("cache:hit", "cache:miss", ...) in the worker lane.
 */

#ifndef LOTUS_CACHE_SAMPLE_CACHE_H
#define LOTUS_CACHE_SAMPLE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/materialize.h"
#include "metrics/metrics.h"
#include "pipeline/sample.h"

namespace lotus::cache {

struct CacheKey
{
    std::uint64_t dataset_id = 0;
    std::uint64_t prefix_fingerprint = 0;
    std::int64_t sample_index = -1;

    bool
    operator==(const CacheKey &other) const
    {
        return dataset_id == other.dataset_id &&
               prefix_fingerprint == other.prefix_fingerprint &&
               sample_index == other.sample_index;
    }

    /** splitmix64-style mix over all three fields. */
    std::uint64_t hash() const;
};

struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey &key) const
    {
        return static_cast<std::size_t>(key.hash());
    }
};

struct CacheConfig
{
    /** Total in-memory budget, split evenly across shards. */
    std::int64_t budget_bytes = 0;
    int shards = 8;
    /** Non-empty enables write-through disk materialization. */
    std::string materialize_dir;
    /** Prefix fingerprint of the producing pipeline (binds spill
     *  files to their configuration). */
    std::uint64_t fingerprint = 0;
};

class SampleCache
{
  public:
    /** Point-in-time counters (always on, relaxed). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        /** Entries larger than a whole shard budget, never admitted. */
        std::uint64_t rejects = 0;
        std::uint64_t disk_hits = 0;
        std::uint64_t disk_spills = 0;
        std::uint64_t disk_corrupt = 0;
        /** Bytes currently resident in memory shards. */
        std::int64_t bytes = 0;
    };

    explicit SampleCache(const CacheConfig &config);

    SampleCache(const SampleCache &) = delete;
    SampleCache &operator=(const SampleCache &) = delete;

    /**
     * Fetch a deep, pool-backed clone of the cached sample for
     * @p key, or nullopt on a miss. Falls back to the materialize
     * store (promoting a disk hit into memory) before giving up.
     * Emits CacheEvent trace instants through @p ctx.
     */
    std::optional<pipeline::Sample> lookup(const CacheKey &key,
                                           pipeline::PipelineContext &ctx);

    /**
     * Admit a prefix-stage sample, evicting CLOCK victims in its
     * shard until it fits; write-through spills to disk when
     * materialization is on. A sample larger than one shard's budget
     * is rejected (counted) rather than flushing the whole shard.
     */
    void insert(const CacheKey &key, const pipeline::Sample &sample,
                pipeline::PipelineContext &ctx);

    Stats stats() const;

    std::int64_t budgetBytes() const { return budget_bytes_; }
    int shardCount() const { return static_cast<int>(shards_.size()); }
    bool materializing() const { return disk_ != nullptr; }

    /** Payload bytes a cached copy of @p sample occupies. */
    static std::size_t sampleBytes(const pipeline::Sample &sample);

  private:
    struct Slot
    {
        CacheKey key;
        pipeline::Sample sample;
        std::size_t bytes = 0;
        bool referenced = false;
        bool occupied = false;
    };

    struct Shard
    {
        std::mutex mutex;
        std::vector<Slot> slots;
        std::unordered_map<CacheKey, std::size_t, CacheKeyHash> index;
        std::vector<std::size_t> free_slots;
        std::size_t hand = 0;
        std::int64_t bytes = 0;
    };

    Shard &shardFor(const CacheKey &key);
    /** Insert into the in-memory shard only (no disk write). */
    void insertMemory(const CacheKey &key, const pipeline::Sample &sample,
                      pipeline::PipelineContext &ctx);
    void evictOne(Shard &shard, pipeline::PipelineContext &ctx);
    void logEvent(pipeline::PipelineContext &ctx, const char *what,
                  std::int64_t sample_index) const;

    std::int64_t budget_bytes_;
    std::int64_t shard_budget_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<MaterializeStore> disk_;

    struct AtomicStats
    {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> inserts{0};
        std::atomic<std::uint64_t> evictions{0};
        std::atomic<std::uint64_t> rejects{0};
        std::atomic<std::uint64_t> disk_hits{0};
        std::atomic<std::uint64_t> disk_spills{0};
        std::atomic<std::uint64_t> disk_corrupt{0};
        std::atomic<std::int64_t> bytes{0};
    };
    mutable AtomicStats raw_;

    metrics::Counter *hits_metric_;
    metrics::Counter *misses_metric_;
    metrics::Counter *inserts_metric_;
    metrics::Counter *evictions_metric_;
    metrics::Counter *rejects_metric_;
    metrics::Counter *disk_hits_metric_;
    metrics::Counter *disk_spills_metric_;
    metrics::Counter *disk_corrupt_metric_;
    metrics::Gauge *bytes_metric_;
};

} // namespace lotus::cache

#endif // LOTUS_CACHE_SAMPLE_CACHE_H
