/**
 * @file
 * Sampling profiler model (Scalene / py-spy / austin).
 *
 * A sampler thread polls every thread's live operation at the
 * configured interval. Out-of-process samplers (py-spy, austin) add
 * no cost to the pipeline threads beyond the CPU the sampler itself
 * burns; in-process line tracers (Scalene) additionally charge a
 * modelled per-op-call cost to the producing thread via the logger
 * observer, standing in for sys.settrace-style interference (a
 * documented modelled constant — see DESIGN.md §4).
 *
 * The reported per-op time is samples x interval — which is exactly
 * why operations shorter than the interval are systematically
 * missed (paper §VI-B).
 */

#ifndef LOTUS_PROFILERS_SAMPLING_PROFILER_H
#define LOTUS_PROFILERS_SAMPLING_PROFILER_H

#include <atomic>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "hwcount/registry.h"
#include "profilers/profiler.h"

namespace lotus::profilers {

struct SamplingProfilerConfig
{
    std::string name = "py-spy";
    TimeNs interval = 10 * kMillisecond;
    /** Per-op-call interference charged to pipeline threads
     *  (0 = out-of-process sampler). */
    TimeNs per_op_call_cost = 0;
    /** Raw log bytes per (thread, sample) record. */
    std::size_t bytes_per_sample = 64;
    /** Store only aggregated per-op counters (Scalene-style small
     *  profile) instead of raw sample records. */
    bool aggregate_only = false;
};

class SamplingProfiler : public Profiler
{
  public:
    explicit SamplingProfiler(SamplingProfilerConfig config);
    ~SamplingProfiler() override;

    const std::string &name() const override { return config_.name; }

    ProfilerCapabilities
    capabilities() const override
    {
        // Sampling profilers recover epoch-level op times but have no
        // batch markers, no async flow, no wait/delay (Table IV).
        return ProfilerCapabilities{true, false, false, false, false};
    }

    void attach(trace::TraceLogger &logger) override;
    void start() override;
    void stop() override;

    std::uint64_t logStorageBytes() const override;
    std::map<std::string, double> perOpEpochSeconds() const override;

    /** Raw samples taken (all threads). */
    std::uint64_t totalSamples() const;

  private:
    void samplerLoop();

    SamplingProfilerConfig config_;
    std::thread sampler_;
    std::atomic<bool> running_{false};

    mutable std::mutex mutex_;
    std::map<hwcount::OpTag, std::uint64_t> samples_by_op_;
    std::uint64_t raw_samples_ = 0;
};

} // namespace lotus::profilers

#endif // LOTUS_PROFILERS_SAMPLING_PROFILER_H
