#include "profilers/lotus_profiler.h"

#include "core/lotustrace/analysis.h"

namespace lotus::profilers {

const std::string &
LotusTraceProfiler::name() const
{
    static const std::string kName = "Lotus";
    return kName;
}

void
LotusTraceProfiler::attach(trace::TraceLogger &logger)
{
    logger_ = &logger;
    logger.setStoreRecords(true);
}

std::uint64_t
LotusTraceProfiler::logStorageBytes() const
{
    if (!logger_)
        return 0;
    return trace::recordsToText(logger_->records()).size();
}

std::map<std::string, double>
LotusTraceProfiler::perOpEpochSeconds() const
{
    if (!logger_)
        return {};
    core::lotustrace::TraceAnalysis analysis(logger_->records());
    return analysis.cpuSecondsByOp();
}

} // namespace lotus::profilers
