#include "profilers/presets.h"

namespace lotus::profilers {

std::unique_ptr<LotusTraceProfiler>
makeLotus()
{
    return std::make_unique<LotusTraceProfiler>();
}

std::unique_ptr<SamplingProfiler>
makePySpyLike()
{
    SamplingProfilerConfig config;
    config.name = "py-spy";
    config.interval = 10 * kMillisecond;
    config.per_op_call_cost = 0;
    config.bytes_per_sample = 64;
    config.aggregate_only = false;
    return std::make_unique<SamplingProfiler>(config);
}

std::unique_ptr<SamplingProfiler>
makeAustinLike()
{
    SamplingProfilerConfig config;
    config.name = "austin";
    config.interval = 100 * kMicrosecond;
    config.per_op_call_cost = 0;
    config.bytes_per_sample = 96; // full frame line per sample
    config.aggregate_only = false;
    return std::make_unique<SamplingProfiler>(config);
}

std::unique_ptr<SamplingProfiler>
makeScaleneLike()
{
    SamplingProfilerConfig config;
    config.name = "Scalene";
    config.interval = 10 * kMillisecond;
    // In-process line tracing + memory hooks: modelled per-op-call
    // interference (DESIGN.md §4 documents this constant).
    config.per_op_call_cost = 350 * kMicrosecond;
    config.bytes_per_sample = 64;
    config.aggregate_only = true;
    return std::make_unique<SamplingProfiler>(config);
}

std::unique_ptr<FrameworkTracer>
makeTorchProfilerLike()
{
    FrameworkTracerConfig config;
    config.per_event_cost = 200 * kMicrosecond;
    config.bytes_per_native_event = 120;
    return std::make_unique<FrameworkTracer>(config);
}

} // namespace lotus::profilers
