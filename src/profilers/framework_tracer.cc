#include "profilers/framework_tracer.h"

#include "hwcount/registry.h"

namespace lotus::profilers {

FrameworkTracer::FrameworkTracer() : FrameworkTracer(FrameworkTracerConfig{})
{
}

FrameworkTracer::FrameworkTracer(FrameworkTracerConfig config)
    : config_(config)
{
}

const std::string &
FrameworkTracer::name() const
{
    static const std::string kName = "PyTorch Profiler";
    return kName;
}

void
FrameworkTracer::attach(trace::TraceLogger &logger)
{
    logger.setStoreRecords(false);
    logger.setObserver([this](const trace::TraceRecord &record) {
        // Only main-process-visible events exist for this profiler.
        if (record.kind != trace::RecordKind::BatchWait &&
            record.kind != trace::RecordKind::BatchConsumed &&
            record.kind != trace::RecordKind::GpuCompute)
            return;
        // Modelled per-event serialization cost on the producer.
        const auto &clock = SteadyClock::instance();
        const TimeNs deadline = clock.now() + config_.per_event_cost;
        while (clock.now() < deadline) {
        }
        std::lock_guard lock(mutex_);
        main_events_.push_back(record);
    });
}

void
FrameworkTracer::start()
{
    auto &registry = hwcount::KernelRegistry::instance();
    was_timeline_enabled_ = registry.timelineEnabled();
    registry.setTimelineEnabled(true); // trace every native op event
}

void
FrameworkTracer::stop()
{
    auto &registry = hwcount::KernelRegistry::instance();
    registry.setTimelineEnabled(was_timeline_enabled_);
    const auto snapshot = registry.snapshot();
    std::lock_guard lock(mutex_);
    native_events_ = snapshot.timeline.size();
}

std::uint64_t
FrameworkTracer::logStorageBytes() const
{
    std::lock_guard lock(mutex_);
    return native_events_ * config_.bytes_per_native_event +
           main_events_.size() * 160;
}

std::vector<double>
FrameworkTracer::waitTimesMs() const
{
    std::lock_guard lock(mutex_);
    std::vector<double> out;
    for (const auto &record : main_events_) {
        if (record.kind == trace::RecordKind::BatchWait)
            out.push_back(toMs(record.duration));
    }
    return out;
}

std::uint64_t
FrameworkTracer::bufferedBytes() const
{
    std::lock_guard lock(mutex_);
    const auto snapshot =
        hwcount::KernelRegistry::instance().snapshot();
    return snapshot.timeline.size() * sizeof(hwcount::KernelInterval) +
           main_events_.size() * sizeof(trace::TraceRecord);
}

} // namespace lotus::profilers
