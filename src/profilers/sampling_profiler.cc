#include "profilers/sampling_profiler.h"

#include "common/logging.h"

namespace lotus::profilers {

SamplingProfiler::SamplingProfiler(SamplingProfilerConfig config)
    : config_(std::move(config))
{
    LOTUS_ASSERT(config_.interval > 0, "sampling interval must be positive");
}

SamplingProfiler::~SamplingProfiler()
{
    stop();
}

void
SamplingProfiler::attach(trace::TraceLogger &logger)
{
    // Baseline profilers do not keep LotusTrace records.
    logger.setStoreRecords(false);
    if (config_.per_op_call_cost > 0) {
        const TimeNs cost = config_.per_op_call_cost;
        logger.setObserver([cost](const trace::TraceRecord &record) {
            if (record.kind != trace::RecordKind::TransformOp)
                return;
            // In-process line tracing: the producing thread pays.
            const auto &clock = SteadyClock::instance();
            const TimeNs deadline = clock.now() + cost;
            while (clock.now() < deadline) {
            }
        });
    }
}

void
SamplingProfiler::start()
{
    if (running_.exchange(true))
        return;
    sampler_ = std::thread([this] { samplerLoop(); });
}

void
SamplingProfiler::stop()
{
    if (!running_.exchange(false))
        return;
    if (sampler_.joinable())
        sampler_.join();
}

void
SamplingProfiler::samplerLoop()
{
    auto &registry = hwcount::KernelRegistry::instance();
    const auto &clock = SteadyClock::instance();
    // OS sleep granularity can exceed fine sampling intervals (austin
    // samples at 100 µs; containers often round sleeps to ~1 ms). The
    // sampler accounts for every elapsed interval at each wakeup so
    // sample volume — and hence storage and per-op time estimates —
    // matches the configured rate.
    TimeNs last = clock.now();
    while (running_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<TimeNs>(config_.interval, kMillisecond)));
        const TimeNs now = clock.now();
        const std::uint64_t ticks =
            static_cast<std::uint64_t>((now - last) / config_.interval);
        if (ticks == 0)
            continue;
        last += static_cast<TimeNs>(ticks) * config_.interval;
        const auto live = registry.liveOps();
        std::lock_guard lock(mutex_);
        for (const auto &[tid, op] : live) {
            (void)tid;
            raw_samples_ += ticks;
            if (op != hwcount::kNoOp)
                samples_by_op_[op] += ticks;
        }
    }
}

std::uint64_t
SamplingProfiler::logStorageBytes() const
{
    std::lock_guard lock(mutex_);
    if (config_.aggregate_only)
        return samples_by_op_.size() * 64;
    return raw_samples_ * config_.bytes_per_sample;
}

std::map<std::string, double>
SamplingProfiler::perOpEpochSeconds() const
{
    auto &registry = hwcount::KernelRegistry::instance();
    std::lock_guard lock(mutex_);
    std::map<std::string, double> out;
    for (const auto &[op, samples] : samples_by_op_) {
        out[registry.opName(op)] +=
            static_cast<double>(samples) * toSec(config_.interval);
    }
    return out;
}

std::uint64_t
SamplingProfiler::totalSamples() const
{
    std::lock_guard lock(mutex_);
    return raw_samples_;
}

} // namespace lotus::profilers
