/**
 * @file
 * Framework tracer model (the PyTorch profiler analogue).
 *
 * Trace-based: while active it records every native framework op
 * event through the kernel registry's timeline (real per-event cost,
 * real memory growth — the mechanism behind the paper's OOM on full
 * ImageNet) and observes main-process batch events from the logger,
 * paying a modelled per-event serialization cost. It reports the
 * main process's wait times but has no visibility into preprocessing
 * worker execution as *labelled* work: its native events carry no
 * operation names (the "__call__" problem), so per-op epoch times
 * are unavailable (Table IV: Wait only).
 */

#ifndef LOTUS_PROFILERS_FRAMEWORK_TRACER_H
#define LOTUS_PROFILERS_FRAMEWORK_TRACER_H

#include <mutex>
#include <vector>

#include "profilers/profiler.h"
#include "trace/record.h"

namespace lotus::profilers {

struct FrameworkTracerConfig
{
    /** Modelled serialization cost per main-process event. */
    TimeNs per_event_cost = 200 * kMicrosecond;
    /** JSON bytes per recorded native event. */
    std::size_t bytes_per_native_event = 120;
};

class FrameworkTracer : public Profiler
{
  public:
    FrameworkTracer();
    explicit FrameworkTracer(FrameworkTracerConfig config);

    const std::string &name() const override;

    ProfilerCapabilities
    capabilities() const override
    {
        return ProfilerCapabilities{false, false, false, true, false};
    }

    void attach(trace::TraceLogger &logger) override;
    void start() override;
    void stop() override;

    std::uint64_t logStorageBytes() const override;
    std::map<std::string, double> perOpEpochSeconds() const override
    {
        return {}; // native frames are unlabelled ("__call__")
    }

    /** Main-process wait times it captured, ms. */
    std::vector<double> waitTimesMs() const;

    /** In-memory buffered trace size (the OOM pressure point). */
    std::uint64_t bufferedBytes() const;

  private:
    FrameworkTracerConfig config_;
    mutable std::mutex mutex_;
    std::vector<trace::TraceRecord> main_events_;
    std::uint64_t native_events_ = 0;
    bool was_timeline_enabled_ = false;
};

} // namespace lotus::profilers

#endif // LOTUS_PROFILERS_FRAMEWORK_TRACER_H
