/**
 * @file
 * LotusTrace as a Profiler: the full instrumentation, kept.
 */

#ifndef LOTUS_PROFILERS_LOTUS_PROFILER_H
#define LOTUS_PROFILERS_LOTUS_PROFILER_H

#include "profilers/profiler.h"

namespace lotus::profilers {

class LotusTraceProfiler : public Profiler
{
  public:
    const std::string &name() const override;

    ProfilerCapabilities
    capabilities() const override
    {
        return ProfilerCapabilities{true, true, true, true, true};
    }

    void attach(trace::TraceLogger &logger) override;
    void start() override {}
    void stop() override {}

    std::uint64_t logStorageBytes() const override;
    std::map<std::string, double> perOpEpochSeconds() const override;

    /** The attached logger (for full LotusTrace analysis). */
    trace::TraceLogger *logger() const { return logger_; }

  private:
    trace::TraceLogger *logger_ = nullptr;
};

} // namespace lotus::profilers

#endif // LOTUS_PROFILERS_LOTUS_PROFILER_H
