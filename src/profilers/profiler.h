/**
 * @file
 * Common interface for the profilers compared in the paper's §VI:
 * LotusTrace itself plus models of the four baselines (Scalene,
 * py-spy, austin, PyTorch profiler).
 *
 * A profiler attaches to a run through the pipeline's TraceLogger —
 * the framework's single hook point — and may: observe events
 * synchronously (instrumentation-style, paying cost on the producing
 * thread, like sys.settrace), run its own sampling thread over the
 * process's live operations (sampling-style), or enable native-event
 * tracing in the kernel registry (framework-tracer style). What each
 * profiler can *report* afterwards defines its Table IV capabilities.
 */

#ifndef LOTUS_PROFILERS_PROFILER_H
#define LOTUS_PROFILERS_PROFILER_H

#include <cstdint>
#include <map>
#include <string>

#include "trace/logger.h"

namespace lotus::profilers {

/** The functionality matrix of the paper's Table IV. */
struct ProfilerCapabilities
{
    /** Overall + per-op elapsed times for the epoch. */
    bool epoch_ops = false;
    /** Per-batch elapsed time. */
    bool per_batch = false;
    /** Main <-> worker asynchronous data-flow visualization. */
    bool async_flow = false;
    /** Main-process batch wait time. */
    bool wait_time = false;
    /** Batch consumption delay time. */
    bool delay_time = false;
};

class Profiler
{
  public:
    virtual ~Profiler() = default;

    virtual const std::string &name() const = 0;
    virtual ProfilerCapabilities capabilities() const = 0;

    /** Hook into the run's logger. Call before the run starts. The
     *  logger must outlive every later query on this profiler. */
    virtual void attach(trace::TraceLogger &logger) = 0;

    /** Begin collection. */
    virtual void start() = 0;

    /** End collection. */
    virtual void stop() = 0;

    /** Bytes this profiler's log/trace output occupies. */
    virtual std::uint64_t logStorageBytes() const = 0;

    /**
     * Per-op elapsed seconds over the epoch, as reconstructable from
     * this profiler's own data. Empty when unsupported.
     */
    virtual std::map<std::string, double> perOpEpochSeconds() const = 0;
};

} // namespace lotus::profilers

#endif // LOTUS_PROFILERS_PROFILER_H
