/**
 * @file
 * Ready-made profiler configurations matching §VI's comparison set.
 */

#ifndef LOTUS_PROFILERS_PRESETS_H
#define LOTUS_PROFILERS_PRESETS_H

#include <memory>

#include "profilers/framework_tracer.h"
#include "profilers/lotus_profiler.h"
#include "profilers/sampling_profiler.h"

namespace lotus::profilers {

/** LotusTrace: full instrumentation kept, no interference. */
std::unique_ptr<LotusTraceProfiler> makeLotus();

/** py-spy model: out-of-process sampler, 10 ms, raw sample log. */
std::unique_ptr<SamplingProfiler> makePySpyLike();

/** austin model: out-of-process sampler, 100 µs, raw sample log
 *  (the 1000x storage blow-up). */
std::unique_ptr<SamplingProfiler> makeAustinLike();

/** Scalene model: 10 ms sampler plus in-process line-tracing cost
 *  per op call; aggregated (small) profile on disk. */
std::unique_ptr<SamplingProfiler> makeScaleneLike();

/** PyTorch-profiler model: traces native framework events + main
 *  process, buffers in memory. */
std::unique_ptr<FrameworkTracer> makeTorchProfilerLike();

} // namespace lotus::profilers

#endif // LOTUS_PROFILERS_PRESETS_H
