/**
 * @file
 * MetricsReporter: a background thread that periodically snapshots a
 * registry, computes per-interval rates from snapshot deltas, and
 * publishes the result — to a JSON endpoint file (atomically replaced
 * each tick, so `lotus_top` can tail a live run) and/or to a caller
 * callback.
 */

#ifndef LOTUS_METRICS_REPORTER_H
#define LOTUS_METRICS_REPORTER_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "metrics/metrics.h"
#include "metrics/snapshot.h"

namespace lotus::metrics {

struct MetricsReporterOptions
{
    /** Time between ticks. */
    TimeNs interval = kSecond;
    /** JSON endpoint file path; empty disables the file sink. */
    std::string json_path;
    /**
     * Per-tick callback with the full snapshot and the delta since
     * the previous tick (delta.taken_at is the interval length).
     * Invoked on the reporter thread.
     */
    std::function<void(const Snapshot &, const Snapshot &)> on_tick;
    /** Registry to report on (default: the process-wide one). */
    MetricsRegistry *registry = nullptr;
};

class MetricsReporter
{
  public:
    /** Starts the reporter thread immediately. */
    explicit MetricsReporter(MetricsReporterOptions options);

    /** Stops the thread after emitting one final tick. */
    ~MetricsReporter();

    MetricsReporter(const MetricsReporter &) = delete;
    MetricsReporter &operator=(const MetricsReporter &) = delete;

    /** Ticks published so far (including the final one). */
    std::uint64_t tickCount() const;

  private:
    void run();
    void tick();

    MetricsReporterOptions options_;
    MetricsRegistry *registry_;
    Snapshot previous_;
    std::uint64_t ticks_ = 0;
    mutable std::mutex mutex_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace lotus::metrics

#endif // LOTUS_METRICS_REPORTER_H
