#include "metrics/metrics.h"

#include "common/logging.h"
#include "metrics/snapshot.h"

namespace lotus::metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::string
labeled(const std::string &name, const std::string &key,
        const std::string &value)
{
    LOTUS_ASSERT(name.find('{') == std::string::npos,
                 "metric '%s' already carries labels", name.c_str());
    return name + "{" + key + "=\"" + value + "\"}";
}

std::string
labeled(const std::string &name, const std::string &key1,
        const std::string &value1, const std::string &key2,
        const std::string &value2)
{
    LOTUS_ASSERT(name.find('{') == std::string::npos,
                 "metric '%s' already carries labels", name.c_str());
    return name + "{" + key1 + "=\"" + value1 + "\"," + key2 + "=\"" +
           value2 + "\"}";
}

void
splitLabeled(const std::string &name, std::string &family,
             std::string &labels)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos) {
        family = name;
        labels.clear();
        return;
    }
    LOTUS_ASSERT(name.back() == '}', "malformed metric name '%s'",
                 name.c_str());
    family = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string
labelValue(const std::string &name, const std::string &key)
{
    std::string family;
    std::string labels;
    splitLabeled(name, family, labels);
    // labels is `k1="v1",k2="v2"`: scan key-by-key rather than
    // substring-matching so a key that is a suffix of another
    // (e.g. "id" vs "client_id") can never alias.
    std::size_t pos = 0;
    while (pos < labels.size()) {
        const auto eq = labels.find("=\"", pos);
        if (eq == std::string::npos)
            return "";
        const auto end = labels.find('"', eq + 2);
        if (end == std::string::npos)
            return "";
        if (labels.compare(pos, eq - pos, key) == 0)
            return labels.substr(eq + 2, end - eq - 2);
        pos = end + 1;
        if (pos < labels.size() && labels[pos] == ',')
            ++pos;
    }
    return "";
}

std::uint64_t
nearestRank(double q, std::uint64_t total) noexcept
{
    if (total == 0)
        return 0;
    if (q <= 0.0)
        return 1;
    if (q >= 1.0)
        return total;
    // ceil((q_micro * total) / 1e6) in 128-bit: q_micro <= 1e6 and
    // total <= 2^64-1, so the product needs at most ~84 bits.
    const auto q_micro = static_cast<unsigned __int128>(
        static_cast<std::uint64_t>(q * 1e6 + 0.5));
    const unsigned __int128 scaled = q_micro * total;
    auto rank = static_cast<std::uint64_t>((scaled + 999999) / 1000000);
    if (rank == 0)
        rank = 1;
    return rank < total ? rank : total;
}

std::uint64_t
Histogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::sum() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> merged(kBuckets, 0);
    for (const auto &shard : shards_) {
        for (unsigned i = 0; i < kBuckets; ++i)
            merged[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
    }
    return merged;
}

std::uint64_t
Histogram::quantile(double q) const
{
    const auto buckets = bucketCounts();
    std::uint64_t total = 0;
    for (const auto c : buckets)
        total += c;
    if (total == 0)
        return 0;
    const std::uint64_t rank = nearestRank(q, total);
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

void
Histogram::reset() noexcept
{
    for (auto &shard : shards_) {
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return slot.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return slot.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return slot.get();
}

Snapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard lock(mutex_);
    Snapshot snap;
    snap.taken_at = SteadyClock::instance().now();
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_) {
        Snapshot::Hist hist;
        hist.count = histogram->count();
        hist.sum = histogram->sum();
        const auto buckets = histogram->bucketCounts();
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            if (buckets[i] != 0)
                hist.buckets.emplace_back(
                    Histogram::bucketUpperBound(i), buckets[i]);
        }
        hist.p50 = histogram->quantile(0.50);
        hist.p90 = histogram->quantile(0.90);
        hist.p99 = histogram->quantile(0.99);
        snap.histograms[name] = std::move(hist);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

} // namespace lotus::metrics
