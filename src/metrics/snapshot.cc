#include "metrics/snapshot.h"

#include <algorithm>

#include "common/logging.h"

namespace lotus::metrics {

namespace {

std::uint64_t
quantileFromBuckets(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets,
    std::uint64_t total, double q)
{
    if (total == 0)
        return 0;
    // Nearest-rank quantile, matching Histogram::quantile.
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (static_cast<double>(rank) < q * static_cast<double>(total))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (const auto &[bound, count] : buckets) {
        cumulative += count;
        if (cumulative >= rank)
            return bound;
    }
    return buckets.empty() ? 0 : buckets.back().first;
}

Snapshot::Hist
diffHist(const Snapshot::Hist &newer, const Snapshot::Hist &older)
{
    Snapshot::Hist out;
    out.count = newer.count - std::min(older.count, newer.count);
    out.sum = newer.sum - std::min(older.sum, newer.sum);
    std::map<std::uint64_t, std::uint64_t> merged;
    for (const auto &[bound, count] : newer.buckets)
        merged[bound] = count;
    for (const auto &[bound, count] : older.buckets) {
        auto it = merged.find(bound);
        if (it == merged.end())
            continue;
        it->second -= std::min(count, it->second);
    }
    for (const auto &[bound, count] : merged) {
        if (count != 0)
            out.buckets.emplace_back(bound, count);
    }
    out.p50 = quantileFromBuckets(out.buckets, out.count, 0.50);
    out.p90 = quantileFromBuckets(out.buckets, out.count, 0.90);
    out.p99 = quantileFromBuckets(out.buckets, out.count, 0.99);
    return out;
}

} // namespace

Snapshot
diff(const Snapshot &newer, const Snapshot &older)
{
    Snapshot out;
    out.taken_at = newer.taken_at - older.taken_at;
    for (const auto &[name, value] : newer.counters) {
        const auto it = older.counters.find(name);
        const std::uint64_t base =
            it == older.counters.end() ? 0 : it->second;
        out.counters[name] = value - std::min(base, value);
    }
    out.gauges = newer.gauges;
    for (const auto &[name, hist] : newer.histograms) {
        const auto it = older.histograms.find(name);
        out.histograms[name] = it == older.histograms.end()
                                   ? hist
                                   : diffHist(hist, it->second);
    }
    return out;
}

double
ratePerSec(std::uint64_t delta, TimeNs interval)
{
    if (interval <= 0)
        return 0.0;
    return static_cast<double>(delta) / toSec(interval);
}

} // namespace lotus::metrics
