#include "metrics/snapshot.h"

#include <algorithm>

#include "common/logging.h"
#include "metrics/metrics.h"

namespace lotus::metrics {

std::uint64_t
quantileFromBuckets(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets,
    std::uint64_t total, double q)
{
    if (total == 0)
        return 0;
    const std::uint64_t rank = nearestRank(q, total);
    std::uint64_t cumulative = 0;
    for (const auto &[bound, count] : buckets) {
        cumulative += count;
        if (cumulative >= rank)
            return bound;
    }
    return buckets.empty() ? 0 : buckets.back().first;
}

namespace {

Snapshot::Hist
diffHist(const Snapshot::Hist &newer, const Snapshot::Hist &older)
{
    // A shrinking count means the histogram was reset between the two
    // snapshots: the older baseline no longer applies, so the delta is
    // everything recorded since the reset — the newer contents whole.
    if (newer.count < older.count)
        return newer;
    Snapshot::Hist out;
    out.count = newer.count - older.count;
    out.sum = newer.sum - std::min(older.sum, newer.sum);
    std::map<std::uint64_t, std::uint64_t> merged;
    for (const auto &[bound, count] : newer.buckets)
        merged[bound] = count;
    for (const auto &[bound, count] : older.buckets) {
        auto it = merged.find(bound);
        if (it == merged.end())
            continue;
        it->second -= std::min(count, it->second);
    }
    for (const auto &[bound, count] : merged) {
        if (count != 0)
            out.buckets.emplace_back(bound, count);
    }
    out.p50 = quantileFromBuckets(out.buckets, out.count, 0.50);
    out.p90 = quantileFromBuckets(out.buckets, out.count, 0.90);
    out.p99 = quantileFromBuckets(out.buckets, out.count, 0.99);
    return out;
}

} // namespace

Snapshot
diff(const Snapshot &newer, const Snapshot &older)
{
    Snapshot out;
    out.taken_at = newer.taken_at - older.taken_at;
    for (const auto &[name, value] : newer.counters) {
        const auto it = older.counters.find(name);
        const std::uint64_t base =
            it == older.counters.end() ? 0 : it->second;
        // A counter that went backwards was reset mid-interval; the
        // post-reset value is the best available delta (clamping to 0
        // would freeze rates until the counter re-passes its old
        // high-water mark).
        out.counters[name] = value < base ? value : value - base;
    }
    // Series present only in the older snapshot (source restarted with
    // a different registry) stay visible with a 0 delta instead of
    // vanishing from rate tables.
    for (const auto &[name, value] : older.counters) {
        (void)value;
        out.counters.emplace(name, 0);
    }
    out.gauges = newer.gauges;
    for (const auto &[name, hist] : newer.histograms) {
        const auto it = older.histograms.find(name);
        out.histograms[name] = it == older.histograms.end()
                                   ? hist
                                   : diffHist(hist, it->second);
    }
    for (const auto &[name, hist] : older.histograms) {
        (void)hist;
        out.histograms.emplace(name, Snapshot::Hist{});
    }
    return out;
}

double
ratePerSec(std::uint64_t delta, TimeNs interval)
{
    if (interval <= 0)
        return 0.0;
    return static_cast<double>(delta) / toSec(interval);
}

} // namespace lotus::metrics
