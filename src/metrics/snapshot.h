/**
 * @file
 * Point-in-time copies of a MetricsRegistry and their difference.
 *
 * Snapshots are plain data: exporters and the reporter consume them,
 * and diffing two snapshots yields per-interval deltas from which
 * rates are computed (counters subtract; gauges keep the newer level;
 * histogram counts/sums/buckets subtract).
 */

#ifndef LOTUS_METRICS_SNAPSHOT_H
#define LOTUS_METRICS_SNAPSHOT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace lotus::metrics {

struct Snapshot
{
    struct Hist
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        /** (inclusive upper bound, count) for each non-empty bucket,
         *  ascending by bound. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
    };

    TimeNs taken_at = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, Hist> histograms;
};

/**
 * @p newer minus @p older. Metrics absent from @p older are taken
 * whole; quantiles in diffed histograms are recomputed from the
 * diffed buckets. taken_at of the result is the interval length.
 *
 * Reset handling: a counter (or histogram count) that went backwards
 * means the registry was reset between the snapshots — the delta is
 * then the post-reset value, not a clamped 0. Series present only in
 * @p older are kept with a 0 delta so rate tables never silently drop
 * a metric across a source restart.
 */
Snapshot diff(const Snapshot &newer, const Snapshot &older);

/**
 * Nearest-rank quantile over exported (inclusive upper bound, count)
 * buckets; bit-equal to Histogram::quantile over the same contents
 * (both use metrics::nearestRank). Returns 0 for an empty histogram.
 */
std::uint64_t quantileFromBuckets(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets,
    std::uint64_t total, double q);

/** Events per second given a delta snapshot's interval. */
double ratePerSec(std::uint64_t delta, TimeNs interval);

} // namespace lotus::metrics

#endif // LOTUS_METRICS_SNAPSHOT_H
