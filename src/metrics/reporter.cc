#include "metrics/reporter.h"

#include <chrono>
#include <cstdio>

#include "common/files.h"
#include "common/logging.h"
#include "metrics/export.h"

namespace lotus::metrics {

MetricsReporter::MetricsReporter(MetricsReporterOptions options)
    : options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &MetricsRegistry::instance())
{
    LOTUS_ASSERT(options_.interval > 0, "reporter interval must be > 0");
    previous_ = registry_->snapshot();
    thread_ = std::thread([this] { run(); });
}

MetricsReporter::~MetricsReporter()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
}

std::uint64_t
MetricsReporter::tickCount() const
{
    std::lock_guard lock(mutex_);
    return ticks_;
}

void
MetricsReporter::run()
{
    for (;;) {
        {
            std::unique_lock lock(mutex_);
            stop_cv_.wait_for(lock,
                              std::chrono::nanoseconds(options_.interval),
                              [&] { return stopping_; });
            if (stopping_)
                break;
        }
        tick();
    }
    // Final tick so short-lived runs still publish their totals.
    tick();
}

void
MetricsReporter::tick()
{
    const Snapshot current = registry_->snapshot();
    const Snapshot delta = diff(current, previous_);
    if (!options_.json_path.empty()) {
        // Write-then-rename so endpoint readers never observe a
        // partially written document.
        const std::string tmp = options_.json_path + ".tmp";
        writeFile(tmp, toJson(current, &delta));
        if (std::rename(tmp.c_str(), options_.json_path.c_str()) != 0)
            LOTUS_WARN("metrics reporter: cannot replace %s",
                       options_.json_path.c_str());
    }
    if (options_.on_tick)
        options_.on_tick(current, delta);
    previous_ = current;
    {
        std::lock_guard lock(mutex_);
        ++ticks_;
    }
}

} // namespace lotus::metrics
