#include "metrics/export.h"

#include "common/strings.h"
#include "metrics/metrics.h"

namespace lotus::metrics {

namespace {

/** `family{labels,le="bound"}` with correct comma handling. */
std::string
bucketSeries(const std::string &family, const std::string &labels,
             const std::string &le)
{
    std::string out = family + "_bucket{";
    if (!labels.empty())
        out += labels + ",";
    out += "le=\"" + le + "\"}";
    return out;
}

std::string
withLabels(const std::string &family, const std::string &suffix,
           const std::string &labels)
{
    std::string out = family + suffix;
    if (!labels.empty())
        out += "{" + labels + "}";
    return out;
}

void
appendTypeLine(std::string &out, std::string &last_family,
               const std::string &family, const char *type)
{
    if (family == last_family)
        return;
    out += "# TYPE " + family + " " + type + "\n";
    last_family = family;
}

} // namespace

std::string
toPrometheusText(const Snapshot &snapshot)
{
    std::string out;
    std::string family, labels, last_family;

    for (const auto &[name, value] : snapshot.counters) {
        splitLabeled(name, family, labels);
        appendTypeLine(out, last_family, family, "counter");
        out += withLabels(family, "", labels) +
               strFormat(" %llu\n",
                         static_cast<unsigned long long>(value));
    }
    last_family.clear();
    for (const auto &[name, value] : snapshot.gauges) {
        splitLabeled(name, family, labels);
        appendTypeLine(out, last_family, family, "gauge");
        out += withLabels(family, "", labels) +
               strFormat(" %lld\n", static_cast<long long>(value));
    }
    last_family.clear();
    for (const auto &[name, hist] : snapshot.histograms) {
        splitLabeled(name, family, labels);
        appendTypeLine(out, last_family, family, "histogram");
        std::uint64_t cumulative = 0;
        for (const auto &[bound, count] : hist.buckets) {
            cumulative += count;
            out += bucketSeries(
                       family, labels,
                       strFormat("%llu",
                                 static_cast<unsigned long long>(bound))) +
                   strFormat(" %llu\n",
                             static_cast<unsigned long long>(cumulative));
        }
        out += bucketSeries(family, labels, "+Inf") +
               strFormat(" %llu\n",
                         static_cast<unsigned long long>(hist.count));
        out += withLabels(family, "_sum", labels) +
               strFormat(" %llu\n",
                         static_cast<unsigned long long>(hist.sum));
        out += withLabels(family, "_count", labels) +
               strFormat(" %llu\n",
                         static_cast<unsigned long long>(hist.count));
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
toJson(const Snapshot &snapshot, const Snapshot *delta)
{
    std::string out = "{\n";
    out += strFormat("  \"schema_version\": %d,\n", kJsonSchemaVersion);
    out += strFormat("  \"taken_at_ns\": %lld,\n",
                     static_cast<long long>(snapshot.taken_at));
    if (delta != nullptr)
        out += strFormat("  \"interval_ns\": %lld,\n",
                         static_cast<long long>(delta->taken_at));

    out += "  \"counters\": {";
    const char *sep = "\n";
    for (const auto &[name, value] : snapshot.counters) {
        out += sep;
        out += strFormat("    \"%s\": %llu", jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(value));
        sep = ",\n";
    }
    out += "\n  },\n";

    out += "  \"gauges\": {";
    sep = "\n";
    for (const auto &[name, value] : snapshot.gauges) {
        out += sep;
        out += strFormat("    \"%s\": %lld", jsonEscape(name).c_str(),
                         static_cast<long long>(value));
        sep = ",\n";
    }
    out += "\n  },\n";

    out += "  \"histograms\": {";
    sep = "\n";
    for (const auto &[name, hist] : snapshot.histograms) {
        out += sep;
        out += strFormat("    \"%s\": {\"count\": %llu, \"sum\": %llu, "
                         "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
                         "\"buckets\": [",
                         jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(hist.count),
                         static_cast<unsigned long long>(hist.sum),
                         static_cast<unsigned long long>(hist.p50),
                         static_cast<unsigned long long>(hist.p90),
                         static_cast<unsigned long long>(hist.p99));
        const char *bucket_sep = "";
        for (const auto &[bound, count] : hist.buckets) {
            out += strFormat("%s[%llu, %llu]", bucket_sep,
                             static_cast<unsigned long long>(bound),
                             static_cast<unsigned long long>(count));
            bucket_sep = ", ";
        }
        out += "]}";
        sep = ",\n";
    }
    out += "\n  }";

    if (delta != nullptr) {
        out += ",\n  \"rates\": {";
        sep = "\n";
        for (const auto &[name, value] : delta->counters) {
            out += sep;
            out += strFormat("    \"%s\": %.3f", jsonEscape(name).c_str(),
                             ratePerSec(value, delta->taken_at));
            sep = ",\n";
        }
        for (const auto &[name, hist] : delta->histograms) {
            out += sep;
            out += strFormat("    \"%s\": %.3f", jsonEscape(name).c_str(),
                             ratePerSec(hist.count, delta->taken_at));
            sep = ",\n";
        }
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

} // namespace lotus::metrics
