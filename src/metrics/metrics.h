/**
 * @file
 * Always-on pipeline telemetry: lock-free counters, gauges and
 * log-bucketed histograms behind a process-wide registry.
 *
 * Design rules (they are what preserves the paper's ~0% overhead
 * claim, §III-B):
 *
 *  - Disabled (the default) costs exactly one relaxed load + branch
 *    per instrumentation site; no clock is read, no atomic is
 *    written.
 *  - Enabled costs are bounded by relaxed atomic adds on per-thread
 *    shards: writers never share a cache line with other shards, and
 *    no instrumentation path ever takes a lock.
 *  - Registration (name -> metric) is mutex-protected but happens at
 *    setup time only; hot paths hold raw pointers to metrics, which
 *    are stable for the registry's lifetime.
 *
 * Metric names follow `lotus_<subsystem>_<metric>` with optional
 * Prometheus-style labels appended by labeled(), e.g.
 * `lotus_loader_fetch_ns{worker="3"}`.
 */

#ifndef LOTUS_METRICS_METRICS_H
#define LOTUS_METRICS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace lotus::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;

/** Writer shard for the calling thread: threads are assigned
 *  round-robin so two hot threads never collide on one shard. */
inline unsigned
threadShard(unsigned shard_count)
{
    static std::atomic<unsigned> next_thread{0};
    thread_local const unsigned token =
        next_thread.fetch_add(1, std::memory_order_relaxed);
    return token % shard_count;
}

struct alignas(64) PaddedAtomicU64
{
    std::atomic<std::uint64_t> value{0};
};

} // namespace detail

/** Global enable switch; the one branch every site pays when off. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Flip the process-wide switch (not expected on hot paths). */
void setEnabled(bool on);

/** RAII enable for tests and benches. */
class ScopedEnable
{
  public:
    explicit ScopedEnable(bool on = true) : previous_(enabled())
    {
        setEnabled(on);
    }
    ~ScopedEnable() { setEnabled(previous_); }

    ScopedEnable(const ScopedEnable &) = delete;
    ScopedEnable &operator=(const ScopedEnable &) = delete;

  private:
    bool previous_;
};

/** `name{key="value"}` — the exporters understand this shape. */
std::string labeled(const std::string &name, const std::string &key,
                    const std::string &value);

/** Two-label variant: `name{k1="v1",k2="v2"}`. */
std::string labeled(const std::string &name, const std::string &key1,
                    const std::string &value1, const std::string &key2,
                    const std::string &value2);

/** Split `family{labels}` into its parts (labels empty when bare). */
void splitLabeled(const std::string &name, std::string &family,
                  std::string &labels);

/** The value of label @p key in a labeled() name, or "" when the
 *  name is bare or the key absent — the inverse consumers (lotus_top
 *  per-client panels) use to group `name{client="N"}` families. */
std::string labelValue(const std::string &name, const std::string &key);

/**
 * 1-based nearest rank, ceil(q * total), computed in integer space.
 * The naive double formulation off-by-ones when q * total should be
 * exactly integral (0.1 * 70 evaluates to 7.000...01 in binary
 * floating point, bumping the rank to 8). q is taken at micro
 * precision; the result is clamped to [1, total]. Returns 0 only for
 * total == 0. Shared by Histogram::quantile and the snapshot-diff
 * quantiles so the two stay bit-equal.
 */
std::uint64_t nearestRank(double q, std::uint64_t total) noexcept;

/**
 * Monotone event counter, sharded per thread.
 */
class Counter
{
  public:
    static constexpr unsigned kShards = 16;

    void
    add(std::uint64_t delta = 1) noexcept
    {
        if (!enabled())
            return;
        shards_[detail::threadShard(kShards)].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Sum over shards (relaxed; exact once writers are quiescent). */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset() noexcept
    {
        for (auto &shard : shards_)
            shard.value.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<detail::PaddedAtomicU64, kShards> shards_;
};

/**
 * Instantaneous level (queue depth, cache size): a single signed
 * atomic updated with relaxed add/sub. Levels are read-modify-write
 * shared state by nature, so sharding would only obscure them.
 */
class Gauge
{
  public:
    void
    add(std::int64_t delta) noexcept
    {
        if (!enabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void sub(std::int64_t delta) noexcept { add(-delta); }

    void
    set(std::int64_t value) noexcept
    {
        if (!enabled())
            return;
        value_.store(value, std::memory_order_relaxed);
    }

    std::int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    alignas(64) std::atomic<std::int64_t> value_{0};
};

/**
 * Log-bucketed (HDR-style) histogram of non-negative values,
 * typically nanosecond durations.
 *
 * Buckets: values below 8 are exact; above, each power-of-two octave
 * is split into 4 linear sub-buckets, so relative bucket error is
 * <= 12.5% across the full uint64 range with 256 buckets total.
 */
class Histogram
{
  public:
    static constexpr unsigned kShards = 8;
    static constexpr unsigned kSubBuckets = 4; // per octave
    static constexpr unsigned kBuckets = 256;

    /** Bucket for @p value; monotone in @p value. */
    static unsigned
    bucketIndex(std::uint64_t value) noexcept
    {
        if (value < 2 * kSubBuckets)
            return static_cast<unsigned>(value);
        const unsigned exponent =
            static_cast<unsigned>(std::bit_width(value)) - 3;
        const unsigned mantissa =
            static_cast<unsigned>(value >> exponent) & (kSubBuckets - 1);
        return 2 * kSubBuckets + (exponent - 1) * kSubBuckets + mantissa;
    }

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t
    bucketLowerBound(unsigned index) noexcept
    {
        if (index < 2 * kSubBuckets)
            return index;
        const unsigned exponent = (index - 2 * kSubBuckets) / kSubBuckets + 1;
        const unsigned mantissa = (index - 2 * kSubBuckets) % kSubBuckets;
        return static_cast<std::uint64_t>(kSubBuckets + mantissa)
               << exponent;
    }

    /** Largest value mapping to bucket @p index. */
    static std::uint64_t
    bucketUpperBound(unsigned index) noexcept
    {
        if (index < 2 * kSubBuckets - 1)
            return index;
        return bucketLowerBound(index + 1) - 1;
    }

    void
    record(std::uint64_t value) noexcept
    {
        if (!enabled())
            return;
        auto &shard = shards_[detail::threadShard(kShards)];
        shard.buckets[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        shard.count.fetch_add(1, std::memory_order_relaxed);
        shard.sum.fetch_add(value, std::memory_order_relaxed);
    }

    std::uint64_t count() const noexcept;
    std::uint64_t sum() const noexcept;

    /** Merged per-bucket counts (size kBuckets). */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Quantile estimate: the upper bound of the bucket holding the
     * q-th recorded value (conservative; error bounded by the bucket
     * width). Returns 0 for an empty histogram.
     */
    std::uint64_t quantile(double q) const;

    void reset() noexcept;

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
    };

    std::array<Shard, kShards> shards_;
};

struct Snapshot;

/**
 * Process-wide name -> metric directory. Get-or-create calls are
 * mutex-protected and meant for setup paths; returned pointers stay
 * valid for the registry's lifetime, so hot paths cache them.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every built-in site records into. */
    static MetricsRegistry &instance();

    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    Histogram *histogram(const std::string &name);

    /** Consistent-enough point-in-time copy of every metric. */
    Snapshot snapshot() const;

    /** Zero every metric (registrations are kept). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Scoped latency capture into a histogram. Reads the clock only when
 * metrics are enabled at construction time.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *histogram)
        : histogram_(enabled() ? histogram : nullptr),
          start_(histogram_ ? SteadyClock::instance().now() : 0)
    {
    }

    ~ScopedTimer()
    {
        if (histogram_ == nullptr)
            return;
        const TimeNs elapsed = SteadyClock::instance().now() - start_;
        histogram_->record(
            static_cast<std::uint64_t>(elapsed > 0 ? elapsed : 0));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *histogram_;
    TimeNs start_;
};

} // namespace lotus::metrics

#endif // LOTUS_METRICS_METRICS_H
