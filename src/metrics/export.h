/**
 * @file
 * Snapshot exporters: Prometheus text exposition format and JSON.
 *
 * Both formats are stable and machine-parseable — the JSON document
 * is what the MetricsReporter writes to its endpoint file and what
 * `lotus_top` renders; it carries a schema_version field so readers
 * can reject documents they do not understand.
 */

#ifndef LOTUS_METRICS_EXPORT_H
#define LOTUS_METRICS_EXPORT_H

#include <string>

#include "metrics/snapshot.h"

namespace lotus::metrics {

/** JSON document schema version written by toJson(). */
constexpr int kJsonSchemaVersion = 1;

/**
 * Prometheus text exposition format: one # TYPE line per family,
 * histogram buckets as cumulative `_bucket{le="..."}` series plus
 * `_sum` and `_count`.
 */
std::string toPrometheusText(const Snapshot &snapshot);

/**
 * JSON document with counters, gauges and histograms (count, sum,
 * p50/p90/p99, non-empty buckets). When @p delta is given (a
 * diff() result whose taken_at is the interval length), the document
 * also carries interval_ns and a "rates" object with per-second
 * counter and histogram-count rates over that interval.
 */
std::string toJson(const Snapshot &snapshot,
                   const Snapshot *delta = nullptr);

} // namespace lotus::metrics

#endif // LOTUS_METRICS_EXPORT_H
