#include "workloads/synthetic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "tensor/serialize.h"

namespace lotus::workloads {

namespace {

int
clampDim(double value, int lo, int hi)
{
    const int v = static_cast<int>(std::lround(value));
    return std::clamp(v, lo, hi);
}

/** Round down to even (the codec's 4:2:0 path likes even dims). */
int
evenDim(int v)
{
    return v < 2 ? 2 : v - (v % 2);
}

} // namespace

std::shared_ptr<pipeline::InMemoryStore>
buildImageNetStore(const ImageNetConfig &config)
{
    LOTUS_ASSERT(config.num_images > 0 && config.median_width >= 32.0);
    auto store = std::make_shared<pipeline::InMemoryStore>(
        config.io_base, config.io_ns_per_byte);
    Rng rng(config.seed);
    for (std::int64_t i = 0; i < config.num_images; ++i) {
        // Lognormal width (heavy right tail -> heavy-tailed encoded
        // sizes, the variance driver of Takeaway 3).
        const double log_w = std::log(config.median_width) +
                             rng.normal(0.0, config.width_sigma);
        const int width = evenDim(clampDim(std::exp(log_w), 48, 2048));
        const double aspect = rng.uniform(0.6, 1.5);
        const int height = evenDim(clampDim(width * aspect, 48, 2048));

        image::SynthOptions synth;
        synth.detail = rng.uniform(0.15, 0.9);
        synth.blobs = static_cast<int>(rng.uniformInt(1, 6));
        const image::Image img =
            image::synthesize(rng, width, height, synth);

        image::codec::EncodeOptions encode;
        encode.quality = config.quality;
        store->add(image::codec::encode(img, encode));
    }
    return store;
}

std::shared_ptr<pipeline::InMemoryStore>
buildKits19Store(const Kits19Config &config)
{
    LOTUS_ASSERT(config.num_volumes > 0 && config.channels > 0 &&
                 config.median_extent >= 8);
    auto store = std::make_shared<pipeline::InMemoryStore>(
        config.io_base, config.io_ns_per_byte);
    Rng rng(config.seed);
    for (std::int64_t i = 0; i < config.num_volumes; ++i) {
        auto drawExtent = [&] {
            const double log_e = std::log(
                                     static_cast<double>(config.median_extent)) +
                                 rng.normal(0.0, config.extent_sigma);
            return static_cast<std::int64_t>(clampDim(std::exp(log_e), 16,
                                                      512));
        };
        const std::int64_t d = drawExtent();
        const std::int64_t h = drawExtent();
        const std::int64_t w = drawExtent();

        tensor::Tensor volume(tensor::DType::U8,
                              {config.channels, d, h, w});
        std::uint8_t *data = volume.data<std::uint8_t>();
        const std::int64_t n = volume.numel();
        // Soft-tissue background.
        for (std::int64_t j = 0; j < n; ++j) {
            data[j] =
                static_cast<std::uint8_t>(60 + rng.uniformInt(0, 60));
        }
        // A few bright foreground lesions (values > 200) the
        // RandBalancedCrop search targets.
        const int lesions = static_cast<int>(rng.uniformInt(2, 5));
        for (int l = 0; l < lesions; ++l) {
            const std::int64_t cd = rng.uniformInt(0, d - 1);
            const std::int64_t ch = rng.uniformInt(0, h - 1);
            const std::int64_t cw = rng.uniformInt(0, w - 1);
            const std::int64_t radius = rng.uniformInt(2, 6);
            for (std::int64_t dz = -radius; dz <= radius; ++dz) {
                for (std::int64_t dy = -radius; dy <= radius; ++dy) {
                    for (std::int64_t dx = -radius; dx <= radius; ++dx) {
                        if (dz * dz + dy * dy + dx * dx > radius * radius)
                            continue;
                        const std::int64_t z = cd + dz;
                        const std::int64_t y = ch + dy;
                        const std::int64_t x = cw + dx;
                        if (z < 0 || z >= d || y < 0 || y >= h || x < 0 ||
                            x >= w)
                            continue;
                        data[(z * h + y) * w + x] = static_cast<std::uint8_t>(
                            210 + rng.uniformInt(0, 45));
                    }
                }
            }
        }
        store->add(tensor::toBytes(volume));
    }
    return store;
}

std::shared_ptr<pipeline::InMemoryStore>
buildCocoStore(const CocoConfig &config)
{
    LOTUS_ASSERT(config.num_images > 0 && config.median_width >= 32.0);
    auto store = std::make_shared<pipeline::InMemoryStore>(
        config.io_base, config.io_ns_per_byte);
    Rng rng(config.seed);
    for (std::int64_t i = 0; i < config.num_images; ++i) {
        const double log_w = std::log(config.median_width) +
                             rng.normal(0.0, config.width_sigma);
        const int width = evenDim(clampDim(std::exp(log_w), 64, 2048));
        const double aspect = rng.uniform(0.55, 1.1);
        const int height = evenDim(clampDim(width * aspect, 64, 2048));

        image::SynthOptions synth;
        synth.detail = rng.uniform(0.3, 0.95); // busy multi-object scenes
        synth.blobs = static_cast<int>(rng.uniformInt(4, 12));
        const image::Image img =
            image::synthesize(rng, width, height, synth);

        image::codec::EncodeOptions encode;
        encode.quality = config.quality;
        store->add(image::codec::encode(img, encode));
    }
    return store;
}

HeavyTailCostDataset::HeavyTailCostDataset(
    std::int64_t size, const HeavyTailCostConfig &config)
    : size_(size), config_(config)
{
    LOTUS_ASSERT(size_ > 0);
    LOTUS_ASSERT(config_.busy_fraction >= 0.0 &&
                 config_.busy_fraction <= 1.0);
    Rng rng(config_.seed);
    costs_.reserve(static_cast<std::size_t>(size_));
    const double median = static_cast<double>(config_.median_cost);
    for (std::int64_t i = 0; i < size_; ++i) {
        double cost = median * std::exp(config_.sigma * rng.normal());
        if (rng.chance(config_.straggler_fraction))
            cost = median * config_.straggler_multiplier;
        costs_.push_back(static_cast<TimeNs>(cost));
    }
}

TimeNs
HeavyTailCostDataset::totalCost() const
{
    TimeNs total = 0;
    for (const TimeNs cost : costs_)
        total += cost;
    return total;
}

pipeline::Sample
HeavyTailCostDataset::get(std::int64_t index,
                          pipeline::PipelineContext &ctx) const
{
    const TimeNs cost = costs_[static_cast<std::size_t>(index)];
    const auto busy = static_cast<TimeNs>(
        static_cast<double>(cost) * config_.busy_fraction);
    const auto &clock = SteadyClock::instance();
    const TimeNs spin_deadline = clock.now() + busy;
    while (clock.now() < spin_deadline) {
    }
    if (cost > busy)
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(cost - busy));

    pipeline::Sample sample;
    sample.data = tensor::Tensor(tensor::DType::F32, {8});
    float *values = sample.data.data<float>();
    Rng &rng = ctx.rngRef();
    for (int i = 0; i < 8; ++i) {
        values[i] = static_cast<float>(index) +
                    static_cast<float>(rng.nextDouble());
    }
    sample.label = index;
    return sample;
}

} // namespace lotus::workloads
