/**
 * @file
 * Synthetic dataset builders standing in for the paper's datasets.
 *
 * ImageNet -> LJPG-encoded synthetic photos whose encoded-size
 * distribution is heavy-tailed like the paper's (mean 111 KB, sd
 * 133 KB at full scale); KiTS19 -> serialized u8 CT-like volumes with
 * bright foreground structures; COCO -> larger variable-resolution
 * scenes. A scale knob shrinks dimensions so tests and benches fit
 * the sandbox while preserving the distribution shapes.
 */

#ifndef LOTUS_WORKLOADS_SYNTHETIC_H
#define LOTUS_WORKLOADS_SYNTHETIC_H

#include <memory>

#include "pipeline/store.h"

namespace lotus::workloads {

struct ImageNetConfig
{
    std::int64_t num_images = 64;
    /** Median image width in pixels (height follows aspect draw). */
    double median_width = 320.0;
    /** Lognormal sigma of the width draw (size-spread driver). */
    double width_sigma = 0.35;
    int quality = 80;
    std::uint64_t seed = 7;
    /** Modelled storage latency (remote-dataset stand-in). */
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

struct Kits19Config
{
    std::int64_t num_volumes = 8;
    int channels = 1;
    /** Median spatial extent per axis (D, H, W all drawn near it). */
    int median_extent = 96;
    double extent_sigma = 0.25;
    std::uint64_t seed = 11;
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

struct CocoConfig
{
    std::int64_t num_images = 32;
    double median_width = 480.0;
    double width_sigma = 0.25;
    int quality = 85;
    std::uint64_t seed = 13;
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

/** Build an in-memory store of LJPG-encoded ImageNet-like photos. */
std::shared_ptr<pipeline::InMemoryStore>
buildImageNetStore(const ImageNetConfig &config);

/** Build an in-memory store of serialized KiTS19-like u8 volumes
 *  (channel-first C, D, H, W with bright foreground lesions). */
std::shared_ptr<pipeline::InMemoryStore>
buildKits19Store(const Kits19Config &config);

/** Build an in-memory store of LJPG-encoded COCO-like scenes. */
std::shared_ptr<pipeline::InMemoryStore>
buildCocoStore(const CocoConfig &config);

} // namespace lotus::workloads

#endif // LOTUS_WORKLOADS_SYNTHETIC_H
