/**
 * @file
 * Synthetic dataset builders standing in for the paper's datasets.
 *
 * ImageNet -> LJPG-encoded synthetic photos whose encoded-size
 * distribution is heavy-tailed like the paper's (mean 111 KB, sd
 * 133 KB at full scale); KiTS19 -> serialized u8 CT-like volumes with
 * bright foreground structures; COCO -> larger variable-resolution
 * scenes. A scale knob shrinks dimensions so tests and benches fit
 * the sandbox while preserving the distribution shapes.
 */

#ifndef LOTUS_WORKLOADS_SYNTHETIC_H
#define LOTUS_WORKLOADS_SYNTHETIC_H

#include <memory>
#include <vector>

#include "pipeline/dataset.h"
#include "pipeline/store.h"

namespace lotus::workloads {

struct ImageNetConfig
{
    std::int64_t num_images = 64;
    /** Median image width in pixels (height follows aspect draw). */
    double median_width = 320.0;
    /** Lognormal sigma of the width draw (size-spread driver). */
    double width_sigma = 0.35;
    int quality = 80;
    std::uint64_t seed = 7;
    /** Modelled storage latency (remote-dataset stand-in). */
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

struct Kits19Config
{
    std::int64_t num_volumes = 8;
    int channels = 1;
    /** Median spatial extent per axis (D, H, W all drawn near it). */
    int median_extent = 96;
    double extent_sigma = 0.25;
    std::uint64_t seed = 11;
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

struct CocoConfig
{
    std::int64_t num_images = 32;
    double median_width = 480.0;
    double width_sigma = 0.25;
    int quality = 85;
    std::uint64_t seed = 13;
    TimeNs io_base = 0;
    double io_ns_per_byte = 0.0;
};

/** Build an in-memory store of LJPG-encoded ImageNet-like photos. */
std::shared_ptr<pipeline::InMemoryStore>
buildImageNetStore(const ImageNetConfig &config);

/** Build an in-memory store of serialized KiTS19-like u8 volumes
 *  (channel-first C, D, H, W with bright foreground lesions). */
std::shared_ptr<pipeline::InMemoryStore>
buildKits19Store(const Kits19Config &config);

/** Build an in-memory store of LJPG-encoded COCO-like scenes. */
std::shared_ptr<pipeline::InMemoryStore>
buildCocoStore(const CocoConfig &config);

/**
 * Heavy-tailed per-sample cost knob for scheduler studies.
 *
 * Per-sample cost is a lognormal draw (median * exp(sigma * z)) with
 * an extra straggler population — the big-JPEG / cold-page / retry
 * shape that makes one slow sample stall its whole batch under
 * round-robin scheduling. Costs are drawn once per index at
 * construction, so a given (seed, size) pins identical costs on every
 * epoch and run, and the same index costs the same no matter which
 * worker fetches it.
 */
struct HeavyTailCostConfig
{
    /** Lognormal median per-sample cost. */
    TimeNs median_cost = 200 * kMicrosecond;
    /** Lognormal sigma: tail heaviness of the cost draw. */
    double sigma = 0.6;
    /** Fraction of samples promoted to stragglers. */
    double straggler_fraction = 0.02;
    /** Straggler cost = median_cost * this. */
    double straggler_multiplier = 40.0;
    /**
     * Fraction of each sample's cost burned as CPU spin; the rest is
     * a blocking stall (modelled I/O / page-cache miss), which
     * overlaps across workers regardless of core count.
     */
    double busy_fraction = 0.1;
    std::uint64_t seed = 17;
};

/**
 * Map-style dataset whose samples cost their drawn time and whose
 * contents are pure functions of (index, ctx.rng draws) — a
 * scheduler-determinism probe: each sample's tensor mixes the index
 * with draws from the per-sample RNG stream, so bit-identical epochs
 * across schedules prove the FetchSeeding contract end to end.
 */
class HeavyTailCostDataset : public pipeline::Dataset
{
  public:
    HeavyTailCostDataset(std::int64_t size,
                         const HeavyTailCostConfig &config);

    std::int64_t size() const override { return size_; }

    pipeline::Sample get(std::int64_t index,
                         pipeline::PipelineContext &ctx) const override;

    /** The fixed cost assigned to @p index. */
    TimeNs costOf(std::int64_t index) const
    {
        return costs_[static_cast<std::size_t>(index)];
    }

    /** Sum of all per-sample costs (ideal single-stream epoch time). */
    TimeNs totalCost() const;

  private:
    std::int64_t size_;
    HeavyTailCostConfig config_;
    std::vector<TimeNs> costs_;
};

} // namespace lotus::workloads

#endif // LOTUS_WORKLOADS_SYNTHETIC_H
