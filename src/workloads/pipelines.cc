#include "workloads/pipelines.h"

#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/transforms/vision.h"
#include "pipeline/transforms/volumetric.h"
#include "pipeline/volume_dataset.h"

namespace lotus::workloads {

using namespace lotus::pipeline;

Workload
makeImageClassification(std::shared_ptr<const BlobStore> store,
                        int crop_size)
{
    std::vector<TransformPtr> transforms;
    RandomResizedCrop::Params rrc;
    rrc.size = crop_size;
    transforms.push_back(std::make_unique<RandomResizedCrop>(rrc));
    transforms.push_back(std::make_unique<RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<ToTensor>());
    transforms.push_back(std::make_unique<Normalize>(
        std::vector<float>{0.485f, 0.456f, 0.406f},
        std::vector<float>{0.229f, 0.224f, 0.225f}));

    Workload workload;
    workload.dataset = std::make_shared<ImageFolderDataset>(
        std::move(store),
        std::make_shared<Compose>(std::move(transforms)));
    workload.collate = std::make_shared<StackCollate>();
    return workload;
}

Workload
makeImageSegmentation(std::shared_ptr<const BlobStore> store,
                      std::int64_t patch_extent)
{
    std::vector<TransformPtr> transforms;
    RandBalancedCrop::Params rbc;
    rbc.patch = {patch_extent, patch_extent, patch_extent};
    rbc.oversampling = 0.4;
    rbc.foreground_threshold = 200.0f;
    transforms.push_back(std::make_unique<RandBalancedCrop>(rbc));
    transforms.push_back(std::make_unique<RandomFlip>(1.0 / 3.0));
    transforms.push_back(std::make_unique<Cast>(tensor::DType::F32));
    transforms.push_back(
        std::make_unique<RandomBrightnessAugmentation>(0.3, 0.1));
    transforms.push_back(std::make_unique<GaussianNoise>(0.0f, 3.0f, 0.1));

    Workload workload;
    workload.dataset = std::make_shared<VolumeDataset>(
        std::move(store),
        std::make_shared<Compose>(std::move(transforms)));
    workload.collate = std::make_shared<StackCollate>();
    return workload;
}

Workload
makeObjectDetection(std::shared_ptr<const BlobStore> store,
                    int resize_shorter, int resize_max,
                    std::int64_t pad_divisor)
{
    std::vector<TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<Resize>(resize_shorter, resize_max));
    transforms.push_back(std::make_unique<RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<ToTensor>());
    transforms.push_back(std::make_unique<Normalize>(
        std::vector<float>{0.485f, 0.456f, 0.406f},
        std::vector<float>{0.229f, 0.224f, 0.225f}));

    Workload workload;
    workload.dataset = std::make_shared<ImageFolderDataset>(
        std::move(store),
        std::make_shared<Compose>(std::move(transforms)), 80);
    workload.collate = std::make_shared<PadCollate>(pad_divisor);
    return workload;
}

} // namespace lotus::workloads
