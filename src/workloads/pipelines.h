/**
 * @file
 * The three MLPerf-like preprocessing pipelines of §V-A, assembled
 * from the public pipeline API exactly as Listing 1 does in PyTorch.
 */

#ifndef LOTUS_WORKLOADS_PIPELINES_H
#define LOTUS_WORKLOADS_PIPELINES_H

#include <memory>

#include "pipeline/collate.h"
#include "pipeline/dataset.h"
#include "pipeline/store.h"

namespace lotus::workloads {

/** A ready-to-load pipeline: dataset (transforms inside) + collate. */
struct Workload
{
    std::shared_ptr<const pipeline::Dataset> dataset;
    std::shared_ptr<const pipeline::Collate> collate;
};

/**
 * Image Classification (IC): Loader, RandomResizedCrop,
 * RandomHorizontalFlip, ToTensor, Normalize, Collate.
 * @param crop_size 224 in the paper; smaller for quick runs.
 */
Workload makeImageClassification(
    std::shared_ptr<const pipeline::BlobStore> store, int crop_size = 224);

/**
 * Image Segmentation (IS): Loader, RandBalancedCrop, RandomFlip,
 * Cast, RandomBrightnessAugmentation, GaussianNoise, Collate.
 * @param patch_extent cubic crop size (paper/MLPerf: 128).
 */
Workload makeImageSegmentation(
    std::shared_ptr<const pipeline::BlobStore> store,
    std::int64_t patch_extent = 64);

/**
 * Object Detection (OD): Loader, Resize (shorter edge),
 * RandomHorizontalFlip, ToTensor, Normalize, padded Collate.
 */
Workload makeObjectDetection(
    std::shared_ptr<const pipeline::BlobStore> store,
    int resize_shorter = 256, int resize_max = 512,
    std::int64_t pad_divisor = 32);

} // namespace lotus::workloads

#endif // LOTUS_WORKLOADS_PIPELINES_H
