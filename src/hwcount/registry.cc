#include "hwcount/registry.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_util.h"
#include "hwcount/thread_counters.h"

namespace lotus::hwcount {

namespace {

thread_local KernelScope *current_scope = nullptr;
thread_local OpTag current_op = kNoOp;

} // namespace

/**
 * Per-thread recording state. The owning thread writes without
 * coordination except for the lightweight mutex also taken by
 * snapshot()/reset(); contention is negligible because snapshots
 * happen between runs.
 */
struct KernelRegistry::ThreadState
{
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::array<KernelAccum, kNumKernels> aggregate{};
    std::map<std::pair<OpTag, KernelId>, KernelAccum> by_op;
    std::vector<KernelInterval> timeline;
    /** Operation currently running on this thread (sampler-visible). */
    std::atomic<OpTag> live_op{kNoOp};
};

KernelRegistry::KernelRegistry() : clock_(&SteadyClock::instance()) {}

KernelRegistry &
KernelRegistry::instance()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::setClock(const Clock *clock)
{
    LOTUS_ASSERT(clock != nullptr);
    clock_ = clock;
}

void
KernelRegistry::setTimelineEnabled(bool enabled)
{
    timeline_enabled_.store(enabled, std::memory_order_relaxed);
}

void
KernelRegistry::setGroundTruthEnabled(bool enabled)
{
    ground_truth_enabled_.store(enabled, std::memory_order_relaxed);
}

OpTag
KernelRegistry::registerOp(const std::string &name)
{
    std::lock_guard lock(ops_mutex_);
    for (std::size_t i = 0; i < op_names_.size(); ++i) {
        if (op_names_[i] == name)
            return static_cast<OpTag>(i + 1);
    }
    op_names_.push_back(name);
    LOTUS_ASSERT(op_names_.size() < 0xFFFF, "too many registered ops");
    return static_cast<OpTag>(op_names_.size());
}

std::string
KernelRegistry::opName(OpTag tag) const
{
    if (tag == kNoOp)
        return "<none>";
    std::lock_guard lock(ops_mutex_);
    LOTUS_ASSERT(tag <= op_names_.size(), "unknown op tag %u", tag);
    return op_names_[tag - 1];
}

KernelRegistry::ThreadState &
KernelRegistry::threadState()
{
    thread_local std::shared_ptr<ThreadState> state = [this] {
        auto s = std::make_shared<ThreadState>();
        s->tid = currentTid();
        std::lock_guard lock(threads_mutex_);
        threads_.push_back(s);
        return s;
    }();
    return *state;
}

RegistrySnapshot
KernelRegistry::snapshot() const
{
    RegistrySnapshot snap;
    std::vector<std::shared_ptr<ThreadState>> threads;
    {
        std::lock_guard lock(threads_mutex_);
        threads = threads_;
    }
    for (const auto &thread : threads) {
        std::lock_guard lock(thread->mutex);
        for (std::size_t i = 0; i < kNumKernels; ++i)
            snap.aggregate[i] += thread->aggregate[i];
        for (const auto &[key, accum] : thread->by_op)
            snap.by_op[key] += accum;
        snap.timeline.insert(snap.timeline.end(), thread->timeline.begin(),
                             thread->timeline.end());
    }
    std::sort(snap.timeline.begin(), snap.timeline.end(),
              [](const KernelInterval &a, const KernelInterval &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.depth < b.depth;
              });
    return snap;
}

std::vector<std::pair<std::uint32_t, OpTag>>
KernelRegistry::liveOps() const
{
    std::vector<std::shared_ptr<ThreadState>> threads;
    {
        std::lock_guard lock(threads_mutex_);
        threads = threads_;
    }
    std::vector<std::pair<std::uint32_t, OpTag>> out;
    out.reserve(threads.size());
    for (const auto &thread : threads) {
        out.emplace_back(thread->tid,
                         thread->live_op.load(std::memory_order_relaxed));
    }
    return out;
}

void
KernelRegistry::reset()
{
    std::vector<std::shared_ptr<ThreadState>> threads;
    {
        std::lock_guard lock(threads_mutex_);
        threads = threads_;
    }
    for (const auto &thread : threads) {
        std::lock_guard lock(thread->mutex);
        thread->aggregate.fill(KernelAccum{});
        thread->by_op.clear();
        thread->timeline.clear();
    }
}

std::vector<KernelId>
RegistrySnapshot::hotKernels() const
{
    std::vector<KernelId> ids;
    for (std::size_t i = 1; i < kNumKernels; ++i) {
        if (aggregate[i].self_time > 0 || aggregate[i].calls > 0)
            ids.push_back(static_cast<KernelId>(i));
    }
    std::sort(ids.begin(), ids.end(), [this](KernelId a, KernelId b) {
        return aggregate[static_cast<std::size_t>(a)].self_time >
               aggregate[static_cast<std::size_t>(b)].self_time;
    });
    return ids;
}

TimeNs
RegistrySnapshot::totalSelfTime() const
{
    TimeNs total = 0;
    for (std::size_t i = 1; i < kNumKernels; ++i)
        total += aggregate[i].self_time;
    return total;
}

KernelScope::KernelScope(KernelId id)
    : id_(id), parent_(current_scope),
      depth_(parent_ ? static_cast<std::uint16_t>(parent_->depth_ + 1) : 0)
{
    current_scope = this;
    pmu_active_ = ThreadCounterRegistry::threadHasPmu();
    if (pmu_active_)
        pmu_start_ = ThreadCounterRegistry::readCurrent();
    start_ = KernelRegistry::instance().clock().now();
}

KernelScope::~KernelScope()
{
    auto &registry = KernelRegistry::instance();
    const TimeNs end = registry.clock().now();
    const TimeNs total = end - start_;
    const TimeNs self = total - child_time_;
    current_scope = parent_;
    if (parent_)
        parent_->child_time_ += total;

    if (pmu_active_) {
        const CounterSet pmu_total =
            counterDelta(ThreadCounterRegistry::readCurrent(), pmu_start_);
        // Self counters exclude child scopes, mirroring self time.
        ThreadCounterRegistry::instance().charge(
            id_, counterDelta(pmu_total, pmu_child_));
        if (parent_ && parent_->pmu_active_)
            parent_->pmu_child_ += pmu_total;
    }

    auto &thread = registry.threadState();
    std::lock_guard lock(thread.mutex);
    auto &accum = thread.aggregate[static_cast<std::size_t>(id_)];
    accum.calls += 1;
    accum.self_time += self;
    accum.total_time += total;
    accum.stats += stats_;

    if (registry.groundTruthEnabled() && current_op != kNoOp) {
        auto &op_accum = thread.by_op[{current_op, id_}];
        op_accum.calls += 1;
        op_accum.self_time += self;
        op_accum.total_time += total;
        op_accum.stats += stats_;
    }

    if (registry.timelineEnabled()) {
        thread.timeline.push_back(KernelInterval{
            id_, thread.tid, start_, end, depth_, current_op, stats_});
    }
}

OpTagScope::OpTagScope(OpTag tag) : previous_(current_op)
{
    current_op = tag;
    KernelRegistry::instance().threadState().live_op.store(
        tag, std::memory_order_relaxed);
}

OpTagScope::~OpTagScope()
{
    current_op = previous_;
    KernelRegistry::instance().threadState().live_op.store(
        previous_, std::memory_order_relaxed);
}

OpTag
currentOpTag()
{
    return current_op;
}

} // namespace lotus::hwcount
