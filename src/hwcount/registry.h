/**
 * @file
 * Process-wide registry of kernel executions.
 *
 * Compute kernels annotate themselves with a KernelScope. The registry
 * keeps, per thread:
 *
 *  - always-on aggregates per kernel (calls, self/total time, work),
 *    the information a hardware profiler would accumulate over an
 *    end-to-end run at C/C++-function granularity;
 *  - an optional interval timeline (start/end per invocation) recorded
 *    only while collection is enabled — the analogue of VTune/uProf
 *    collection windows controlled through ITT/AMDProfileControl;
 *  - optional ground-truth (operation, kernel) aggregates, available
 *    only when explicitly enabled. Production Lotus never sees these;
 *    they exist to *evaluate* LotusMap's reconstruction quality.
 *
 * Nested kernel scopes are supported; self time excludes enclosed
 * child kernels, matching a sampling profiler's leaf attribution.
 */

#ifndef LOTUS_HWCOUNT_REGISTRY_H
#define LOTUS_HWCOUNT_REGISTRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "hwcount/counters.h"
#include "hwcount/kernel_id.h"
#include "hwcount/work_stats.h"

namespace lotus::hwcount {

/** Tag identifying a high-level operation for ground-truth accounting. */
using OpTag = std::uint16_t;
constexpr OpTag kNoOp = 0;

/** One recorded kernel invocation on the timeline. */
struct KernelInterval
{
    KernelId kernel = KernelId::Invalid;
    std::uint32_t tid = 0;
    TimeNs start = 0;
    TimeNs end = 0;
    /** Nesting depth (0 = outermost). */
    std::uint16_t depth = 0;
    OpTag op = kNoOp;
    WorkStats stats;

    TimeNs duration() const { return end - start; }
};

/** Accumulated view of one kernel (or one (op, kernel) pair). */
struct KernelAccum
{
    std::uint64_t calls = 0;
    /** Time excluding enclosed child kernels. */
    TimeNs self_time = 0;
    /** Wall time of the whole invocation. */
    TimeNs total_time = 0;
    WorkStats stats;

    KernelAccum &
    operator+=(const KernelAccum &o)
    {
        calls += o.calls;
        self_time += o.self_time;
        total_time += o.total_time;
        stats += o.stats;
        return *this;
    }
};

/** Consistent copy of everything the registry knows. */
struct RegistrySnapshot
{
    std::array<KernelAccum, kNumKernels> aggregate{};

    /** Ground truth per (op, kernel); empty unless enabled. */
    std::map<std::pair<OpTag, KernelId>, KernelAccum> by_op;

    /** Recorded intervals, sorted by (tid, start). */
    std::vector<KernelInterval> timeline;

    /** Kernels with nonzero self time, most expensive first. */
    std::vector<KernelId> hotKernels() const;

    /** Total self time across all kernels. */
    TimeNs totalSelfTime() const;
};

class KernelRegistry
{
  public:
    static KernelRegistry &instance();

    /** Substitute the timestamp source (tests). Not thread-safe vs
     *  concurrent kernels; call while quiesced. */
    void setClock(const Clock *clock);
    const Clock &clock() const { return *clock_; }

    /** Gate timeline recording (ITT resume/pause analogue). */
    void setTimelineEnabled(bool enabled);
    bool
    timelineEnabled() const
    {
        return timeline_enabled_.load(std::memory_order_relaxed);
    }

    /** Gate ground-truth (op, kernel) accounting. */
    void setGroundTruthEnabled(bool enabled);
    bool
    groundTruthEnabled() const
    {
        return ground_truth_enabled_.load(std::memory_order_relaxed);
    }

    /** Intern an operation name, returning its tag. */
    OpTag registerOp(const std::string &name);

    /** Name for a previously registered tag. */
    std::string opName(OpTag tag) const;

    /**
     * Merge every thread's data into one snapshot. Intended to be
     * called while the system is quiescent (between runs); safe but
     * possibly mid-kernel-torn otherwise.
     */
    RegistrySnapshot snapshot() const;

    /**
     * The operation currently executing on every known thread —
     * what a sampling Python profiler observes when it walks the
     * process's frames. (tid, kNoOp) entries mean "no operation".
     */
    std::vector<std::pair<std::uint32_t, OpTag>> liveOps() const;

    /** Drop all recorded data (aggregates, timelines, ground truth). */
    void reset();

  private:
    friend class KernelScope;
    friend class OpTagScope;

    struct ThreadState;

    KernelRegistry();

    ThreadState &threadState();

    const Clock *clock_;
    std::atomic<bool> timeline_enabled_{false};
    std::atomic<bool> ground_truth_enabled_{false};

    mutable std::mutex threads_mutex_;
    std::vector<std::shared_ptr<ThreadState>> threads_;

    mutable std::mutex ops_mutex_;
    std::vector<std::string> op_names_;
};

/**
 * RAII annotation of one kernel invocation.
 *
 * Usage:
 * @code
 *   KernelScope scope(KernelId::IdctBlock);
 *   ... do the work ...
 *   scope.stats().arith_ops += 1024;
 * @endcode
 */
class KernelScope
{
  public:
    explicit KernelScope(KernelId id);
    ~KernelScope();

    KernelScope(const KernelScope &) = delete;
    KernelScope &operator=(const KernelScope &) = delete;

    /** Mutable work accounting for this invocation. */
    WorkStats &stats() { return stats_; }

  private:
    KernelId id_;
    TimeNs start_;
    TimeNs child_time_ = 0;
    WorkStats stats_;
    KernelScope *parent_;
    std::uint16_t depth_;
    /** Counter reading at scope entry and counters consumed by
     *  enclosed child scopes; populated only on threads with a live
     *  PMU group (ThreadCounterRegistry::threadHasPmu()). The self
     *  delta charged at exit mirrors the self-time computation. */
    CounterSet pmu_start_;
    CounterSet pmu_child_;
    bool pmu_active_ = false;
};

/**
 * RAII ground-truth operation tag covering a region of execution.
 * Only meaningful when the registry's ground-truth mode is enabled.
 */
class OpTagScope
{
  public:
    explicit OpTagScope(OpTag tag);
    ~OpTagScope();

    OpTagScope(const OpTagScope &) = delete;
    OpTagScope &operator=(const OpTagScope &) = delete;

  private:
    OpTag previous_;
};

/** Currently active ground-truth op tag on this thread. */
OpTag currentOpTag();

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_REGISTRY_H
