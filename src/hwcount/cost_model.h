/**
 * @file
 * Simulated PMU: derives hardware counters from kernel work accounting.
 *
 * The paper measures real PMUs through VTune/uProf. In environments
 * where perf_event is unavailable (containers, CI), Lotus-CPP instead
 * synthesizes counters deterministically from each kernel's WorkStats
 * through a per-KernelClass microarchitectural cost model on a
 * configurable machine (default: the paper's dual-socket 3.2 GHz,
 * 32-core Xeon). The *attribution problem* LotusMap exists to solve is
 * unaffected: counters remain observable only per native function.
 *
 * Contention modelling: the single scalar input `occupancy` (average
 * runnable preprocessing threads divided by hardware cores) moves the
 * counters the way the paper's Figure 6 observes on real hardware —
 * higher occupancy raises front-end boundness, depresses the uop
 * supply to the backend, and (because fewer uops reach the memory
 * subsystem) lowers the share of cycles stalled on local DRAM.
 */

#ifndef LOTUS_HWCOUNT_COST_MODEL_H
#define LOTUS_HWCOUNT_COST_MODEL_H

#include "hwcount/counters.h"
#include "hwcount/kernel_id.h"
#include "hwcount/registry.h"
#include "hwcount/work_stats.h"

namespace lotus::hwcount {

/** Machine the simulated PMU models. */
struct MachineConfig
{
    int cores = 32;
    double freq_ghz = 3.2;
    /** Cache line size in bytes. */
    int line_bytes = 64;
    /** Local DRAM load-to-use latency in cycles. */
    double dram_latency_cycles = 220.0;
};

/** Per-KernelClass microarchitectural characteristics. */
struct ClassProfile
{
    /** Instructions per byte moved (read+written). */
    double instr_per_byte;
    /** Instructions per reported arithmetic op. */
    double instr_per_arith;
    /** Instructions per branch. */
    double instr_per_branch;
    /** Instructions per irregular access. */
    double instr_per_random;
    /** Retired uops per instruction. */
    double uops_per_instr;
    /** Baseline cycles per instruction at zero contention. */
    double base_cpi;
    /** Baseline fraction of top-down slots lost to the front end. */
    double base_frontend_bound;
    /** How strongly occupancy inflates front-end boundness. */
    double frontend_contention_slope;
    /** L1 misses per byte moved. */
    double l1_miss_per_byte;
    /** Fraction of L1 misses that also miss L2. */
    double l2_miss_ratio;
    /** Fraction of L2 misses that also miss LLC. */
    double llc_miss_ratio;
    /** Branch mispredict ratio. */
    double mispredict_ratio;
};

/** Profile used for kernels of class @p cls. */
const ClassProfile &classProfile(KernelClass cls);

class SimulatedPmu
{
  public:
    explicit SimulatedPmu(MachineConfig config = MachineConfig{});

    const MachineConfig &machine() const { return config_; }

    /**
     * Counters for an amount of work executed by kernel @p id.
     *
     * @param occupancy average runnable preprocessing threads divided
     *        by hardware cores; 0 means an otherwise idle machine.
     */
    CounterSet countersFor(KernelId id, const WorkStats &work,
                           double occupancy = 0.0) const;

    /** Counters for an aggregate registry entry. */
    CounterSet countersFor(KernelId id, const KernelAccum &accum,
                           double occupancy = 0.0) const;

    /**
     * Per-kernel counters for everything in a registry snapshot,
     * indexed by KernelId; entries for unused kernels are all-zero.
     */
    std::vector<CounterSet>
    countersForSnapshot(const RegistrySnapshot &snapshot,
                        double occupancy = 0.0) const;

    /**
     * Multiplicative wall-time inflation the DES applies to CPU
     * service times under the given occupancy (memory-bandwidth and
     * SMT contention). 1.0 at zero occupancy.
     */
    double cpuTimeInflation(double occupancy) const;

  private:
    MachineConfig config_;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_COST_MODEL_H
