#include "hwcount/sampling_driver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace lotus::hwcount {

SamplingDriver::SamplingDriver(SamplingConfig config) : config_(config)
{
    LOTUS_ASSERT(config_.interval > 0, "sampling interval must be positive");
    LOTUS_ASSERT(config_.skid >= 0, "skid must be non-negative");
}

namespace {

/** Contiguous [first, last) range of one thread's intervals. */
struct ThreadRange
{
    std::uint32_t tid;
    std::size_t first;
    std::size_t last;
};

std::vector<ThreadRange>
splitByThread(const std::vector<KernelInterval> &timeline)
{
    std::vector<ThreadRange> ranges;
    std::size_t i = 0;
    while (i < timeline.size()) {
        std::size_t j = i;
        while (j < timeline.size() && timeline[j].tid == timeline[i].tid)
            ++j;
        ranges.push_back(ThreadRange{timeline[i].tid, i, j});
        i = j;
    }
    return ranges;
}

/**
 * Sweep one thread's intervals, attributing each sample time to the
 * innermost active interval. Intervals are sorted by start (ties by
 * depth), nesting is well-formed (children fully inside parents).
 */
void
sweepThread(const std::vector<KernelInterval> &timeline,
            const ThreadRange &range, const std::vector<TimeNs> &times,
            TimeNs skid, std::vector<DriverSample> &out)
{
    std::vector<const KernelInterval *> stack;
    std::size_t next = range.first;
    for (const TimeNs t : times) {
        const TimeNs lookup = t - skid;
        // Push intervals that started at or before the lookup time.
        while (next < range.last && timeline[next].start <= lookup) {
            stack.push_back(&timeline[next]);
            ++next;
        }
        // Pop intervals that have already ended.
        while (!stack.empty() && stack.back()->end <= lookup)
            stack.pop_back();
        // The stack can still hold stale outer intervals whose nested
        // children pushed after them ended before them; compact from
        // the bottom: keep only intervals covering the lookup time.
        while (!stack.empty() &&
               (stack.back()->end <= lookup || stack.back()->start > lookup))
            stack.pop_back();

        DriverSample sample;
        sample.time = t;
        sample.tid = range.tid;
        if (!stack.empty() && stack.back()->start <= lookup &&
            stack.back()->end > lookup) {
            sample.kernel = stack.back()->kernel;
            sample.op = stack.back()->op;
        }
        out.push_back(sample);
    }
}

} // namespace

std::vector<DriverSample>
SamplingDriver::sampleRange(const std::vector<KernelInterval> &timeline,
                            TimeNs lo, TimeNs hi,
                            bool clamp_per_thread) const
{
    std::vector<DriverSample> out;
    for (const auto &range : splitByThread(timeline)) {
        TimeNs begin = lo;
        TimeNs end = hi;
        if (clamp_per_thread) {
            begin = timeline[range.first].start;
            end = 0;
            for (std::size_t i = range.first; i < range.last; ++i)
                end = std::max(end, timeline[i].end);
        }
        if (end <= begin)
            continue;
        // The phase depends on the window start and the thread so
        // repeated isolation windows sample different offsets — the
        // behaviour behind the paper's capture-probability formula.
        Rng rng(config_.seed ^
                (static_cast<std::uint64_t>(begin) * 0x2545F4914F6CDD1Dull) ^
                (static_cast<std::uint64_t>(range.tid) << 32));
        const TimeNs phase = static_cast<TimeNs>(
            rng.nextBelow(static_cast<std::uint64_t>(config_.interval)));
        std::vector<TimeNs> times;
        for (TimeNs t = begin + phase; t < end; t += config_.interval)
            times.push_back(t);
        sweepThread(timeline, range, times, config_.skid, out);
    }
    return out;
}

std::vector<DriverSample>
SamplingDriver::sample(const std::vector<KernelInterval> &timeline) const
{
    return sampleRange(timeline, 0, 0, /*clamp_per_thread=*/true);
}

std::vector<DriverSample>
SamplingDriver::sampleWindow(const std::vector<KernelInterval> &timeline,
                             TimeNs window_start, TimeNs window_end) const
{
    LOTUS_ASSERT(window_end >= window_start);
    return sampleRange(timeline, window_start, window_end,
                       /*clamp_per_thread=*/false);
}

std::map<KernelId, std::uint64_t>
SamplingDriver::countByKernel(const std::vector<DriverSample> &samples)
{
    std::map<KernelId, std::uint64_t> counts;
    for (const auto &sample : samples) {
        if (sample.kernel != KernelId::Invalid)
            ++counts[sample.kernel];
    }
    return counts;
}

double
SamplingDriver::captureProbability(TimeNs f, TimeNs s, int n)
{
    LOTUS_ASSERT(f > 0 && s > 0 && f <= s && n >= 0);
    const double ratio = static_cast<double>(f) / static_cast<double>(s);
    return 1.0 - std::pow(1.0 - ratio, n);
}

int
SamplingDriver::runsForCapture(TimeNs f, TimeNs s, double confidence)
{
    LOTUS_ASSERT(f > 0 && s > 0 && f <= s);
    LOTUS_ASSERT(confidence > 0.0 && confidence < 1.0);
    if (f == s)
        return 1;
    const double ratio = static_cast<double>(f) / static_cast<double>(s);
    const double n = std::log(1.0 - confidence) / std::log(1.0 - ratio);
    return static_cast<int>(std::ceil(n - 1e-12));
}

} // namespace lotus::hwcount
