/**
 * @file
 * Identities of the native "leaf functions" in Lotus-CPP.
 *
 * In the paper, hardware profilers observe C/C++ functions inside
 * libjpeg, Pillow's _imaging extension, libc and friends, with no
 * knowledge of the Python operation that invoked them. Our analogue
 * keeps the same information barrier: compute kernels in the image,
 * tensor and io layers annotate themselves with a KernelId, and all
 * hardware-level observation (sampling, counters) happens at KernelId
 * granularity only. The mapping from preprocessing operations to
 * kernels is deliberately NOT exported from here; LotusMap has to
 * reconstruct it the way the paper does.
 */

#ifndef LOTUS_HWCOUNT_KERNEL_ID_H
#define LOTUS_HWCOUNT_KERNEL_ID_H

#include <cstdint>
#include <string>

namespace lotus::hwcount {

/**
 * Broad microarchitectural behaviour class of a kernel; the simulated
 * PMU cost model assigns per-class characteristics (uop density,
 * cache behaviour, branchiness).
 */
enum class KernelClass : std::uint8_t
{
    EntropyCode,  ///< branchy bit-twiddling (huffman decode/encode)
    Dct,          ///< dense arithmetic on small blocks
    ColorConvert, ///< streaming arithmetic, moderate intensity
    Resample,     ///< gather-heavy filtering
    MemoryMove,   ///< memcpy/memset-like, bandwidth bound
    Arithmetic,   ///< elementwise tensor math
    RandomAccess, ///< pointer chasing / irregular search
    Io,           ///< file read/write
    Runtime,      ///< allocator, interpreter, glue
    Accelerator,  ///< GPU-side work (never CPU-attributed)
};

/**
 * Every native leaf function in the system.
 *
 * Names and "shared libraries" mirror the flavour of the paper's
 * Table I so mapping output reads like the original.
 */
enum class KernelId : std::uint16_t
{
    Invalid = 0,

    // --- liblotusjpeg (libjpeg analogue) ---
    DecodeMcu,
    FillBitBuffer,
    IdctBlock,
    YccToRgb,
    ChromaUpsample,
    DecompressOnepass,
    EncodeMcu,
    ForwardDct,
    RgbToYcc,
    QuantizeBlock,
    DequantizeBlock,

    // --- liblotusimaging (Pillow _imaging analogue) ---
    UnpackRgb,
    PackRgb,
    ResampleHorizontal,
    ResampleVertical,
    PrecomputeCoeffs,
    ImagingCrop,
    ImagingFlipLeftRight,

    // --- libc analogues ---
    MemcpyBulk,
    MemsetBulk,
    MemmoveBulk,
    HeapFree,
    HeapCalloc,

    // --- liblotustensor ---
    CastU8ToF32,
    CastF32ToU8,
    NormalizeChannels,
    CollateCopy,
    GaussianNoiseAdd,
    BrightnessScale,
    FlipAxisCopy,
    CropWindowCopy,
    ForegroundSearch,

    // --- liblotusio ---
    FileRead,
    FileWrite,

    // --- unrelated pipeline machinery (must be filtered by LotusMap) ---
    InterpEval,
    GcCollect,
    PinMemoryCopy,
    AdamStep,
    LossForward,
    AllreduceCopy,
    QueueSerialize,
    QueueDeserialize,

    NumKernels,
};

constexpr std::size_t kNumKernels =
    static_cast<std::size_t>(KernelId::NumKernels);

/** Static metadata describing one kernel. */
struct KernelInfo
{
    KernelId id;
    KernelClass cls;
    /** Symbol-style name, e.g. "decode_mcu". */
    const char *name;
    /** Shared-object-style home, e.g. "liblotusjpeg.so.9". */
    const char *library;
};

/** Metadata for @p id (panics on Invalid/NumKernels). */
const KernelInfo &kernelInfo(KernelId id);

/** Lookup by symbol name; returns Invalid when unknown. Symbols with
 *  a dispatch-tier suffix ("_scalar" / "_sse4" / "_avx2") resolve to
 *  their base kernel. */
KernelId kernelByName(const std::string &name);

/** Override the symbol name reported for @p id; used by the SIMD
 *  dispatch layer to register the tier-resolved specialization (e.g.
 *  "ycc_rgb_convert_avx2") the way a real profiler would see it.
 *  @p name must have static storage duration (string literal). */
void setKernelSymbol(KernelId id, const char *name);

/** Human-readable "name (library)" string. */
std::string kernelLabel(KernelId id);

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_KERNEL_ID_H
