#include "hwcount/cost_model.h"

#include <cmath>

#include "common/logging.h"

namespace lotus::hwcount {

const ClassProfile &
classProfile(KernelClass cls)
{
    // Characteristics chosen to echo the regimes the paper observes:
    // entropy decode (decode_mcu) is branchy and front-end sensitive,
    // memory movers are backend/DRAM sensitive, DCT is dense compute.
    static const ClassProfile entropy{0.9,  1.2, 1.0, 2.0, 1.25, 0.95,
                                      0.30, 0.55, 0.002, 0.35, 0.30, 0.06};
    static const ClassProfile dct{0.3,  1.0, 1.0, 2.0, 1.15, 0.45,
                                  0.08, 0.25, 0.001, 0.25, 0.20, 0.01};
    static const ClassProfile color{0.5,  1.0, 1.0, 2.0, 1.10, 0.55,
                                    0.10, 0.30, 0.004, 0.35, 0.30, 0.01};
    static const ClassProfile resample{0.6,  1.1, 1.0, 2.5, 1.20, 0.70,
                                       0.12, 0.35, 0.008, 0.40, 0.35, 0.02};
    // Memory movers stall on DRAM: few instructions per byte but a
    // high effective CPI.
    static const ClassProfile memmove_{0.10, 1.0, 1.0, 2.0, 1.05, 3.20,
                                       0.05, 0.20, 0.016, 0.60, 0.55, 0.005};
    static const ClassProfile arith{0.35, 1.0, 1.0, 2.0, 1.10, 0.50,
                                    0.08, 0.25, 0.006, 0.35, 0.30, 0.01};
    static const ClassProfile random_{1.2,  1.3, 1.1, 4.0, 1.30, 1.60,
                                      0.15, 0.40, 0.020, 0.70, 0.60, 0.08};
    static const ClassProfile io{0.15, 1.0, 1.0, 2.0, 1.05, 1.20,
                                 0.10, 0.25, 0.010, 0.50, 0.45, 0.02};
    static const ClassProfile runtime{0.8,  1.2, 1.1, 3.0, 1.25, 1.10,
                                      0.25, 0.45, 0.005, 0.40, 0.35, 0.05};
    static const ClassProfile accel{0.0, 0.0, 0.0, 0.0, 1.0, 1.0,
                                    0.0, 0.0, 0.0,  0.0, 0.0, 0.0};

    switch (cls) {
      case KernelClass::EntropyCode: return entropy;
      case KernelClass::Dct: return dct;
      case KernelClass::ColorConvert: return color;
      case KernelClass::Resample: return resample;
      case KernelClass::MemoryMove: return memmove_;
      case KernelClass::Arithmetic: return arith;
      case KernelClass::RandomAccess: return random_;
      case KernelClass::Io: return io;
      case KernelClass::Runtime: return runtime;
      case KernelClass::Accelerator: return accel;
    }
    LOTUS_PANIC("unknown kernel class %d", static_cast<int>(cls));
}

SimulatedPmu::SimulatedPmu(MachineConfig config) : config_(config)
{
    LOTUS_ASSERT(config_.cores > 0 && config_.freq_ghz > 0.0);
}

CounterSet
SimulatedPmu::countersFor(KernelId id, const WorkStats &work,
                          double occupancy) const
{
    const auto &info = kernelInfo(id);
    const auto &prof = classProfile(info.cls);
    if (occupancy < 0.0)
        occupancy = 0.0;

    const double bytes =
        static_cast<double>(work.bytes_read + work.bytes_written);

    CounterSet c;
    const double instr = prof.instr_per_byte * bytes +
                         prof.instr_per_arith *
                             static_cast<double>(work.arith_ops) +
                         prof.instr_per_branch *
                             static_cast<double>(work.branches) +
                         prof.instr_per_random *
                             static_cast<double>(work.random_accesses);
    c.instructions = static_cast<std::uint64_t>(std::llround(instr));
    c.uops_retired = static_cast<std::uint64_t>(
        std::llround(instr * prof.uops_per_instr));

    // Contention raises front-end boundness toward a ceiling.
    const double fe_bound = std::min(
        0.95, prof.base_frontend_bound +
                  prof.frontend_contention_slope * occupancy);

    // Effective CPI grows with contention; front-end starvation is the
    // dominant term, with a smaller memory-bandwidth term.
    const double cpi =
        prof.base_cpi * (1.0 + 1.5 * fe_bound - prof.base_frontend_bound) *
        (1.0 + 0.15 * occupancy);
    c.cycles = static_cast<std::uint64_t>(std::llround(instr * cpi));

    const double slots =
        static_cast<double>(c.cycles) * CounterSet::kSlotsPerCycle;
    c.frontend_stall_slots =
        static_cast<std::uint64_t>(std::llround(slots * fe_bound));

    // Uops the front end actually delivered: retired uops plus a bit
    // of speculative waste, bounded by non-stalled slot capacity.
    const double delivered_capacity = slots - static_cast<double>(
                                                  c.frontend_stall_slots);
    const double delivered = std::min(
        delivered_capacity,
        static_cast<double>(c.uops_retired) * (1.0 + prof.mispredict_ratio));
    c.uops_delivered =
        static_cast<std::uint64_t>(std::llround(std::max(0.0, delivered)));

    c.l1_misses = static_cast<std::uint64_t>(
        std::llround(bytes * prof.l1_miss_per_byte));
    c.l2_misses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(c.l1_misses) * prof.l2_miss_ratio));
    c.llc_misses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(c.l2_misses) * prof.llc_miss_ratio));

    // DRAM stall pressure: every LLC miss pays local-DRAM latency, but
    // under heavy front-end boundness fewer loads are in flight, so
    // the realized stall share shrinks (the paper's Fig. 6(h) effect).
    // Stalls are bounded by the cycles that exist.
    const double dram_relief = std::max(0.2, 1.0 - 0.55 * occupancy);
    c.dram_stall_cycles = static_cast<std::uint64_t>(std::llround(
        std::min(static_cast<double>(c.cycles) * 0.9,
                 static_cast<double>(c.llc_misses) *
                     config_.dram_latency_cycles * dram_relief)));

    c.backend_stall_slots = static_cast<std::uint64_t>(std::llround(
        std::min(slots - static_cast<double>(c.frontend_stall_slots),
                 static_cast<double>(c.dram_stall_cycles) *
                     CounterSet::kSlotsPerCycle * 0.5)));

    c.branches = work.branches;
    c.branch_mispredicts = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(work.branches) * prof.mispredict_ratio));
    return c;
}

CounterSet
SimulatedPmu::countersFor(KernelId id, const KernelAccum &accum,
                          double occupancy) const
{
    return countersFor(id, accum.stats, occupancy);
}

std::vector<CounterSet>
SimulatedPmu::countersForSnapshot(const RegistrySnapshot &snapshot,
                                  double occupancy) const
{
    std::vector<CounterSet> out(kNumKernels);
    for (std::size_t i = 1; i < kNumKernels; ++i) {
        const auto &accum = snapshot.aggregate[i];
        if (accum.calls == 0)
            continue;
        out[i] = countersFor(static_cast<KernelId>(i), accum, occupancy);
    }
    return out;
}

double
SimulatedPmu::cpuTimeInflation(double occupancy) const
{
    if (occupancy <= 0.0)
        return 1.0;
    // Calibrated so the paper's 8 -> 28 worker sweep on a 32-core
    // machine (occupancy ~0.25 -> ~0.9) yields roughly the reported
    // 53% total-CPU-time growth.
    return 1.0 + 0.75 * occupancy * occupancy + 0.18 * occupancy;
}

} // namespace lotus::hwcount
