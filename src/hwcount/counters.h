/**
 * @file
 * Hardware performance counter values and derived metrics.
 *
 * Mirrors the subset of VTune's microarchitecture-exploration view the
 * paper uses in Figure 6: CPU time, uop supply to the backend,
 * front-end boundness, and stalls on loads serviced by local DRAM.
 */

#ifndef LOTUS_HWCOUNT_COUNTERS_H
#define LOTUS_HWCOUNT_COUNTERS_H

#include <cstdint>
#include <string>
#include <vector>

namespace lotus::hwcount {

struct CounterSet
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Uops issued by the front end toward the backend. */
    std::uint64_t uops_delivered = 0;
    /** Uops actually retired. */
    std::uint64_t uops_retired = 0;
    /** Top-down pipeline slots wasted on front-end stalls. */
    std::uint64_t frontend_stall_slots = 0;
    /** Top-down pipeline slots wasted on backend stalls. */
    std::uint64_t backend_stall_slots = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t llc_misses = 0;
    /** Cycles stalled on loads serviced by local DRAM. */
    std::uint64_t dram_stall_cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t branch_mispredicts = 0;

    CounterSet &operator+=(const CounterSet &o);
    friend CounterSet
    operator+(CounterSet a, const CounterSet &b)
    {
        a += b;
        return a;
    }

    /** Scale every counter by @p factor (used for metric splitting). */
    CounterSet scaled(double factor) const;

    /** Instructions per cycle (0 when no cycles). */
    double ipc() const;

    /** Pipeline slots per cycle on the modelled machine. */
    static constexpr double kSlotsPerCycle = 4.0;

    /** Fraction of top-down slots lost to the front end, in [0, 1]. */
    double frontendBoundFraction() const;

    /** Fraction of cycles stalled on local-DRAM loads, in [0, 1]. */
    double dramBoundFraction() const;

    /** Average uops delivered to the backend per cycle. */
    double uopSupplyPerCycle() const;

    /** One-line rendering for tables and debugging. */
    std::string summary() const;
};

/** Name/value pairs for tabular output, in a stable order. */
std::vector<std::pair<std::string, double>>
counterFields(const CounterSet &c);

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_COUNTERS_H
