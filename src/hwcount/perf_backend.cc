#include "hwcount/perf_backend.h"

#include <cerrno>
#include <cstring>

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace lotus::hwcount {

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec kEvents[PerfEventPmu::kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
};

} // namespace

PerfEventPmu::PerfEventPmu()
{
    for (int &fd : fds_)
        fd = -1;
    for (int i = 0; i < kNumEvents; ++i) {
        perf_event_attr attr{};
        attr.size = sizeof(attr);
        attr.type = kEvents[i].type;
        attr.config = kEvents[i].config;
        attr.disabled = 1;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        const long fd = perfEventOpen(&attr, 0, -1, -1, 0);
        if (fd < 0) {
            error_ = std::string("perf_event_open: ") + std::strerror(errno);
            // Partial groups are torn down; an all-or-nothing backend
            // keeps downstream interpretation simple.
            for (int j = 0; j < i; ++j) {
                ::close(fds_[j]);
                fds_[j] = -1;
            }
            return;
        }
        fds_[i] = static_cast<int>(fd);
    }
    valid_ = true;
}

PerfEventPmu::~PerfEventPmu()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
PerfEventPmu::start()
{
    if (!valid_)
        return;
    for (int fd : fds_) {
        ioctl(fd, PERF_EVENT_IOC_RESET, 0);
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
}

void
PerfEventPmu::stop()
{
    if (!valid_)
        return;
    for (int fd : fds_)
        ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
}

CounterSet
PerfEventPmu::read() const
{
    CounterSet c;
    if (!valid_)
        return c;
    std::uint64_t values[kNumEvents] = {};
    for (int i = 0; i < kNumEvents; ++i) {
        if (::read(fds_[i], &values[i], sizeof(values[i])) !=
            sizeof(values[i]))
            values[i] = 0;
    }
    c.cycles = values[0];
    c.instructions = values[1];
    c.llc_misses = values[2];
    c.branches = values[3];
    c.branch_mispredicts = values[4];
    c.l1_misses = values[5];
    return c;
}

bool
PerfEventPmu::available()
{
    PerfEventPmu probe;
    return probe.valid();
}

} // namespace lotus::hwcount
