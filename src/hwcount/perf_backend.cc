#include "hwcount/perf_backend.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "common/logging.h"

namespace lotus::hwcount {

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

/**
 * Event-to-group layout. Groups are scheduled onto the PMU
 * atomically, so a group wider than the hardware's programmable
 * slots would silently never count (time_running stays 0). Three
 * two-event groups co-schedule everywhere that matters and let the
 * kernel round-robin them when slots run short; read() undoes the
 * time-slicing with time_enabled / time_running scaling.
 */
constexpr EventSpec kEvents[PerfEventPmu::kNumEvents] = {
    // Group 0: the IPC pair. Keeping cycles and instructions in one
    // group means their ratio is taken over the same time slices.
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    // Group 1: cache behaviour.
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    // Group 2: branches.
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

/** read() layout for PERF_FORMAT_GROUP with both time fields. */
struct GroupReading
{
    std::uint64_t nr;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
    std::uint64_t values[PerfEventPmu::kGroupSize];
};

} // namespace

const char *
pmuBackendName(PmuBackend backend)
{
    switch (backend) {
      case PmuBackend::kAuto: return "auto";
      case PmuBackend::kPerf: return "perf";
      case PmuBackend::kSim: return "sim";
    }
    return "unknown";
}

PmuBackend
pmuBackendFromEnv()
{
    const char *env = std::getenv("LOTUS_PMU");
    if (env == nullptr || *env == '\0')
        return PmuBackend::kAuto;
    if (std::strcmp(env, "auto") == 0)
        return PmuBackend::kAuto;
    if (std::strcmp(env, "perf") == 0)
        return PmuBackend::kPerf;
    if (std::strcmp(env, "sim") == 0)
        return PmuBackend::kSim;
    static bool warned = false;
    if (!warned) {
        warned = true;
        LOTUS_WARN("LOTUS_PMU=%s not recognised (expected auto, perf or "
                   "sim); using auto",
                   env);
    }
    return PmuBackend::kAuto;
}

PerfEventPmu::PerfEventPmu()
{
    for (int &fd : fds_)
        fd = -1;
    for (int i = 0; i < kNumEvents; ++i) {
        const bool leader = i % kGroupSize == 0;
        perf_event_attr attr{};
        attr.size = sizeof(attr);
        attr.type = kEvents[i].type;
        attr.config = kEvents[i].config;
        // Only the leader starts disabled; members inherit the
        // group's enable state, so one ioctl per group flips all.
        attr.disabled = leader ? 1 : 0;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        const int group_fd =
            leader ? -1 : fds_[(i / kGroupSize) * kGroupSize];
        const long fd = perfEventOpen(&attr, 0, -1, group_fd, 0);
        if (fd < 0) {
            error_ = std::string("perf_event_open: ") + std::strerror(errno);
            // Partial groups are torn down; an all-or-nothing backend
            // keeps downstream interpretation simple.
            for (int j = 0; j < i; ++j) {
                ::close(fds_[j]);
                fds_[j] = -1;
            }
            return;
        }
        fds_[i] = static_cast<int>(fd);
    }
    valid_ = true;
}

PerfEventPmu::~PerfEventPmu()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
PerfEventPmu::start()
{
    if (!valid_)
        return;
    for (int g = 0; g < kNumGroups; ++g) {
        const int leader = fds_[g * kGroupSize];
        ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
    mux_fraction_ = 1.0;
}

void
PerfEventPmu::stop()
{
    if (!valid_)
        return;
    for (int g = 0; g < kNumGroups; ++g)
        ioctl(fds_[g * kGroupSize], PERF_EVENT_IOC_DISABLE,
              PERF_IOC_FLAG_GROUP);
}

CounterSet
PerfEventPmu::read() const
{
    CounterSet c;
    if (!valid_)
        return c;
    std::uint64_t scaled[kNumEvents] = {};
    double worst_mux = 1.0;
    for (int g = 0; g < kNumGroups; ++g) {
        GroupReading reading{};
        const ssize_t got =
            ::read(fds_[g * kGroupSize], &reading, sizeof(reading));
        if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * 3) ||
            reading.nr != kGroupSize)
            continue;
        // Unbiased multiplex estimator: the group counted for
        // time_running out of time_enabled, so extrapolate by the
        // ratio. time_running == 0 means the group never scheduled
        // (counts are necessarily 0 and the ratio is meaningless).
        double scale = 1.0;
        if (reading.time_running > 0 &&
            reading.time_enabled > reading.time_running) {
            scale = static_cast<double>(reading.time_enabled) /
                    static_cast<double>(reading.time_running);
        }
        if (reading.time_enabled > 0) {
            worst_mux = std::min(
                worst_mux, static_cast<double>(reading.time_running) /
                               static_cast<double>(reading.time_enabled));
        }
        for (int e = 0; e < kGroupSize; ++e) {
            scaled[g * kGroupSize + e] = static_cast<std::uint64_t>(
                static_cast<double>(reading.values[e]) * scale + 0.5);
        }
    }
    mux_fraction_ = worst_mux;
    c.cycles = scaled[0];
    c.instructions = scaled[1];
    c.llc_misses = scaled[2];
    c.l1_misses = scaled[3];
    c.branches = scaled[4];
    c.branch_mispredicts = scaled[5];
    return c;
}

bool
PerfEventPmu::available()
{
    PerfEventPmu probe;
    return probe.valid();
}

std::string
PerfEventPmu::unavailableReason()
{
    PerfEventPmu probe;
    return probe.valid() ? std::string() : probe.error();
}

} // namespace lotus::hwcount
