/**
 * @file
 * CSV export of per-function hardware counters — the analogue of the
 * paper's appendix workflow, where VTune's Microarchitecture
 * Exploration grid is pasted into a CSV
 * (b1024_gpu4_dataloader20.csv) that the LotusMap notebooks consume.
 */

#ifndef LOTUS_HWCOUNT_CSV_EXPORT_H
#define LOTUS_HWCOUNT_CSV_EXPORT_H

#include <string>
#include <vector>

#include "hwcount/counters.h"
#include "hwcount/kernel_id.h"

namespace lotus::hwcount {

/**
 * Render per-kernel counters (indexed by KernelId, as produced by
 * SimulatedPmu::countersForSnapshot) as a CSV document with one row
 * per function that has activity, ordered by cycles descending.
 * Columns: function, library, then every counterFields() entry plus
 * the derived fe_bound / dram_bound fractions.
 */
std::string countersToCsv(const std::vector<CounterSet> &per_kernel);

/** Parse a countersToCsv() document back (function -> counters). */
std::vector<std::pair<KernelId, CounterSet>>
countersFromCsv(const std::string &csv);

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_CSV_EXPORT_H
