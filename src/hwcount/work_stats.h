/**
 * @file
 * Architecture-independent work accounting for kernels.
 *
 * Each kernel invocation reports what it actually did (bytes moved,
 * arithmetic operations, branches, irregular accesses). The simulated
 * PMU turns these into hardware-counter values through a per-class
 * cost model; a real perf_event backend ignores them.
 */

#ifndef LOTUS_HWCOUNT_WORK_STATS_H
#define LOTUS_HWCOUNT_WORK_STATS_H

#include <cstdint>

namespace lotus::hwcount {

struct WorkStats
{
    /** Bytes read from input buffers. */
    std::uint64_t bytes_read = 0;
    /** Bytes written to output buffers. */
    std::uint64_t bytes_written = 0;
    /** Arithmetic operations (integer or float). */
    std::uint64_t arith_ops = 0;
    /** Data-dependent branches executed. */
    std::uint64_t branches = 0;
    /** Irregular (non-streaming) memory accesses. */
    std::uint64_t random_accesses = 0;
    /** Logical items processed (pixels, symbols, elements). */
    std::uint64_t items = 0;

    WorkStats &
    operator+=(const WorkStats &other)
    {
        bytes_read += other.bytes_read;
        bytes_written += other.bytes_written;
        arith_ops += other.arith_ops;
        branches += other.branches;
        random_accesses += other.random_accesses;
        items += other.items;
        return *this;
    }

    friend WorkStats
    operator+(WorkStats a, const WorkStats &b)
    {
        a += b;
        return a;
    }

    bool
    empty() const
    {
        return bytes_read == 0 && bytes_written == 0 && arith_ops == 0 &&
               branches == 0 && random_accesses == 0 && items == 0;
    }

    /** Multiply every field by @p factor (extrapolating a calibration
     *  sample to a full epoch). */
    WorkStats
    scaled(double factor) const
    {
        auto scale = [factor](std::uint64_t v) {
            const double s = static_cast<double>(v) * factor;
            return s <= 0.0 ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(s + 0.5);
        };
        WorkStats out;
        out.bytes_read = scale(bytes_read);
        out.bytes_written = scale(bytes_written);
        out.arith_ops = scale(arith_ops);
        out.branches = scale(branches);
        out.random_accesses = scale(random_accesses);
        out.items = scale(items);
        return out;
    }
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_WORK_STATS_H
