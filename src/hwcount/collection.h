/**
 * @file
 * Collection-window control, mirroring the ITT (Intel) and
 * AMDProfileControl APIs the paper binds into Python (Listing 4).
 *
 * resume() opens a window (timeline recording on), pause() closes it,
 * detach() closes it and finalizes. Windows are recorded so the
 * sampling driver can restrict itself to them.
 */

#ifndef LOTUS_HWCOUNT_COLLECTION_H
#define LOTUS_HWCOUNT_COLLECTION_H

#include <vector>

#include "common/clock.h"

namespace lotus::hwcount {

/** One closed collection window. */
struct CollectionWindow
{
    TimeNs start = 0;
    TimeNs end = 0;
};

namespace collection {

/** Start (or restart) collecting; timestamps from the registry clock. */
void resume();

/** Stop collecting, closing the current window. */
void pause();

/** Stop collecting and mark the session finalized. */
void detach();

/** True while a window is open. */
bool active();

/** All closed windows since the last reset, in order. */
std::vector<CollectionWindow> windows();

/** Forget all windows and close any open one (without recording it). */
void reset();

} // namespace collection

/** RAII collection window. */
class CollectionScope
{
  public:
    CollectionScope() { collection::resume(); }
    ~CollectionScope() { collection::pause(); }

    CollectionScope(const CollectionScope &) = delete;
    CollectionScope &operator=(const CollectionScope &) = delete;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_COLLECTION_H
