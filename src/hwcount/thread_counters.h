/**
 * @file
 * Per-thread hardware-counter attribution (Recount-style).
 *
 * The ThreadCounterRegistry attaches one PerfEventPmu counter group
 * to every participating thread (the DataLoader attaches its worker
 * fleet; anything else may opt in with attachCurrentThread()). While
 * enabled, every KernelScope reads the thread's counters at entry and
 * exit and charges the *self* delta — total minus enclosed child
 * kernels — to the innermost kernel, exactly mirroring the registry's
 * self-time accounting. The result is a per-kernel CounterSet vector
 * in the same shape SimulatedPmu::countersForSnapshot() produces, so
 * LotusMap's splitCounters() consumes measured and modelled counters
 * interchangeably.
 *
 * Backend selection honours LOTUS_PMU={auto,perf,sim}: auto probes
 * perf_event_open and falls back to the simulated cost model when the
 * sandbox denies it; perf insists (warning once on fallback); sim
 * pins the deterministic model. snapshot() always returns usable
 * counters — measured when any thread collected real deltas, modelled
 * from the KernelRegistry's work accounting otherwise — so callers
 * degrade gracefully without branching on availability.
 *
 * Cost when disabled: one relaxed atomic load per KernelScope. Cost
 * when enabled with a real PMU: two group-read syscall batches per
 * scope on attached threads (budgeted in bench_micro's
 * pmu_overhead_pct).
 */

#ifndef LOTUS_HWCOUNT_THREAD_COUNTERS_H
#define LOTUS_HWCOUNT_THREAD_COUNTERS_H

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwcount/counters.h"
#include "hwcount/kernel_id.h"
#include "hwcount/perf_backend.h"

namespace lotus::hwcount {

/**
 * Per-field a - b, clamped at zero. Multiplex scaling can make a
 * cumulative counter wobble slightly downward between reads; a span
 * delta must never underflow into a huge unsigned value.
 */
CounterSet counterDelta(const CounterSet &now, const CounterSet &then);

/** Merged view of everything the attached threads measured. */
struct PmuSnapshot
{
    /** Per-kernel counters indexed by KernelId (size kNumKernels) —
     *  the shape core::lotusmap::splitCounters() consumes. */
    std::vector<CounterSet> per_kernel;
    /** Sum over per_kernel. */
    CounterSet total;
    /** Threads that called attachCurrentThread() while enabled. */
    int threads_attached = 0;
    /** Threads that got a live perf counter group. */
    int threads_real = 0;
    /** Worst time_running/time_enabled across threads (1 = never
     *  kernel-multiplexed). */
    double multiplex_fraction = 1.0;
    /** True when per_kernel holds real measured deltas; false when it
     *  was synthesized by the SimulatedPmu fallback. */
    bool measured = false;
    /** "perf", or "sim (<reason>)" describing the fallback. */
    std::string source;
};

class ThreadCounterRegistry
{
  public:
    /** Opaque per-thread state; defined in thread_counters.cc. */
    struct ThreadState;

    static ThreadCounterRegistry &instance();

    /**
     * Gate attribution. Off (default) costs one relaxed load per
     * KernelScope; flipping on resolves the backend (LOTUS_PMU +
     * availability probe). Threads must still attach individually.
     */
    void setEnabled(bool enabled);
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Backend this process resolved to: kPerf when real counters are
     * in use, kSim otherwise (never kAuto). Resolution happens on the
     * first call (or first setEnabled(true)) and is sticky.
     */
    PmuBackend resolvedBackend();

    /** Why the perf backend is not in use ("" when it is). */
    std::string fallbackReason() const;

    /**
     * Attach a counter group to the calling thread. Idempotent; a
     * no-op returning false when disabled or when the resolved
     * backend is kSim (the fallback needs no per-thread state).
     * Returns true when the thread now measures real counters.
     */
    bool attachCurrentThread();

    /** Stop the calling thread's counters; accumulated attribution
     *  survives for snapshot(). Safe without a prior attach. */
    void detachCurrentThread();

    /** True when the calling thread has a live counter group — the
     *  one-branch fast path KernelScope checks. */
    static bool threadHasPmu();

    /** Current cumulative counters of the calling thread's group
     *  (all-zero without one). */
    static CounterSet readCurrent();

    /** Charge a self-delta to @p id on the calling thread. Called by
     *  ~KernelScope; public so custom spans can attribute too. */
    void charge(KernelId id, const CounterSet &self);

    /**
     * Merge every thread's attribution. When no real deltas exist the
     * per-kernel counters are synthesized from the KernelRegistry's
     * work accounting through the SimulatedPmu at @p occupancy, so
     * the caller always gets a usable vector (see `measured`).
     */
    PmuSnapshot snapshot(double occupancy = 0.0) const;

    /** Drop accumulated attribution on every thread (keeps groups
     *  attached and counting). */
    void reset();

    /** Re-run backend resolution on next use (tests flip LOTUS_PMU). */
    void resetBackendForTesting();

  private:
    ThreadCounterRegistry() = default;

    ThreadState *threadState();

    std::atomic<bool> enabled_{false};

    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<ThreadState>> threads_;
    bool resolved_ = false;
    PmuBackend backend_ = PmuBackend::kSim;
    std::string fallback_reason_;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_THREAD_COUNTERS_H
