#include "hwcount/thread_counters.h"

#include <algorithm>

#include "common/logging.h"
#include "hwcount/cost_model.h"
#include "hwcount/registry.h"

namespace lotus::hwcount {

namespace {

std::uint64_t
sub(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

CounterSet
counterDelta(const CounterSet &now, const CounterSet &then)
{
    CounterSet d;
    d.cycles = sub(now.cycles, then.cycles);
    d.instructions = sub(now.instructions, then.instructions);
    d.uops_delivered = sub(now.uops_delivered, then.uops_delivered);
    d.uops_retired = sub(now.uops_retired, then.uops_retired);
    d.frontend_stall_slots =
        sub(now.frontend_stall_slots, then.frontend_stall_slots);
    d.backend_stall_slots =
        sub(now.backend_stall_slots, then.backend_stall_slots);
    d.l1_misses = sub(now.l1_misses, then.l1_misses);
    d.l2_misses = sub(now.l2_misses, then.l2_misses);
    d.llc_misses = sub(now.llc_misses, then.llc_misses);
    d.dram_stall_cycles = sub(now.dram_stall_cycles, then.dram_stall_cycles);
    d.branches = sub(now.branches, then.branches);
    d.branch_mispredicts =
        sub(now.branch_mispredicts, then.branch_mispredicts);
    return d;
}

/**
 * Per-thread attribution state. The owning thread writes without
 * coordination except for the lightweight mutex also taken by
 * snapshot()/reset(); the pmu itself is only ever touched by the
 * owning thread.
 */
struct ThreadCounterRegistry::ThreadState
{
    std::mutex mutex;
    std::unique_ptr<PerfEventPmu> pmu;
    std::array<CounterSet, kNumKernels> per_kernel{};
    double mux = 1.0;
    bool has_real_data = false;
};

namespace {

/** Fast-path handle KernelScope reads; set by attachCurrentThread,
 *  cleared by detach. Null on unattached (or sim-backend) threads. */
thread_local ThreadCounterRegistry::ThreadState *tl_state = nullptr;

} // namespace

ThreadCounterRegistry &
ThreadCounterRegistry::instance()
{
    static ThreadCounterRegistry registry;
    return registry;
}

void
ThreadCounterRegistry::setEnabled(bool enabled)
{
    if (enabled)
        resolvedBackend(); // resolve (and warn) before threads attach
    enabled_.store(enabled, std::memory_order_relaxed);
}

PmuBackend
ThreadCounterRegistry::resolvedBackend()
{
    std::lock_guard lock(mutex_);
    if (resolved_)
        return backend_;
    resolved_ = true;
    const PmuBackend requested = pmuBackendFromEnv();
    if (requested == PmuBackend::kSim) {
        backend_ = PmuBackend::kSim;
        fallback_reason_ = "forced by LOTUS_PMU=sim";
        return backend_;
    }
    std::string reason = PerfEventPmu::unavailableReason();
    if (reason.empty()) {
        backend_ = PmuBackend::kPerf;
        fallback_reason_.clear();
    } else {
        backend_ = PmuBackend::kSim;
        fallback_reason_ = reason;
        if (requested == PmuBackend::kPerf) {
            LOTUS_WARN("LOTUS_PMU=perf requested but unavailable (%s); "
                       "falling back to the simulated backend",
                       reason.c_str());
        }
    }
    return backend_;
}

std::string
ThreadCounterRegistry::fallbackReason() const
{
    std::lock_guard lock(mutex_);
    return fallback_reason_;
}

ThreadCounterRegistry::ThreadState *
ThreadCounterRegistry::threadState()
{
    thread_local std::shared_ptr<ThreadState> state = [this] {
        auto s = std::make_shared<ThreadState>();
        std::lock_guard lock(mutex_);
        threads_.push_back(s);
        return s;
    }();
    return state.get();
}

bool
ThreadCounterRegistry::attachCurrentThread()
{
    if (!enabled())
        return false;
    if (resolvedBackend() != PmuBackend::kPerf)
        return false;
    ThreadState *state = threadState();
    if (state->pmu == nullptr) {
        auto pmu = std::make_unique<PerfEventPmu>();
        if (!pmu->valid()) {
            // Process-level probe passed but this thread's open was
            // denied (fd limits, cgroup changes): degrade quietly.
            std::lock_guard lock(mutex_);
            if (fallback_reason_.empty())
                fallback_reason_ = pmu->error();
            return false;
        }
        pmu->start();
        std::lock_guard lock(state->mutex);
        state->pmu = std::move(pmu);
    }
    tl_state = state;
    return true;
}

void
ThreadCounterRegistry::detachCurrentThread()
{
    ThreadState *state = tl_state;
    tl_state = nullptr;
    if (state == nullptr)
        return;
    std::lock_guard lock(state->mutex);
    if (state->pmu != nullptr)
        state->pmu->stop();
}

bool
ThreadCounterRegistry::threadHasPmu()
{
    return tl_state != nullptr;
}

CounterSet
ThreadCounterRegistry::readCurrent()
{
    ThreadState *state = tl_state;
    if (state == nullptr || state->pmu == nullptr)
        return CounterSet{};
    return state->pmu->read();
}

void
ThreadCounterRegistry::charge(KernelId id, const CounterSet &self)
{
    ThreadState *state = tl_state;
    if (state == nullptr)
        return;
    std::lock_guard lock(state->mutex);
    state->per_kernel[static_cast<std::size_t>(id)] += self;
    state->has_real_data = true;
    if (state->pmu != nullptr)
        state->mux = std::min(state->mux, state->pmu->multiplexFraction());
}

PmuSnapshot
ThreadCounterRegistry::snapshot(double occupancy) const
{
    PmuSnapshot snap;
    snap.per_kernel.assign(kNumKernels, CounterSet{});
    std::vector<std::shared_ptr<ThreadState>> threads;
    {
        std::lock_guard lock(mutex_);
        threads = threads_;
        snap.source = fallback_reason_.empty()
                          ? "perf"
                          : "sim (" + fallback_reason_ + ")";
    }
    snap.threads_attached = static_cast<int>(threads.size());
    for (const auto &thread : threads) {
        std::lock_guard lock(thread->mutex);
        if (thread->pmu != nullptr)
            ++snap.threads_real;
        if (!thread->has_real_data)
            continue;
        for (std::size_t k = 0; k < kNumKernels; ++k) {
            snap.per_kernel[k] += thread->per_kernel[k];
            snap.total += thread->per_kernel[k];
        }
        snap.multiplex_fraction =
            std::min(snap.multiplex_fraction, thread->mux);
    }
    snap.measured = snap.total.cycles > 0 || snap.total.instructions > 0;
    if (!snap.measured) {
        // Graceful degradation: synthesize the same-shaped vector
        // from the KernelRegistry's work accounting so LotusMap and
        // the tools never branch on backend availability.
        SimulatedPmu pmu;
        snap.per_kernel = pmu.countersForSnapshot(
            KernelRegistry::instance().snapshot(), occupancy);
        snap.total = CounterSet{};
        for (const auto &c : snap.per_kernel)
            snap.total += c;
        if (snap.source == "perf")
            snap.source = "sim (no measured deltas yet)";
    }
    return snap;
}

void
ThreadCounterRegistry::reset()
{
    std::vector<std::shared_ptr<ThreadState>> threads;
    {
        std::lock_guard lock(mutex_);
        threads = threads_;
    }
    for (const auto &thread : threads) {
        std::lock_guard lock(thread->mutex);
        thread->per_kernel.fill(CounterSet{});
        thread->mux = 1.0;
        thread->has_real_data = false;
        if (thread->pmu != nullptr)
            thread->pmu->start(); // re-zero the hardware counts too
    }
}

void
ThreadCounterRegistry::resetBackendForTesting()
{
    std::lock_guard lock(mutex_);
    resolved_ = false;
    backend_ = PmuBackend::kSim;
    fallback_reason_.clear();
}

} // namespace lotus::hwcount
