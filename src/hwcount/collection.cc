#include "hwcount/collection.h"

#include <mutex>

#include "hwcount/registry.h"

namespace lotus::hwcount::collection {

namespace {

std::mutex mutex;
bool window_open = false;
TimeNs window_start = 0;
std::vector<CollectionWindow> closed_windows;

} // namespace

void
resume()
{
    auto &registry = KernelRegistry::instance();
    std::lock_guard lock(mutex);
    if (window_open)
        return;
    window_open = true;
    window_start = registry.clock().now();
    registry.setTimelineEnabled(true);
}

void
pause()
{
    auto &registry = KernelRegistry::instance();
    std::lock_guard lock(mutex);
    if (!window_open)
        return;
    registry.setTimelineEnabled(false);
    window_open = false;
    closed_windows.push_back(
        CollectionWindow{window_start, registry.clock().now()});
}

void
detach()
{
    pause();
}

bool
active()
{
    std::lock_guard lock(mutex);
    return window_open;
}

std::vector<CollectionWindow>
windows()
{
    std::lock_guard lock(mutex);
    return closed_windows;
}

void
reset()
{
    auto &registry = KernelRegistry::instance();
    std::lock_guard lock(mutex);
    registry.setTimelineEnabled(false);
    window_open = false;
    closed_windows.clear();
}

} // namespace lotus::hwcount::collection
