#include "hwcount/counters.h"

#include <cmath>

#include "common/strings.h"

namespace lotus::hwcount {

CounterSet &
CounterSet::operator+=(const CounterSet &o)
{
    cycles += o.cycles;
    instructions += o.instructions;
    uops_delivered += o.uops_delivered;
    uops_retired += o.uops_retired;
    frontend_stall_slots += o.frontend_stall_slots;
    backend_stall_slots += o.backend_stall_slots;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    llc_misses += o.llc_misses;
    dram_stall_cycles += o.dram_stall_cycles;
    branches += o.branches;
    branch_mispredicts += o.branch_mispredicts;
    return *this;
}

namespace {
std::uint64_t
scaleU64(std::uint64_t v, double factor)
{
    const double scaled = static_cast<double>(v) * factor;
    return scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(scaled));
}
} // namespace

CounterSet
CounterSet::scaled(double factor) const
{
    CounterSet out;
    out.cycles = scaleU64(cycles, factor);
    out.instructions = scaleU64(instructions, factor);
    out.uops_delivered = scaleU64(uops_delivered, factor);
    out.uops_retired = scaleU64(uops_retired, factor);
    out.frontend_stall_slots = scaleU64(frontend_stall_slots, factor);
    out.backend_stall_slots = scaleU64(backend_stall_slots, factor);
    out.l1_misses = scaleU64(l1_misses, factor);
    out.l2_misses = scaleU64(l2_misses, factor);
    out.llc_misses = scaleU64(llc_misses, factor);
    out.dram_stall_cycles = scaleU64(dram_stall_cycles, factor);
    out.branches = scaleU64(branches, factor);
    out.branch_mispredicts = scaleU64(branch_mispredicts, factor);
    return out;
}

double
CounterSet::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double
CounterSet::frontendBoundFraction() const
{
    if (cycles == 0)
        return 0.0;
    const double slots = static_cast<double>(cycles) * kSlotsPerCycle;
    const double frac = static_cast<double>(frontend_stall_slots) / slots;
    return frac > 1.0 ? 1.0 : frac;
}

double
CounterSet::dramBoundFraction() const
{
    if (cycles == 0)
        return 0.0;
    const double frac =
        static_cast<double>(dram_stall_cycles) / static_cast<double>(cycles);
    return frac > 1.0 ? 1.0 : frac;
}

double
CounterSet::uopSupplyPerCycle() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(uops_delivered) / static_cast<double>(cycles);
}

std::string
CounterSet::summary() const
{
    return strFormat(
        "cycles=%llu instr=%llu ipc=%.2f uops_delivered=%llu "
        "fe_bound=%.1f%% dram_bound=%.1f%% llc_miss=%llu",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(instructions), ipc(),
        static_cast<unsigned long long>(uops_delivered),
        100.0 * frontendBoundFraction(), 100.0 * dramBoundFraction(),
        static_cast<unsigned long long>(llc_misses));
}

std::vector<std::pair<std::string, double>>
counterFields(const CounterSet &c)
{
    return {
        {"cycles", static_cast<double>(c.cycles)},
        {"instructions", static_cast<double>(c.instructions)},
        {"uops_delivered", static_cast<double>(c.uops_delivered)},
        {"uops_retired", static_cast<double>(c.uops_retired)},
        {"frontend_stall_slots", static_cast<double>(c.frontend_stall_slots)},
        {"backend_stall_slots", static_cast<double>(c.backend_stall_slots)},
        {"l1_misses", static_cast<double>(c.l1_misses)},
        {"l2_misses", static_cast<double>(c.l2_misses)},
        {"llc_misses", static_cast<double>(c.llc_misses)},
        {"dram_stall_cycles", static_cast<double>(c.dram_stall_cycles)},
        {"branches", static_cast<double>(c.branches)},
        {"branch_mispredicts", static_cast<double>(c.branch_mispredicts)},
    };
}

} // namespace lotus::hwcount
