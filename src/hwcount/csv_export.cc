#include "hwcount/csv_export.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace lotus::hwcount {

std::string
countersToCsv(const std::vector<CounterSet> &per_kernel)
{
    LOTUS_ASSERT(per_kernel.size() == kNumKernels,
                 "per_kernel must be indexed by KernelId");
    std::vector<std::size_t> active;
    for (std::size_t k = 1; k < kNumKernels; ++k) {
        if (per_kernel[k].cycles > 0 || per_kernel[k].instructions > 0)
            active.push_back(k);
    }
    std::sort(active.begin(), active.end(), [&](std::size_t a,
                                                std::size_t b) {
        return per_kernel[a].cycles > per_kernel[b].cycles;
    });

    std::string out = "function,library";
    for (const auto &[name, value] : counterFields(CounterSet{})) {
        (void)value;
        out += "," + name;
    }
    out += ",fe_bound,dram_bound\n";

    for (const auto k : active) {
        const auto &info = kernelInfo(static_cast<KernelId>(k));
        const auto &counters = per_kernel[k];
        out += strFormat("%s,%s", info.name, info.library);
        for (const auto &[name, value] : counterFields(counters)) {
            (void)name;
            out += strFormat(",%.0f", value);
        }
        out += strFormat(",%.6f,%.6f\n",
                         counters.frontendBoundFraction(),
                         counters.dramBoundFraction());
    }
    return out;
}

std::vector<std::pair<KernelId, CounterSet>>
countersFromCsv(const std::string &csv)
{
    const auto lines = strSplit(csv, '\n');
    LOTUS_ASSERT(!lines.empty(), "empty CSV");
    std::vector<std::pair<KernelId, CounterSet>> out;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        const auto cells = strSplit(lines[i], ',');
        LOTUS_ASSERT(cells.size() >= 14, "short CSV row '%s'",
                     lines[i].c_str());
        const KernelId kernel = kernelByName(cells[0]);
        if (kernel == KernelId::Invalid) {
            LOTUS_WARN("unknown function '%s' in counters CSV; skipping",
                       cells[0].c_str());
            continue;
        }
        CounterSet counters;
        auto u64 = [&cells](std::size_t index) {
            return static_cast<std::uint64_t>(
                std::strtoull(cells[index].c_str(), nullptr, 10));
        };
        counters.cycles = u64(2);
        counters.instructions = u64(3);
        counters.uops_delivered = u64(4);
        counters.uops_retired = u64(5);
        counters.frontend_stall_slots = u64(6);
        counters.backend_stall_slots = u64(7);
        counters.l1_misses = u64(8);
        counters.l2_misses = u64(9);
        counters.llc_misses = u64(10);
        counters.dram_stall_cycles = u64(11);
        counters.branches = u64(12);
        counters.branch_mispredicts = u64(13);
        out.emplace_back(kernel, counters);
    }
    return out;
}

} // namespace lotus::hwcount
