/**
 * @file
 * Optional real-PMU backend via perf_event_open.
 *
 * When the host kernel permits it (perf_event_paranoid and container
 * seccomp allowing), this backend measures real cycles, instructions,
 * cache misses and branches for the calling thread. Counters are
 * opened as small PERF_FORMAT_GROUP groups (each co-schedulable on
 * any PMU with >= 2 programmable slots) and every read applies
 * multiplex scaling from time_enabled / time_running, so asking for
 * more events than the hardware has slots still yields unbiased
 * estimates instead of silently under-counted raw values.
 *
 * Lotus-CPP uses it opportunistically: the ThreadCounterRegistry
 * (thread_counters.h) attaches one instance per DataLoader worker
 * when available() and otherwise falls back to the SimulatedPmu.
 * Sandboxed environments typically land on the fallback (documented
 * in DESIGN.md §12). The LOTUS_PMU env var pins the choice.
 */

#ifndef LOTUS_HWCOUNT_PERF_BACKEND_H
#define LOTUS_HWCOUNT_PERF_BACKEND_H

#include <string>

#include "hwcount/counters.h"

namespace lotus::hwcount {

/**
 * Which counter backend feeds attribution. kAuto probes the host and
 * prefers real counters; kPerf insists on them (falling back with a
 * warning when denied); kSim pins the deterministic cost model.
 */
enum class PmuBackend : std::uint8_t
{
    kAuto,
    kPerf,
    kSim,
};

const char *pmuBackendName(PmuBackend backend);

/**
 * Parse the LOTUS_PMU env override ({auto, perf, sim}, mirroring
 * LOTUS_SIMD). Unset or unrecognized values resolve to kAuto; an
 * unrecognized value additionally warns once.
 */
PmuBackend pmuBackendFromEnv();

class PerfEventPmu
{
  public:
    /** Open counter groups for the calling thread. Check valid(). */
    PerfEventPmu();
    ~PerfEventPmu();

    PerfEventPmu(const PerfEventPmu &) = delete;
    PerfEventPmu &operator=(const PerfEventPmu &) = delete;

    /** True when every counter group opened successfully. */
    bool valid() const { return valid_; }

    /** Why the backend is unavailable ("" when valid). */
    const std::string &error() const { return error_; }

    /** Reset and start counting (whole groups at once). */
    void start();

    /** Stop counting. */
    void stop();

    /**
     * Read accumulated counts. Each group's raw values are scaled by
     * time_enabled / time_running, the standard unbiased estimator
     * for a kernel-multiplexed group; only populated fields are
     * nonzero. Also refreshes multiplexFraction().
     */
    CounterSet read() const;

    /**
     * Fraction of enabled time the least-scheduled group actually
     * spent counting on the PMU during the last read() (1.0 = never
     * multiplexed; valid after the first read).
     */
    double multiplexFraction() const { return mux_fraction_; }

    /** Probe whether this process can open PMU counters at all. */
    static bool available();

    /** Probe failure reason ("" when available). */
    static std::string unavailableReason();

    /** Events per group; kept small so groups co-schedule even on
     *  PMUs with few programmable slots. */
    static constexpr int kGroupSize = 2;
    static constexpr int kNumGroups = 3;
    static constexpr int kNumEvents = kGroupSize * kNumGroups;

  private:
    int fds_[kNumEvents];
    bool valid_ = false;
    std::string error_;
    mutable double mux_fraction_ = 1.0;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_PERF_BACKEND_H
