/**
 * @file
 * Optional real-PMU backend via perf_event_open.
 *
 * When the host kernel permits it (perf_event_paranoid and container
 * seccomp allowing), this backend measures real cycles, instructions,
 * cache misses and branches for the calling thread. Lotus-CPP uses it
 * opportunistically: examples and benches prefer it when available()
 * and otherwise fall back to the SimulatedPmu. Sandboxed environments
 * typically land on the fallback (documented in DESIGN.md §4.5).
 */

#ifndef LOTUS_HWCOUNT_PERF_BACKEND_H
#define LOTUS_HWCOUNT_PERF_BACKEND_H

#include <string>

#include "hwcount/counters.h"

namespace lotus::hwcount {

class PerfEventPmu
{
  public:
    /** Open counters for the calling thread. Check valid() after. */
    PerfEventPmu();
    ~PerfEventPmu();

    PerfEventPmu(const PerfEventPmu &) = delete;
    PerfEventPmu &operator=(const PerfEventPmu &) = delete;

    /** True when the counter group opened successfully. */
    bool valid() const { return valid_; }

    /** Why the backend is unavailable ("" when valid). */
    const std::string &error() const { return error_; }

    /** Reset and start counting. */
    void start();

    /** Stop counting. */
    void stop();

    /** Read accumulated counts (only populated fields are nonzero). */
    CounterSet read() const;

    /** Probe whether this process can open PMU counters at all. */
    static bool available();

    static constexpr int kNumEvents = 6;

  private:
    int fds_[kNumEvents];
    bool valid_ = false;
    std::string error_;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_PERF_BACKEND_H
