/**
 * @file
 * Deterministic emulation of a sampling hardware-profiler driver.
 *
 * VTune's user-mode sampling observes the running native function
 * every ~10 ms (uProf: ~1 ms). LotusMap's methodology (and its
 * pitfalls: missed short-lived functions, misattribution skid,
 * cold-start pollution) all stem from that sampling process. We
 * reproduce it by *post-sampling* recorded kernel timelines: kernels
 * record exact enter/exit timestamps, and this driver walks the
 * timeline taking virtual samples at the configured interval.
 *
 * The sample phase is seeded, and an optional attribution skid shifts
 * each sample's lookup time backwards — modelling the out-of-order /
 * driver-delay effect the paper works around with sleep() gaps
 * (Listing 4, line 14).
 */

#ifndef LOTUS_HWCOUNT_SAMPLING_DRIVER_H
#define LOTUS_HWCOUNT_SAMPLING_DRIVER_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "hwcount/kernel_id.h"
#include "hwcount/registry.h"

namespace lotus::hwcount {

struct SamplingConfig
{
    /** Sampling interval; 10 ms mirrors VTune, 1 ms mirrors uProf. */
    TimeNs interval = 10 * kMillisecond;
    /**
     * Attribution skid: each sample is charged to whatever ran this
     * long *before* the sample fired. Models the OOO/driver effect
     * that bleeds a previous function into the current window.
     */
    TimeNs skid = 0;
    /** Seed for the per-thread sampling phase. */
    std::uint64_t seed = 1;
};

/** One virtual PMU sample. */
struct DriverSample
{
    TimeNs time = 0;
    std::uint32_t tid = 0;
    /** Innermost kernel active at the (skid-adjusted) time, or
     *  Invalid when no annotated kernel was running. */
    KernelId kernel = KernelId::Invalid;
    OpTag op = kNoOp;
};

class SamplingDriver
{
  public:
    explicit SamplingDriver(SamplingConfig config);

    const SamplingConfig &config() const { return config_; }

    /**
     * Sample a timeline (as produced by RegistrySnapshot::timeline,
     * i.e. sorted by tid then start). Each thread is sampled from its
     * first interval start to its last interval end.
     */
    std::vector<DriverSample>
    sample(const std::vector<KernelInterval> &timeline) const;

    /**
     * Sample only within [window_start, window_end) across all
     * threads — the collection window between resume() and pause().
     */
    std::vector<DriverSample>
    sampleWindow(const std::vector<KernelInterval> &timeline,
                 TimeNs window_start, TimeNs window_end) const;

    /** Histogram of samples per kernel (Invalid excluded). */
    static std::map<KernelId, std::uint64_t>
    countByKernel(const std::vector<DriverSample> &samples);

    /**
     * Probability that a function of span @p f is captured at least
     * once in @p n runs at interval @p s: C = 1 - (1 - f/s)^n.
     * (Paper §IV-B; requires 0 < f <= s.)
     */
    static double captureProbability(TimeNs f, TimeNs s, int n);

    /**
     * Minimum number of runs so a function of span @p f is captured
     * with probability at least @p confidence.
     */
    static int runsForCapture(TimeNs f, TimeNs s, double confidence);

  private:
    std::vector<DriverSample>
    sampleRange(const std::vector<KernelInterval> &timeline, TimeNs lo,
                TimeNs hi, bool clamp_per_thread) const;

    SamplingConfig config_;
};

} // namespace lotus::hwcount

#endif // LOTUS_HWCOUNT_SAMPLING_DRIVER_H
